//! Micro-benchmarks of the prioritized replay buffer (sum-tree push,
//! sample, priority update).

use criterion::{criterion_group, criterion_main, Criterion};
use fedmigr_drl::{PrioritizedReplay, Transition};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn transition(i: usize) -> Transition {
    Transition {
        state: vec![i as f32; 16],
        action: i % 10,
        reward: (i as f32).sin(),
        next_state: vec![i as f32 + 1.0; 16],
        done: false,
    }
}

fn bench_replay(c: &mut Criterion) {
    c.bench_function("replay_push_4096", |b| {
        b.iter(|| {
            let mut buf = PrioritizedReplay::new(4096, 0.6, 0.4);
            for i in 0..4096 {
                buf.push(transition(i));
            }
            black_box(buf.len())
        })
    });

    let mut buf = PrioritizedReplay::new(4096, 0.6, 0.4);
    for i in 0..4096 {
        buf.push(transition(i));
    }
    for i in 0..4096 {
        buf.update_priority(i, 1.0 + (i % 17) as f64);
    }
    c.bench_function("replay_sample_32_of_4096", |b| {
        let mut rng = StdRng::seed_from_u64(3);
        b.iter(|| black_box(buf.sample(32, &mut rng).len()))
    });

    c.bench_function("replay_update_priority", |b| {
        let mut i = 0usize;
        b.iter(|| {
            buf.update_priority(i % 4096, 1.0 + (i % 31) as f64);
            i += 1;
        })
    });
}

criterion_group!(benches, bench_replay);
criterion_main!(benches);
