//! Micro-benchmarks of the data plane: synthetic generation, partitioning,
//! distribution distances and batch gathering.

use criterion::{criterion_group, criterion_main, Criterion};
use fedmigr_data::distribution::{label_distribution, pairwise_distance_matrix};
use fedmigr_data::{partition_dominant, partition_shards, SyntheticConfig, SyntheticDataset};
use std::hint::black_box;

fn bench_data(c: &mut Criterion) {
    c.bench_function("generate_c10_like_80pc", |b| {
        b.iter(|| black_box(SyntheticDataset::generate(&SyntheticConfig::c10_like(80, 1))))
    });

    let ds = SyntheticDataset::generate(&SyntheticConfig::c10_like(80, 1)).train;
    c.bench_function("partition_shards_10", |b| {
        b.iter(|| black_box(partition_shards(&ds, 10, 1, 7)))
    });
    c.bench_function("partition_dominant_10", |b| {
        b.iter(|| black_box(partition_dominant(&ds, 10, 0.6, 7)))
    });

    let parts = partition_shards(&ds, 10, 1, 7);
    let dists: Vec<Vec<f64>> = parts.iter().map(|p| label_distribution(&ds, p)).collect();
    c.bench_function("pairwise_distance_10x10", |b| {
        b.iter(|| black_box(pairwise_distance_matrix(&dists)))
    });

    let indices: Vec<usize> = (0..64).collect();
    c.bench_function("batch_gather_64", |b| b.iter(|| black_box(ds.batch(&indices))));
}

criterion_group!(benches, bench_data);
criterion_main!(benches);
