//! Micro-benchmarks of the FL-plane operations: weighted aggregation
//! (Eq. 7), parameter wire encoding, migration routing, and DP noising.

use criterion::{criterion_group, criterion_main, Criterion};
use fedmigr_core::{DpConfig, MigrationPlan};
use fedmigr_nn::params::{decode_params, encode_params, weighted_average};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_fl_ops(c: &mut Criterion) {
    let dim = 25_000; // Roughly the small C10-CNN's parameter count.
    let k = 10;
    let models: Vec<Vec<f32>> =
        (0..k).map(|i| (0..dim).map(|j| ((i * dim + j) as f32 * 1e-4).sin()).collect()).collect();

    c.bench_function("aggregate_10x25k", |b| {
        b.iter(|| {
            let entries: Vec<(&[f32], f64)> =
                models.iter().map(|m| (m.as_slice(), 100.0)).collect();
            black_box(weighted_average(&entries))
        })
    });

    c.bench_function("encode_decode_25k", |b| {
        b.iter(|| {
            let bytes = encode_params(&models[0]);
            black_box(decode_params(bytes).unwrap())
        })
    });

    let mut rng = StdRng::seed_from_u64(1);
    let plan = MigrationPlan::random(k, &mut rng);
    c.bench_function("migration_route_10x25k", |b| b.iter(|| black_box(plan.apply(&models))));

    let dp = DpConfig::with_epsilon(1000.0);
    c.bench_function("dp_clip_noise_25k", |b| {
        let mut rng = StdRng::seed_from_u64(2);
        b.iter(|| {
            let mut p = models[0].clone();
            dp.apply(&mut p, &mut rng);
            black_box(p)
        })
    });
}

criterion_group!(benches, bench_fl_ops);
criterion_main!(benches);
