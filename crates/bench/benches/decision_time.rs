//! Criterion form of Fig. 6: migration-decision latency of the S-COP
//! (relaxed-FLMM mirror-descent solve) vs DRL inference, as the client
//! count grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fedmigr_core::MigrationPlan;
use fedmigr_drl::qp::FlmmRelaxation;
use fedmigr_drl::{AgentConfig, DdpgAgent, MigrationState};
use std::hint::black_box;

fn instance(k: usize) -> FlmmRelaxation {
    FlmmRelaxation {
        benefit: (0..k)
            .map(|i| {
                (0..k).map(|j| if i == j { 0.0 } else { ((i + j) % 7) as f64 / 3.5 }).collect()
            })
            .collect(),
        cost: (0..k)
            .map(|i| (0..k).map(|j| ((i * 31 + j * 17) % 10) as f64 / 10.0).collect())
            .collect(),
        lambda: 0.1,
        entropy: 0.05,
    }
}

fn bench_decision(c: &mut Criterion) {
    let mut group = c.benchmark_group("decision_time");
    group.sample_size(10);
    for k in [10usize, 40, 100] {
        let relax = instance(k);
        group.bench_with_input(BenchmarkId::new("scop_solve", k), &k, |b, _| {
            b.iter(|| {
                let p = relax.solve(300, 0.2);
                black_box(FlmmRelaxation::round(&p))
            })
        });

        let featurizer = MigrationState::new(k);
        let mut agent = DdpgAgent::new(AgentConfig::new(featurizer.dim(), k, 1));
        let states: Vec<Vec<f32>> = (0..k)
            .map(|i| featurizer.build(0.5, 1.0, -0.01, 0.9, 0.9, &relax.benefit[i]))
            .collect();
        group.bench_with_input(BenchmarkId::new("drl_inference", k), &k, |b, _| {
            b.iter(|| {
                let scores: Vec<Vec<f64>> = states
                    .iter()
                    .map(|s| agent.action_probs(s).iter().map(|&p| p as f64).collect())
                    .collect();
                black_box(MigrationPlan::greedy_assignment(&scores))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_decision);
criterion_main!(benches);
