//! Micro-benchmarks of the neural-network substrate: the kernels every FL
//! epoch is made of (conv/dense forward+backward, matmul, loss).

use criterion::{criterion_group, criterion_main, Criterion};
use fedmigr_nn::{softmax_cross_entropy, Conv2d, Dense, Layer};
use fedmigr_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_kernels(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);

    let a = Tensor::randn(&[64, 128], 1.0, &mut rng);
    let b = Tensor::randn(&[128, 64], 1.0, &mut rng);
    c.bench_function("matmul_64x128x64", |bch| bch.iter(|| black_box(a.matmul(&b))));

    let mut dense = Dense::new(256, 128, 2);
    let x = Tensor::randn(&[32, 256], 1.0, &mut rng);
    c.bench_function("dense_forward_backward_b32", |bch| {
        bch.iter(|| {
            let y = dense.forward(&x, true);
            dense.zero_grad();
            black_box(dense.backward(&Tensor::ones(y.shape())))
        })
    });

    let mut conv = Conv2d::new(3, 8, 5, 1, 2, 3);
    let img = Tensor::randn(&[32, 3, 8, 8], 1.0, &mut rng);
    c.bench_function("conv2d_5x5_forward_backward_b32", |bch| {
        bch.iter(|| {
            let y = conv.forward(&img, true);
            conv.zero_grad();
            black_box(conv.backward(&Tensor::ones(y.shape())))
        })
    });

    let logits = Tensor::randn(&[64, 100], 1.0, &mut rng);
    let labels: Vec<usize> = (0..64).map(|i| i % 100).collect();
    c.bench_function("softmax_cross_entropy_b64_l100", |bch| {
        bch.iter(|| black_box(softmax_cross_entropy(&logits, &labels)))
    });
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
