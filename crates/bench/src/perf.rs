//! Continuous performance benchmarks: a fixed matrix of micro and
//! end-to-end timings, a versioned JSON report (`BENCH_perf.json`), and the
//! diff logic behind the `fedmigr_perf_diff` CI gate.
//!
//! The `fedmigr_perf` binary runs every benchmark named here with a
//! warmup/repeat/median-of-N protocol and writes a [`PerfReport`]. CI
//! compares that report against the checked-in
//! `results/baselines/perf_baseline.json` with [`diff_reports`], which
//! fails the job when a benchmark's median slows past the tolerated ratio
//! — the same exit-code contract as `fedmigr_diff` (0 clean, 1 regressed,
//! 2 usage/parse error).
//!
//! Medians are compared, not means: one preempted repeat on a shared CI
//! runner should not fail the gate, a consistent slowdown should.

use std::collections::BTreeMap;
use std::time::Instant;

use fedmigr_telemetry::trace::{json_num, json_str, JsonValue};

/// Bumped whenever the report layout or the benchmark matrix changes
/// incompatibly; the differ refuses to compare across versions.
pub const PERF_SCHEMA_VERSION: u32 = 1;

/// One benchmark's measured timings.
#[derive(Clone, Debug, PartialEq)]
pub struct PerfEntry {
    /// Stable benchmark name (`kernel_*`, `codec_*`, `planner_*`,
    /// `flow_*`, `e2e_*`).
    pub name: String,
    /// Median wall nanoseconds across the repeats.
    pub median_ns: u64,
    /// Fastest repeat, the low-noise floor.
    pub min_ns: u64,
    /// Number of timed repeats (after warmup).
    pub repeats: u32,
}

/// A full benchmark run: schema version plus one entry per benchmark.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PerfReport {
    /// Schema version of the report ([`PERF_SCHEMA_VERSION`] when written).
    pub version: u32,
    /// `true` when produced with `--quick` (fewer repeats, smaller e2e
    /// workloads) — quick reports are only comparable to quick baselines.
    pub quick: bool,
    /// Entries in execution order.
    pub benchmarks: Vec<PerfEntry>,
}

impl PerfReport {
    /// Serializes to the versioned JSON document checked in as the
    /// baseline (sorted keys, one benchmark object per line for reviewable
    /// diffs).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"version\": {},\n", json_num(self.version as f64)));
        out.push_str(&format!("  \"quick\": {},\n", self.quick));
        out.push_str("  \"benchmarks\": [\n");
        for (i, b) in self.benchmarks.iter().enumerate() {
            let sep = if i + 1 == self.benchmarks.len() { "" } else { "," };
            out.push_str(&format!(
                "    {{\"name\": {}, \"median_ns\": {}, \"min_ns\": {}, \"repeats\": {}}}{sep}\n",
                json_str(&b.name),
                json_num(b.median_ns as f64),
                json_num(b.min_ns as f64),
                json_num(b.repeats as f64),
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Parses a report, rejecting unknown schema versions.
    pub fn parse(text: &str) -> Result<PerfReport, String> {
        let v = JsonValue::parse(text)?;
        let obj = v.as_object().ok_or("perf report: not a JSON object")?;
        let version = field_u64(obj, "version")? as u32;
        if version != PERF_SCHEMA_VERSION {
            return Err(format!(
                "perf report schema v{version} is not the supported v{PERF_SCHEMA_VERSION}; \
                 regenerate the baseline"
            ));
        }
        let quick = matches!(obj.get("quick"), Some(JsonValue::Bool(true)));
        let list = match obj.get("benchmarks") {
            Some(JsonValue::Array(a)) => a,
            _ => return Err("perf report: missing benchmarks array".into()),
        };
        let mut benchmarks = Vec::with_capacity(list.len());
        for item in list {
            let b = item.as_object().ok_or("perf report: benchmark is not an object")?;
            benchmarks.push(PerfEntry {
                name: b
                    .get("name")
                    .and_then(JsonValue::as_str)
                    .ok_or("perf report: benchmark without a name")?
                    .to_string(),
                median_ns: field_u64(b, "median_ns")?,
                min_ns: field_u64(b, "min_ns")?,
                repeats: field_u64(b, "repeats")? as u32,
            });
        }
        Ok(PerfReport { version, quick, benchmarks })
    }
}

fn field_u64(obj: &BTreeMap<String, JsonValue>, key: &str) -> Result<u64, String> {
    obj.get(key)
        .and_then(JsonValue::as_f64)
        .filter(|v| v.is_finite() && *v >= 0.0)
        .map(|v| v as u64)
        .ok_or_else(|| format!("perf report: missing or bad {key:?}"))
}

/// Regression budgets for [`diff_reports`].
#[derive(Clone, Copy, Debug)]
pub struct PerfTolerances {
    /// A benchmark regresses when `current_median > baseline_median *
    /// max_ratio` (default 1.6 — an injected 2× slowdown must fail, one
    /// noisy CI scheduler tick must not).
    pub max_ratio: f64,
    /// Benchmarks whose baseline *and* current medians are below this are
    /// never flagged: sub-threshold timings are timer jitter, not signal.
    pub noise_floor_ns: u64,
}

impl Default for PerfTolerances {
    fn default() -> Self {
        Self { max_ratio: 1.6, noise_floor_ns: 20_000 }
    }
}

/// One benchmark that slowed past its budget (or disappeared).
#[derive(Clone, Debug)]
pub struct PerfRegression {
    /// Benchmark name.
    pub name: String,
    /// Baseline median nanoseconds.
    pub baseline_ns: u64,
    /// Current median nanoseconds (0 when the benchmark vanished).
    pub current_ns: u64,
    /// `current / baseline`, or infinity for a vanished benchmark.
    pub ratio: f64,
}

impl PerfRegression {
    /// Human-readable one-liner for the CI log.
    pub fn describe(&self) -> String {
        if self.current_ns == 0 {
            format!("{}: present in baseline but missing from current run", self.name)
        } else {
            format!(
                "{}: {:.3} ms -> {:.3} ms ({:.2}x slower)",
                self.name,
                self.baseline_ns as f64 / 1e6,
                self.current_ns as f64 / 1e6,
                self.ratio,
            )
        }
    }
}

/// Compares `current` against `baseline`, returning every benchmark that
/// regressed past `tol`. New benchmarks (in current, not baseline) are
/// fine — they get a baseline entry on the next refresh. Vanished
/// benchmarks are regressions: a silently dropped benchmark is how
/// coverage rots.
pub fn diff_reports(
    baseline: &PerfReport,
    current: &PerfReport,
    tol: &PerfTolerances,
) -> Result<Vec<PerfRegression>, String> {
    if baseline.version != current.version {
        return Err(format!(
            "schema mismatch: baseline v{} vs current v{}",
            baseline.version, current.version
        ));
    }
    if baseline.quick != current.quick {
        return Err(format!(
            "mode mismatch: baseline quick={} vs current quick={}; compare like with like",
            baseline.quick, current.quick
        ));
    }
    let cur: BTreeMap<&str, &PerfEntry> =
        current.benchmarks.iter().map(|b| (b.name.as_str(), b)).collect();
    let mut regs = Vec::new();
    for base in &baseline.benchmarks {
        match cur.get(base.name.as_str()) {
            None => regs.push(PerfRegression {
                name: base.name.clone(),
                baseline_ns: base.median_ns,
                current_ns: 0,
                ratio: f64::INFINITY,
            }),
            Some(c) => {
                if base.median_ns < tol.noise_floor_ns && c.median_ns < tol.noise_floor_ns {
                    continue;
                }
                let ratio = c.median_ns as f64 / (base.median_ns.max(1)) as f64;
                if ratio > tol.max_ratio {
                    regs.push(PerfRegression {
                        name: base.name.clone(),
                        baseline_ns: base.median_ns,
                        current_ns: c.median_ns,
                        ratio,
                    });
                }
            }
        }
    }
    Ok(regs)
}

/// Times `f` with `warmup` untimed then `repeats` timed invocations and
/// returns the median/min entry. `repeats` is clamped to at least 1.
pub fn measure<F: FnMut()>(name: &str, warmup: u32, repeats: u32, mut f: F) -> PerfEntry {
    for _ in 0..warmup {
        f();
    }
    let repeats = repeats.max(1);
    let mut times: Vec<u64> = Vec::with_capacity(repeats as usize);
    for _ in 0..repeats {
        let t0 = Instant::now();
        f();
        times.push(u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX));
    }
    times.sort_unstable();
    PerfEntry {
        name: name.to_string(),
        median_ns: times[times.len() / 2],
        min_ns: times[0],
        repeats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(pairs: &[(&str, u64)]) -> PerfReport {
        PerfReport {
            version: PERF_SCHEMA_VERSION,
            quick: false,
            benchmarks: pairs
                .iter()
                .map(|&(name, median_ns)| PerfEntry {
                    name: name.into(),
                    median_ns,
                    min_ns: median_ns / 2,
                    repeats: 5,
                })
                .collect(),
        }
    }

    #[test]
    fn json_roundtrips() {
        let r = report(&[("kernel_matmul_128", 2_000_000), ("e2e_dense_lockstep", 90_000_000)]);
        let parsed = PerfReport::parse(&r.to_json()).expect("own output parses");
        assert_eq!(parsed, r);
    }

    #[test]
    fn rejects_unknown_schema_version() {
        let mut r = report(&[("kernel_matmul_128", 1_000_000)]);
        r.version = PERF_SCHEMA_VERSION + 1;
        assert!(PerfReport::parse(&r.to_json()).is_err());
    }

    #[test]
    fn injected_2x_regression_is_caught_and_equal_runs_pass() {
        let base = report(&[
            ("kernel_matmul_128", 2_000_000),
            ("codec_int8_roundtrip", 5_000_000),
            ("e2e_dense_lockstep", 90_000_000),
        ]);
        let tol = PerfTolerances::default();

        // Identical run: clean.
        assert!(diff_reports(&base, &base, &tol).unwrap().is_empty());

        // One benchmark slowed 2x: exactly that one is flagged.
        let mut slow = base.clone();
        slow.benchmarks[1].median_ns *= 2;
        let regs = diff_reports(&base, &slow, &tol).unwrap();
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].name, "codec_int8_roundtrip");
        assert!((regs[0].ratio - 2.0).abs() < 1e-9);
        assert!(regs[0].describe().contains("codec_int8_roundtrip"));

        // Within-budget wobble (1.3x) passes.
        let mut wobble = base.clone();
        wobble.benchmarks[0].median_ns = wobble.benchmarks[0].median_ns * 13 / 10;
        assert!(diff_reports(&base, &wobble, &tol).unwrap().is_empty());
    }

    #[test]
    fn vanished_benchmark_and_noise_floor() {
        let base = report(&[("kernel_matmul_128", 2_000_000), ("kernel_tiny", 5_000)]);
        let tol = PerfTolerances::default();

        // Dropped benchmark fails the gate.
        let cur = report(&[("kernel_matmul_128", 2_000_000)]);
        let regs = diff_reports(&base, &cur, &tol).unwrap();
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].current_ns, 0);
        assert!(regs[0].describe().contains("missing"));

        // A 3x swing below the noise floor is ignored.
        let noisy = report(&[("kernel_matmul_128", 2_000_000), ("kernel_tiny", 15_000)]);
        assert!(diff_reports(&base, &noisy, &tol).unwrap().is_empty());

        // New benchmarks in current are not regressions.
        let extra =
            report(&[("kernel_matmul_128", 2_000_000), ("kernel_tiny", 5_000), ("new_one", 1)]);
        assert!(diff_reports(&base, &extra, &tol).unwrap().is_empty());
    }

    #[test]
    fn mode_and_version_mismatches_are_errors() {
        let base = report(&[("kernel_matmul_128", 1_000_000)]);
        let mut quick = base.clone();
        quick.quick = true;
        assert!(diff_reports(&base, &quick, &PerfTolerances::default()).is_err());
        let mut other = base.clone();
        other.version += 1;
        assert!(diff_reports(&base, &other, &PerfTolerances::default()).is_err());
    }

    #[test]
    fn measure_reports_sane_ordering() {
        let e = measure("spin", 1, 5, || {
            std::hint::black_box((0..1000).sum::<u64>());
        });
        assert_eq!(e.repeats, 5);
        assert!(e.min_ns <= e.median_ns);
        assert!(e.median_ns > 0);
    }
}
