//! Shared harness for the experiment binaries that regenerate every table
//! and figure of the FedMigr paper (see DESIGN.md for the full index).
//!
//! Each binary accepts `--scale smoke|paper` (default `smoke`):
//! `smoke` runs in seconds-to-minutes on a laptop and preserves the
//! qualitative shape of each result; `paper` uses larger datasets, more
//! epochs and the paper's aggregation interval of 50.

pub mod perf;

use fedmigr_core::{Experiment, RunConfig, Scheme};
use fedmigr_data::{
    partition_dominant, partition_iid, partition_missing_classes, partition_shards,
    SyntheticConfig, SyntheticDataset,
};
use fedmigr_net::{ClientCompute, Topology, TopologyConfig};
use fedmigr_nn::zoo::{self, NetScale};
use fedmigr_nn::Model;

/// Run scale selected on the command line.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Seconds-to-minutes runs preserving qualitative shape.
    Smoke,
    /// Longer runs approximating the paper's settings.
    Paper,
}

impl Scale {
    /// Parses `--scale smoke|paper` from `std::env::args`, defaulting to
    /// smoke.
    pub fn from_args() -> Self {
        let args: Vec<String> = std::env::args().collect();
        for w in args.windows(2) {
            if w[0] == "--scale" {
                return match w[1].as_str() {
                    "paper" => Scale::Paper,
                    "smoke" => Scale::Smoke,
                    other => {
                        fedmigr_telemetry::error!(
                            "bench",
                            "error: unknown scale {other:?}; use smoke or paper"
                        );
                        std::process::exit(2);
                    }
                };
            }
        }
        Scale::Smoke
    }

    /// Training epochs for a standard accuracy experiment.
    pub fn epochs(self) -> usize {
        match self {
            Scale::Smoke => 150,
            Scale::Paper => 1000,
        }
    }

    /// Aggregation interval (`M + 1`).
    pub fn agg_interval(self) -> usize {
        match self {
            Scale::Smoke => 10,
            Scale::Paper => 50,
        }
    }

    /// Training samples generated per class.
    pub fn train_per_class(self) -> usize {
        match self {
            Scale::Smoke => 120,
            Scale::Paper => 400,
        }
    }
}

/// Which dataset/model pairing an experiment uses, matching the paper's
/// three workloads.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Workload {
    /// C10-CNN over the CIFAR-10 stand-in (10 clients, 3 LANs).
    C10,
    /// C100-CNN over the CIFAR-100 stand-in (20 clients, 5 LANs).
    C100,
    /// Residual network over the ImageNet-100 stand-in (20 clients, 5 LANs).
    ResImageNet,
}

impl Workload {
    /// Display name matching the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            Workload::C10 => "C10-CNN",
            Workload::C100 => "C100-CNN",
            Workload::ResImageNet => "Res-ImageNet",
        }
    }

    /// Number of clients.
    pub fn clients(self) -> usize {
        match self {
            Workload::C10 => 10,
            _ => 20,
        }
    }

    /// LAN layout.
    pub fn topology_config(self, seed: u64) -> TopologyConfig {
        match self {
            Workload::C10 => TopologyConfig::c10_sim(seed),
            _ => TopologyConfig::c100_sim(seed),
        }
    }

    /// Synthetic dataset config.
    pub fn data_config(self, scale: Scale, seed: u64) -> SyntheticConfig {
        let per_class = match self {
            Workload::C10 => scale.train_per_class(),
            // 100-class datasets keep the per-class count smaller so the
            // total stays tractable.
            _ => (scale.train_per_class() / 4).max(20),
        };
        match self {
            Workload::C10 => SyntheticConfig::c10_like(per_class, seed),
            Workload::C100 => SyntheticConfig::c100_like(per_class, seed),
            Workload::ResImageNet => SyntheticConfig::imagenet100_like(per_class, seed),
        }
    }

    /// Model template.
    pub fn model(self, seed: u64) -> Model {
        match self {
            Workload::C10 => zoo::c10_cnn(3, 8, NetScale::Small, seed),
            Workload::C100 => zoo::c100_cnn(3, 8, NetScale::Small, seed),
            Workload::ResImageNet => zoo::mini_resnet(3, 8, 100, 2, NetScale::Small, seed),
        }
    }
}

/// Data layout requested for an experiment.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Partition {
    /// IID deal.
    Iid,
    /// Label shards (the simulation's non-IID layout): C10 gets one class
    /// per client; the 100-class workloads get 5 classes per client.
    Shards,
    /// `p`-dominant class per client (test-bed CIFAR-10 layout).
    Dominant(f64),
    /// Each client misses a fraction of classes (test-bed CIFAR-100 layout).
    MissingClasses(f64),
}

/// Builds the standard [`Experiment`] for a workload, scale and layout.
pub fn build_experiment(
    workload: Workload,
    partition: Partition,
    scale: Scale,
    seed: u64,
) -> Experiment {
    build_experiment_with_samples(workload, partition, scale, seed, None)
}

/// Like [`build_experiment`] but overriding the per-class training-sample
/// count (used by the non-IID-level sweeps, where scarcer data makes the
/// dominant-class layout genuinely deprive clients of minority classes).
pub fn build_experiment_with_samples(
    workload: Workload,
    partition: Partition,
    scale: Scale,
    seed: u64,
    per_class: Option<usize>,
) -> Experiment {
    let mut data_config = workload.data_config(scale, seed);
    if let Some(n) = per_class {
        data_config.train_per_class = n;
    }
    let data = SyntheticDataset::generate(&data_config);
    let k = workload.clients();
    let parts = match partition {
        Partition::Iid => partition_iid(&data.train, k, seed),
        Partition::Shards => {
            let classes_per_client = data.train.num_classes() / k;
            partition_shards(&data.train, k, classes_per_client.max(1), seed)
        }
        Partition::Dominant(p) => partition_dominant(&data.train, k, p, seed),
        Partition::MissingClasses(p) => partition_missing_classes(&data.train, k, p, seed),
    };
    let topo = Topology::new(&workload.topology_config(seed));
    Experiment::new(
        data.train,
        data.test,
        parts,
        topo,
        ClientCompute::testbed_mix(k),
        workload.model(seed),
    )
}

/// The five schemes of the paper's evaluation, in table order.
pub fn all_schemes(seed: u64) -> Vec<Scheme> {
    vec![
        Scheme::FedAvg,
        Scheme::FedSwap,
        Scheme::RandMigr,
        Scheme::fedprox(),
        Scheme::fedmigr(seed),
    ]
}

/// Standard run configuration for a scale.
pub fn standard_config(scheme: Scheme, scale: Scale, seed: u64) -> RunConfig {
    let mut cfg = RunConfig::new(scheme, scale.epochs());
    cfg.agg_interval = scale.agg_interval();
    cfg.eval_interval = match scale {
        Scale::Smoke => 10,
        Scale::Paper => 25,
    };
    // Calibrated so one local epoch neither freezes training (too small)
    // nor catastrophically overwrites a migrated model (too large).
    cfg.lr = 0.01;
    cfg.seed = seed;
    cfg
}

/// Shared observability setup for the experiment binaries. Honours three
/// optional flags every binary accepts alongside `--scale`:
///
/// * `--log-level <spec>` — same syntax as `FEDMIGR_LOG`
///   (`debug,drl=trace,net=off`);
/// * `--trace-out <path>` — stream a JSONL span/log trace;
/// * `--metrics-out <path>` — dump the Prometheus-style metrics exposition
///   when the returned guard drops.
///
/// Bind the guard for the whole of `main`: it opens a `bench_main` span so
/// per-phase histograms nest under a stable root, and on drop it writes the
/// metrics dump and flushes the trace — logging failures instead of
/// panicking, so a full result table is never lost to a bad output path.
pub fn init_observability(bench: &'static str) -> ObservabilityGuard {
    // Resolve the filter explicitly (flag > FEDMIGR_LOG > default) rather
    // than relying on the engine's one-time env read: by the time a bench
    // binary reaches here the global engine may already exist (e.g. an
    // earlier `Scale::from_args` error path), and the env spec must still
    // be honoured when the flag is absent.
    let log_flag = flag_value("--log-level");
    let log_env = std::env::var("FEDMIGR_LOG").ok();
    match fedmigr_telemetry::Filter::resolve(log_flag.as_deref(), log_env.as_deref()) {
        Ok(f) => fedmigr_telemetry::set_filter(f),
        Err(e) if log_flag.is_some() => {
            fedmigr_telemetry::error!("bench", "error: bad --log-level: {e}");
            std::process::exit(2);
        }
        Err(e) => {
            // A malformed environment spec must not kill a result run.
            fedmigr_telemetry::warn!("bench", "ignoring FEDMIGR_LOG: {e}");
        }
    }
    if let Some(path) = flag_value("--trace-out") {
        if let Err(e) = fedmigr_telemetry::set_trace_file(&path) {
            fedmigr_telemetry::error!("bench", "error: cannot open --trace-out {path}: {e}");
            std::process::exit(2);
        }
    }
    fedmigr_telemetry::debug!("bench", "starting {bench}");
    ObservabilityGuard {
        bench,
        metrics_out: flag_value("--metrics-out"),
        span: Some(fedmigr_telemetry::global().span_labeled(
            "bench",
            "bench_main",
            vec![("bench".to_string(), bench.to_string())],
        )),
    }
}

/// RAII guard returned by [`init_observability`].
pub struct ObservabilityGuard {
    bench: &'static str,
    metrics_out: Option<String>,
    span: Option<fedmigr_telemetry::Span<'static>>,
}

impl Drop for ObservabilityGuard {
    fn drop(&mut self) {
        drop(self.span.take());
        fedmigr_telemetry::debug!("bench", "finished {}", self.bench);
        if let Some(path) = self.metrics_out.take() {
            match std::fs::write(&path, fedmigr_telemetry::render_metrics()) {
                Ok(()) => fedmigr_telemetry::debug!("bench", "wrote {path}"),
                Err(e) => fedmigr_telemetry::error!(
                    "bench",
                    "error: failed to write --metrics-out {path}: {e}"
                ),
            }
        }
        fedmigr_telemetry::close_trace();
    }
}

fn flag_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.windows(2).find(|w| w[0] == name).map(|w| w[1].clone())
}

/// Prints a Markdown-style table row.
pub fn print_row(cells: &[String]) {
    println!("| {} |", cells.join(" | "));
}

/// Prints a table header with a separator line.
pub fn print_header(cells: &[&str]) {
    println!("| {} |", cells.join(" | "));
    println!("|{}|", cells.iter().map(|_| "---").collect::<Vec<_>>().join("|"));
}

/// Formats bytes as MB with two decimals.
pub fn fmt_mb(bytes: u64) -> String {
    format!("{:.2}", bytes as f64 / 1e6)
}

/// Formats seconds as hours with two decimals.
pub fn fmt_hours(seconds: f64) -> String {
    format!("{:.2}", seconds / 3600.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_metadata() {
        assert_eq!(Workload::C10.clients(), 10);
        assert_eq!(Workload::C100.clients(), 20);
        assert_eq!(Workload::C10.name(), "C10-CNN");
    }

    #[test]
    fn build_experiment_smoke_c10() {
        let exp = build_experiment(Workload::C10, Partition::Shards, Scale::Smoke, 3);
        assert_eq!(exp.num_clients(), 10);
    }

    #[test]
    fn all_schemes_has_five() {
        let schemes = all_schemes(0);
        assert_eq!(schemes.len(), 5);
        assert_eq!(schemes[0].name(), "FedAvg");
        assert_eq!(schemes[4].name(), "FedMigr");
    }
}
