//! Fig. R (robustness): fault tolerance under edge churn. Sweeps the
//! dropout rate of the [`fedmigr_net::FaultConfig::edge_churn`] preset
//! across every scheme and reports final accuracy next to the fault
//! accounting (drop-epochs, retries, rerouted/cancelled migrations and
//! wasted bytes).
//!
//! Expected shape: all schemes degrade gracefully as churn grows; the
//! migration schemes reroute rather than cancel while links still have
//! live same-LAN relays, and FedMigr's liveness-aware oracle keeps its
//! cancelled-migration count below RandMigr's at the same dropout rate.
//!
//! Usage: `figR_fault_tolerance [--scale smoke|paper]`

use fedmigr_bench::{
    all_schemes, build_experiment, fmt_hours, fmt_mb, print_header, print_row, standard_config,
    Partition, Scale, Workload,
};
use fedmigr_core::Scheme;
use fedmigr_net::{FaultConfig, TransportConfig};

fn main() {
    let _obs = fedmigr_bench::init_observability("figR_fault_tolerance");
    let scale = Scale::from_args();
    let seed = 61;
    let fault_seed = 17;
    let dropouts = [0.0, 0.1, 0.3, 0.5];
    let exp = build_experiment(Workload::C10, Partition::Shards, scale, seed);

    println!("# Fig. R: fault tolerance under edge churn (dropout sweep)\n");
    print_header(&[
        "scheme",
        "dropout",
        "final acc",
        "drop-epochs",
        "stale",
        "retries",
        "rerouted",
        "cancelled",
        "wasted (MB)",
        "time (h)",
    ]);

    for scheme in all_schemes(seed) {
        for &dropout in &dropouts {
            let mut cfg = standard_config(scheme.clone(), scale, seed);
            cfg.fault = if dropout == 0.0 {
                FaultConfig::none()
            } else {
                FaultConfig::edge_churn(dropout, fault_seed)
            };
            let m = exp.run(&cfg);
            assert_eq!(m.epochs(), cfg.epochs, "faults must never truncate a run");
            print_row(&[
                scheme.name(),
                format!("{dropout:.1}"),
                format!("{:.4}", m.final_accuracy()),
                m.fault.client_drops.to_string(),
                m.fault.stale_client_epochs.to_string(),
                m.fault.transfer_retries.to_string(),
                m.fault.rerouted_migrations.to_string(),
                m.fault.cancelled_migrations.to_string(),
                fmt_mb(m.fault.wasted_bytes),
                fmt_hours(m.sim_time()),
            ]);
        }
    }

    println!(
        "\nFault schedule seed {fault_seed}; dropout 0.0 rows run with the \
         fault layer disabled and must show all-zero fault counters."
    );

    // --- Flow transport under contention + burst loss -----------------------
    //
    // The event-driven transport replaces lockstep's nominal latencies with
    // simulated completion times: flows share links, time out, back off and
    // retransmit. Each scheme runs once on a clean flow network and once
    // under `with_network_stress` (flapping links, burst loss, bandwidth
    // collapse). Late uploads are folded into the next aggregation with a
    // staleness discount rather than stalling the round, so every run must
    // still complete all its epochs and land close to its clean-flow accuracy.
    let stress = 0.3;
    println!("\n# Flow transport: clean vs. network stress {stress}\n");
    print_header(&[
        "scheme",
        "condition",
        "final acc",
        "acc gap",
        "retransmits",
        "timeouts",
        "late",
        "stale folded",
        "stale dropped",
        "queue p99 (s)",
        "time (h)",
    ]);

    for scheme in all_schemes(seed) {
        let mut clean_acc = 0.0;
        for (cond, stressed) in [("clean", false), ("stress", true)] {
            let mut cfg = standard_config(scheme.clone(), scale, seed);
            cfg.transport = TransportConfig::flow(seed);
            if stressed {
                cfg.fault.seed = fault_seed;
                cfg.fault = cfg.fault.with_network_stress(stress);
            }
            let m = exp.run(&cfg);
            assert_eq!(m.epochs(), cfg.epochs, "flow transport must never stall a round");
            let gap = if stressed {
                clean_acc - m.final_accuracy()
            } else {
                clean_acc = m.final_accuracy();
                0.0
            };
            let t = m.transport_stats;
            print_row(&[
                scheme.name(),
                cond.to_string(),
                format!("{:.4}", m.final_accuracy()),
                format!("{gap:+.4}"),
                t.retransmits.to_string(),
                t.timeouts.to_string(),
                t.late_uploads.to_string(),
                t.stale_updates_folded.to_string(),
                t.stale_updates_dropped.to_string(),
                format!("{:.3}", t.queue_delay_p99),
                fmt_hours(m.sim_time()),
            ]);
            assert!(
                gap <= 0.02,
                "{}: stressed accuracy must stay within 2 points of the clean \
                 flow run (gap {gap:.4})",
                scheme.name()
            );
        }
    }

    println!(
        "\nFlow rows use --transport=flow (seed {seed}); stress rows add \
         with_network_stress({stress}) on fault seed {fault_seed}. Late uploads \
         are folded with a staleness discount, never stalled on."
    );

    // --- Crash recovery: kill-and-resume identity ---------------------------
    //
    // Every scheme runs three times under moderate churn: uninterrupted,
    // killed mid-run (simulated crash right after a checkpointed round), and
    // resumed from the latest snapshot. The resumed run's CSV export must be
    // byte-identical to the uninterrupted one — the crash-safety contract of
    // DESIGN.md §11 — and the table reports what that safety costs in
    // snapshot volume. Shorter runs than the sweeps above: the contract is
    // length-independent and this keeps the bench affordable.
    let recovery_epochs = 60;
    let kill_at = 25;
    let ckpt_every = 5;
    println!("\n# Crash recovery: kill at round {kill_at}, resume from latest snapshot\n");
    print_header(&[
        "scheme",
        "rounds",
        "ckpts",
        "snapshot (MB)",
        "loaded",
        "replayed",
        "csv identical",
    ]);

    for scheme in all_schemes(seed) {
        let mut cfg = standard_config(scheme.clone(), scale, seed);
        cfg.epochs = recovery_epochs;
        cfg.fault = FaultConfig::edge_churn(0.1, fault_seed);
        let baseline = exp.run(&cfg);

        let mut chaos = cfg.clone();
        chaos.checkpoint_every = Some(ckpt_every);
        let dir =
            std::env::temp_dir().join(format!("figR-ck-{}-{}", std::process::id(), scheme.name()));
        std::fs::create_dir_all(&dir).expect("checkpoint dir");
        chaos.checkpoint_dir = Some(dir.to_string_lossy().into_owned());
        chaos.kill_at = Some(kill_at);
        let killed = exp.run(&chaos);
        assert!(killed.epochs() < recovery_epochs, "kill must truncate the run");

        chaos.resume = Some(dir.join("latest.fmrs").to_string_lossy().into_owned());
        chaos.kill_at = None;
        let resumed = exp.run(&chaos);
        let identical = baseline.to_csv() == resumed.to_csv();
        let r = &resumed.recovery;
        print_row(&[
            scheme.name(),
            format!("{}", resumed.epochs()),
            (killed.recovery.checkpoints_written + r.checkpoints_written).to_string(),
            fmt_mb(killed.recovery.checkpoint_bytes + r.checkpoint_bytes),
            r.checkpoints_loaded.to_string(),
            r.rounds_replayed.to_string(),
            if identical { "yes".into() } else { "NO".to_string() },
        ]);
        assert!(
            identical,
            "{}: killed-and-resumed run must be byte-identical to the \
             uninterrupted one",
            scheme.name()
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    // --- Divergence watchdog: NaN-injection rollback ------------------------
    //
    // A NaN-injecting Byzantine minority against the plain FedAvg mean
    // destroys the global model in one aggregation. With the watchdog armed,
    // the non-finite global trips a rollback to the last good snapshot, the
    // implicated sources are excluded and quarantined, and the run converges
    // on the surviving clients.
    println!("\n# Divergence watchdog: 30% NaN-injection adversary vs. plain FedAvg\n");
    print_header(&["watchdog", "final acc", "rollbacks", "replayed", "rounds"]);
    for armed in [false, true] {
        let mut cfg = standard_config(Scheme::FedAvg, scale, seed);
        cfg.epochs = recovery_epochs;
        cfg.agg_interval = 1;
        cfg.attack = fedmigr_net::AttackConfig::nan_inject(0.3, fault_seed);
        cfg.watchdog.enabled = armed;
        let m = exp.run(&cfg);
        assert_eq!(m.epochs(), recovery_epochs);
        print_row(&[
            if armed { "armed" } else { "off" }.to_string(),
            format!("{:.4}", m.final_accuracy()),
            m.recovery.rollbacks.to_string(),
            m.recovery.rounds_replayed.to_string(),
            m.epochs().to_string(),
        ]);
        if armed {
            assert!(m.recovery.rollbacks >= 1, "NaN divergence must trigger a rollback");
            assert!(
                m.records.iter().all(|r| r.train_loss.is_finite()),
                "post-rollback rounds must stay finite"
            );
        }
    }

    println!(
        "\nRecovery rows checkpoint every {ckpt_every} rounds under 10% churn; \
         the resumed CSV is asserted byte-identical to the uninterrupted run. \
         Watchdog rows pit AttackConfig::nan_inject(0.3) against the plain \
         FedAvg mean: unarmed, the first poisoned aggregation wrecks the \
         model; armed, the run rolls back, excludes the sources and recovers."
    );
}
