//! Fig. R (robustness): fault tolerance under edge churn. Sweeps the
//! dropout rate of the [`fedmigr_net::FaultConfig::edge_churn`] preset
//! across every scheme and reports final accuracy next to the fault
//! accounting (drop-epochs, retries, rerouted/cancelled migrations and
//! wasted bytes).
//!
//! Expected shape: all schemes degrade gracefully as churn grows; the
//! migration schemes reroute rather than cancel while links still have
//! live same-LAN relays, and FedMigr's liveness-aware oracle keeps its
//! cancelled-migration count below RandMigr's at the same dropout rate.
//!
//! Usage: `figR_fault_tolerance [--scale smoke|paper]`

use fedmigr_bench::{
    all_schemes, build_experiment, fmt_hours, fmt_mb, print_header, print_row, standard_config,
    Partition, Scale, Workload,
};
use fedmigr_net::{FaultConfig, TransportConfig};

fn main() {
    let _obs = fedmigr_bench::init_observability("figR_fault_tolerance");
    let scale = Scale::from_args();
    let seed = 61;
    let fault_seed = 17;
    let dropouts = [0.0, 0.1, 0.3, 0.5];
    let exp = build_experiment(Workload::C10, Partition::Shards, scale, seed);

    println!("# Fig. R: fault tolerance under edge churn (dropout sweep)\n");
    print_header(&[
        "scheme",
        "dropout",
        "final acc",
        "drop-epochs",
        "stale",
        "retries",
        "rerouted",
        "cancelled",
        "wasted (MB)",
        "time (h)",
    ]);

    for scheme in all_schemes(seed) {
        for &dropout in &dropouts {
            let mut cfg = standard_config(scheme.clone(), scale, seed);
            cfg.fault = if dropout == 0.0 {
                FaultConfig::none()
            } else {
                FaultConfig::edge_churn(dropout, fault_seed)
            };
            let m = exp.run(&cfg);
            assert_eq!(m.epochs(), cfg.epochs, "faults must never truncate a run");
            print_row(&[
                scheme.name(),
                format!("{dropout:.1}"),
                format!("{:.4}", m.final_accuracy()),
                m.fault.client_drops.to_string(),
                m.fault.stale_client_epochs.to_string(),
                m.fault.transfer_retries.to_string(),
                m.fault.rerouted_migrations.to_string(),
                m.fault.cancelled_migrations.to_string(),
                fmt_mb(m.fault.wasted_bytes),
                fmt_hours(m.sim_time()),
            ]);
        }
    }

    println!(
        "\nFault schedule seed {fault_seed}; dropout 0.0 rows run with the \
         fault layer disabled and must show all-zero fault counters."
    );

    // --- Flow transport under contention + burst loss -----------------------
    //
    // The event-driven transport replaces lockstep's nominal latencies with
    // simulated completion times: flows share links, time out, back off and
    // retransmit. Each scheme runs once on a clean flow network and once
    // under `with_network_stress` (flapping links, burst loss, bandwidth
    // collapse). Late uploads are folded into the next aggregation with a
    // staleness discount rather than stalling the round, so every run must
    // still complete all its epochs and land close to its clean-flow accuracy.
    let stress = 0.3;
    println!("\n# Flow transport: clean vs. network stress {stress}\n");
    print_header(&[
        "scheme",
        "condition",
        "final acc",
        "acc gap",
        "retransmits",
        "timeouts",
        "late",
        "stale folded",
        "stale dropped",
        "queue p99 (s)",
        "time (h)",
    ]);

    for scheme in all_schemes(seed) {
        let mut clean_acc = 0.0;
        for (cond, stressed) in [("clean", false), ("stress", true)] {
            let mut cfg = standard_config(scheme.clone(), scale, seed);
            cfg.transport = TransportConfig::flow(seed);
            if stressed {
                cfg.fault.seed = fault_seed;
                cfg.fault = cfg.fault.with_network_stress(stress);
            }
            let m = exp.run(&cfg);
            assert_eq!(m.epochs(), cfg.epochs, "flow transport must never stall a round");
            let gap = if stressed {
                clean_acc - m.final_accuracy()
            } else {
                clean_acc = m.final_accuracy();
                0.0
            };
            let t = m.transport_stats;
            print_row(&[
                scheme.name(),
                cond.to_string(),
                format!("{:.4}", m.final_accuracy()),
                format!("{gap:+.4}"),
                t.retransmits.to_string(),
                t.timeouts.to_string(),
                t.late_uploads.to_string(),
                t.stale_updates_folded.to_string(),
                t.stale_updates_dropped.to_string(),
                format!("{:.3}", t.queue_delay_p99),
                fmt_hours(m.sim_time()),
            ]);
            assert!(
                gap <= 0.02,
                "{}: stressed accuracy must stay within 2 points of the clean \
                 flow run (gap {gap:.4})",
                scheme.name()
            );
        }
    }

    println!(
        "\nFlow rows use --transport=flow (seed {seed}); stress rows add \
         with_network_stress({stress}) on fault seed {fault_seed}. Late uploads \
         are folded with a staleness discount, never stalled on."
    );
}
