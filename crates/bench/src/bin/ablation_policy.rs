//! Ablation (policy): compares FedMigr policy variants (pure oracle, pure
//! actor, blended) against RandMigr on the non-IID C10 workload, and prints
//! migration statistics to verify the policy path is exercised.

use fedmigr_bench::{build_experiment, standard_config, Partition, Scale, Workload};
use fedmigr_core::{FedMigrConfig, Scheme};

fn main() {
    let _obs = fedmigr_bench::init_observability("ablation_policy");
    let seeds = [17u64, 29, 43];
    let mut totals: Vec<(String, f64)> = Vec::new();
    for &seed in &seeds {
        let exp = build_experiment(Workload::C10, Partition::Shards, Scale::Smoke, seed);
        let mut run = |label: &str, scheme: Scheme| {
            let cfg = standard_config(scheme, Scale::Smoke, seed);
            let m = exp.run(&cfg);
            println!(
                "seed {seed} {label:>12}: best={:.1}% final={:.1}% moves(local={}, global={})",
                100.0 * m.best_accuracy(),
                100.0 * m.final_accuracy(),
                m.migrations_local,
                m.migrations_global,
            );
            if let Some(t) = totals.iter_mut().find(|(l, _)| l == label) {
                t.1 += m.best_accuracy();
            } else {
                totals.push((label.to_string(), m.best_accuracy()));
            }
        };
        run("RandMigr", Scheme::RandMigr);
        for rho in [1.0, 0.7] {
            let mut fc = FedMigrConfig::new(seed);
            fc.rho = rho;
            run(&format!("FedMigr r{rho}"), Scheme::FedMigr(fc));
        }
    }
    println!("-- means over {} seeds --", seeds.len());
    for (label, total) in totals {
        println!("{label:>12}: {:.1}%", 100.0 * total / seeds.len() as f64);
    }
}
