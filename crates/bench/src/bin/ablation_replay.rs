//! Ablation (replay): prioritized experience replay (ξ = 0.6, Eq. 26) vs
//! uniform replay (ξ = 0) inside FedMigr's EMPG agent, averaged over seeds.
//!
//! Usage: `ablation_replay [--scale smoke|paper]`

use fedmigr_bench::{
    build_experiment, print_header, print_row, standard_config, Partition, Scale, Workload,
};
use fedmigr_core::{FedMigrConfig, Scheme};

fn main() {
    let _obs = fedmigr_bench::init_observability("ablation_replay");
    let scale = Scale::from_args();
    let seeds = [17u64, 29, 43];

    println!("# Ablation: prioritized vs uniform experience replay\n");
    print_header(&["replay", "mean best accuracy (%)"]);
    for (label, xi) in [("prioritized (xi=0.6)", 0.6), ("uniform (xi=0)", 0.0)] {
        let mut total = 0.0;
        for &seed in &seeds {
            let exp = build_experiment(Workload::C10, Partition::Shards, scale, seed);
            let mut fc = FedMigrConfig::new(seed);
            fc.replay_xi = xi;
            let cfg = standard_config(Scheme::FedMigr(fc), scale, seed);
            total += exp.run(&cfg).best_accuracy();
        }
        print_row(&[label.to_string(), format!("{:.1}", 100.0 * total / seeds.len() as f64)]);
    }
}
