//! Fig. 11: bandwidth consumption and completion time of the five schemes
//! at different non-IID levels, for a fixed epoch count (CNN over the
//! CIFAR-10 stand-in, dominant-p partitions).
//!
//! Expected shape: resource use grows with the non-IID level for every
//! scheme, but FedMigr grows slowest and needs the least of both.
//!
//! Usage: `fig11_noniid_resources [--scale smoke|paper]`

use fedmigr_bench::{
    all_schemes, build_experiment_with_samples, fmt_mb, print_header, print_row, standard_config,
    Partition, Scale, Workload,
};

fn main() {
    let _obs = fedmigr_bench::init_observability("fig11_noniid_resources");
    let scale = Scale::from_args();
    let seed = 71;
    let levels = [0.2, 0.4, 0.6, 0.8];
    // Fixed accuracy target per level: resources are compared at equal
    // achievement, like the paper's fixed-epoch comparison at each level.
    let target: f64 = match scale {
        Scale::Smoke => 0.60,
        Scale::Paper => 0.70,
    };

    println!("# Fig. 11: traffic (MB) and time (s) to {:.0}% vs non-IID level\n", 100.0 * target);
    let mut header = vec!["dominant p".to_string()];
    for s in all_schemes(seed) {
        header.push(format!("{} MB", s.name()));
        header.push(format!("{} s", s.name()));
    }
    print_header(&header.iter().map(|s| s.as_str()).collect::<Vec<_>>());
    for &level in &levels {
        let exp = build_experiment_with_samples(
            Workload::C10,
            Partition::Dominant(level),
            scale,
            seed,
            Some(48),
        );
        let mut row = vec![format!("{level:.1}")];
        for scheme in all_schemes(seed) {
            let mut cfg = standard_config(scheme, scale, seed);
            cfg.epochs = scale.epochs() * 2;
            cfg.eval_interval = 5;
            cfg.target_accuracy = Some(target);
            let m = exp.run(&cfg);
            let at = m
                .records
                .iter()
                .find(|r| r.test_accuracy.is_some_and(|a| a >= target))
                .or(m.records.last())
                .expect("run produced records");
            row.push(fmt_mb(at.traffic.total()));
            row.push(format!("{:.0}", at.sim_time));
        }
        print_row(&row);
    }
}
