//! Fig. B (robustness): Byzantine attacks vs aggregation defenses. Sweeps
//! the attacker fraction of a seeded [`fedmigr_net::AttackConfig`] across
//! schemes and aggregation rules, reporting final accuracy, the retention
//! relative to the same configuration without attackers, and the defense
//! counters (rejected migrations, trimmed clients, clipped norms, NaN
//! screening).
//!
//! Expected shape: plain FedAvg aggregation degrades measurably once
//! sign-flipping attackers appear, while TrimmedMean/Krum retain >= 80% of
//! their no-attack accuracy; on the migration schemes the quarantine
//! rejects poisoned models at the receiver. With zero attackers every rule
//! reports zero rejected migrations and zero NaN screenings.
//!
//! Usage: `figB_byzantine [--smoke] [--scale smoke|paper]`
//! `--smoke` runs the reduced CI matrix (2 schemes x 3 rules x 2 attack
//! levels at short horizon); the default is the full sweep.

use std::collections::HashMap;

use fedmigr_bench::{
    build_experiment, print_header, print_row, standard_config, Partition, Scale, Workload,
};
use fedmigr_core::{Aggregator, Scheme};
use fedmigr_net::AttackConfig;

fn main() {
    let _obs = fedmigr_bench::init_observability("figB_byzantine");
    let smoke = std::env::args().any(|a| a == "--smoke");
    let scale = Scale::from_args();
    let seed = 61;
    let attack_seed = 23;

    let (schemes, aggregators, fractions, epochs) = if smoke {
        (
            vec![Scheme::FedAvg, Scheme::RandMigr],
            vec![Aggregator::FedAvg, Aggregator::trimmed_mean(), Aggregator::krum(2)],
            vec![0.0, 0.2],
            40,
        )
    } else {
        (
            vec![Scheme::FedAvg, Scheme::RandMigr, Scheme::fedmigr(seed)],
            vec![
                Aggregator::FedAvg,
                Aggregator::trimmed_mean(),
                Aggregator::CoordinateMedian,
                Aggregator::krum(2),
                Aggregator::multi_krum(2, 5),
                Aggregator::norm_clip(),
            ],
            vec![0.0, 0.2, 0.4],
            scale.epochs(),
        )
    };

    // Moderate heterogeneity (the test-bed's dominant-class layout) rather
    // than one-class shards: selection rules like Krum pick a *single*
    // client's model, which under extreme non-IID only knows one class —
    // that failure mode is real but would drown the attack signal this
    // figure is about.
    let exp = build_experiment(Workload::C10, Partition::Dominant(0.4), scale, seed);

    println!("# Fig. B: Byzantine sign-flip attack vs aggregation defenses\n");
    print_header(&[
        "scheme",
        "aggregator",
        "attackers",
        "final acc",
        "retention",
        "rejected",
        "trimmed",
        "clipped",
        "nan-up",
        "nan-batch",
    ]);

    // Accuracy of each (scheme, rule) pair without attackers, for the
    // retention column.
    let mut clean: HashMap<(String, &'static str), f64> = HashMap::new();

    for scheme in &schemes {
        for aggregator in &aggregators {
            for &frac in &fractions {
                let mut cfg = standard_config(scheme.clone(), scale, seed);
                cfg.epochs = epochs;
                cfg.attack = if frac == 0.0 {
                    AttackConfig::none()
                } else {
                    AttackConfig::sign_flip(frac, attack_seed)
                };
                cfg.aggregator = *aggregator;
                let m = exp.run(&cfg);
                assert_eq!(m.epochs(), cfg.epochs, "attacks must never truncate a run");
                let key = (scheme.name(), aggregator.name());
                if frac == 0.0 {
                    assert_eq!(
                        m.robust.rejected_migrations, 0,
                        "{}/{}: clean runs must reject nothing",
                        key.0, key.1
                    );
                    assert_eq!(m.robust.nan_uploads, 0, "{}/{}", key.0, key.1);
                    clean.insert(key.clone(), m.final_accuracy());
                }
                let retention = m.final_accuracy() / clean[&key].max(1e-9);
                print_row(&[
                    key.0.clone(),
                    key.1.to_string(),
                    format!("{:.0}%", 100.0 * frac),
                    format!("{:.4}", m.final_accuracy()),
                    format!("{:.2}", retention),
                    m.robust.rejected_migrations.to_string(),
                    m.robust.trimmed_clients.to_string(),
                    m.robust.clipped_norms.to_string(),
                    m.robust.nan_uploads.to_string(),
                    m.robust.nan_batches.to_string(),
                ]);
            }
        }
    }

    println!(
        "\nAttack seed {attack_seed} (sign-flip); retention is final accuracy \
         relative to the same scheme x rule with 0% attackers. Robust rules \
         trim honest outliers too, so `trimmed` > 0 is expected even at 0%."
    );
}
