//! Compares a `fedmigr_perf` report against the checked-in baseline and
//! gates CI on performance regressions.
//!
//! ```text
//! fedmigr_perf_diff <baseline.json> <current.json> \
//!     [--max-ratio X] [--noise-floor-ns N]
//! ```
//!
//! Exit codes match `fedmigr_diff`: 0 clean, 1 when any benchmark's median
//! slowed past `--max-ratio` (default 1.6×) or vanished, 2 on usage/parse
//! errors. Medians below the noise floor on both sides are never flagged.

use fedmigr_bench::perf::{diff_reports, PerfReport, PerfTolerances};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    const VALUE_FLAGS: [&str; 2] = ["--max-ratio", "--noise-floor-ns"];
    let mut paths: Vec<&String> = Vec::new();
    let mut i = 1;
    while i < args.len() {
        if VALUE_FLAGS.contains(&args[i].as_str()) {
            i += 2; // skip the flag's value so it is not mistaken for a path
        } else {
            paths.push(&args[i]);
            i += 1;
        }
    }
    let [baseline_path, current_path] = paths[..] else {
        eprintln!(
            "usage: fedmigr_perf_diff <baseline.json> <current.json> [--max-ratio X] \
             [--noise-floor-ns N]"
        );
        std::process::exit(2);
    };

    let mut tol = PerfTolerances::default();
    if let Some(w) = args.windows(2).find(|w| w[0] == "--max-ratio") {
        match w[1].parse::<f64>() {
            Ok(v) if v >= 1.0 => tol.max_ratio = v,
            _ => {
                eprintln!("error: --max-ratio wants a number >= 1.0, got {:?}", w[1]);
                std::process::exit(2);
            }
        }
    }
    if let Some(w) = args.windows(2).find(|w| w[0] == "--noise-floor-ns") {
        match w[1].parse::<u64>() {
            Ok(v) => tol.noise_floor_ns = v,
            _ => {
                eprintln!("error: --noise-floor-ns wants an integer, got {:?}", w[1]);
                std::process::exit(2);
            }
        }
    }

    let baseline = load(baseline_path);
    let current = load(current_path);

    match diff_reports(&baseline, &current, &tol) {
        Ok(regs) if regs.is_empty() => {
            println!(
                "OK: {} benchmarks within {:.2}x of baseline ({} compared)",
                current.benchmarks.len(),
                tol.max_ratio,
                baseline.benchmarks.len(),
            );
        }
        Ok(regs) => {
            eprintln!("FAIL: {} benchmark(s) regressed past {:.2}x:", regs.len(), tol.max_ratio);
            for r in &regs {
                eprintln!("  {}", r.describe());
            }
            std::process::exit(1);
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    }
}

fn load(path: &str) -> PerfReport {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("error: cannot read {path}: {e}");
        std::process::exit(2);
    });
    PerfReport::parse(&text).unwrap_or_else(|e| {
        eprintln!("error: {path}: {e}");
        std::process::exit(2);
    })
}
