//! Fig. 8: communication frequency of C2C links by speed class. FedMigr's
//! λ-weighted cost term makes the agent prefer fast links for migration.
//!
//! Expected shape: fast links carry the most migrations, slow links the
//! fewest (per-link average).
//!
//! Usage: `fig8_link_speed [--scale smoke|paper] [--timeline-out <path>]`
//!
//! `--timeline-out` streams the round timeline of the *contention* run
//! (the flow-transport appendix) for `fedmigr_netview` critical-path and
//! makespan-decomposition analysis — the paper-adjacent workload behind
//! the numbers in EXPERIMENTS.md's network-observability appendix.

use fedmigr_bench::{
    build_experiment, print_header, print_row, standard_config, Partition, Scale, Workload,
};
use fedmigr_core::Scheme;
use fedmigr_net::{LinkClass, TransportConfig};

fn main() {
    let _obs = fedmigr_bench::init_observability("fig8_link_speed");
    let scale = Scale::from_args();
    let seed = 53;
    let exp = build_experiment(Workload::C10, Partition::Shards, scale, seed);
    let k = exp.num_clients();

    let mut cfg = standard_config(Scheme::fedmigr(seed), scale, seed);
    // Emphasize link awareness as in the paper's Fig. 8 experiment.
    if let Scheme::FedMigr(fc) = &mut cfg.scheme {
        fc.lambda = 0.3;
    }
    let m = exp.run(&cfg);

    let class_idx = |c: LinkClass| match c {
        LinkClass::Fast => 0,
        LinkClass::Moderate => 1,
        LinkClass::Slow => 2,
    };
    let count_by_class = |m: &fedmigr_core::RunMetrics| {
        let mut by_class = [(0u64, 0u64); 3]; // (migrations, links)
        for i in 0..k {
            for j in 0..k {
                if i == j {
                    continue;
                }
                let idx = class_idx(exp.topology().link_class(i, j));
                by_class[idx].0 += m.link_migrations[i * k + j] as u64;
                by_class[idx].1 += 1;
            }
        }
        by_class
    };

    println!("# Fig. 8: migration frequency by C2C link speed class\n");
    print_header(&["link class", "links", "migrations", "migrations per link"]);
    for (name, (migr, links)) in ["fast", "moderate", "slow"].iter().zip(count_by_class(&m)) {
        print_row(&[
            name.to_string(),
            links.to_string(),
            migr.to_string(),
            format!("{:.2}", migr as f64 / links.max(1) as f64),
        ]);
    }

    // Per-link detail for the 15 busiest links (the paper samples 15).
    let mut links: Vec<(usize, usize, u32)> = (0..k)
        .flat_map(|i| (0..k).map(move |j| (i, j)))
        .filter(|&(i, j)| i != j)
        .map(|(i, j)| (i, j, m.link_migrations[i * k + j]))
        .collect();
    links.sort_by_key(|&(_, _, c)| std::cmp::Reverse(c));
    println!("\nBusiest 15 links:");
    print_header(&["link", "class", "migrations"]);
    for (i, j, c) in links.into_iter().take(15) {
        print_row(&[
            format!("{i}->{j}"),
            format!("{:?}", exp.topology().link_class(i, j)),
            c.to_string(),
        ]);
    }

    // --- Appendix: Fig. 8 under contention -----------------------------------
    //
    // Re-run the same experiment on the event-driven flow transport: migration
    // waves now share links and queue behind each other, so completion times
    // (and hence the λ-weighted link cost the agent sees) depend on contention.
    // The qualitative shape must survive — fast links still carry the most
    // migrations per link — while wall-clock time inflates with queueing.
    let mut flow_cfg = standard_config(Scheme::fedmigr(seed), scale, seed);
    if let Scheme::FedMigr(fc) = &mut flow_cfg.scheme {
        fc.lambda = 0.3;
    }
    flow_cfg.transport = TransportConfig::flow(seed);
    let argv: Vec<String> = std::env::args().collect();
    if let Some(w) = argv.windows(2).find(|w| w[0] == "--timeline-out") {
        flow_cfg.diag.timeline_out = Some(w[1].clone());
    }
    let mf = exp.run(&flow_cfg);
    assert_eq!(mf.epochs(), flow_cfg.epochs, "flow run must complete");

    println!("\n# Appendix: same experiment under flow-transport contention\n");
    print_header(&["link class", "lockstep migr/link", "flow migr/link"]);
    let lock_by_class = count_by_class(&m);
    let flow_by_class = count_by_class(&mf);
    for (name, (lock, flow)) in
        ["fast", "moderate", "slow"].iter().zip(lock_by_class.iter().zip(flow_by_class))
    {
        print_row(&[
            name.to_string(),
            format!("{:.2}", lock.0 as f64 / lock.1.max(1) as f64),
            format!("{:.2}", flow.0 as f64 / flow.1.max(1) as f64),
        ]);
    }
    let t = mf.transport_stats;
    println!(
        "\nlockstep time {:.1}s vs. flow time {:.1}s; {} flows ({} failed), \
         {} retransmits, queue delay p50 {:.3}s / p99 {:.3}s, link util {:.0}%",
        m.sim_time(),
        mf.sim_time(),
        t.flows,
        t.failed_flows,
        t.retransmits,
        t.queue_delay_p50,
        t.queue_delay_p99,
        t.mean_link_utilization * 100.0,
    );
}
