//! Fig. 8: communication frequency of C2C links by speed class. FedMigr's
//! λ-weighted cost term makes the agent prefer fast links for migration.
//!
//! Expected shape: fast links carry the most migrations, slow links the
//! fewest (per-link average).
//!
//! Usage: `fig8_link_speed [--scale smoke|paper]`

use fedmigr_bench::{
    build_experiment, print_header, print_row, standard_config, Partition, Scale, Workload,
};
use fedmigr_core::Scheme;
use fedmigr_net::LinkClass;

fn main() {
    let _obs = fedmigr_bench::init_observability("fig8_link_speed");
    let scale = Scale::from_args();
    let seed = 53;
    let exp = build_experiment(Workload::C10, Partition::Shards, scale, seed);
    let k = exp.num_clients();

    let mut cfg = standard_config(Scheme::fedmigr(seed), scale, seed);
    // Emphasize link awareness as in the paper's Fig. 8 experiment.
    if let Scheme::FedMigr(fc) = &mut cfg.scheme {
        fc.lambda = 0.3;
    }
    let m = exp.run(&cfg);

    let mut count_by_class = [(0u64, 0u64); 3]; // (migrations, links)
    let class_idx = |c: LinkClass| match c {
        LinkClass::Fast => 0,
        LinkClass::Moderate => 1,
        LinkClass::Slow => 2,
    };
    for i in 0..k {
        for j in 0..k {
            if i == j {
                continue;
            }
            let idx = class_idx(exp.topology().link_class(i, j));
            count_by_class[idx].0 += m.link_migrations[i * k + j] as u64;
            count_by_class[idx].1 += 1;
        }
    }

    println!("# Fig. 8: migration frequency by C2C link speed class\n");
    print_header(&["link class", "links", "migrations", "migrations per link"]);
    for (name, (migr, links)) in ["fast", "moderate", "slow"].iter().zip(count_by_class) {
        print_row(&[
            name.to_string(),
            links.to_string(),
            migr.to_string(),
            format!("{:.2}", migr as f64 / links.max(1) as f64),
        ]);
    }

    // Per-link detail for the 15 busiest links (the paper samples 15).
    let mut links: Vec<(usize, usize, u32)> = (0..k)
        .flat_map(|i| (0..k).map(move |j| (i, j)))
        .filter(|&(i, j)| i != j)
        .map(|(i, j)| (i, j, m.link_migrations[i * k + j]))
        .collect();
    links.sort_by_key(|&(_, _, c)| std::cmp::Reverse(c));
    println!("\nBusiest 15 links:");
    print_header(&["link", "class", "migrations"]);
    for (i, j, c) in links.into_iter().take(15) {
        print_row(&[
            format!("{i}->{j}"),
            format!("{:?}", exp.topology().link_class(i, j)),
            c.to_string(),
        ]);
    }
}
