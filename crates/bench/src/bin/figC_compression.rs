//! Fig. C (communication compression): wire codecs vs schemes. Sweeps the
//! [`fedmigr_compress::CodecConfig`] variants (uniform int8/int4 with error
//! feedback, stochastic rounding, top-k sparsification and the composed
//! sparsify-then-quantize codec) across the paper's schemes, reporting
//! final accuracy, the accuracy delta vs the identity codec, total wire
//! traffic, the compression ratio and the bytes the codec saved.
//!
//! Expected shape: int8 + error feedback shrinks every scheme's traffic by
//! ~3.9x at near-zero accuracy cost; int4 and aggressive top-k trade more
//! accuracy for deeper savings; the identity codec reproduces the
//! uncompressed byte totals exactly. Because every transfer in the runner
//! charges whole encoded models, each per-path byte total is an exact
//! multiple of the codec's encoded size — asserted below.
//!
//! Usage: `figC_compression [--smoke] [--scale smoke|paper]`
//! `--smoke` runs the reduced CI matrix (2 schemes x 3 codecs at short
//! horizon); the default is the full sweep.

use std::collections::HashMap;

use fedmigr_bench::{
    build_experiment, fmt_mb, print_header, print_row, standard_config, Partition, Scale, Workload,
};
use fedmigr_compress::{Codec, CodecConfig, WireCodec};
use fedmigr_core::Scheme;

fn main() {
    let _obs = fedmigr_bench::init_observability("figC_compression");
    let smoke = std::env::args().any(|a| a == "--smoke");
    let scale = Scale::from_args();
    let seed = 71;

    let (schemes, codecs, epochs) = if smoke {
        (
            vec![Scheme::FedAvg, Scheme::RandMigr],
            vec![CodecConfig::Identity, CodecConfig::int8(), CodecConfig::topk_int8(0.25)],
            40,
        )
    } else {
        (
            vec![
                Scheme::FedAvg,
                Scheme::FedSwap,
                Scheme::RandMigr,
                Scheme::fedprox(),
                Scheme::fedmigr(seed),
            ],
            vec![
                CodecConfig::Identity,
                CodecConfig::int8(),
                CodecConfig::int8().without_feedback(),
                CodecConfig::int4(),
                CodecConfig::stochastic8(seed),
                CodecConfig::topk(0.25),
                CodecConfig::topk_int8(0.25),
            ],
            scale.epochs(),
        )
    };

    // Moderate heterogeneity: shard partitioning would make the accuracy
    // curve so noisy between seeds that codec-induced deltas (a few tenths
    // of a point for int8) drown; the dominant-class layout keeps runs
    // non-IID while leaving the compression signal legible.
    let exp = build_experiment(Workload::C10, Partition::Dominant(0.4), scale, seed);
    let num_params = Workload::C10.model(seed).num_params();

    println!("# Fig. C: wire compression vs schemes (codec sweep)\n");
    print_header(&[
        "scheme",
        "codec",
        "final acc",
        "acc delta",
        "wire MB",
        "saved MB",
        "ratio",
        "mean MSE",
    ]);

    // Accuracy of each scheme under the identity codec, for the delta
    // column and the lossy-accuracy acceptance check.
    let mut identity_acc: HashMap<String, f64> = HashMap::new();

    for scheme in &schemes {
        for codec_cfg in &codecs {
            let mut cfg = standard_config(scheme.clone(), scale, seed);
            cfg.epochs = epochs;
            cfg.codec = codec_cfg.clone();
            let m = exp.run(&cfg);
            assert_eq!(m.epochs(), cfg.epochs, "compression must never truncate a run");

            // Every meter charge is a whole number of encoded models, so
            // each per-path total divides exactly by the codec's size.
            let per_transfer = Codec::from_config(codec_cfg).encoded_size(num_params);
            let t = m.traffic();
            for (path, bytes) in
                [("c2s", t.c2s), ("c2c_local", t.c2c_local), ("c2c_global", t.c2c_global)]
            {
                assert_eq!(
                    bytes % per_transfer,
                    0,
                    "{}/{}: {path} bytes {bytes} not a multiple of the encoded size {per_transfer}",
                    scheme.name(),
                    m.codec
                );
            }

            let acc = m.final_accuracy();
            if *codec_cfg == CodecConfig::Identity {
                assert_eq!(m.bytes_saved(), 0, "identity must save nothing");
                identity_acc.insert(scheme.name(), acc);
            }
            let baseline = identity_acc[&scheme.name()];
            if *codec_cfg == CodecConfig::int8() {
                // The headline acceptance bar: int8 + error feedback stays
                // within 2 accuracy points of uncompressed at >= 3x savings.
                assert!(
                    baseline - acc <= 0.02,
                    "{}: int8+ef accuracy {acc:.4} fell more than 2 points below identity \
                     {baseline:.4}",
                    scheme.name()
                );
                assert!(
                    m.compression.ratio() >= 3.0,
                    "{}: int8+ef ratio {:.2} below 3x",
                    scheme.name(),
                    m.compression.ratio()
                );
            }
            print_row(&[
                scheme.name(),
                m.codec.clone(),
                format!("{acc:.4}"),
                format!("{:+.4}", acc - baseline),
                fmt_mb(t.total()),
                fmt_mb(m.bytes_saved()),
                format!("{:.2}x", m.compression.ratio()),
                format!("{:.2e}", m.compression.mean_mse()),
            ]);
        }
    }

    println!(
        "\nacc delta is final accuracy relative to the same scheme under the \
         identity codec (seed {seed}); ratio is uncompressed/compressed bytes \
         per encode; saved MB is cumulative wire bytes avoided. Every per-path \
         byte total divided exactly by its codec's encoded model size."
    );
}
