//! Fig. 3: test accuracy of model training under three fixed migration
//! strategies — cross-LAN, random and within-LAN — with the clients of each
//! LAN sharing a data distribution (AlexNet on CIFAR-10 in the paper).
//!
//! Expected shape: cross-LAN > random > within-LAN, because migrating
//! across LANs is the only way a model sees new label distributions.
//!
//! Usage: `fig3_strategies [--scale smoke|paper]`

use fedmigr_bench::{print_header, print_row, standard_config, Scale};
use fedmigr_core::{Experiment, MigrationStrategy, Scheme};
use fedmigr_data::{partition_lan_shards, SyntheticConfig, SyntheticDataset};
use fedmigr_net::{ClientCompute, Topology, TopologyConfig};
use fedmigr_nn::zoo::{self, NetScale};

fn main() {
    let _obs = fedmigr_bench::init_observability("fig3_strategies");
    let scale = Scale::from_args();
    let seed = 23;
    let lan_sizes = [4usize, 3, 3];
    let data =
        SyntheticDataset::generate(&SyntheticConfig::c10_like(scale.train_per_class(), seed));
    let parts = partition_lan_shards(&data.train, &lan_sizes, seed);
    let exp = Experiment::new(
        data.train,
        data.test,
        parts,
        Topology::new(&TopologyConfig::c10_sim(seed)),
        ClientCompute::testbed_mix(10),
        zoo::alexnet_lite(3, 8, NetScale::Small, seed),
    );

    println!("# Fig. 3: accuracy under fixed migration strategies (LAN-shared data)\n");
    let strategies =
        [MigrationStrategy::CrossLan, MigrationStrategy::Random, MigrationStrategy::WithinLan];
    let mut curves = Vec::new();
    for strategy in strategies {
        let cfg = standard_config(Scheme::Fixed(strategy), scale, seed);
        let m = exp.run(&cfg);
        curves.push((strategy.name(), m));
    }
    print_header(&["epoch", "cross-LAN", "random", "within-LAN"]);
    let epochs: Vec<usize> =
        curves[0].1.records.iter().filter(|r| r.test_accuracy.is_some()).map(|r| r.epoch).collect();
    for e in epochs {
        let row: Vec<String> = std::iter::once(e.to_string())
            .chain(curves.iter().map(|(_, m)| {
                m.records
                    .iter()
                    .find(|r| r.epoch == e)
                    .and_then(|r| r.test_accuracy)
                    .map(|a| format!("{:.1}", 100.0 * a))
                    .unwrap_or_default()
            }))
            .collect();
        print_row(&row);
    }
    println!();
    for (name, m) in &curves {
        println!("{name:>11}: best accuracy {:.1}%", 100.0 * m.best_accuracy());
    }
}
