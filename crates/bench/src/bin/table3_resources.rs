//! Table III: resource consumption — total traffic and completion time —
//! of the five schemes under the non-IID setting, measured when each run
//! first reaches a target accuracy (falling back to end-of-run totals).
//!
//! Expected shape: FedMigr and RandMigr consume far less traffic/time than
//! FedSwap/FedProx/FedAvg, because C2C migration replaces most C2S rounds;
//! FedMigr needs less time than RandMigr (it prefers fast links and
//! converges in fewer epochs).
//!
//! Usage: `table3_resources [--scale smoke|paper] [--target 0.70]`

use fedmigr_bench::{
    all_schemes, build_experiment, fmt_mb, print_header, print_row, standard_config, Partition,
    Scale, Workload,
};

fn main() {
    let _obs = fedmigr_bench::init_observability("table3_resources");
    let scale = Scale::from_args();
    let args: Vec<String> = std::env::args().collect();
    let target: f64 = args
        .windows(2)
        .find(|w| w[0] == "--target")
        .map(|w| w[1].parse().expect("bad target"))
        .unwrap_or(0.70);
    let seed = 61;
    let exp = build_experiment(Workload::C10, Partition::Shards, scale, seed);

    println!("# Table III: traffic and time to reach {:.0}% accuracy (non-IID)\n", 100.0 * target);
    print_header(&["Scheme", "Traffic (MB)", "  of which C2S (MB)", "Time (s)", "Reached"]);
    for scheme in all_schemes(seed) {
        let mut cfg = standard_config(scheme.clone(), scale, seed);
        cfg.epochs = scale.epochs() * 2;
        cfg.eval_interval = 5;
        cfg.target_accuracy = Some(target);
        let m = exp.run(&cfg);
        let at = m
            .records
            .iter()
            .find(|r| r.test_accuracy.is_some_and(|a| a >= target))
            .or(m.records.last())
            .expect("run produced records");
        print_row(&[
            scheme.name(),
            fmt_mb(at.traffic.total()),
            fmt_mb(at.traffic.c2s),
            format!("{:.0}", at.sim_time),
            if m.target_reached {
                "yes".into()
            } else {
                format!("no (best {:.1}%)", 100.0 * m.best_accuracy())
            },
        ]);
    }
}
