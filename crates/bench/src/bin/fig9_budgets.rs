//! Fig. 9: test accuracy under bandwidth and completion-time budgets. Each
//! scheme runs once without constraints; the curves report the best
//! accuracy reached within each budget prefix.
//!
//! Expected shape: FedMigr dominates at every budget; the gap is widest at
//! tight budgets (migration traffic is cheap, C2S traffic is not).
//!
//! Usage: `fig9_budgets [--scale smoke|paper]`

use fedmigr_bench::{
    all_schemes, build_experiment, print_header, print_row, standard_config, Partition, Scale,
    Workload,
};

fn main() {
    let _obs = fedmigr_bench::init_observability("fig9_budgets");
    let scale = Scale::from_args();
    let seed = 59;
    let exp = build_experiment(Workload::C10, Partition::Shards, scale, seed);

    let runs: Vec<_> = all_schemes(seed)
        .into_iter()
        .map(|scheme| {
            let cfg = standard_config(scheme.clone(), scale, seed);
            (scheme.name(), exp.run(&cfg))
        })
        .collect();

    // Budget grids spanning the observed ranges.
    let max_traffic = runs.iter().map(|(_, m)| m.traffic().total()).max().unwrap_or(0);
    let max_time = runs.iter().map(|(_, m)| m.sim_time()).fold(0.0f64, f64::max);

    println!("# Fig. 9 (left): accuracy vs bandwidth budget\n");
    let mut header = vec!["budget (MB)".to_string()];
    header.extend(runs.iter().map(|(n, _)| n.clone()));
    print_header(&header.iter().map(|s| s.as_str()).collect::<Vec<_>>());
    for frac in [0.1, 0.2, 0.4, 0.6, 0.8, 1.0] {
        let budget = (max_traffic as f64 * frac) as u64;
        let row: Vec<String> = std::iter::once(format!("{:.1}", budget as f64 / 1e6))
            .chain(
                runs.iter()
                    .map(|(_, m)| format!("{:.1}", 100.0 * m.accuracy_within_traffic(budget))),
            )
            .collect();
        print_row(&row);
    }

    println!("\n# Fig. 9 (right): accuracy vs completion-time budget\n");
    let mut time_header = vec!["budget (s)".to_string()];
    time_header.extend(runs.iter().map(|(n, _)| n.clone()));
    print_header(&time_header.iter().map(|s| s.as_str()).collect::<Vec<_>>());
    for frac in [0.1, 0.2, 0.4, 0.6, 0.8, 1.0] {
        let budget = max_time * frac;
        let row: Vec<String> = std::iter::once(format!("{budget:.0} s"))
            .chain(
                runs.iter().map(|(_, m)| format!("{:.1}", 100.0 * m.accuracy_within_time(budget))),
            )
            .collect();
        print_row(&row);
    }
}
