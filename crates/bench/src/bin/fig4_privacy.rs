//! Fig. 4: training accuracy of FedMigr under (ε, δ)-LDP with different
//! privacy budgets. The paper's ε ∈ {∞, 150, 100} applies to multi-million
//! parameter CNNs; the Gaussian-mechanism noise scale is σ = C√(2ln1.25/δ)/ε
//! per *coordinate*, so for our ~25k-parameter models the same
//! noise-to-signal regime ("slight degradation") corresponds to
//! proportionally larger ε. The default budgets below are chosen to land in
//! that regime; pass `--eps a,b` to override.
//!
//! Expected shape: accuracy degrades slightly as ε shrinks.
//!
//! Usage: `fig4_privacy [--scale smoke|paper] [--eps 5000,3000]`

use fedmigr_bench::{
    build_experiment, print_header, print_row, standard_config, Partition, Scale, Workload,
};
use fedmigr_core::{DpConfig, Scheme};

fn main() {
    let _obs = fedmigr_bench::init_observability("fig4_privacy");
    let scale = Scale::from_args();
    let args: Vec<String> = std::env::args().collect();
    let eps_list: Vec<f64> = args
        .windows(2)
        .find(|w| w[0] == "--eps")
        .map(|w| w[1].split(',').map(|x| x.parse().expect("bad eps")).collect())
        .unwrap_or_else(|| vec![5000.0, 3000.0]);
    let seed = 37;
    let exp = build_experiment(Workload::C10, Partition::Shards, scale, seed);

    println!("# Fig. 4: FedMigr accuracy under LDP privacy budgets\n");
    let mut runs = Vec::new();
    {
        let cfg = standard_config(Scheme::fedmigr(seed), scale, seed);
        runs.push(("eps=inf".to_string(), exp.run(&cfg)));
    }
    for &eps in &eps_list {
        let mut cfg = standard_config(Scheme::fedmigr(seed), scale, seed);
        cfg.dp = Some(DpConfig::with_epsilon(eps));
        runs.push((format!("eps={eps}"), exp.run(&cfg)));
    }

    let mut header: Vec<&str> = vec!["epoch"];
    for (label, _) in &runs {
        header.push(label);
    }
    print_header(&header);
    let epochs: Vec<usize> =
        runs[0].1.records.iter().filter(|r| r.test_accuracy.is_some()).map(|r| r.epoch).collect();
    for e in epochs {
        let row: Vec<String> = std::iter::once(e.to_string())
            .chain(runs.iter().map(|(_, m)| {
                m.records
                    .iter()
                    .find(|r| r.epoch == e)
                    .and_then(|r| r.test_accuracy)
                    .map(|a| format!("{:.1}", 100.0 * a))
                    .unwrap_or_default()
            }))
            .collect();
        print_row(&row);
    }
    println!();
    for (label, m) in &runs {
        println!("{label:>10}: best accuracy {:.1}%", 100.0 * m.best_accuracy());
    }
}
