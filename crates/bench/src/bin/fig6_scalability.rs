//! Fig. 6: scalability of decision making — wall-clock time to produce one
//! round's migration policy by (a) solving a convex optimization problem
//! (S-COP, the relaxed FLMM via mirror descent at solver-grade iteration
//! counts) vs (b) DRL inference (one actor forward pass per client plus the
//! greedy assignment), as the number of clients grows from 10 to 100.
//!
//! Expected shape: DRL inference time grows far more slowly than S-COP.
//!
//! Usage: `fig6_scalability [--reps 20]`

use std::time::Instant;

use fedmigr_bench::{print_header, print_row};
use fedmigr_core::MigrationPlan;
use fedmigr_drl::qp::FlmmRelaxation;
use fedmigr_drl::{AgentConfig, DdpgAgent, MigrationState};

fn main() {
    let _obs = fedmigr_bench::init_observability("fig6_scalability");
    let args: Vec<String> = std::env::args().collect();
    let reps: usize = args
        .windows(2)
        .find(|w| w[0] == "--reps")
        .map(|w| w[1].parse().expect("bad reps"))
        .unwrap_or(20);

    println!("# Fig. 6: decision-making time vs number of clients\n");
    print_header(&["clients", "S-COP (ms)", "DRL inference (ms)", "speedup"]);
    for k in [10usize, 20, 40, 60, 80, 100] {
        // A synthetic but structured instance: block distance pattern.
        let benefit: Vec<Vec<f64>> = (0..k)
            .map(|i| {
                (0..k).map(|j| if i == j { 0.0 } else { ((i + j) % 7) as f64 / 3.5 }).collect()
            })
            .collect();
        let cost: Vec<Vec<f64>> = (0..k)
            .map(|i| (0..k).map(|j| ((i * 31 + j * 17) % 10) as f64 / 10.0).collect())
            .collect();
        let relax = FlmmRelaxation { benefit: benefit.clone(), cost, lambda: 0.1, entropy: 0.05 };

        // (a) S-COP: solver-grade iteration count.
        let t0 = Instant::now();
        for _ in 0..reps {
            let p = relax.solve(300, 0.2);
            std::hint::black_box(FlmmRelaxation::round(&p));
        }
        let scop_ms = t0.elapsed().as_secs_f64() * 1000.0 / reps as f64;

        // (b) DRL inference: K actor forwards + greedy assignment.
        let featurizer = MigrationState::new(k);
        let mut agent = DdpgAgent::new(AgentConfig::new(featurizer.dim(), k, 1));
        let states: Vec<Vec<f32>> =
            (0..k).map(|i| featurizer.build(0.5, 1.0, -0.01, 0.9, 0.9, &benefit[i])).collect();
        let t0 = Instant::now();
        for _ in 0..reps {
            let scores: Vec<Vec<f64>> = states
                .iter()
                .map(|s| agent.action_probs(s).iter().map(|&p| p as f64).collect())
                .collect();
            std::hint::black_box(MigrationPlan::greedy_assignment(&scores));
        }
        let drl_ms = t0.elapsed().as_secs_f64() * 1000.0 / reps as f64;

        print_row(&[
            k.to_string(),
            format!("{scop_ms:.2}"),
            format!("{drl_ms:.2}"),
            format!("{:.1}x", scop_ms / drl_ms),
        ]);
    }
}
