//! Fig. 6: scalability of decision making — wall-clock time to produce one
//! round's migration policy by (a) solving a convex optimization problem
//! (S-COP, the relaxed FLMM via mirror descent at solver-grade iteration
//! counts) vs (b) DRL inference (one actor forward pass per client plus the
//! greedy assignment), as the number of clients grows from 10 to 100.
//!
//! Expected shape: DRL inference time grows far more slowly than S-COP.
//!
//! The fleet appendix extends the chart past the paper's axis: a dense
//! per-pair planner is quadratic in the participant count and falls over by
//! a few thousand clients, while the factored planner (LAN profiles +
//! hash-sampled top-M shortlists) stays near-linear to 50k+. A final
//! end-to-end section runs the lazy sharded fleet runner at growing `K`
//! and reports rounds/sec and peak RSS next to a dense 1000-client
//! baseline — the memory contract is that fleet peak RSS tracks the cohort,
//! not `K`.
//!
//! Usage: `fig6_scalability [--reps 20]`

use std::time::Instant;

use fedmigr_bench::{print_header, print_row};
use fedmigr_core::{Experiment, FleetExperiment, FleetOptions, MigrationPlan, RunConfig, Scheme};
use fedmigr_data::{partition_shards, SyntheticConfig, SyntheticDataset};
use fedmigr_drl::qp::FlmmRelaxation;
use fedmigr_drl::{AgentConfig, DdpgAgent, MigrationState};
use fedmigr_fleet::{plan_migrations, FleetPlannerConfig, LanProfile};
use fedmigr_net::{ClientCompute, Topology, TopologyConfig};
use fedmigr_nn::zoo::{self, NetScale};

fn main() {
    let _obs = fedmigr_bench::init_observability("fig6_scalability");
    let args: Vec<String> = std::env::args().collect();
    let reps: usize = args
        .windows(2)
        .find(|w| w[0] == "--reps")
        .map(|w| w[1].parse().expect("bad reps"))
        .unwrap_or(20);

    scop_vs_drl(reps);
    planner_scaling();
    fleet_end_to_end();
}

fn scop_vs_drl(reps: usize) {
    println!("# Fig. 6: decision-making time vs number of clients\n");
    print_header(&["clients", "S-COP (ms)", "DRL inference (ms)", "speedup"]);
    for k in [10usize, 20, 40, 60, 80, 100] {
        // A synthetic but structured instance: block distance pattern.
        let benefit: Vec<Vec<f64>> = (0..k)
            .map(|i| {
                (0..k).map(|j| if i == j { 0.0 } else { ((i + j) % 7) as f64 / 3.5 }).collect()
            })
            .collect();
        let cost: Vec<Vec<f64>> = (0..k)
            .map(|i| (0..k).map(|j| ((i * 31 + j * 17) % 10) as f64 / 10.0).collect())
            .collect();
        let relax = FlmmRelaxation { benefit: benefit.clone(), cost, lambda: 0.1, entropy: 0.05 };

        // (a) S-COP: solver-grade iteration count.
        let t0 = Instant::now();
        for _ in 0..reps {
            let p = relax.solve(300, 0.2);
            std::hint::black_box(FlmmRelaxation::round(&p));
        }
        let scop_ms = t0.elapsed().as_secs_f64() * 1000.0 / reps as f64;

        // (b) DRL inference: K actor forwards + greedy assignment.
        let featurizer = MigrationState::new(k);
        let mut agent = DdpgAgent::new(AgentConfig::new(featurizer.dim(), k, 1));
        let states: Vec<Vec<f32>> =
            (0..k).map(|i| featurizer.build(0.5, 1.0, -0.01, 0.9, 0.9, &benefit[i])).collect();
        let t0 = Instant::now();
        for _ in 0..reps {
            let scores: Vec<Vec<f64>> = states
                .iter()
                .map(|s| agent.action_probs(s).iter().map(|&p| p as f64).collect())
                .collect();
            std::hint::black_box(MigrationPlan::greedy_assignment(&scores));
        }
        let drl_ms = t0.elapsed().as_secs_f64() * 1000.0 / reps as f64;

        print_row(&[
            k.to_string(),
            format!("{scop_ms:.2}"),
            format!("{drl_ms:.2}"),
            format!("{:.1}x", scop_ms / drl_ms),
        ]);
    }
}

/// Deterministic per-client label marginal over `classes` classes.
fn synth_marginal(i: usize, classes: usize) -> Vec<f32> {
    let mut m = vec![0.05f32; classes];
    m[i % classes] += 0.6;
    m[(i / classes) % classes] += 0.3;
    let sum: f32 = m.iter().sum();
    m.iter().map(|v| v / sum).collect()
}

/// Dense vs factored planner decision time over a growing participant set.
///
/// Dense materialises the full `n × n` score matrix (as the dense runner's
/// per-pair policy does) and runs the greedy assignment; factored builds
/// LAN profiles and plans over hash-sampled top-M shortlists. Dense is
/// capped at 2000 participants — past that the quadratic cost is the point.
fn planner_scaling() {
    const CLASSES: usize = 10;
    const LANS: usize = 10;
    println!("\n# Fig. 6 appendix: migration-planner decision time vs participants\n");
    print_header(&["participants", "dense O(n^2) (ms)", "factored top-M (ms)", "speedup"]);
    for k in [100usize, 500, 1000, 2000, 5000, 10_000, 50_000] {
        let marginals: Vec<Vec<f32>> = (0..k).map(|i| synth_marginal(i, CLASSES)).collect();
        let marg_refs: Vec<&[f32]> = marginals.iter().map(|m| m.as_slice()).collect();
        let lans: Vec<u32> = (0..k).map(|i| (i % LANS) as u32).collect();
        let desired: Vec<u32> = (0..k).map(|i| ((i * 7 + 3) % LANS) as u32).collect();
        let cost = |i: usize, j: usize| ((i * 31 + j * 17) % 10) as f64 / 10.0;

        let dense_ms = if k <= 2000 {
            let reps = (4_000_000 / (k * k)).clamp(1, 20);
            let t0 = Instant::now();
            for _ in 0..reps {
                let scores: Vec<Vec<f64>> = (0..k)
                    .map(|i| {
                        (0..k)
                            .map(|j| {
                                let d: f32 = marginals[i]
                                    .iter()
                                    .zip(&marginals[j])
                                    .map(|(a, b)| (a - b).abs())
                                    .sum();
                                0.5 * d as f64 - 0.1 * cost(i, j)
                            })
                            .collect()
                    })
                    .collect();
                std::hint::black_box(MigrationPlan::greedy_assignment(&scores));
            }
            Some(t0.elapsed().as_secs_f64() * 1000.0 / reps as f64)
        } else {
            None
        };

        let reps = (500_000 / k).clamp(3, 50);
        let cfg = FleetPlannerConfig { top_m: 8, lambda: 0.1, seed: 7 };
        let t0 = Instant::now();
        for e in 0..reps {
            std::hint::black_box(LanProfile::build(&lans, &marg_refs, LANS, CLASSES));
            std::hint::black_box(plan_migrations(
                &cfg, e as u64, &lans, &marg_refs, &desired, cost,
            ));
        }
        let factored_ms = t0.elapsed().as_secs_f64() * 1000.0 / reps as f64;

        print_row(&[
            k.to_string(),
            dense_ms.map_or("-".into(), |ms| format!("{ms:.2}")),
            format!("{factored_ms:.2}"),
            dense_ms.map_or("-".into(), |ms| format!("{:.1}x", ms / factored_ms)),
        ]);
    }
}

/// Shared run shape for the end-to-end rows: 4 rounds of FedMigr with
/// 2-epoch aggregation blocks and truncated local training.
fn e2e_cfg(epochs: usize) -> RunConfig {
    let mut cfg = RunConfig::new(Scheme::fedmigr(7), epochs);
    cfg.agg_interval = 2;
    cfg.eval_interval = epochs;
    cfg.batch_size = 8;
    cfg.max_batches_per_epoch = Some(2);
    cfg.lr = 0.05;
    cfg.seed = 7;
    cfg
}

/// End-to-end fleet throughput and memory vs `K`, with a dense baseline.
///
/// Rows run coldest-first (fleet ascending, dense last) so each
/// configuration's `VmHWM` reset captures its own allocations rather than
/// a predecessor's freed-but-resident heap.
fn fleet_end_to_end() {
    const EPOCHS: usize = 4;
    println!("\n# Fig. 6 appendix: end-to-end fleet rounds/sec and peak RSS vs K\n");
    if !fedmigr_telemetry::rss::reset_peak_rss() {
        println!("(peak-RSS reset unavailable on this platform; RSS is a process-wide high-water mark)\n");
    }
    print_header(&["mode", "K", "cohort", "rounds/sec", "peak RSS (MB)"]);

    for k in [1000usize, 5000, 10_000] {
        fedmigr_telemetry::rss::reset_peak_rss();
        let mut cfg = e2e_cfg(EPOCHS);
        cfg.fleet = Some(FleetOptions { sample_frac: 0.05, top_m: 8 });
        let t0 = Instant::now();
        let mut exp =
            FleetExperiment::synthetic(k, 10, 24, 8, 7, zoo::c10_cnn(3, 8, NetScale::Small, 7));
        let metrics = exp.run(&cfg);
        let secs = t0.elapsed().as_secs_f64();
        drop(exp);
        let rss = fedmigr_telemetry::rss::peak_rss_bytes();
        print_row(&[
            "fleet".into(),
            k.to_string(),
            format!("{}", (k as f64 * 0.05) as usize),
            format!("{:.2}", metrics.epochs() as f64 / secs),
            rss.map_or("-".into(), |b| format!("{:.1}", b as f64 / 1e6)),
        ]);
    }

    // Dense baseline: every client materialised, full K x K topology.
    let k = 1000;
    fedmigr_telemetry::rss::reset_peak_rss();
    let cfg = e2e_cfg(EPOCHS);
    let t0 = Instant::now();
    let data = SyntheticDataset::generate(&SyntheticConfig::c10_like(24 * k / 10, 7));
    let parts = partition_shards(&data.train, k, 1, 7);
    let topo = Topology::new(&TopologyConfig::default_edge(vec![k / 10; 10], 7));
    let exp = Experiment::new(
        data.train,
        data.test,
        parts,
        topo,
        ClientCompute::testbed_mix(k),
        zoo::c10_cnn(3, 8, NetScale::Small, 7),
    );
    let metrics = exp.run(&cfg);
    let secs = t0.elapsed().as_secs_f64();
    drop(exp);
    let rss = fedmigr_telemetry::rss::peak_rss_bytes();
    print_row(&[
        "dense".into(),
        k.to_string(),
        k.to_string(),
        format!("{:.2}", metrics.epochs() as f64 / secs),
        rss.map_or("-".into(), |b| format!("{:.1}", b as f64 / 1e6)),
    ]);
}
