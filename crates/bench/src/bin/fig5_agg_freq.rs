//! Fig. 5: effect of the model-migration frequency — FedMigr accuracy as a
//! function of the aggregation interval ('agg2' … 'agg100': number of
//! epochs, i.e. migration rounds + 1, per global iteration).
//!
//! Expected shape: accuracy improves with more migration rounds per global
//! iteration (the paper reports 63% at agg2 rising to 73% at agg100), until
//! aggregations become too rare for the run length.
//!
//! Usage: `fig5_agg_freq [--scale smoke|paper]`

use fedmigr_bench::{
    build_experiment, print_header, print_row, standard_config, Partition, Scale, Workload,
};
use fedmigr_core::Scheme;

fn main() {
    let _obs = fedmigr_bench::init_observability("fig5_agg_freq");
    let scale = Scale::from_args();
    let seed = 41;
    let exp = build_experiment(Workload::C10, Partition::Shards, scale, seed);
    let intervals: &[usize] = match scale {
        Scale::Smoke => &[2, 5, 10, 20, 50],
        Scale::Paper => &[2, 5, 10, 20, 50, 100],
    };

    println!("# Fig. 5: FedMigr accuracy vs aggregation interval\n");
    print_header(&["agg interval", "migrations per iter", "best accuracy (%)"]);
    for &interval in intervals {
        let mut cfg = standard_config(Scheme::fedmigr(seed), scale, seed);
        cfg.agg_interval = interval;
        let m = exp.run(&cfg);
        print_row(&[
            format!("agg{interval}"),
            (interval - 1).to_string(),
            format!("{:.1}", 100.0 * m.best_accuracy()),
        ]);
    }
}
