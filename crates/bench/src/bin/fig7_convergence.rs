//! Fig. 7: convergence performance — training epochs each scheme needs to
//! reach a target accuracy (CNN over CIFAR-10 in the paper's test-bed).
//!
//! Expected shape: FedMigr needs the fewest epochs, then RandMigr, then
//! FedSwap, then FedProx/FedAvg.
//!
//! Usage: `fig7_convergence [--scale smoke|paper] [--target 0.70]`

use fedmigr_bench::{
    all_schemes, build_experiment, print_header, print_row, standard_config, Partition, Scale,
    Workload,
};

fn main() {
    let _obs = fedmigr_bench::init_observability("fig7_convergence");
    let scale = Scale::from_args();
    let args: Vec<String> = std::env::args().collect();
    let target: f64 = args
        .windows(2)
        .find(|w| w[0] == "--target")
        .map(|w| w[1].parse().expect("bad target"))
        .unwrap_or(0.70);
    let seed = 47;
    let exp = build_experiment(Workload::C10, Partition::Shards, scale, seed);

    println!(
        "# Fig. 7: epochs to reach {:.0}% accuracy (one-class-per-client non-IID)\n",
        100.0 * target
    );
    print_header(&["Scheme", "Epochs to target", "Best accuracy (%)"]);
    for scheme in all_schemes(seed) {
        let mut cfg = standard_config(scheme.clone(), scale, seed);
        cfg.epochs = scale.epochs() * 2;
        cfg.eval_interval = 5;
        cfg.target_accuracy = Some(target);
        let m = exp.run(&cfg);
        print_row(&[
            scheme.name(),
            m.epochs_to_accuracy(target)
                .map(|e| e.to_string())
                .unwrap_or_else(|| format!("> {}", m.epochs())),
            format!("{:.1}", 100.0 * m.best_accuracy()),
        ]);
    }
}
