//! Continuous benchmark harness: times a fixed matrix of kernel, codec,
//! planner, flow-simulation and end-to-end benchmarks and writes a
//! versioned `BENCH_perf.json` for the `fedmigr_perf_diff` CI gate.
//!
//! ```text
//! fedmigr_perf [--quick] [--out <path>] [--repeats <n>] [--filter <substr>]
//! ```
//!
//! * `--quick`   — CI mode: fewer repeats and smaller e2e workloads. Quick
//!   reports only compare against quick baselines.
//! * `--out`     — report path (default `BENCH_perf.json`).
//! * `--repeats` — override the timed repeat count for every benchmark.
//! * `--filter`  — run only benchmarks whose name contains the substring
//!   (the report then fails the vanished-benchmark check by design; use for
//!   local iteration, not for refreshing baselines).
//!
//! Kernel accounting and the profiler stay off here: this binary measures
//! the production-path cost, and the observability layers are benchmarked
//! implicitly by the e2e entries (which run exactly what the CLI runs).

use fedmigr_bench::perf::{measure, PerfEntry, PerfReport, PERF_SCHEMA_VERSION};
use fedmigr_compress::{CodecConfig, Compressor};
use fedmigr_core::{MigrationPlan, RunConfig, Scheme};
use fedmigr_fleet::{plan_migrations, FleetPlannerConfig};
use fedmigr_net::{FlowConfig, FlowSim, TransportConfig};
use fedmigr_nn::zoo::{self, NetScale};
use fedmigr_nn::Sgd;
use fedmigr_telemetry::info;
use fedmigr_tensor::{l2_distance_slice, softmax_rows, Tensor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

struct Opts {
    quick: bool,
    out: String,
    repeats: Option<u32>,
    filter: Option<String>,
}

fn parse_opts() -> Opts {
    let mut opts =
        Opts { quick: false, out: "BENCH_perf.json".into(), repeats: None, filter: None };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--quick" => {
                opts.quick = true;
                i += 1;
            }
            "--out" => {
                opts.out = argv.get(i + 1).cloned().unwrap_or_else(|| usage());
                i += 2;
            }
            "--repeats" => {
                let v = argv.get(i + 1).and_then(|v| v.parse().ok()).unwrap_or_else(|| usage());
                opts.repeats = Some(v);
                i += 2;
            }
            "--filter" => {
                opts.filter = Some(argv.get(i + 1).cloned().unwrap_or_else(|| usage()));
                i += 2;
            }
            _ => usage(),
        }
    }
    opts
}

fn usage() -> ! {
    eprintln!("usage: fedmigr_perf [--quick] [--out <path>] [--repeats <n>] [--filter <substr>]");
    std::process::exit(2)
}

fn main() {
    let opts = parse_opts();
    // Micro repeats are cheap; e2e repeats dominate the wall clock.
    let micro_repeats = opts.repeats.unwrap_or(if opts.quick { 7 } else { 15 });
    let e2e_repeats = opts.repeats.unwrap_or(if opts.quick { 3 } else { 5 });
    let mut report =
        PerfReport { version: PERF_SCHEMA_VERSION, quick: opts.quick, benchmarks: Vec::new() };

    let mut run = |name: &str, repeats: u32, f: &mut dyn FnMut()| {
        if let Some(filter) = &opts.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        let entry: PerfEntry = measure(name, 2, repeats, f);
        info!(
            "perf",
            "{name}: median {:.3} ms, min {:.3} ms over {} repeats",
            entry.median_ns as f64 / 1e6,
            entry.min_ns as f64 / 1e6,
            entry.repeats
        );
        report.benchmarks.push(entry);
    };

    let mut rng = StdRng::seed_from_u64(7);

    // --- Kernels ------------------------------------------------------
    {
        let a = Tensor::randn(&[128, 128], 1.0, &mut rng);
        let b = Tensor::randn(&[128, 128], 1.0, &mut rng);
        run("kernel_matmul_128", micro_repeats, &mut || {
            std::hint::black_box(a.matmul(&b));
        });
    }
    {
        let a = Tensor::randn(&[32, 512], 1.0, &mut rng);
        let b = Tensor::randn(&[512, 64], 1.0, &mut rng);
        run("kernel_matmul_rect", micro_repeats, &mut || {
            std::hint::black_box(a.matmul(&b));
        });
    }
    {
        // One full CNN training step: conv im2col/col2im, pool, batchnorm,
        // softmax and the optimizer sweep in their production composition.
        let mut model = zoo::c10_cnn(3, 8, NetScale::Small, 7);
        let mut opt = Sgd::new(0.01);
        let batch = 16usize;
        let x = Tensor::randn(&[batch, 3, 8, 8], 1.0, &mut rng);
        let labels: Vec<usize> = (0..batch).map(|i| i % 10).collect();
        run("kernel_cnn_train_step", micro_repeats, &mut || {
            std::hint::black_box(model.train_step(&x, &labels, &mut opt));
        });
    }
    {
        let va: Vec<f32> = (0..100_000).map(|_| rng.random_range(-1.0..1.0)).collect();
        let vb: Vec<f32> = (0..100_000).map(|_| rng.random_range(-1.0..1.0)).collect();
        run("kernel_l2_distance_100k", micro_repeats, &mut || {
            std::hint::black_box(l2_distance_slice(&va, &vb));
        });
    }
    {
        let logits = Tensor::randn(&[256, 10], 1.0, &mut rng);
        run("kernel_softmax_rows", micro_repeats, &mut || {
            std::hint::black_box(softmax_rows(&logits));
        });
    }

    // --- Codecs -------------------------------------------------------
    let params: Vec<f32> = (0..100_000).map(|_| rng.random_range(-0.5..0.5)).collect();
    for (name, cfg) in [
        ("codec_int8_roundtrip", CodecConfig::int8()),
        ("codec_topk10_roundtrip", CodecConfig::topk(0.1)),
        ("codec_stoch8_roundtrip", CodecConfig::stochastic8(7)),
    ] {
        let mut comp = Compressor::new(&cfg, 1, 7);
        run(name, micro_repeats, &mut || {
            std::hint::black_box(comp.transmit(0, &params));
        });
    }

    // --- Planners -----------------------------------------------------
    {
        let k = 64usize;
        let scores: Vec<Vec<f64>> =
            (0..k).map(|_| (0..k).map(|_| rng.random_range(0.0..1.0)).collect()).collect();
        let active = vec![true; k];
        run("planner_greedy_assignment_64", micro_repeats, &mut || {
            std::hint::black_box(MigrationPlan::greedy_assignment_masked(&scores, &active));
        });
    }
    {
        let n = 512usize;
        let num_lans = 10u32;
        let lans: Vec<u32> = (0..n).map(|i| (i as u32) % num_lans).collect();
        let margs: Vec<Vec<f32>> = (0..n)
            .map(|_| {
                let mut m: Vec<f32> = (0..10).map(|_| rng.random_range(0.0..1.0)).collect();
                let s: f32 = m.iter().sum();
                m.iter_mut().for_each(|v| *v /= s);
                m
            })
            .collect();
        let marginals: Vec<&[f32]> = margs.iter().map(Vec::as_slice).collect();
        let desired: Vec<u32> = (0..n).map(|i| ((i as u32) * 7 + 3) % num_lans).collect();
        let pcfg = FleetPlannerConfig { top_m: 8, lambda: 0.1, seed: 7 };
        run("planner_fleet_topm_512", micro_repeats, &mut || {
            std::hint::black_box(plan_migrations(&pcfg, 1, &lans, &marginals, &desired, |i, j| {
                1.0 + ((i * 31 + j * 17) % 97) as f64 / 97.0
            }));
        });
    }

    // --- Flow simulation ---------------------------------------------
    {
        run("flow_sim_contended_wave", micro_repeats, &mut || {
            let mut sim = FlowSim::new(FlowConfig::standard(7));
            let links: Vec<_> =
                (0..16).map(|i| sim.add_link(1e6 + (i as f64) * 1e5, 0.01, 0.005, None)).collect();
            let backbone = sim.add_link(4e6, 0.02, 0.02, None);
            for f in 0..64 {
                let path = [links[f % links.len()], backbone];
                sim.add_flow(&path, 200_000 + (f as u64) * 1_000);
            }
            sim.run();
            std::hint::black_box(sim.makespan());
        });
        // Same wave with the event trace recording, so the 1.6x
        // fedmigr_perf_diff gate bounds the cost of timeline observability
        // relative to its own baseline run-to-run.
        run("flow_sim_traced", micro_repeats, &mut || {
            let mut sim = FlowSim::new(FlowConfig::standard(7));
            sim.enable_trace();
            let links: Vec<_> =
                (0..16).map(|i| sim.add_link(1e6 + (i as f64) * 1e5, 0.01, 0.005, None)).collect();
            let backbone = sim.add_link(4e6, 0.02, 0.02, None);
            for f in 0..64 {
                let path = [links[f % links.len()], backbone];
                sim.add_flow(&path, 200_000 + (f as u64) * 1_000);
            }
            sim.run();
            std::hint::black_box(sim.makespan());
            std::hint::black_box(sim.take_trace());
        });
    }

    // --- End-to-end ---------------------------------------------------
    let (samples, epochs) = if opts.quick { (16, 3) } else { (24, 5) };
    let e2e = |scheme: Scheme, transport: TransportConfig, fleet: bool| {
        let mut cfg = RunConfig::new(scheme, epochs);
        cfg.agg_interval = 2;
        cfg.eval_interval = 2;
        cfg.seed = 7;
        cfg.transport = transport;
        move || {
            if fleet {
                let mut exp = fedmigr_core::FleetExperiment::synthetic(
                    200,
                    5,
                    8,
                    8,
                    7,
                    zoo::c10_cnn(3, 8, NetScale::Small, 7),
                );
                let mut cfg = cfg.clone();
                cfg.fleet = Some(fedmigr_core::FleetOptions { sample_frac: 0.1, top_m: 8 });
                std::hint::black_box(exp.run(&cfg));
            } else {
                let exp = fedmigr_bench::build_experiment_with_samples(
                    fedmigr_bench::Workload::C10,
                    fedmigr_bench::Partition::Shards,
                    fedmigr_bench::Scale::Smoke,
                    7,
                    Some(samples),
                );
                std::hint::black_box(exp.run(&cfg));
            }
        }
    };
    {
        let mut f = e2e(Scheme::fedmigr(7), TransportConfig::Lockstep, false);
        run("e2e_dense_lockstep", e2e_repeats, &mut f);
    }
    {
        let mut f = e2e(Scheme::fedmigr(7), TransportConfig::flow(7), false);
        run("e2e_dense_flow", e2e_repeats, &mut f);
    }
    {
        let mut f = e2e(Scheme::fedmigr(7), TransportConfig::Lockstep, true);
        run("e2e_fleet_lockstep", e2e_repeats, &mut f);
    }

    let json = report.to_json();
    if let Err(e) = std::fs::write(&opts.out, &json) {
        eprintln!("error: cannot write {}: {e}", opts.out);
        std::process::exit(2);
    }
    info!("perf", "wrote {} ({} benchmarks)", opts.out, report.benchmarks.len());
}
