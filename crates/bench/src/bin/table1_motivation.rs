//! Table I: completion time and traffic consumption of FedAvg vs FedMigr
//! given a target accuracy (the Sec. III-A motivation experiment).
//!
//! Expected shape: FedMigr reaches the target with roughly half the time
//! and traffic of FedAvg (the paper reports -53% time, -47% traffic).
//!
//! Usage: `table1_motivation [--scale smoke|paper] [--target 0.70]`

use fedmigr_bench::{
    build_experiment, fmt_mb, print_header, print_row, standard_config, Partition, Scale, Workload,
};
use fedmigr_core::Scheme;

fn main() {
    let _obs = fedmigr_bench::init_observability("table1_motivation");
    let scale = Scale::from_args();
    let args: Vec<String> = std::env::args().collect();
    let target: f64 = args
        .windows(2)
        .find(|w| w[0] == "--target")
        .map(|w| w[1].parse().expect("bad target"))
        .unwrap_or(0.70);
    let seed = 31;
    let exp = build_experiment(Workload::C10, Partition::Shards, scale, seed);

    println!("# Table I: completion time and traffic at target accuracy {:.0}%\n", 100.0 * target);
    print_header(&["Scheme", "Completion Time (s)", "Traffic (MB)", "Reached"]);
    for scheme in [Scheme::FedAvg, Scheme::fedmigr(seed)] {
        let mut cfg = standard_config(scheme.clone(), scale, seed);
        cfg.epochs = scale.epochs() * 3; // Generous cap so both can reach it.
        cfg.target_accuracy = Some(target);
        cfg.eval_interval = 5;
        let m = exp.run(&cfg);
        let (time, traffic) = match (m.time_to_accuracy(target), m.traffic_to_accuracy(target)) {
            (Some(t), Some(b)) => (t, b),
            _ => (m.sim_time(), m.traffic().total()),
        };
        print_row(&[
            scheme.name(),
            format!("{time:.0}"),
            fmt_mb(traffic),
            if m.target_reached {
                "yes".into()
            } else {
                format!("no (best {:.1}%)", 100.0 * m.best_accuracy())
            },
        ]);
    }
}
