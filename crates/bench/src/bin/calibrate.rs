//! Difficulty-calibration tool (not a paper figure): sweeps the synthetic
//! noise level and reports FedAvg accuracy under IID vs non-IID data, so
//! the generator can be tuned to the regime where the paper's scheme gaps
//! are visible (IID comfortably learnable, non-IID clearly degraded).
//!
//! Usage: `calibrate [--noise <list>] [--epochs <n>]`

use fedmigr_bench::{print_header, print_row, standard_config, Scale};
use fedmigr_core::{Experiment, Scheme};
use fedmigr_data::{partition_iid, partition_shards, SyntheticConfig, SyntheticDataset};
use fedmigr_net::{ClientCompute, Topology, TopologyConfig};
use fedmigr_nn::zoo::{self, NetScale};

fn main() {
    let _obs = fedmigr_bench::init_observability("calibrate");
    let args: Vec<String> = std::env::args().collect();
    let noises: Vec<f32> = args
        .windows(2)
        .find(|w| w[0] == "--noise")
        .map(|w| w[1].split(',').map(|x| x.parse().expect("bad noise")).collect())
        .unwrap_or_else(|| vec![2.0, 3.0, 4.0, 5.0]);
    let epochs: usize = args
        .windows(2)
        .find(|w| w[0] == "--epochs")
        .map(|w| w[1].parse().expect("bad epochs"))
        .unwrap_or(100);
    let lr: f32 = args
        .windows(2)
        .find(|w| w[0] == "--lr")
        .map(|w| w[1].parse().expect("bad lr"))
        .unwrap_or(0.05);
    let agg: usize = args
        .windows(2)
        .find(|w| w[0] == "--agg")
        .map(|w| w[1].parse().expect("bad agg"))
        .unwrap_or(10);
    let seed = 17;

    print_header(&["noise", "scheme", "IID acc", "non-IID acc"]);
    for noise in noises {
        let mut dc = SyntheticConfig::c10_like(80, seed);
        dc.noise_std = noise;
        let data = SyntheticDataset::generate(&dc);
        for (label, parts) in [
            ("iid", partition_iid(&data.train, 10, seed)),
            ("shards", partition_shards(&data.train, 10, 1, seed)),
        ] {
            let exp = Experiment::new(
                data.train.clone(),
                data.test.clone(),
                parts,
                Topology::new(&TopologyConfig::c10_sim(seed)),
                ClientCompute::testbed_mix(10),
                zoo::c10_cnn(3, 8, NetScale::Small, seed),
            );
            for scheme in [Scheme::FedAvg, Scheme::RandMigr] {
                let mut cfg = standard_config(scheme.clone(), Scale::Smoke, seed);
                cfg.epochs = epochs;
                cfg.lr = lr;
                cfg.agg_interval = agg;
                let m = exp.run(&cfg);
                print_row(&[
                    format!("{noise:.1}/{label}"),
                    scheme.name(),
                    format!("{:.1}", 100.0 * m.best_accuracy()),
                    format!("loss {:.3}", m.records.last().unwrap().train_loss),
                ]);
            }
        }
    }
}
