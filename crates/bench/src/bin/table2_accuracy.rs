//! Table II: test accuracy of the five schemes on the three workloads
//! under IID and non-IID data.
//!
//! Usage: `table2_accuracy [--scale smoke|paper] [--workload c10|c100|res|all]`

use fedmigr_bench::{
    all_schemes, build_experiment, print_header, print_row, standard_config, Partition, Scale,
    Workload,
};

fn main() {
    let _obs = fedmigr_bench::init_observability("table2_accuracy");
    let scale = Scale::from_args();
    let args: Vec<String> = std::env::args().collect();
    let which = args
        .windows(2)
        .find(|w| w[0] == "--workload")
        .map(|w| w[1].clone())
        .unwrap_or_else(|| "all".into());
    let workloads: Vec<Workload> = match which.as_str() {
        "c10" => vec![Workload::C10],
        "c100" => vec![Workload::C100],
        "res" => vec![Workload::ResImageNet],
        "all" => vec![Workload::C10, Workload::C100, Workload::ResImageNet],
        other => panic!("unknown workload {other:?}"),
    };
    let seed = 17;

    println!("# Table II: test accuracy (%) under IID and non-IID settings\n");
    print_header(&["Scheme", "Workload", "IID", "non-IID"]);
    for workload in workloads {
        let iid = build_experiment(workload, Partition::Iid, scale, seed);
        let non_iid = build_experiment(workload, Partition::Shards, scale, seed);
        for scheme in all_schemes(seed) {
            let cfg = standard_config(scheme.clone(), scale, seed);
            let acc_iid = iid.run(&cfg).final_accuracy();
            let acc_non = non_iid.run(&cfg).final_accuracy();
            print_row(&[
                scheme.name(),
                workload.name().into(),
                format!("{:.1}", 100.0 * acc_iid),
                format!("{:.1}", 100.0 * acc_non),
            ]);
        }
    }
}
