//! Ablation (reward): the resource terms of Eq. 17 (`-c^t/B_c - b^t/B_b`)
//! on vs off, under a finite bandwidth budget. With the terms on, the agent
//! is pushed towards cheaper links and the run stretches further before the
//! budget runs out.
//!
//! Usage: `ablation_reward [--scale smoke|paper]`

use fedmigr_bench::{
    build_experiment, fmt_mb, print_header, print_row, standard_config, Partition, Scale, Workload,
};
use fedmigr_core::{FedMigrConfig, Scheme};
use fedmigr_net::ResourceBudget;

fn main() {
    let _obs = fedmigr_bench::init_observability("ablation_reward");
    let scale = Scale::from_args();
    let seed = 73;
    let exp = build_experiment(Workload::C10, Partition::Shards, scale, seed);

    // Budget sized to bite partway through the run.
    let probe = {
        let cfg = standard_config(Scheme::fedmigr(seed), scale, seed);
        exp.run(&cfg)
    };
    let budget_bytes = probe.traffic().total() as f64 * 0.6;

    println!("# Ablation: reward with vs without resource terms (Eq. 17)\n");
    print_header(&["reward", "best accuracy (%)", "traffic (MB)", "epochs run", "budget hit"]);
    for (label, resource_reward) in [("loss + resources", true), ("loss only", false)] {
        let mut fc = FedMigrConfig::new(seed);
        fc.resource_reward = resource_reward;
        let mut cfg = standard_config(Scheme::FedMigr(fc), scale, seed);
        cfg.budget = ResourceBudget::bandwidth_only(budget_bytes);
        let m = exp.run(&cfg);
        print_row(&[
            label.to_string(),
            format!("{:.1}", 100.0 * m.best_accuracy()),
            fmt_mb(m.traffic().total()),
            m.epochs().to_string(),
            m.budget_exhausted.to_string(),
        ]);
    }
}
