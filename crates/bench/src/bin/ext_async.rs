//! Extension (the paper's stated future direction): asynchronous federated
//! optimization as an additional baseline. FedAsync uploads one model per
//! epoch — very cheap — but, as the paper argues (Sec. I), single-client
//! server updates cope poorly with non-IID data. FedMigr keeps the
//! bandwidth advantage without that accuracy penalty.
//!
//! Usage: `ext_async [--scale smoke|paper]`

use fedmigr_bench::{
    build_experiment, fmt_mb, print_header, print_row, standard_config, Partition, Scale, Workload,
};
use fedmigr_core::Scheme;

fn main() {
    let _obs = fedmigr_bench::init_observability("ext_async");
    let scale = Scale::from_args();
    let seed = 79;
    let exp = build_experiment(Workload::C10, Partition::Shards, scale, seed);

    println!("# Extension: asynchronous FL baseline under non-IID data\n");
    print_header(&["Scheme", "best accuracy (%)", "traffic (MB)", "C2S (MB)", "time (s)"]);
    for scheme in [Scheme::FedAvg, Scheme::fedasync(), Scheme::fedmigr(seed)] {
        let cfg = standard_config(scheme.clone(), scale, seed);
        let m = exp.run(&cfg);
        print_row(&[
            scheme.name(),
            format!("{:.1}", 100.0 * m.best_accuracy()),
            fmt_mb(m.traffic().total()),
            fmt_mb(m.traffic().c2s),
            format!("{:.0}", m.sim_time()),
        ]);
    }
}
