//! Fig. 10: test accuracy of the five schemes at different non-IID levels
//! (test-bed partitions): CIFAR-10 uses the p%-dominant layout with
//! p ∈ {0.1, 0.2, 0.4, 0.6, 0.8} (0.1 = IID); CIFAR-100 uses the
//! missing-classes layout with p ∈ {0, 0.1, 0.2, 0.3, 0.4}.
//!
//! Expected shape: accuracy falls as the non-IID level rises, and the
//! migration schemes degrade most gracefully (FedMigr > RandMigr > rest).
//!
//! Usage: `fig10_noniid_levels [--scale smoke|paper] [--workload c10|c100]`

use fedmigr_bench::{
    all_schemes, build_experiment_with_samples, print_header, print_row, standard_config,
    Partition, Scale, Workload,
};

fn main() {
    let _obs = fedmigr_bench::init_observability("fig10_noniid_levels");
    let scale = Scale::from_args();
    let args: Vec<String> = std::env::args().collect();
    let which = args
        .windows(2)
        .find(|w| w[0] == "--workload")
        .map(|w| w[1].clone())
        .unwrap_or_else(|| "c10".into());
    let seed = 67;

    let (workload, levels, label): (Workload, Vec<f64>, &str) = match which.as_str() {
        "c10" => (Workload::C10, vec![0.1, 0.2, 0.4, 0.6, 0.8], "dominant p"),
        "c100" => (Workload::C100, vec![0.0, 0.1, 0.2, 0.3, 0.4], "missing frac"),
        other => panic!("unknown workload {other:?}"),
    };

    println!("# Fig. 10: accuracy vs non-IID level ({})\n", workload.name());
    let mut header = vec![label.to_string()];
    header.extend(all_schemes(seed).iter().map(|s| s.name()));
    print_header(&header.iter().map(|s| s.as_str()).collect::<Vec<_>>());
    for &level in &levels {
        let partition = match workload {
            Workload::C10 => Partition::Dominant(level),
            _ => Partition::MissingClasses(level),
        };
        // Scarce data makes high dominant-p genuinely starve clients of
        // minority classes, as on the paper's test-bed.
        // 100-class workloads need >= clients samples per class so the
        // round-robin deal reaches every holder.
        let per_class = match workload {
            Workload::C10 => Some(48),
            _ => Some(24),
        };
        let exp = build_experiment_with_samples(workload, partition, scale, seed, per_class);
        let row: Vec<String> = std::iter::once(format!("{level:.1}"))
            .chain(all_schemes(seed).into_iter().map(|scheme| {
                let mut cfg = standard_config(scheme, scale, seed);
                if workload != Workload::C10 {
                    cfg.epochs = (cfg.epochs * 2) / 3;
                }
                format!("{:.1}", 100.0 * exp.run(&cfg).best_accuracy())
            }))
            .collect();
        print_row(&row);
    }
}
