//! Deep reinforcement learning for migration-policy generation (EMPG).
//!
//! This crate implements Sec. III of the paper:
//!
//! * [`DdpgAgent`] — Deep Deterministic Policy Gradient with an actor
//!   `π(s|θ)` producing a distribution over migration destinations and a
//!   critic `Q(s, a|ψ)` over state/one-hot-action pairs, plus slowly-updated
//!   target networks (Alg. 1). The discrete destination set is handled with
//!   the standard continuous relaxation: the actor outputs a softmax over
//!   destinations, the critic is differentiated w.r.t. that action vector
//!   (Eq. 20/24), and the executed action is the argmax.
//! * [`PrioritizedReplay`] — prioritized experience replay on a sum-tree,
//!   with the paper's mixed priority `ε·|TD| + (1-ε)·|∇_a Q|` (Eq. 25),
//!   exponent-`ξ` sampling (Eq. 26) and importance-sampling weights
//!   (Eq. 29).
//! * [`qp`] — the ρ-greedy exploration oracle: the relaxed FLMM problem
//!   (integer variables dropped to `[0,1]`, Sec. III-D) solved by projected
//!   gradient ascent over row-stochastic migration matrices — the role CVX
//!   plays in the paper.
//! * [`MigrationState`] — the state featurizer `(t, F_t, D_t, R_t, G_t)`
//!   of Sec. III-C.

mod agent;
mod noise;
pub mod qp;
mod replay;
mod state;

pub use agent::{policy_entropy_saturation, AgentConfig, AgentState, DdpgAgent, UpdateStats};
pub use noise::{OuNoise, OuState};
pub use replay::{PrioritizedReplay, ReplayHealth, ReplayState, Transition};
pub use state::{MigrationState, PooledMigrationState};
