//! The ρ-greedy exploration oracle: the relaxed FLMM problem.
//!
//! Sec. III-D relaxes the boolean migration variables `p_{i,j} ∈ {0,1}` to
//! `[0, 1]` and solves the resulting program with a convex solver (CVX in
//! the paper). Here the relaxation is solved by entropic mirror descent
//! over row-stochastic matrices: each row of `P` lives on the probability
//! simplex (every model has exactly one destination in expectation), the
//! objective rewards migrating towards clients with *different* data
//! distributions and penalizes link cost, and an entropy term keeps the
//! iterate interior (the relaxed optimum of the linear part alone is a
//! vertex). The solver is deterministic and allocation-light; its wall-time
//! as a function of client count is exactly what Fig. 6 compares against
//! DRL inference.

/// Relaxed-FLMM instance for one migration round.
#[derive(Clone, Debug)]
pub struct FlmmRelaxation {
    /// `benefit[i][j]`: gain from migrating client `i`'s model to `j` —
    /// the distribution difference `d_{i,j}` in the paper's state.
    pub benefit: Vec<Vec<f64>>,
    /// `cost[i][j]`: normalized communication cost of the `i -> j` link.
    pub cost: Vec<Vec<f64>>,
    /// Cost weight λ trading accuracy gain against bandwidth.
    pub lambda: f64,
    /// Entropy weight μ > 0 keeping the relaxed solution interior.
    pub entropy: f64,
}

impl FlmmRelaxation {
    /// Objective value `Σ_ij P_ij (benefit - λ·cost) + μ H(P)` for a
    /// row-stochastic `p`.
    pub fn objective(&self, p: &[Vec<f64>]) -> f64 {
        let mut total = 0.0;
        for (i, row) in p.iter().enumerate() {
            for (j, &v) in row.iter().enumerate() {
                total += v * (self.benefit[i][j] - self.lambda * self.cost[i][j]);
                if v > 0.0 {
                    total -= self.entropy * v * v.ln();
                }
            }
        }
        total
    }

    /// Solves the relaxation by `iters` steps of entropic mirror descent
    /// (exponentiated gradient) with step size `step`, returning a
    /// row-stochastic migration matrix.
    ///
    /// Each row update is `p_j ← p_j^(1-ημ) · exp(η(b_j - λc_j)) / Z`,
    /// whose fixed point is the entropy-smoothed optimum
    /// `p ∝ exp((b - λc)/μ)`; with `μ = 0` the iterate converges to the
    /// vertex (hard argmax) solution of the relaxed linear program. The
    /// simplex geometry keeps every iterate feasible, so no projection step
    /// is needed; [`project_simplex`] is still provided for callers that
    /// post-process externally produced migration matrices.
    pub fn solve(&self, iters: usize, step: f64) -> Vec<Vec<f64>> {
        let k = self.benefit.len();
        assert!(k > 0, "empty instance");
        assert!(self.entropy >= 0.0 && step > 0.0);
        assert!(
            self.entropy * step < 1.0,
            "step * entropy must be < 1 for mirror descent stability"
        );
        let mut p = vec![vec![1.0 / k as f64; k]; k];
        let decay = 1.0 - step * self.entropy;
        for _ in 0..iters {
            for (i, row) in p.iter_mut().enumerate() {
                let mut max_log = f64::NEG_INFINITY;
                let mut logs = vec![0.0f64; k];
                for j in 0..k {
                    let lin = self.benefit[i][j] - self.lambda * self.cost[i][j];
                    logs[j] = decay * row[j].max(1e-300).ln() + step * lin;
                    max_log = max_log.max(logs[j]);
                }
                let mut z = 0.0;
                for j in 0..k {
                    row[j] = (logs[j] - max_log).exp();
                    z += row[j];
                }
                for v in row.iter_mut() {
                    *v /= z;
                }
            }
        }
        p
    }

    /// Rounds a relaxed solution to a hard destination per source: the
    /// per-row argmax (the integer recovery step after the QP solve).
    pub fn round(p: &[Vec<f64>]) -> Vec<usize> {
        p.iter()
            .map(|row| {
                row.iter()
                    .enumerate()
                    .max_by(|a, b| a.1.total_cmp(b.1))
                    .map(|(j, _)| j)
                    .expect("empty row")
            })
            .collect()
    }
}

/// Projects `v` onto the probability simplex in place
/// (Duchi et al. 2008: sort, find the threshold, clip).
pub fn project_simplex(v: &mut [f64]) {
    let n = v.len();
    assert!(n > 0, "cannot project an empty vector");
    let mut sorted: Vec<f64> = v.to_vec();
    sorted.sort_by(|a, b| b.total_cmp(a));
    let mut cumsum = 0.0;
    let mut rho = 0usize;
    let mut theta = 0.0;
    for (i, &u) in sorted.iter().enumerate() {
        cumsum += u;
        let candidate = (cumsum - 1.0) / (i + 1) as f64;
        if u - candidate > 0.0 {
            rho = i;
            theta = candidate;
        }
    }
    let _ = rho;
    for x in v.iter_mut() {
        *x = (*x - theta).max(0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simplex_projection_of_point_on_simplex_is_identity() {
        let mut v = vec![0.2, 0.3, 0.5];
        project_simplex(&mut v);
        assert!((v[0] - 0.2).abs() < 1e-9);
        assert!((v[1] - 0.3).abs() < 1e-9);
        assert!((v[2] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn simplex_projection_sums_to_one_and_is_nonnegative() {
        let cases = vec![vec![10.0, -5.0, 3.0], vec![-1.0, -2.0, -3.0], vec![0.0; 5], vec![100.0]];
        for mut v in cases {
            project_simplex(&mut v);
            assert!((v.iter().sum::<f64>() - 1.0).abs() < 1e-9, "{v:?}");
            assert!(v.iter().all(|&x| x >= 0.0), "{v:?}");
        }
    }

    #[test]
    fn simplex_projection_prefers_larger_coordinates() {
        let mut v = vec![3.0, 1.0, 0.0];
        project_simplex(&mut v);
        assert!(v[0] > v[1] && v[1] >= v[2]);
        assert!((v[0] - 1.0).abs() < 1e-9, "far-dominant coordinate takes all mass");
    }

    fn small_instance() -> FlmmRelaxation {
        // 3 clients: 0 and 1 have very different data (benefit 2.0), 2 is
        // similar to both; all links cheap except 0 -> 1 reverse direction.
        FlmmRelaxation {
            benefit: vec![vec![0.0, 2.0, 0.5], vec![2.0, 0.0, 0.5], vec![0.5, 0.5, 0.0]],
            cost: vec![vec![0.0, 0.1, 0.1], vec![0.1, 0.0, 0.1], vec![0.1, 0.1, 0.0]],
            lambda: 1.0,
            entropy: 0.05,
        }
    }

    #[test]
    fn solver_finds_high_benefit_destinations() {
        let inst = small_instance();
        let p = inst.solve(200, 0.5);
        let dest = FlmmRelaxation::round(&p);
        assert_eq!(dest[0], 1, "client 0 should migrate to the dissimilar client 1");
        assert_eq!(dest[1], 0);
        for row in &p {
            assert!((row.iter().sum::<f64>() - 1.0).abs() < 1e-6);
            assert!(row.iter().all(|&x| x >= 0.0));
        }
    }

    #[test]
    fn objective_improves_over_uniform_start() {
        let inst = small_instance();
        let k = 3;
        let uniform = vec![vec![1.0 / k as f64; k]; k];
        let solved = inst.solve(200, 0.5);
        assert!(inst.objective(&solved) > inst.objective(&uniform));
    }

    #[test]
    fn high_cost_links_are_avoided() {
        let mut inst = small_instance();
        // Make 0 -> 1 ruinously expensive; 0 should fall back to client 2.
        inst.cost[0][1] = 10.0;
        let dest = FlmmRelaxation::round(&inst.solve(200, 0.5));
        assert_eq!(dest[0], 2);
    }

    #[test]
    fn entropy_keeps_solution_interior() {
        let mut inst = small_instance();
        inst.entropy = 5.0; // Strong smoothing -> nearly uniform rows.
        let p = inst.solve(300, 0.1);
        for row in &p {
            for &v in row {
                assert!(v > 0.05, "entropy should keep all entries positive: {row:?}");
            }
        }
    }
}
