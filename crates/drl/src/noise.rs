//! Ornstein–Uhlenbeck exploration noise — the temporally correlated noise
//! process DDPG (Lillicrap et al., the paper's reference [33]) uses for
//! action exploration. Correlated noise explores more coherently than
//! white Gaussian noise in environments with momentum.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// An Ornstein–Uhlenbeck process `dx = θ(μ - x)dt + σ dW` discretized at
/// unit steps, one independent component per action dimension.
#[derive(Clone, Debug)]
pub struct OuNoise {
    theta: f32,
    mu: f32,
    sigma: f32,
    state: Vec<f32>,
    rng: StdRng,
}

impl OuNoise {
    /// Creates a process with `dim` components. Standard DDPG settings are
    /// `theta = 0.15`, `sigma = 0.2`, `mu = 0`.
    pub fn new(dim: usize, theta: f32, mu: f32, sigma: f32, seed: u64) -> Self {
        assert!(dim > 0 && theta > 0.0 && sigma >= 0.0);
        Self { theta, mu, sigma, state: vec![mu; dim], rng: StdRng::seed_from_u64(seed) }
    }

    /// Standard DDPG configuration.
    pub fn standard(dim: usize, seed: u64) -> Self {
        Self::new(dim, 0.15, 0.0, 0.2, seed)
    }

    /// Advances the process one step and returns the current noise vector.
    pub fn sample(&mut self) -> &[f32] {
        for x in self.state.iter_mut() {
            let u1: f32 = self.rng.random::<f32>().max(1e-7);
            let u2: f32 = self.rng.random();
            let gauss = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos();
            *x += self.theta * (self.mu - *x) + self.sigma * gauss;
        }
        &self.state
    }

    /// Resets the process to its mean (start of a new episode).
    pub fn reset(&mut self) {
        self.state.fill(self.mu);
    }

    /// Captures the process for a run checkpoint.
    pub fn export_state(&self) -> OuState {
        OuState { state: self.state.clone(), rng: self.rng.state() }
    }

    /// Restores state captured by [`OuNoise::export_state`] into a process
    /// of the same dimensionality.
    pub fn import_state(&mut self, s: OuState) {
        assert_eq!(s.state.len(), self.state.len(), "OU dimension mismatch");
        self.state = s.state;
        self.rng = StdRng::from_state(s.rng);
    }
}

/// Checkpoint capture of an [`OuNoise`] process: the correlated-noise state
/// vector plus the exact RNG stream position.
#[derive(Clone, Debug, PartialEq)]
pub struct OuState {
    /// Current noise vector.
    pub state: Vec<f32>,
    /// Raw RNG state.
    pub rng: [u64; 4],
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_reverts_to_mu() {
        let noise = OuNoise::new(1, 0.5, 3.0, 0.0, 1); // No diffusion.
                                                       // Start away from mu by resetting then forcing: state starts at mu,
                                                       // so instead use a fresh process with mu 3 but state from mu 0.
        let mut from_zero = OuNoise::new(1, 0.5, 3.0, 0.0, 1);
        from_zero.state[0] = 0.0;
        for _ in 0..50 {
            from_zero.sample();
        }
        assert!((from_zero.state[0] - 3.0).abs() < 1e-3);
        let _ = noise;
    }

    #[test]
    fn samples_are_temporally_correlated() {
        let mut noise = OuNoise::standard(1, 2);
        let mut prev = noise.sample()[0];
        let mut abs_step = 0.0f32;
        let mut abs_val = 0.0f32;
        for _ in 0..500 {
            let x = noise.sample()[0];
            abs_step += (x - prev).abs();
            abs_val += x.abs();
            prev = x;
        }
        // Step-to-step changes are much smaller than typical magnitudes
        // would be for independent draws of the same stationary variance.
        assert!(abs_step < 2.0 * abs_val, "steps {abs_step} vs values {abs_val}");
    }

    #[test]
    fn stationary_variance_is_bounded() {
        let mut noise = OuNoise::standard(4, 3);
        let mut max_abs = 0.0f32;
        for _ in 0..2000 {
            for &x in noise.sample() {
                max_abs = max_abs.max(x.abs());
            }
        }
        // sigma / sqrt(2 theta - theta^2) ~ 0.38; 6 sigma bound.
        assert!(max_abs < 2.5, "process diverged: {max_abs}");
    }

    #[test]
    fn reset_returns_to_mean() {
        let mut noise = OuNoise::standard(3, 4);
        noise.sample();
        noise.reset();
        assert!(noise.state.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn state_round_trip_resumes_the_exact_stream() {
        let mut live = OuNoise::standard(3, 11);
        for _ in 0..7 {
            live.sample();
        }
        let snap = live.export_state();
        let mut resumed = OuNoise::standard(3, 999);
        resumed.import_state(snap);
        for _ in 0..20 {
            assert_eq!(live.sample().to_vec(), resumed.sample().to_vec());
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = OuNoise::standard(2, 9);
        let mut b = OuNoise::standard(2, 9);
        for _ in 0..10 {
            assert_eq!(a.sample(), b.sample());
        }
    }
}
