//! The DRL state `s_t = (t, w^t, F_t, D_t, R_t, G_t)` of Sec. III-C,
//! featurized to a fixed-length vector.
//!
//! The raw state includes the full model parameters `w^t`; feeding millions
//! of weights to the agent is neither practical nor useful, so — as is
//! standard for experience-driven controllers — the featurizer keeps the
//! training-progress scalars (epoch fraction, loss level and trend), the
//! resource picture (`R_t` usage, `G_t` remaining budgets), the row of
//! the distribution-difference matrix `D_t` for the migrating client, a
//! liveness picture (population health + per-peer up/down flags) so the
//! policy can route around fault-injected dropouts, and a per-peer
//! *suspicion* picture from the migration quarantine so the policy can
//! route around Byzantine sources.

/// Builder for per-decision state vectors of a fixed layout:
/// `[t/T, loss, Δloss, bw_remaining, compute_remaining, alive_frac,
///   d_{i,1..K}, live_{1..K}, susp_{1..K}]`.
#[derive(Clone, Debug)]
pub struct MigrationState {
    num_clients: usize,
}

impl MigrationState {
    /// Creates a featurizer for `num_clients` clients.
    pub fn new(num_clients: usize) -> Self {
        assert!(num_clients > 0);
        Self { num_clients }
    }

    /// Dimensionality of produced state vectors.
    pub fn dim(&self) -> usize {
        6 + 3 * self.num_clients
    }

    /// Builds the state for a migration decision about client `i`, assuming
    /// a fully live population (every liveness feature 1.0). Convenience
    /// wrapper over [`Self::build_with_liveness`] for fault-free call
    /// sites.
    ///
    /// * `epoch_frac` — `t / T` in `[0, 1]`,
    /// * `loss` — current global loss `F_t` (clamped to a sane range),
    /// * `dloss` — `(F_t - F_{t-1}) / F_{t-1}`, the loss trend in Eq. 17,
    /// * `bw_remaining`, `compute_remaining` — `G_t` fractions in `[0, 1]`,
    /// * `distance_row` — row `i` of `D_t` (length `K`).
    pub fn build(
        &self,
        epoch_frac: f64,
        loss: f64,
        dloss: f64,
        bw_remaining: f64,
        compute_remaining: f64,
        distance_row: &[f64],
    ) -> Vec<f32> {
        let all_live = vec![true; self.num_clients];
        self.build_with_liveness(
            epoch_frac,
            loss,
            dloss,
            bw_remaining,
            compute_remaining,
            distance_row,
            &all_live,
        )
    }

    /// Builds the state for a migration decision about client `i` with
    /// explicit liveness: `live[j]` is whether client `j` is up this epoch.
    /// Suspicion features are all zero (no quarantine evidence).
    #[allow(clippy::too_many_arguments)]
    pub fn build_with_liveness(
        &self,
        epoch_frac: f64,
        loss: f64,
        dloss: f64,
        bw_remaining: f64,
        compute_remaining: f64,
        distance_row: &[f64],
        live: &[bool],
    ) -> Vec<f32> {
        let no_suspicion = vec![0.0f64; self.num_clients];
        self.build_with_health(
            epoch_frac,
            loss,
            dloss,
            bw_remaining,
            compute_remaining,
            distance_row,
            live,
            &no_suspicion,
        )
    }

    /// Builds the full state: liveness flags per peer plus the quarantine's
    /// per-peer suspicion scores in `[0, 1]` (1 = every recent migration
    /// from that peer was rejected). The policy can thereby learn to avoid
    /// both dead destinations *and* poisoned sources.
    #[allow(clippy::too_many_arguments)]
    pub fn build_with_health(
        &self,
        epoch_frac: f64,
        loss: f64,
        dloss: f64,
        bw_remaining: f64,
        compute_remaining: f64,
        distance_row: &[f64],
        live: &[bool],
        suspicion: &[f64],
    ) -> Vec<f32> {
        assert_eq!(
            distance_row.len(),
            self.num_clients,
            "distance row must have one entry per client"
        );
        assert_eq!(live.len(), self.num_clients, "liveness must have one entry per client");
        assert_eq!(suspicion.len(), self.num_clients, "suspicion must have one entry per client");
        let alive = live.iter().filter(|&&l| l).count();
        let mut s = Vec::with_capacity(self.dim());
        s.push(epoch_frac.clamp(0.0, 1.0) as f32);
        s.push(loss.clamp(0.0, 20.0) as f32 / 10.0);
        s.push(dloss.clamp(-1.0, 1.0) as f32);
        s.push(bw_remaining.clamp(0.0, 1.0) as f32);
        s.push(compute_remaining.clamp(0.0, 1.0) as f32);
        s.push(alive as f32 / self.num_clients as f32);
        // L1 distance between distributions is at most 2.
        s.extend(distance_row.iter().map(|&d| (d / 2.0) as f32));
        s.extend(live.iter().map(|&l| if l { 1.0f32 } else { 0.0 }));
        s.extend(suspicion.iter().map(|&x| x.clamp(0.0, 1.0) as f32));
        s
    }
}

/// Fixed-dimension pooled featurizer for fleet-scale runs: per-peer
/// features collapse to per-LAN aggregates, so the state dimension is
/// `6 + 3·L` regardless of fleet size `K` and the decision cost of the
/// DDPG forward pass stops scaling with `K²`. The action space likewise
/// pools to *destination LAN* (one action per LAN).
///
/// Layout: `[t/T, loss, Δloss, bw_remaining, compute_remaining,
/// alive_frac, lan_dist_{1..L}, lan_active_frac_{1..L}, lan_load_{1..L}]`
/// — the first six scalars match [`MigrationState`], then the client's
/// half-L1 distance to each LAN's mean active marginal, the fraction of
/// this round's participants in each LAN, and each LAN's relative data
/// load.
#[derive(Clone, Debug)]
pub struct PooledMigrationState {
    num_lans: usize,
}

impl PooledMigrationState {
    /// Creates a pooled featurizer over `num_lans` LANs.
    pub fn new(num_lans: usize) -> Self {
        assert!(num_lans > 0);
        Self { num_lans }
    }

    /// Number of LANs (also the pooled action dimension).
    pub fn num_lans(&self) -> usize {
        self.num_lans
    }

    /// Dimensionality of produced state vectors.
    pub fn dim(&self) -> usize {
        6 + 3 * self.num_lans
    }

    /// Builds the pooled state for a migration decision about one active
    /// participant.
    ///
    /// * `lan_distance` — half-L1 distance from the participant's label
    ///   marginal to each LAN's mean active marginal (each in `[0, 1]`),
    /// * `lan_active_frac` — fraction of this round's participants in each
    ///   LAN (sums to 1),
    /// * `lan_load` — each LAN's share of fleet data (sums to 1).
    #[allow(clippy::too_many_arguments)]
    pub fn build(
        &self,
        epoch_frac: f64,
        loss: f64,
        dloss: f64,
        bw_remaining: f64,
        compute_remaining: f64,
        alive_frac: f64,
        lan_distance: &[f64],
        lan_active_frac: &[f64],
        lan_load: &[f64],
    ) -> Vec<f32> {
        assert_eq!(lan_distance.len(), self.num_lans, "distance must have one entry per LAN");
        assert_eq!(
            lan_active_frac.len(),
            self.num_lans,
            "active fractions must have one entry per LAN"
        );
        assert_eq!(lan_load.len(), self.num_lans, "loads must have one entry per LAN");
        let mut s = Vec::with_capacity(self.dim());
        s.push(epoch_frac.clamp(0.0, 1.0) as f32);
        s.push(loss.clamp(0.0, 20.0) as f32 / 10.0);
        s.push(dloss.clamp(-1.0, 1.0) as f32);
        s.push(bw_remaining.clamp(0.0, 1.0) as f32);
        s.push(compute_remaining.clamp(0.0, 1.0) as f32);
        s.push(alive_frac.clamp(0.0, 1.0) as f32);
        s.extend(lan_distance.iter().map(|&d| d.clamp(0.0, 1.0) as f32));
        s.extend(lan_active_frac.iter().map(|&f| f.clamp(0.0, 1.0) as f32));
        s.extend(lan_load.iter().map(|&f| f.clamp(0.0, 1.0) as f32));
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_and_dim() {
        let f = MigrationState::new(3);
        assert_eq!(f.dim(), 15);
        let s = f.build(0.5, 2.0, -0.1, 0.9, 0.8, &[0.0, 2.0, 1.0]);
        assert_eq!(s.len(), 15);
        assert_eq!(s[0], 0.5);
        assert_eq!(s[1], 0.2);
        assert_eq!(s[5], 1.0, "fully live population");
        assert_eq!(s[6], 0.0);
        assert_eq!(s[7], 1.0);
        assert_eq!(s[8], 0.5);
        assert_eq!(&s[9..12], &[1.0, 1.0, 1.0], "default liveness flags are all up");
        assert_eq!(&s[12..], &[0.0, 0.0, 0.0], "default suspicion is zero");
    }

    #[test]
    fn liveness_features_reflect_down_clients() {
        let f = MigrationState::new(4);
        let s =
            f.build_with_liveness(0.1, 1.0, 0.0, 1.0, 1.0, &[0.0; 4], &[true, false, true, false]);
        assert_eq!(s.len(), f.dim());
        assert_eq!(s[5], 0.5, "half the population is live");
        assert_eq!(&s[10..14], &[1.0, 0.0, 1.0, 0.0]);
        assert_eq!(&s[14..], &[0.0; 4], "liveness-only path carries zero suspicion");
    }

    #[test]
    fn suspicion_features_are_appended_and_clamped() {
        let f = MigrationState::new(3);
        let s =
            f.build_with_health(0.2, 1.0, 0.0, 1.0, 1.0, &[0.0; 3], &[true; 3], &[0.25, 1.5, -0.5]);
        assert_eq!(s.len(), f.dim());
        assert_eq!(&s[12..], &[0.25, 1.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "suspicion must have one entry per client")]
    fn wrong_suspicion_length_panics() {
        let f = MigrationState::new(2);
        let _ = f.build_with_health(0.0, 0.0, 0.0, 1.0, 1.0, &[0.0, 0.0], &[true, true], &[0.0]);
    }

    #[test]
    fn values_are_clamped() {
        let f = MigrationState::new(1);
        let s = f.build(2.0, 1e9, -5.0, 7.0, -3.0, &[0.5]);
        assert_eq!(s[0], 1.0);
        assert_eq!(s[1], 2.0);
        assert_eq!(s[2], -1.0);
        assert_eq!(s[3], 1.0);
        assert_eq!(s[4], 0.0);
    }

    #[test]
    #[should_panic(expected = "one entry per client")]
    fn wrong_row_length_panics() {
        let f = MigrationState::new(2);
        let _ = f.build(0.0, 0.0, 0.0, 1.0, 1.0, &[0.0]);
    }

    #[test]
    #[should_panic(expected = "one entry per client")]
    fn wrong_liveness_length_panics() {
        let f = MigrationState::new(2);
        let _ = f.build_with_liveness(0.0, 0.0, 0.0, 1.0, 1.0, &[0.0, 0.0], &[true]);
    }

    #[test]
    fn pooled_layout_is_fixed_dim() {
        let f = PooledMigrationState::new(4);
        assert_eq!(f.dim(), 18);
        assert_eq!(f.num_lans(), 4);
        let s = f.build(
            0.25,
            3.0,
            -0.2,
            0.9,
            0.7,
            0.5,
            &[0.0, 0.5, 1.0, 2.0],
            &[0.25, 0.25, 0.5, 0.0],
            &[0.1, 0.2, 0.3, 0.4],
        );
        assert_eq!(s.len(), 18);
        assert_eq!(s[0], 0.25);
        assert_eq!(s[1], 0.3);
        assert_eq!(s[5], 0.5);
        assert_eq!(&s[6..10], &[0.0, 0.5, 1.0, 1.0], "distances clamp to [0, 1]");
        assert_eq!(&s[10..14], &[0.25, 0.25, 0.5, 0.0]);
        assert_eq!(&s[14..], &[0.1, 0.2, 0.3, 0.4]);
    }

    #[test]
    #[should_panic(expected = "one entry per LAN")]
    fn pooled_wrong_row_length_panics() {
        let f = PooledMigrationState::new(2);
        let _ = f.build(0.0, 0.0, 0.0, 1.0, 1.0, 1.0, &[0.0], &[0.5, 0.5], &[0.5, 0.5]);
    }
}
