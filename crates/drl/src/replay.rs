use rand::Rng;

/// One experience tuple `z = (s_t, a_t, r_t, s_{t+1})`.
#[derive(Clone, Debug, PartialEq)]
pub struct Transition {
    /// State features at decision time.
    pub state: Vec<f32>,
    /// Destination client chosen (index into the action space).
    pub action: usize,
    /// Reward observed after executing the action (Eq. 17/18).
    pub reward: f32,
    /// State features after the environment step.
    pub next_state: Vec<f32>,
    /// Whether this transition ended the episode.
    pub done: bool,
}

/// Prioritized experience replay over a sum-tree.
///
/// Sampling probability follows Eq. (26): `P(z) = p_z^ξ / Σ_j p_j^ξ`, where
/// the priority `p_z` combines TD error and action-gradient magnitude
/// (Eq. 25, applied by the agent via [`PrioritizedReplay::update_priority`]).
/// Importance-sampling weights follow Eq. (29), normalized by the batch
/// maximum. A ring buffer bounds memory: the oldest transition is evicted
/// once `capacity` is reached.
pub struct PrioritizedReplay {
    capacity: usize,
    xi: f64,
    beta: f64,
    items: Vec<Transition>,
    tree: Vec<f64>,
    next_slot: usize,
    max_priority: f64,
    /// Total number of `push` calls over the buffer's lifetime.
    pushes: u64,
    /// Push counter value at which each occupied slot was last written —
    /// the basis of the age distribution in [`ReplayHealth`].
    inserted_at: Vec<u64>,
}

/// Checkpoint capture of a [`PrioritizedReplay`]: the stored transitions
/// plus exactly the bookkeeping needed to resume sampling bit-for-bit.
/// Only the leaf weights are captured — the sum-tree's internal nodes are
/// recomputed on import.
#[derive(Clone, Debug, PartialEq)]
pub struct ReplayState {
    /// Stored transitions in slot order.
    pub items: Vec<Transition>,
    /// Stored sampling weights (`p^ξ`), one per item.
    pub weights: Vec<f64>,
    /// Ring-buffer write cursor.
    pub next_slot: usize,
    /// Running maximum priority assigned to new pushes.
    pub max_priority: f64,
    /// Lifetime push count.
    pub pushes: u64,
    /// Push counter at which each slot was last written.
    pub inserted_at: Vec<u64>,
}

/// Point-in-time health summary of a [`PrioritizedReplay`] buffer: how
/// full it is, how skewed prioritized sampling currently is, and how stale
/// its contents are (ages are measured in pushes: the most recent
/// transition has age 0, one pushed `n` insertions ago has age `n`).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ReplayHealth {
    /// Stored transitions.
    pub occupancy: usize,
    /// Buffer capacity.
    pub capacity: usize,
    /// Lifetime number of insertions (≥ occupancy; the excess counts
    /// evictions).
    pub pushes: u64,
    /// Max/min stored sampling-weight ratio (1.0 = uniform); see
    /// [`PrioritizedReplay::priority_spread`].
    pub priority_spread: f64,
    /// Mean age of stored transitions, in pushes.
    pub mean_age: f64,
    /// Age of the oldest stored transition, in pushes (0 when empty).
    pub max_age: u64,
}

impl PrioritizedReplay {
    /// Creates a buffer. `xi` is the prioritization exponent (0 = uniform
    /// sampling); `beta` the importance-sampling exponent.
    pub fn new(capacity: usize, xi: f64, beta: f64) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        assert!(xi >= 0.0 && beta >= 0.0);
        Self {
            capacity,
            xi,
            beta,
            items: Vec::with_capacity(capacity),
            tree: vec![0.0; 2 * capacity],
            next_slot: 0,
            max_priority: 1.0,
            pushes: 0,
            inserted_at: Vec::with_capacity(capacity),
        }
    }

    /// Number of stored transitions.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Adds a transition with the current maximum priority so new
    /// experience is sampled at least once soon.
    pub fn push(&mut self, t: Transition) {
        let slot = self.next_slot;
        if self.items.len() < self.capacity {
            self.items.push(t);
            self.inserted_at.push(self.pushes);
        } else {
            self.items[slot] = t;
            self.inserted_at[slot] = self.pushes;
        }
        self.pushes += 1;
        self.set_weight(slot, self.max_priority.powf(self.xi));
        self.next_slot = (slot + 1) % self.capacity;
    }

    /// Captures the buffer for a run checkpoint.
    pub fn export_state(&self) -> ReplayState {
        ReplayState {
            items: self.items.clone(),
            weights: self.tree[self.capacity..self.capacity + self.items.len()].to_vec(),
            next_slot: self.next_slot,
            max_priority: self.max_priority,
            pushes: self.pushes,
            inserted_at: self.inserted_at.clone(),
        }
    }

    /// Restores state captured by [`PrioritizedReplay::export_state`] into
    /// a buffer of the same capacity; the sum-tree's internal nodes are
    /// rebuilt from the captured leaf weights.
    pub fn import_state(&mut self, state: ReplayState) {
        assert!(state.items.len() <= self.capacity, "snapshot larger than capacity");
        assert_eq!(state.items.len(), state.weights.len(), "weights/items mismatch");
        assert_eq!(state.items.len(), state.inserted_at.len(), "ages/items mismatch");
        self.items = state.items;
        self.inserted_at = state.inserted_at;
        self.next_slot = state.next_slot;
        self.max_priority = state.max_priority;
        self.pushes = state.pushes;
        self.tree.fill(0.0);
        for (i, w) in state.weights.into_iter().enumerate() {
            self.set_weight(i, w);
        }
    }

    /// Current buffer health: occupancy, sampling skew, and the age
    /// distribution of stored transitions.
    pub fn health(&self) -> ReplayHealth {
        let newest = self.pushes.saturating_sub(1);
        let ages = self.inserted_at.iter().map(|&at| newest - at);
        let (mut sum, mut max) = (0u64, 0u64);
        for age in ages {
            sum += age;
            max = max.max(age);
        }
        ReplayHealth {
            occupancy: self.items.len(),
            capacity: self.capacity,
            pushes: self.pushes,
            priority_spread: self.priority_spread(),
            mean_age: if self.items.is_empty() {
                0.0
            } else {
                sum as f64 / self.items.len() as f64
            },
            max_age: max,
        }
    }

    /// Updates the priority `p_z` of a transition after replaying it.
    pub fn update_priority(&mut self, idx: usize, priority: f64) {
        assert!(idx < self.items.len(), "index out of range");
        let p = priority.max(1e-6);
        self.max_priority = self.max_priority.max(p);
        self.set_weight(idx, p.powf(self.xi));
    }

    /// Samples `batch` transitions. Returns `(index, &transition,
    /// importance_weight)` triples; weights are normalized so the largest in
    /// the batch is 1 (Eq. 29).
    pub fn sample<R: Rng>(&self, batch: usize, rng: &mut R) -> Vec<(usize, &Transition, f64)> {
        assert!(!self.items.is_empty(), "cannot sample from an empty buffer");
        let total = self.tree[1];
        let n = self.items.len() as f64;
        let mut out = Vec::with_capacity(batch);
        let mut max_w = 0.0f64;
        let mut picks = Vec::with_capacity(batch);
        for _ in 0..batch {
            let target = rng.random::<f64>() * total;
            let idx = self.locate(target);
            let prob = self.tree[self.capacity + idx] / total;
            let w = (n * prob).powf(-self.beta);
            max_w = max_w.max(w);
            picks.push((idx, w));
        }
        for (idx, w) in picks {
            out.push((idx, &self.items[idx], w / max_w));
        }
        out
    }

    /// Ratio of the largest to the smallest stored sampling weight — a
    /// diagnostic for how skewed prioritized sampling currently is (1.0 =
    /// uniform). An empty buffer has no spread, so this returns the neutral
    /// 1.0 instead of panicking on `max()/min()` of nothing; the same guard
    /// covers an all-zero tree (possible before any priority update when
    /// `xi` drives weights to zero).
    pub fn priority_spread(&self) -> f64 {
        let leaves = &self.tree[self.capacity..self.capacity + self.items.len()];
        let mut max = f64::NEG_INFINITY;
        let mut min = f64::INFINITY;
        for &w in leaves {
            max = max.max(w);
            min = min.min(w);
        }
        if leaves.is_empty() || min <= 0.0 {
            return 1.0;
        }
        max / min
    }

    fn set_weight(&mut self, idx: usize, weight: f64) {
        let mut node = self.capacity + idx;
        self.tree[node] = weight;
        while node > 1 {
            node /= 2;
            self.tree[node] = self.tree[2 * node] + self.tree[2 * node + 1];
        }
    }

    /// Descends the sum-tree to the leaf covering cumulative mass `target`.
    fn locate(&self, mut target: f64) -> usize {
        let mut node = 1usize;
        while node < self.capacity {
            let left = 2 * node;
            if target <= self.tree[left] || self.tree[left + 1] == 0.0 {
                node = left;
            } else {
                target -= self.tree[left];
                node = left + 1;
            }
        }
        (node - self.capacity).min(self.items.len().saturating_sub(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn t(reward: f32) -> Transition {
        Transition { state: vec![0.0; 4], action: 0, reward, next_state: vec![0.0; 4], done: false }
    }

    #[test]
    fn ring_buffer_evicts_oldest() {
        let mut buf = PrioritizedReplay::new(3, 0.6, 0.4);
        for i in 0..5 {
            buf.push(t(i as f32));
        }
        assert_eq!(buf.len(), 3);
        let rewards: Vec<f32> = buf.items.iter().map(|x| x.reward).collect();
        // Slots 0 and 1 were overwritten by items 3 and 4.
        assert_eq!(rewards, vec![3.0, 4.0, 2.0]);
    }

    #[test]
    fn high_priority_items_sampled_more() {
        let mut buf = PrioritizedReplay::new(8, 1.0, 0.0);
        for i in 0..8 {
            buf.push(t(i as f32));
        }
        for i in 0..8 {
            buf.update_priority(i, if i == 3 { 100.0 } else { 1.0 });
        }
        let mut rng = StdRng::seed_from_u64(1);
        let mut hits = 0;
        let mut total = 0;
        for _ in 0..200 {
            for (idx, _, _) in buf.sample(4, &mut rng) {
                total += 1;
                if idx == 3 {
                    hits += 1;
                }
            }
        }
        let frac = hits as f64 / total as f64;
        assert!(frac > 0.7, "priority-100 item sampled only {frac} of the time");
    }

    #[test]
    fn xi_zero_is_uniform() {
        let mut buf = PrioritizedReplay::new(4, 0.0, 0.0);
        for i in 0..4 {
            buf.push(t(i as f32));
        }
        buf.update_priority(0, 1000.0);
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = [0usize; 4];
        for _ in 0..400 {
            for (idx, _, _) in buf.sample(2, &mut rng) {
                counts[idx] += 1;
            }
        }
        let max = *counts.iter().max().unwrap() as f64;
        let min = *counts.iter().min().unwrap() as f64;
        assert!(max / min < 1.6, "counts too skewed for uniform: {counts:?}");
        // With xi = 0 every stored weight is p^0 = 1, so the spread is 1.
        assert_eq!(buf.priority_spread(), 1.0);
    }

    #[test]
    fn priority_spread_is_neutral_on_empty_buffer() {
        // Regression: max()/min() over zero leaves must not panic.
        let buf = PrioritizedReplay::new(4, 0.6, 0.4);
        assert_eq!(buf.priority_spread(), 1.0);
    }

    #[test]
    fn priority_spread_tracks_skew() {
        let mut buf = PrioritizedReplay::new(4, 1.0, 0.0);
        for i in 0..4 {
            buf.push(t(i as f32));
        }
        for i in 0..4 {
            buf.update_priority(i, 1.0);
        }
        assert!((buf.priority_spread() - 1.0).abs() < 1e-12);
        buf.update_priority(2, 8.0);
        assert!((buf.priority_spread() - 8.0).abs() < 1e-9);
    }

    #[test]
    fn health_tracks_occupancy_and_ages() {
        let mut buf = PrioritizedReplay::new(3, 0.6, 0.4);
        assert_eq!(buf.health().occupancy, 0);
        assert_eq!(buf.health().mean_age, 0.0);
        for i in 0..3 {
            buf.push(t(i as f32));
        }
        let h = buf.health();
        assert_eq!((h.occupancy, h.capacity, h.pushes), (3, 3, 3));
        // Ages are 2, 1, 0 pushes for the three slots.
        assert_eq!(h.max_age, 2);
        assert!((h.mean_age - 1.0).abs() < 1e-12);
        // Two evictions later the oldest survivor was pushed 2 pushes ago.
        buf.push(t(3.0));
        buf.push(t(4.0));
        let h = buf.health();
        assert_eq!((h.occupancy, h.pushes, h.max_age), (3, 5, 2));
    }

    #[test]
    fn importance_weights_are_normalized_and_downweight_frequent() {
        let mut buf = PrioritizedReplay::new(4, 1.0, 1.0);
        for i in 0..4 {
            buf.push(t(i as f32));
        }
        buf.update_priority(0, 10.0);
        for i in 1..4 {
            buf.update_priority(i, 1.0);
        }
        let mut rng = StdRng::seed_from_u64(3);
        let samples = buf.sample(64, &mut rng);
        let mut w_hot = f64::MAX;
        let mut w_cold: f64 = 0.0;
        for (idx, _, w) in &samples {
            assert!(*w <= 1.0 + 1e-12);
            if *idx == 0 {
                w_hot = w_hot.min(*w);
            } else {
                w_cold = w_cold.max(*w);
            }
        }
        assert!(w_hot < w_cold, "frequent item should carry smaller IS weight");
    }

    #[test]
    fn state_round_trip_resumes_the_exact_stream() {
        let mut live = PrioritizedReplay::new(4, 0.8, 0.5);
        for i in 0..6 {
            live.push(t(i as f32));
        }
        live.update_priority(1, 9.0);
        let snap = live.export_state();
        let mut resumed = PrioritizedReplay::new(4, 0.8, 0.5);
        resumed.import_state(snap);
        assert_eq!(resumed.health(), live.health());
        let mut ra = StdRng::seed_from_u64(5);
        let mut rb = StdRng::seed_from_u64(5);
        for _ in 0..20 {
            let a: Vec<(usize, f64)> =
                live.sample(3, &mut ra).into_iter().map(|(i, _, w)| (i, w)).collect();
            let b: Vec<(usize, f64)> =
                resumed.sample(3, &mut rb).into_iter().map(|(i, _, w)| (i, w)).collect();
            assert_eq!(a, b);
            live.push(t(9.0));
            resumed.push(t(9.0));
        }
    }

    #[test]
    #[should_panic(expected = "larger than capacity")]
    fn import_rejects_oversized_snapshot() {
        let mut big = PrioritizedReplay::new(8, 0.6, 0.4);
        for i in 0..6 {
            big.push(t(i as f32));
        }
        PrioritizedReplay::new(4, 0.6, 0.4).import_state(big.export_state());
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn sampling_empty_panics() {
        let buf = PrioritizedReplay::new(4, 0.5, 0.5);
        let mut rng = StdRng::seed_from_u64(0);
        let _ = buf.sample(1, &mut rng);
    }
}
