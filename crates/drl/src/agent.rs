use std::io;
use std::path::Path;

use fedmigr_nn::checkpoint;
use fedmigr_nn::params::{grad_vector, param_vector, set_param_vector};
use fedmigr_nn::{zoo, Layer, Model, Sgd};
use fedmigr_tensor::{argmax_slice, softmax_rows, Tensor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::noise::{OuNoise, OuState};
use crate::replay::{PrioritizedReplay, ReplayState, Transition};

/// Hyper-parameters of the EMPG agent (Alg. 1).
#[derive(Clone, Debug)]
pub struct AgentConfig {
    /// State-vector dimensionality (see [`crate::MigrationState`]).
    pub state_dim: usize,
    /// Number of destination clients `K` (the reduced action space).
    pub num_actions: usize,
    /// Hidden width of the actor and critic MLPs.
    pub hidden: usize,
    /// Actor learning rate.
    pub actor_lr: f32,
    /// Critic learning rate.
    pub critic_lr: f32,
    /// Discount factor γ.
    pub gamma: f32,
    /// Soft target-update coefficient τ (θ' ← τθ + (1-τ)θ').
    pub tau: f32,
    /// ρ-greedy exploration probability: with probability ρ the action
    /// comes from the relaxed-FLMM oracle instead of the policy network.
    pub rho: f64,
    /// Std of Gaussian noise added to actor logits during exploration.
    pub noise_std: f32,
    /// Use temporally correlated Ornstein-Uhlenbeck noise instead of white
    /// Gaussian noise for actor exploration (classic DDPG).
    pub ou_noise: bool,
    /// Replay-buffer capacity.
    pub replay_capacity: usize,
    /// Mini-batch size for updates.
    pub batch_size: usize,
    /// Prioritization exponent ξ (Eq. 26).
    pub xi: f64,
    /// Importance-sampling exponent (Eq. 29).
    pub beta: f64,
    /// Mixing weight ε between |TD| and |∇_a Q| in the priority (Eq. 25).
    pub priority_mix: f64,
    /// Minimum buffered transitions before learning starts.
    pub warmup: usize,
    /// RNG seed (network init, exploration, replay sampling).
    pub seed: u64,
}

impl AgentConfig {
    /// Sensible defaults for `K` destinations and the standard featurizer.
    pub fn new(state_dim: usize, num_actions: usize, seed: u64) -> Self {
        Self {
            state_dim,
            num_actions,
            hidden: 64,
            actor_lr: 1e-2,
            critic_lr: 1e-2,
            gamma: 0.95,
            tau: 0.05,
            rho: 0.2,
            noise_std: 0.3,
            ou_noise: false,
            replay_capacity: 4096,
            batch_size: 32,
            xi: 0.6,
            beta: 0.4,
            priority_mix: 0.7,
            warmup: 64,
            seed,
        }
    }
}

/// Learning-dynamics snapshot of one [`DdpgAgent::update`] step, kept for
/// introspection (the agent exposes the latest via
/// [`DdpgAgent::last_update_stats`]). All quantities are mini-batch
/// statistics of the step that produced them.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct UpdateStats {
    /// Mean critic estimate `Q(s, a)` over the batch.
    pub mean_q: f64,
    /// Mean absolute TD error `|Q(s, a) - h|`.
    pub mean_abs_td: f64,
    /// Largest absolute TD error in the batch.
    pub max_abs_td: f64,
    /// L2 norm of the critic's parameter gradient for this step.
    pub critic_grad_norm: f64,
    /// L2 norm of the actor's parameter gradient for this step.
    pub actor_grad_norm: f64,
}

/// Shannon entropy (nats) and saturation (largest probability) of a policy
/// distribution such as [`DdpgAgent::action_probs`]. Entropy near 0 with
/// saturation near 1 means the policy has collapsed onto one destination;
/// entropy near `ln K` means it is still effectively uniform.
pub fn policy_entropy_saturation(probs: &[f32]) -> (f64, f64) {
    let mut entropy = 0.0f64;
    let mut saturation = 0.0f64;
    for &p in probs {
        let p = p as f64;
        if p > 0.0 {
            entropy -= p * p.ln();
        }
        saturation = saturation.max(p);
    }
    (entropy, saturation)
}

/// Complete checkpoint capture of a [`DdpgAgent`]: all four networks, the
/// replay buffer, the exact RNG stream position, exploration-noise state,
/// the annealed ρ, and learning bookkeeping. Unlike [`DdpgAgent::save`]
/// (the deployment story: policy weights only), importing this resumes
/// training bit-for-bit.
#[derive(Clone, Debug, PartialEq)]
pub struct AgentState {
    /// Actor network parameters.
    pub actor: Vec<f32>,
    /// Critic network parameters.
    pub critic: Vec<f32>,
    /// Actor target-network parameters.
    pub actor_target: Vec<f32>,
    /// Critic target-network parameters.
    pub critic_target: Vec<f32>,
    /// Replay-buffer contents and priorities.
    pub replay: ReplayState,
    /// Raw RNG state (exploration + replay sampling stream).
    pub rng: [u64; 4],
    /// Ornstein–Uhlenbeck noise state, if configured.
    pub ou: Option<OuState>,
    /// ρ-greedy exploration probability at capture time (annealed at
    /// runtime via [`DdpgAgent::set_rho`]).
    pub rho: f64,
    /// Learning updates performed so far.
    pub updates: u64,
    /// Stats of the most recent update, if any.
    pub last_stats: Option<UpdateStats>,
}

/// DDPG agent for migration-policy generation.
///
/// The actor maps a state to a softmax distribution over destination
/// clients; the executed action is the argmax (continuous relaxation of the
/// discrete action space). The critic scores `(state, action-vector)` pairs
/// and is trained on the prioritized replay buffer; the actor ascends
/// `∇_θ Q(s, π(s))` via the chain rule through the softmax (Eq. 20).
pub struct DdpgAgent {
    config: AgentConfig,
    actor: Model,
    critic: Model,
    actor_target: Model,
    critic_target: Model,
    actor_opt: Sgd,
    critic_opt: Sgd,
    replay: PrioritizedReplay,
    rng: StdRng,
    ou: Option<OuNoise>,
    updates: u64,
    last_stats: Option<UpdateStats>,
}

impl DdpgAgent {
    /// Builds an agent from `config`.
    pub fn new(config: AgentConfig) -> Self {
        assert!(config.num_actions > 0 && config.state_dim > 0);
        assert!((0.0..=1.0).contains(&config.rho));
        let actor = zoo::mlp(
            config.state_dim,
            &[config.hidden, config.hidden],
            config.num_actions,
            config.seed,
        );
        let critic = zoo::mlp(
            config.state_dim + config.num_actions,
            &[config.hidden, config.hidden],
            1,
            config.seed.wrapping_add(1000),
        );
        let actor_target = actor.clone();
        let critic_target = critic.clone();
        let ou = config.ou_noise.then(|| {
            OuNoise::new(
                config.num_actions,
                0.15,
                0.0,
                config.noise_std,
                config.seed.wrapping_add(99),
            )
        });
        Self {
            actor_opt: Sgd::new(config.actor_lr),
            critic_opt: Sgd::new(config.critic_lr),
            replay: PrioritizedReplay::new(config.replay_capacity, config.xi, config.beta),
            rng: StdRng::seed_from_u64(config.seed.wrapping_add(7)),
            actor,
            critic,
            actor_target,
            critic_target,
            config,
            ou,
            updates: 0,
            last_stats: None,
        }
    }

    /// The agent's configuration.
    pub fn config(&self) -> &AgentConfig {
        &self.config
    }

    /// Number of learning updates performed so far.
    pub fn updates(&self) -> u64 {
        self.updates
    }

    /// Number of buffered transitions.
    pub fn replay_len(&self) -> usize {
        self.replay.len()
    }

    /// Health summary of the prioritized replay buffer.
    pub fn replay_health(&self) -> crate::replay::ReplayHealth {
        self.replay.health()
    }

    /// Learning-dynamics statistics of the most recent [`DdpgAgent::update`]
    /// that actually trained (`None` until warmup completes).
    pub fn last_update_stats(&self) -> Option<UpdateStats> {
        self.last_stats
    }

    /// Adjusts the ρ-greedy exploration probability at runtime (used to
    /// anneal from pure-oracle warmup towards the configured mix).
    pub fn set_rho(&mut self, rho: f64) {
        assert!((0.0..=1.0).contains(&rho));
        self.config.rho = rho;
    }

    /// Deterministic (greedy) action: argmax of the actor's softmax.
    pub fn select_greedy(&mut self, state: &[f32]) -> usize {
        argmax_slice(&self.action_probs(state))
    }

    /// The actor's softmax policy π(s|θ) over destinations.
    pub fn action_probs(&mut self, state: &[f32]) -> Vec<f32> {
        let x = Tensor::from_vec(vec![1, self.config.state_dim], state.to_vec());
        let logits = self.actor.forward(&x, false);
        softmax_rows(&logits).into_data()
    }

    /// ρ-greedy action selection: with probability ρ, delegate to the
    /// exploration oracle's scores (the relaxed-FLMM solution row for this
    /// client); otherwise use the policy network with logit noise.
    pub fn select_action(&mut self, state: &[f32], oracle_scores: Option<&[f64]>) -> usize {
        if let Some(scores) = oracle_scores {
            if self.rng.random::<f64>() < self.config.rho {
                assert_eq!(scores.len(), self.config.num_actions);
                let mut best = 0;
                for (j, &v) in scores.iter().enumerate() {
                    if v > scores[best] {
                        best = j;
                    }
                }
                return best;
            }
        }
        let x = Tensor::from_vec(vec![1, self.config.state_dim], state.to_vec());
        let mut logits = self.actor.forward(&x, false);
        if let Some(ou) = self.ou.as_mut() {
            for (l, n) in logits.data_mut().iter_mut().zip(ou.sample()) {
                *l += n;
            }
        } else if self.config.noise_std > 0.0 {
            let noise = Tensor::randn(logits.shape(), self.config.noise_std, &mut self.rng);
            logits.add_assign(&noise);
        }
        argmax_slice(logits.data())
    }

    /// Saves the actor and critic networks to `dir` as two checkpoint
    /// files. Target networks and optimizer state are not persisted: a
    /// loaded agent restarts fine-tuning from fresh targets, which is the
    /// standard deployment story ("pre-train offline, deploy, adapt").
    pub fn save(&mut self, dir: impl AsRef<Path>) -> io::Result<()> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        checkpoint::save(&mut self.actor, dir.join("actor.fmck"))?;
        checkpoint::save(&mut self.critic, dir.join("critic.fmck"))
    }

    /// Restores the actor and critic saved by [`DdpgAgent::save`]; target
    /// networks are re-cloned from the restored weights.
    pub fn load(&mut self, dir: impl AsRef<Path>) -> io::Result<()> {
        let dir = dir.as_ref();
        checkpoint::load(&mut self.actor, dir.join("actor.fmck"))?;
        checkpoint::load(&mut self.critic, dir.join("critic.fmck"))?;
        self.actor_target = self.actor.clone();
        self.critic_target = self.critic.clone();
        Ok(())
    }

    /// Captures the complete agent state for a run checkpoint.
    pub fn export_state(&mut self) -> AgentState {
        AgentState {
            actor: self.actor.params(),
            critic: self.critic.params(),
            actor_target: self.actor_target.params(),
            critic_target: self.critic_target.params(),
            replay: self.replay.export_state(),
            rng: self.rng.state(),
            ou: self.ou.as_ref().map(OuNoise::export_state),
            rho: self.config.rho,
            updates: self.updates,
            last_stats: self.last_stats,
        }
    }

    /// Restores state captured by [`DdpgAgent::export_state`] into an agent
    /// built from the same [`AgentConfig`]; training resumes bit-for-bit.
    pub fn import_state(&mut self, state: AgentState) {
        assert_eq!(state.actor.len(), self.actor.num_params(), "actor size mismatch");
        assert_eq!(state.critic.len(), self.critic.num_params(), "critic size mismatch");
        assert_eq!(state.ou.is_some(), self.ou.is_some(), "OU-noise configuration mismatch");
        self.actor.set_params(&state.actor);
        self.critic.set_params(&state.critic);
        self.actor_target.set_params(&state.actor_target);
        self.critic_target.set_params(&state.critic_target);
        self.replay.import_state(state.replay);
        self.rng = StdRng::from_state(state.rng);
        if let (Some(ou), Some(snap)) = (self.ou.as_mut(), state.ou) {
            ou.import_state(snap);
        }
        self.config.rho = state.rho;
        self.updates = state.updates;
        self.last_stats = state.last_stats;
    }

    /// Supervised (behavior-cloning) update of the actor towards choosing
    /// `action` in `state` — used while pre-training on the exploration
    /// oracle's decisions, before RL fine-tuning takes over. One
    /// cross-entropy gradient step on the actor.
    pub fn imitate(&mut self, state: &[f32], action: usize) {
        assert!(action < self.config.num_actions);
        let x = Tensor::from_vec(vec![1, self.config.state_dim], state.to_vec());
        let logits = self.actor.forward(&x, true);
        let mut grad = softmax_rows(&logits);
        grad.data_mut()[action] -= 1.0;
        self.actor.net_mut().zero_grad();
        self.actor.net_mut().backward(&grad);
        self.actor_opt.step(self.actor.net_mut());
    }

    /// Stores an experienced transition.
    pub fn observe(&mut self, t: Transition) {
        assert_eq!(t.state.len(), self.config.state_dim);
        assert!(t.action < self.config.num_actions);
        self.replay.push(t);
        fedmigr_telemetry::global()
            .registry()
            .gauge("fedmigr_replay_occupancy", &[])
            .set(self.replay.len() as f64);
    }

    /// Runs one learning update (critic regression to the TD target, actor
    /// policy-gradient ascent, priority refresh, target soft update).
    /// Returns the mean absolute TD error, or `None` while warming up.
    pub fn update(&mut self) -> Option<f32> {
        if self.replay.len() < self.config.warmup.max(self.config.batch_size) {
            return None;
        }
        let _span = fedmigr_telemetry::span!("drl::agent", "update");
        fedmigr_telemetry::global().registry().counter("fedmigr_drl_updates_total", &[]).inc();
        let b = self.config.batch_size;
        let s_dim = self.config.state_dim;
        let k = self.config.num_actions;
        let samples = self.replay.sample(b, &mut self.rng);
        let mut idxs = Vec::with_capacity(b);
        let mut states = Vec::with_capacity(b * s_dim);
        let mut next_states = Vec::with_capacity(b * s_dim);
        let mut actions = vec![0.0f32; b * k];
        let mut rewards = Vec::with_capacity(b);
        let mut dones = Vec::with_capacity(b);
        let mut weights = Vec::with_capacity(b);
        for (row, (idx, t, w)) in samples.into_iter().enumerate() {
            idxs.push(idx);
            states.extend_from_slice(&t.state);
            next_states.extend_from_slice(&t.next_state);
            actions[row * k + t.action] = 1.0;
            rewards.push(t.reward);
            dones.push(t.done);
            weights.push(w as f32);
        }
        let states = Tensor::from_vec(vec![b, s_dim], states);
        let next_states = Tensor::from_vec(vec![b, s_dim], next_states);
        let actions = Tensor::from_vec(vec![b, k], actions);

        // TD target h = r + γ Q'(s', π'(s')) (Eq. 21).
        let next_probs = softmax_rows(&self.actor_target.forward(&next_states, false));
        let next_q = self.critic_target.forward(&concat_cols(&next_states, &next_probs), false);
        let mut targets = Vec::with_capacity(b);
        for i in 0..b {
            let bootstrap = if dones[i] { 0.0 } else { self.config.gamma * next_q.data()[i] };
            targets.push(rewards[i] + bootstrap);
        }

        // Critic update: weighted squared TD error (Eqs. 22/23/27).
        let critic_in = concat_cols(&states, &actions);
        let q = self.critic.forward(&critic_in, true);
        let mut td = Vec::with_capacity(b);
        let mut grad_q = Vec::with_capacity(b);
        for i in 0..b {
            let e = q.data()[i] - targets[i];
            td.push(e);
            grad_q.push(2.0 * weights[i] * e / b as f32);
        }
        self.critic.net_mut().zero_grad();
        self.critic.net_mut().backward(&Tensor::from_vec(vec![b, 1], grad_q));
        let critic_grad_norm = l2_norm(&grad_vector(self.critic.net_mut()));
        self.critic_opt.step(self.critic.net_mut());

        // Actor update: ascend ∇_θ Q(s, π(s)) (Eqs. 20/24/28).
        let logits = self.actor.forward(&states, true);
        let probs = softmax_rows(&logits);
        let actor_critic_in = concat_cols(&states, &probs);
        let _q_pi = self.critic.forward(&actor_critic_in, false);
        self.critic.net_mut().zero_grad();
        let grad_in = self.critic.net_mut().backward(&Tensor::full(&[b, 1], -1.0 / b as f32));
        // Slice out ∂(−Q)/∂a and chain through the softmax.
        let mut grad_action = vec![0.0f32; b * k];
        let mut grad_action_norms = vec![0.0f32; b];
        for i in 0..b {
            let row = &grad_in.data()[i * (s_dim + k) + s_dim..(i + 1) * (s_dim + k)];
            grad_action[i * k..(i + 1) * k].copy_from_slice(row);
            grad_action_norms[i] = row.iter().map(|x| x * x).sum::<f32>().sqrt() * b as f32;
        }
        let grad_logits = softmax_backward(&probs, &grad_action, b, k);
        self.actor.net_mut().zero_grad();
        self.actor.net_mut().backward(&Tensor::from_vec(vec![b, k], grad_logits));
        let actor_grad_norm = l2_norm(&grad_vector(self.actor.net_mut()));
        self.actor_opt.step(self.actor.net_mut());
        // Drop the gradients the actor pass left in the critic.
        self.critic.net_mut().zero_grad();

        // Priority refresh: p_z = ε|φ_z| + (1-ε)|∇_a Q| (Eq. 25).
        let eps = self.config.priority_mix;
        for (row, &idx) in idxs.iter().enumerate() {
            let p = eps * td[row].abs() as f64 + (1.0 - eps) * grad_action_norms[row] as f64;
            self.replay.update_priority(idx, p);
        }

        self.soft_update_targets();
        self.updates += 1;
        let mean_abs_td = td.iter().map(|e| e.abs()).sum::<f32>() / b as f32;
        self.last_stats = Some(UpdateStats {
            mean_q: q.data().iter().map(|&v| v as f64).sum::<f64>() / b as f64,
            mean_abs_td: mean_abs_td as f64,
            max_abs_td: td.iter().map(|e| e.abs() as f64).fold(0.0, f64::max),
            critic_grad_norm,
            actor_grad_norm,
        });
        Some(mean_abs_td)
    }

    fn soft_update_targets(&mut self) {
        let tau = self.config.tau;
        for (net, target) in
            [(&mut self.actor, &mut self.actor_target), (&mut self.critic, &mut self.critic_target)]
        {
            let src = param_vector(net.net_mut());
            let mut dst = param_vector(target.net_mut());
            for (d, s) in dst.iter_mut().zip(&src) {
                *d = tau * s + (1.0 - tau) * *d;
            }
            set_param_vector(target.net_mut(), &dst);
        }
    }
}

fn l2_norm(xs: &[f32]) -> f64 {
    xs.iter().map(|&x| (x as f64) * (x as f64)).sum::<f64>().sqrt()
}

/// Concatenates two 2-D tensors along columns.
fn concat_cols(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.rows(), b.rows());
    let (r, ca, cb) = (a.rows(), a.cols(), b.cols());
    let mut out = Vec::with_capacity(r * (ca + cb));
    for i in 0..r {
        out.extend_from_slice(a.row(i));
        out.extend_from_slice(b.row(i));
    }
    Tensor::from_vec(vec![r, ca + cb], out)
}

/// Jacobian-vector product of the row-wise softmax:
/// `g_logits = p ⊙ (g - <g, p>)` per row.
fn softmax_backward(probs: &Tensor, grad: &[f32], b: usize, k: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; b * k];
    for i in 0..b {
        let p = probs.row(i);
        let g = &grad[i * k..(i + 1) * k];
        let dot: f32 = p.iter().zip(g).map(|(x, y)| x * y).sum();
        for j in 0..k {
            out[i * k + j] = p[j] * (g[j] - dot);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bandit_config(k: usize) -> AgentConfig {
        let mut c = AgentConfig::new(3, k, 9);
        c.warmup = 32;
        c.batch_size = 16;
        c.noise_std = 1.0;
        c.rho = 0.0;
        c.gamma = 0.0; // Pure bandit: no bootstrapping.
        c
    }

    #[test]
    fn greedy_action_is_in_range_and_deterministic() {
        let mut agent = DdpgAgent::new(AgentConfig::new(4, 5, 1));
        let s = vec![0.1, 0.2, 0.3, 0.4];
        let a1 = agent.select_greedy(&s);
        let a2 = agent.select_greedy(&s);
        assert!(a1 < 5);
        assert_eq!(a1, a2);
    }

    #[test]
    fn action_probs_sum_to_one() {
        let mut agent = DdpgAgent::new(AgentConfig::new(4, 6, 2));
        let p = agent.action_probs(&[0.0, 1.0, -1.0, 0.5]);
        assert_eq!(p.len(), 6);
        assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn oracle_is_used_when_rho_is_one() {
        let mut cfg = AgentConfig::new(2, 4, 3);
        cfg.rho = 1.0;
        let mut agent = DdpgAgent::new(cfg);
        let scores = vec![0.0, 0.0, 5.0, 0.0];
        for _ in 0..10 {
            assert_eq!(agent.select_action(&[0.0, 0.0], Some(&scores)), 2);
        }
    }

    #[test]
    fn learns_a_contextual_bandit() {
        // Reward 1 for action 0, else 0, constant state. After training the
        // greedy policy must pick action 0.
        let k = 4;
        let mut agent = DdpgAgent::new(bandit_config(k));
        let state = vec![1.0f32, 0.0, 0.0];
        for step in 0..600 {
            let a = agent.select_action(&state, None);
            let r = if a == 0 { 1.0 } else { 0.0 };
            agent.observe(Transition {
                state: state.clone(),
                action: a,
                reward: r,
                next_state: state.clone(),
                done: true,
            });
            agent.update();
            let _ = step;
        }
        assert!(agent.updates() > 100);
        assert_eq!(agent.select_greedy(&state), 0, "agent failed to learn the bandit");
        let probs = agent.action_probs(&state);
        assert!(probs[0] > 0.5, "probs {probs:?}");
    }

    #[test]
    fn ou_noise_exploration_still_learns_the_bandit() {
        let mut cfg = bandit_config(4);
        cfg.ou_noise = true;
        cfg.noise_std = 0.5;
        let mut agent = DdpgAgent::new(cfg);
        let state = vec![1.0f32, 0.0, 0.0];
        for _ in 0..600 {
            let a = agent.select_action(&state, None);
            let r = if a == 0 { 1.0 } else { 0.0 };
            agent.observe(Transition {
                state: state.clone(),
                action: a,
                reward: r,
                next_state: state.clone(),
                done: true,
            });
            agent.update();
        }
        assert_eq!(agent.select_greedy(&state), 0);
    }

    #[test]
    fn save_load_round_trips_the_policy() {
        let dir = std::env::temp_dir().join("fedmigr-agent-test");
        let mut a = DdpgAgent::new(AgentConfig::new(4, 3, 5));
        // Nudge the actor away from init so the round trip is non-trivial.
        for _ in 0..5 {
            a.imitate(&[0.1, 0.2, 0.3, 0.4], 1);
        }
        a.save(&dir).unwrap();
        let mut b = DdpgAgent::new(AgentConfig::new(4, 3, 999));
        assert_ne!(a.action_probs(&[0.0; 4]), b.action_probs(&[0.0; 4]));
        b.load(&dir).unwrap();
        assert_eq!(a.action_probs(&[0.0; 4]), b.action_probs(&[0.0; 4]));
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn full_state_round_trip_resumes_training_bit_for_bit() {
        let mut cfg = bandit_config(4);
        cfg.ou_noise = true;
        let mut live = DdpgAgent::new(cfg.clone());
        let state = vec![1.0f32, 0.0, 0.0];
        let step = |agent: &mut DdpgAgent| {
            let a = agent.select_action(&state, None);
            agent.observe(Transition {
                state: state.clone(),
                action: a,
                reward: if a == 0 { 1.0 } else { 0.0 },
                next_state: state.clone(),
                done: true,
            });
            (a, agent.update())
        };
        for _ in 0..80 {
            step(&mut live);
        }
        live.set_rho(0.11);
        let snap = live.export_state();
        // A fresh agent from a different seed, then restored.
        let mut resumed = DdpgAgent::new(AgentConfig { seed: 777, ..cfg });
        resumed.import_state(snap);
        assert_eq!(resumed.updates(), live.updates());
        assert_eq!(resumed.config().rho, 0.11);
        for _ in 0..40 {
            assert_eq!(step(&mut live), step(&mut resumed));
        }
        assert_eq!(live.action_probs(&state), resumed.action_probs(&state));
        assert_eq!(live.last_update_stats(), resumed.last_update_stats());
    }

    #[test]
    fn load_rejects_mismatched_architecture() {
        let dir = std::env::temp_dir().join("fedmigr-agent-mismatch");
        let mut a = DdpgAgent::new(AgentConfig::new(4, 3, 5));
        a.save(&dir).unwrap();
        let mut b = DdpgAgent::new(AgentConfig::new(6, 3, 5));
        assert!(b.load(&dir).is_err());
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn update_stats_surface_finite_learning_signals() {
        let mut agent = DdpgAgent::new(bandit_config(4));
        assert!(agent.last_update_stats().is_none(), "no stats before the first update");
        let state = vec![1.0f32, 0.0, 0.0];
        for _ in 0..64 {
            let a = agent.select_action(&state, None);
            agent.observe(Transition {
                state: state.clone(),
                action: a,
                reward: if a == 0 { 1.0 } else { 0.0 },
                next_state: state.clone(),
                done: true,
            });
            agent.update();
        }
        let stats = agent.last_update_stats().expect("updates ran past warmup");
        assert!(stats.mean_q.is_finite());
        assert!(stats.mean_abs_td >= 0.0 && stats.mean_abs_td.is_finite());
        assert!(stats.max_abs_td >= stats.mean_abs_td - 1e-12);
        assert!(stats.critic_grad_norm > 0.0 && stats.critic_grad_norm.is_finite());
        assert!(stats.actor_grad_norm.is_finite());
        let health = agent.replay_health();
        assert_eq!(health.occupancy, 64);
        assert_eq!(health.pushes, 64);
    }

    #[test]
    fn entropy_and_saturation_span_uniform_to_collapsed() {
        let (h_uniform, s_uniform) = policy_entropy_saturation(&[0.25; 4]);
        assert!((h_uniform - (4.0f64).ln()).abs() < 1e-6);
        assert!((s_uniform - 0.25).abs() < 1e-9);
        let (h_point, s_point) = policy_entropy_saturation(&[0.0, 1.0, 0.0]);
        assert_eq!(h_point, 0.0);
        assert_eq!(s_point, 1.0);
    }

    #[test]
    fn update_returns_none_before_warmup() {
        let mut agent = DdpgAgent::new(AgentConfig::new(3, 2, 0));
        assert!(agent.update().is_none());
        agent.observe(Transition {
            state: vec![0.0; 3],
            action: 0,
            reward: 0.0,
            next_state: vec![0.0; 3],
            done: false,
        });
        assert!(agent.update().is_none());
    }

    #[test]
    #[should_panic]
    fn observe_rejects_bad_action() {
        let mut agent = DdpgAgent::new(AgentConfig::new(3, 2, 0));
        agent.observe(Transition {
            state: vec![0.0; 3],
            action: 7,
            reward: 0.0,
            next_state: vec![0.0; 3],
            done: false,
        });
    }
}
