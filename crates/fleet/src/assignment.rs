//! Interval-tree data assignment across the fleet.
//!
//! Follows the `select_data_for_clients` exemplar (SNIPPETS.md, psyche):
//! the client order is deterministically shuffled, then each client in
//! shuffled order claims the next contiguous run of global sample indices
//! (`[sum, sum + num)`), until the whole space is covered. The result is an
//! exact cover of `[0, total)` — every global sample belongs to exactly one
//! client — queryable in `O(log K)` by binary search over interval starts.
//!
//! The shuffle matters: under the blocked label layout of
//! [`fedmigr_data::SyntheticWorld`], contiguous ranges are non-IID (a few
//! dominant classes per client), and shuffling the *claim order* decouples
//! a client's id (and therefore its LAN) from which classes it holds.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// An exact-cover assignment of global sample ranges to fleet clients.
#[derive(Clone, Debug)]
pub struct FleetAssignment {
    /// Interval start per position, ascending; position `p` covers
    /// `[starts[p], starts[p + 1])` (the last runs to `total`).
    starts: Vec<u64>,
    /// Owning client id per position.
    owner: Vec<u32>,
    /// `(start, len)` per client id.
    per_client: Vec<(u64, u64)>,
    total: u64,
}

impl FleetAssignment {
    /// Builds the assignment for `num_clients` clients. Each client claims
    /// `base_samples ± jitter` samples (at least one), where the jitter is
    /// hash-derived per client in `[0, base_samples / 4]`, so fleet data
    /// sizes are heterogeneous but deterministic in `seed`.
    ///
    /// # Panics
    /// Panics when `num_clients` or `base_samples` is zero.
    pub fn build(num_clients: usize, base_samples: usize, seed: u64) -> Self {
        assert!(num_clients > 0, "assignment needs at least one client");
        assert!(base_samples > 0, "clients need at least one sample");
        let mut order: Vec<u32> = (0..num_clients as u32).collect();
        let mut rng = StdRng::seed_from_u64(seed ^ 0xA551_6E00);
        order.shuffle(&mut rng);
        let jitter_span = (base_samples / 4) as u64;
        let mut starts = Vec::with_capacity(num_clients);
        let mut owner = Vec::with_capacity(num_clients);
        let mut per_client = vec![(0u64, 0u64); num_clients];
        let mut sum = 0u64;
        for &id in &order {
            let num = if jitter_span == 0 {
                base_samples as u64
            } else {
                let delta = rng.random_range(0..=2 * jitter_span) as i64 - jitter_span as i64;
                ((base_samples as i64 + delta).max(1)) as u64
            };
            starts.push(sum);
            owner.push(id);
            per_client[id as usize] = (sum, num);
            sum += num;
        }
        Self { starts, owner, per_client, total: sum }
    }

    /// Total number of assigned samples (the cover is `[0, total)`).
    pub fn total_samples(&self) -> u64 {
        self.total
    }

    /// Number of clients.
    pub fn num_clients(&self) -> usize {
        self.per_client.len()
    }

    /// The client owning global `sample`.
    ///
    /// # Panics
    /// Panics when `sample >= total_samples()`.
    pub fn client_of(&self, sample: u64) -> u32 {
        assert!(sample < self.total, "sample {sample} outside the assigned space");
        let pos = self.starts.partition_point(|&s| s <= sample) - 1;
        self.owner[pos]
    }

    /// The `(start, len)` global range of `client`.
    pub fn range_of(&self, client: u32) -> (u64, u64) {
        self.per_client[client as usize]
    }

    /// Iterates the cover in ascending start order as `(start, end, client)`
    /// half-open triples.
    pub fn intervals(&self) -> impl Iterator<Item = (u64, u64, u32)> + '_ {
        (0..self.starts.len()).map(move |p| {
            let end = self.starts.get(p + 1).copied().unwrap_or(self.total);
            (self.starts[p], end, self.owner[p])
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn assignment_is_deterministic() {
        let a = FleetAssignment::build(50, 16, 9);
        let b = FleetAssignment::build(50, 16, 9);
        assert_eq!(a.total_samples(), b.total_samples());
        for s in 0..a.total_samples() {
            assert_eq!(a.client_of(s), b.client_of(s));
        }
    }

    #[test]
    fn shuffle_decouples_id_from_position() {
        let a = FleetAssignment::build(64, 10, 3);
        let first_owner = a.intervals().next().unwrap().2;
        let in_id_order = a.intervals().map(|(_, _, c)| c).collect::<Vec<_>>();
        let mut sorted = in_id_order.clone();
        sorted.sort_unstable();
        assert_ne!(in_id_order, sorted, "claim order must be shuffled");
        let _ = first_owner;
    }

    proptest! {
        /// The tentpole contract: for random fleets, the interval
        /// assignment covers every global sample exactly once — intervals
        /// are contiguous, disjoint, jointly exhaustive, and `client_of`
        /// agrees with `range_of` everywhere.
        #[test]
        fn exact_cover_for_random_fleets(
            num_clients in 1usize..200,
            base in 1usize..40,
            seed in any::<u64>(),
        ) {
            let a = FleetAssignment::build(num_clients, base, seed);
            // Intervals tile [0, total) with no gaps or overlaps.
            let mut expect_start = 0u64;
            let mut seen = vec![false; num_clients];
            for (start, end, client) in a.intervals() {
                prop_assert_eq!(start, expect_start);
                prop_assert!(end > start);
                prop_assert!(!seen[client as usize], "client appears twice");
                seen[client as usize] = true;
                let (cs, cl) = a.range_of(client);
                prop_assert_eq!((cs, cs + cl), (start, end));
                expect_start = end;
            }
            prop_assert_eq!(expect_start, a.total_samples());
            prop_assert!(seen.iter().all(|&s| s), "every client owns a range");
            // Point queries agree with the owning range on every boundary
            // and interior sample.
            for (start, end, client) in a.intervals() {
                prop_assert_eq!(a.client_of(start), client);
                prop_assert_eq!(a.client_of(end - 1), client);
                let mid = start + (end - start) / 2;
                prop_assert_eq!(a.client_of(mid), client);
            }
            // Per-client sizes sum to the total and respect the jitter band.
            let sum: u64 = (0..num_clients as u32).map(|c| a.range_of(c).1).sum();
            prop_assert_eq!(sum, a.total_samples());
            for c in 0..num_clients as u32 {
                let (_, len) = a.range_of(c);
                prop_assert!(len >= 1);
                prop_assert!(len <= (base + base / 4) as u64);
            }
        }
    }

    #[test]
    #[should_panic(expected = "outside the assigned space")]
    fn out_of_range_query_panics() {
        let a = FleetAssignment::build(3, 4, 1);
        let _ = a.client_of(a.total_samples());
    }
}
