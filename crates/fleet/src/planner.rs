//! The factored migration planner.
//!
//! The dense FedMigr planner scores every (client, destination) pair — a
//! `K × K` matrix the QP relaxation and the greedy assignment both walk,
//! which is what caps the dense runner at Fig.-6 scale. The factored
//! planner never forms that matrix. Per round it:
//!
//! 1. groups the **active** participants by LAN,
//! 2. builds each participant a **shortlist**: its active same-LAN peers
//!    (LAN-local candidate pruning — the cheap, high-bandwidth moves;
//!    hash-sampled down to `4·top_m` when a LAN's active group is larger)
//!    plus up to `top_m` hash-sampled cross-LAN actives, kept only if they
//!    score among the participant's `top_m` best candidates,
//! 3. greedily commits the best-scoring (source, destination) pairs into a
//!    permutation of the active set.
//!
//! Per-participant work is O(min(LAN-actives, 4·top_m) + top_m) — total
//! planning cost grows *linearly* in the number of participants regardless
//! of how the actives cluster, and (at fixed sampling fraction) linearly in
//! `K`, versus the dense path's `K²`. The DDPG policy steers the plan through
//! `desired_lan`: candidates inside a source's desired destination LAN get
//! the same score boost the dense runner gives the agent's chosen
//! destination.

/// Per-LAN aggregates of the active participant set — the pooled view the
/// fixed-dimension DDPG state and the `L × L` pooled QP consume.
#[derive(Clone, Debug)]
pub struct LanProfile {
    /// Active participants per LAN.
    pub counts: Vec<u32>,
    /// Mean label marginal of each LAN's active participants (zeros for a
    /// LAN with no actives this round).
    pub mean_marginal: Vec<Vec<f64>>,
}

impl LanProfile {
    /// Aggregates the active set: `lans[i]` is the LAN of active position
    /// `i`, `marginals[i]` its label marginal.
    pub fn build(lans: &[u32], marginals: &[&[f32]], num_lans: usize, num_classes: usize) -> Self {
        assert_eq!(lans.len(), marginals.len());
        let mut counts = vec![0u32; num_lans];
        let mut mean = vec![vec![0.0f64; num_classes]; num_lans];
        for (&lan, m) in lans.iter().zip(marginals) {
            counts[lan as usize] += 1;
            for (acc, &v) in mean[lan as usize].iter_mut().zip(*m) {
                *acc += v as f64;
            }
        }
        for (row, &c) in mean.iter_mut().zip(&counts) {
            if c > 0 {
                for v in row.iter_mut() {
                    *v /= c as f64;
                }
            }
        }
        Self { counts, mean_marginal: mean }
    }

    /// Number of LANs.
    pub fn num_lans(&self) -> usize {
        self.counts.len()
    }

    /// Half-L1 distance from `marginal` to each LAN's active mean (0 for
    /// empty LANs) — the per-LAN distance row of the pooled DDPG state.
    pub fn distance_row(&self, marginal: &[f32]) -> Vec<f64> {
        self.mean_marginal
            .iter()
            .zip(&self.counts)
            .map(|(mean, &c)| if c == 0 { 0.0 } else { half_l1(marginal, mean) })
            .collect()
    }

    /// Pooled `L × L` benefit matrix: `benefit[a][b]` is the half-L1
    /// distance between LAN `a`'s and LAN `b`'s active mean marginals
    /// (migrating a model between differently-distributed LANs exposes it
    /// to complementary data). Rows/columns of empty LANs are zero.
    #[allow(clippy::needless_range_loop)] // symmetric fill: both indices write
    pub fn benefit_matrix(&self) -> Vec<Vec<f64>> {
        let l = self.num_lans();
        let mut out = vec![vec![0.0f64; l]; l];
        for a in 0..l {
            if self.counts[a] == 0 {
                continue;
            }
            for b in (a + 1)..l {
                if self.counts[b] == 0 {
                    continue;
                }
                let d = half_l1_f64(&self.mean_marginal[a], &self.mean_marginal[b]);
                out[a][b] = d;
                out[b][a] = d;
            }
        }
        out
    }
}

fn half_l1(a: &[f32], b: &[f64]) -> f64 {
    0.5 * a.iter().zip(b).map(|(&x, &y)| (x as f64 - y).abs()).sum::<f64>()
}

fn half_l1_f64(a: &[f64], b: &[f64]) -> f64 {
    0.5 * a.iter().zip(b).map(|(&x, &y)| (x - y).abs()).sum::<f64>()
}

/// Configuration of [`plan_migrations`].
#[derive(Clone, Copy, Debug)]
pub struct FleetPlannerConfig {
    /// Shortlist width: cross-LAN candidates sampled per participant, and
    /// the cap on retained candidates after scoring.
    pub top_m: usize,
    /// Cost weight λ trading distribution benefit against transfer cost.
    pub lambda: f64,
    /// Seed of the cross-LAN candidate sampling hash.
    pub seed: u64,
}

/// One scored migration the planner committed.
#[derive(Clone, Copy, Debug)]
pub struct PlannedMove {
    /// Source active position.
    pub from: usize,
    /// Destination active position.
    pub to: usize,
}

/// Plans this round's migrations over the active set. Inputs are indexed
/// by *active position* `0..n`: `lans[i]` / `marginals[i]` describe active
/// participant `i`, `desired_lan[i]` is the DDPG policy's destination LAN
/// for it, and `cost(i, j)` is the normalized transfer cost of moving
/// `i`'s model to `j` (the caller derives it from the fleet topology).
///
/// Returns a permutation `dest` of `0..n` (`dest[i] = i` means the model
/// stays home), mirroring the dense planner's contract.
pub fn plan_migrations(
    cfg: &FleetPlannerConfig,
    epoch: u64,
    lans: &[u32],
    marginals: &[&[f32]],
    desired_lan: &[u32],
    mut cost: impl FnMut(usize, usize) -> f64,
) -> Vec<usize> {
    let n = lans.len();
    assert_eq!(marginals.len(), n);
    assert_eq!(desired_lan.len(), n);
    if n == 0 {
        return Vec::new();
    }
    let num_lans = lans.iter().copied().max().unwrap() as usize + 1;
    let mut lan_groups: Vec<Vec<u32>> = vec![Vec::new(); num_lans];
    for (i, &lan) in lans.iter().enumerate() {
        lan_groups[lan as usize].push(i as u32);
    }

    // Score every shortlisted pair. Each participant contributes at most
    // `same-LAN actives + top_m` candidate evaluations and keeps its top_m.
    let mut scored: Vec<(f64, u32, u32)> = Vec::with_capacity(n * cfg.top_m);
    let mut mine: Vec<(f64, u32)> = Vec::new();
    for i in 0..n {
        mine.clear();
        let mut consider = |i: usize, j: usize, mine: &mut Vec<(f64, u32)>| {
            if i == j {
                return;
            }
            let mut s = half_l1_f32(marginals[i], marginals[j]) - cfg.lambda * cost(i, j);
            if lans[j] == desired_lan[i] {
                // The dense runner boosts the agent's chosen destination by
                // 0.25 before the greedy assignment; do the same at LAN
                // granularity.
                s += 0.25;
            }
            mine.push((s, j as u32));
        };
        // Same-LAN candidates: exhaustive for small groups, hash-sampled
        // down to `4·top_m` draws when a LAN's active group is large, so a
        // round concentrated in one giant LAN still plans in linear time.
        let group = &lan_groups[lans[i] as usize];
        let local_cap = 4 * cfg.top_m.max(1);
        if group.len() <= local_cap + 1 {
            for &j in group {
                consider(i, j as usize, &mut mine);
            }
        } else {
            let mut picked = 0usize;
            for t in 0..2 * local_cap {
                if picked >= local_cap {
                    break;
                }
                let idx = (splitmix(
                    cfg.seed ^ epoch.wrapping_mul(0xA076_1D64_78BD_642F),
                    ((i as u64) << 32) | (1 << 31) | t as u64,
                ) % group.len() as u64) as usize;
                let j = group[idx] as usize;
                if j != i {
                    consider(i, j, &mut mine);
                    picked += 1;
                }
            }
        }
        // Hash-sampled cross-LAN candidates: deterministic in (seed, epoch,
        // source), at most 2·top_m draws so a mostly-one-LAN round cannot
        // stall the sampler.
        let mut picked = 0usize;
        for t in 0..2 * cfg.top_m {
            if picked >= cfg.top_m {
                break;
            }
            let j = (splitmix(
                cfg.seed ^ epoch.wrapping_mul(0xD6E8_FEB8_6659_FD93),
                ((i as u64) << 32) | t as u64,
            ) % n as u64) as usize;
            if j != i && lans[j] != lans[i] {
                consider(i, j, &mut mine);
                picked += 1;
            }
        }
        // Keep the participant's top_m best candidates (deterministic
        // tiebreak on the destination id).
        mine.sort_unstable_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
        mine.dedup_by_key(|c| c.1);
        for &(s, j) in mine.iter().take(cfg.top_m.max(1)) {
            scored.push((s, i as u32, j));
        }
    }

    // Greedy global commit, best score first — the shortlist analogue of
    // the dense `greedy_assignment_masked`.
    scored.sort_unstable_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2)));
    let mut dest: Vec<Option<usize>> = vec![None; n];
    let mut hosted = vec![false; n];
    for &(score, i, j) in &scored {
        let (i, j) = (i as usize, j as usize);
        if score <= 0.0 {
            break;
        }
        if dest[i].is_none() && !hosted[j] {
            dest[i] = Some(j);
            hosted[j] = true;
        }
    }
    // Unassigned sources keep their own slot when free, else take the
    // first free host, so the result is always a permutation.
    for i in 0..n {
        if dest[i].is_none() && !hosted[i] {
            dest[i] = Some(i);
            hosted[i] = true;
        }
    }
    let mut free = (0..n).filter(|&j| !hosted[j]);
    let out: Vec<usize> = (0..n)
        .map(|i| dest[i].unwrap_or_else(|| free.next().expect("host counts must balance")))
        .collect();
    debug_assert!(is_permutation(&out));
    out
}

fn half_l1_f32(a: &[f32], b: &[f32]) -> f64 {
    0.5 * a.iter().zip(b).map(|(&x, &y)| (x as f64 - y as f64).abs()).sum::<f64>()
}

fn is_permutation(dest: &[usize]) -> bool {
    let mut seen = vec![false; dest.len()];
    dest.iter().all(|&d| d < seen.len() && !std::mem::replace(&mut seen[d], true))
}

/// Splitmix-style finalizer over a (seed, payload) pair.
fn splitmix(seed: u64, x: u64) -> u64 {
    let mut z = seed ^ x.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> FleetPlannerConfig {
        FleetPlannerConfig { top_m: 4, lambda: 0.3, seed: 9 }
    }

    /// n actives spread round-robin over `l` LANs with hash-varied
    /// two-class marginals.
    fn fixture(n: usize, l: usize) -> (Vec<u32>, Vec<Vec<f32>>) {
        let lans: Vec<u32> = (0..n).map(|i| (i % l) as u32).collect();
        let marginals: Vec<Vec<f32>> = (0..n)
            .map(|i| {
                let p = (splitmix(3, i as u64) % 1000) as f32 / 1000.0;
                vec![p, 1.0 - p]
            })
            .collect();
        (lans, marginals)
    }

    fn refs(m: &[Vec<f32>]) -> Vec<&[f32]> {
        m.iter().map(|v| v.as_slice()).collect()
    }

    #[test]
    fn plan_is_always_a_permutation() {
        for (n, l) in [(1usize, 1usize), (2, 1), (7, 3), (50, 4), (333, 10)] {
            let (lans, marginals) = fixture(n, l);
            let desired: Vec<u32> = (0..n).map(|i| ((i + 1) % l) as u32).collect();
            let dest = plan_migrations(&cfg(), 3, &lans, &refs(&marginals), &desired, |_, _| 0.1);
            assert!(is_permutation(&dest), "n={n} l={l}: {dest:?}");
        }
    }

    #[test]
    fn plan_is_deterministic() {
        let (lans, marginals) = fixture(64, 4);
        let desired = vec![1u32; 64];
        let a = plan_migrations(&cfg(), 5, &lans, &refs(&marginals), &desired, |i, j| {
            ((i + j) % 7) as f64 * 0.05
        });
        let b = plan_migrations(&cfg(), 5, &lans, &refs(&marginals), &desired, |i, j| {
            ((i + j) % 7) as f64 * 0.05
        });
        assert_eq!(a, b);
    }

    #[test]
    fn desired_lan_boost_steers_the_plan() {
        // Two LANs, identical marginals everywhere (no distribution
        // signal), zero cost: only the boost differentiates candidates, so
        // every migration the plan commits lands in the desired LAN.
        let n = 20;
        let lans: Vec<u32> = (0..n).map(|i| (i % 2) as u32).collect();
        let marginals = vec![vec![0.5f32, 0.5]; n];
        let desired: Vec<u32> = lans.iter().map(|&l| 1 - l).collect();
        let dest = plan_migrations(&cfg(), 1, &lans, &refs(&marginals), &desired, |_, _| 0.0);
        let moved = dest.iter().enumerate().filter(|&(i, &d)| d != i).count();
        assert!(moved > 0, "boost must commit some moves");
        for (i, &d) in dest.iter().enumerate() {
            if d != i {
                assert_eq!(lans[d], desired[i], "move {i}->{d} ignored the desired LAN");
            }
        }
    }

    #[test]
    fn high_cost_suppresses_migration() {
        let (lans, marginals) = fixture(30, 3);
        let desired = lans.clone(); // no boost anywhere (stay home)
        let dest = plan_migrations(
            &FleetPlannerConfig { top_m: 4, lambda: 100.0, seed: 1 },
            0,
            &lans,
            &refs(&marginals),
            &desired,
            |_, _| 1.0,
        );
        // Self is never a candidate; with every pair scored negative the
        // greedy pass commits nothing and everyone stays home.
        assert!(dest.iter().enumerate().all(|(i, &d)| d == i), "{dest:?}");
    }

    #[test]
    fn shortlists_bound_scored_pairs() {
        // The linear-cost contract: the planner evaluates O(n·(lan_active
        // + top_m)) pairs, never n².
        let (lans, marginals) = fixture(400, 40); // 10 actives per LAN
        let desired = vec![0u32; 400];
        let mut evals = 0usize;
        let _ = plan_migrations(&cfg(), 2, &lans, &refs(&marginals), &desired, |_, _| {
            evals += 1;
            0.0
        });
        // Per source: ≤ 9 same-LAN + ≤ 4 sampled cross-LAN = 13, far
        // below n = 400.
        assert!(evals <= 400 * 13, "evaluated {evals} pairs");
    }

    #[test]
    fn one_giant_lan_still_plans_in_linear_time() {
        // Everyone active in a single LAN: without the same-LAN sampling
        // cap this would score n² pairs.
        let (lans, marginals) = fixture(400, 1);
        let desired = vec![0u32; 400];
        let mut evals = 0usize;
        let dest = plan_migrations(&cfg(), 2, &lans, &refs(&marginals), &desired, |_, _| {
            evals += 1;
            0.0
        });
        // Per source: ≤ 2·(4·top_m) same-LAN draws + ≤ 2·top_m cross-LAN
        // attempts (all rejected — there is no other LAN).
        assert!(evals <= 400 * 32, "evaluated {evals} pairs");
        assert!(is_permutation(&dest));
    }

    #[test]
    fn lan_profile_aggregates_and_distances() {
        let lans = vec![0u32, 0, 1];
        let m0 = vec![1.0f32, 0.0];
        let m1 = vec![0.0f32, 1.0];
        let m2 = vec![0.5f32, 0.5];
        let profile = LanProfile::build(&lans, &[&m0, &m1, &m2], 3, 2);
        assert_eq!(profile.counts, vec![2, 1, 0]);
        assert_eq!(profile.mean_marginal[0], vec![0.5, 0.5]);
        assert_eq!(profile.mean_marginal[1], vec![0.5, 0.5]);
        let row = profile.distance_row(&m0);
        assert!((row[0] - 0.5).abs() < 1e-9);
        assert_eq!(row[2], 0.0, "empty LAN contributes zero distance");
        let b = profile.benefit_matrix();
        assert_eq!(b[0][1], b[1][0]);
        assert!(b[2].iter().all(|&v| v == 0.0));
    }
}
