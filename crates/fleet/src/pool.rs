//! Dormant client stubs and the activation pool.
//!
//! A fleet client spends almost its whole life as a [`ClientStub`]: a
//! compact record of *who it is* (id, LAN, device tier), *what data it
//! holds* (a global sample range plus the exact label marginal, in closed
//! form), and *what survives dormancy* (its batch-order RNG stream, its
//! migration counter, its participation count). Everything heavy — the
//! materialized dataset and the model — exists only while the client is
//! activated for a round, so peak memory scales with participants-per-round
//! rather than fleet size.
//!
//! A dormant client keeps **no model**: fleet mode uses standard
//! cross-device semantics (sampled participants receive the current global
//! model, train, and report back), so re-activation installs the global
//! model rather than resurrecting stale local weights.

use fedmigr_data::{Dataset, SyntheticWorld};
use fedmigr_net::DeviceTier;

use crate::{FleetAssignment, FleetTopology};

/// What survives a client's retirement back to a stub.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DormantState {
    /// Raw batch-order RNG state, once the client has been activated at
    /// least once (`None` = never activated; the first activation seeds the
    /// stream from [`ClientStub::seed`]).
    pub rng: Option<[u64; 4]>,
    /// Foreign models hosted so far.
    pub migrations_received: u64,
    /// Rounds this client participated in.
    pub participations: u64,
}

/// A dormant fleet client — everything needed to activate it, in ~100
/// bytes.
#[derive(Clone, Debug)]
pub struct ClientStub {
    /// Client id (also its index in the pool).
    pub id: u32,
    /// LAN the client lives in.
    pub lan: u32,
    /// Device tier (compute speed class).
    pub tier: DeviceTier,
    /// Start of the client's global sample range.
    pub start: u64,
    /// Length of the client's global sample range.
    pub len: u64,
    /// Exact label marginal of the range (sums to 1).
    pub marginal: Vec<f32>,
    /// Seed of the client's private RNG streams.
    pub seed: u64,
    /// State carried across dormancy.
    pub dormant: DormantState,
}

/// The fleet's client population: a [`SyntheticWorld`] to regenerate data
/// from, the interval assignment, and one stub per client.
pub struct ClientPool {
    world: SyntheticWorld,
    stubs: Vec<ClientStub>,
}

impl ClientPool {
    /// Builds the pool: one stub per client of `topo`, with sample ranges
    /// from `assignment` and label marginals computed in closed form from
    /// `world`. Device tiers alternate by id parity, matching
    /// `ClientCompute::testbed_mix`.
    ///
    /// # Panics
    /// Panics when the assignment and topology disagree on fleet size.
    pub fn new(
        world: SyntheticWorld,
        assignment: FleetAssignment,
        topo: &FleetTopology,
        seed: u64,
    ) -> Self {
        assert_eq!(
            assignment.num_clients(),
            topo.num_clients(),
            "assignment/topology fleet size mismatch"
        );
        let stubs = (0..assignment.num_clients() as u32)
            .map(|id| {
                let (start, len) = assignment.range_of(id);
                let counts = world.class_counts_in(start, len);
                let marginal: Vec<f32> =
                    counts.iter().map(|&c| c as f32 / len.max(1) as f32).collect();
                ClientStub {
                    id,
                    lan: topo.lan_of(id as usize) as u32,
                    tier: if id % 2 == 0 { DeviceTier::Tx2 } else { DeviceTier::Nx },
                    start,
                    len,
                    marginal,
                    seed: stub_seed(seed, id),
                    dormant: DormantState::default(),
                }
            })
            .collect();
        Self { world, stubs }
    }

    /// Fleet size `K`.
    pub fn len(&self) -> usize {
        self.stubs.len()
    }

    /// Whether the pool is empty (it never is — construction requires a
    /// topology with clients).
    pub fn is_empty(&self) -> bool {
        self.stubs.is_empty()
    }

    /// The stub of client `id`.
    pub fn stub(&self, id: usize) -> &ClientStub {
        &self.stubs[id]
    }

    /// The world samples are regenerated from.
    pub fn world(&self) -> &SyntheticWorld {
        &self.world
    }

    /// Materializes client `id`'s dataset from its stub range —
    /// deterministic, so activate/retire/activate yields identical bytes.
    pub fn materialize(&self, id: usize) -> Dataset {
        let stub = &self.stubs[id];
        self.world.materialize(stub.start, stub.len)
    }

    /// Retires client `id` back to its stub, banking the state that
    /// survives dormancy.
    pub fn retire(&mut self, id: usize, rng: [u64; 4], migrations_received: u64) {
        let d = &mut self.stubs[id].dormant;
        d.rng = Some(rng);
        d.migrations_received = migrations_received;
        d.participations += 1;
    }

    /// Snapshot of every stub's dormant state, in id order (for run
    /// checkpoints).
    pub fn export_dormant(&self) -> Vec<DormantState> {
        self.stubs.iter().map(|s| s.dormant.clone()).collect()
    }

    /// Restores dormant state captured by [`ClientPool::export_dormant`].
    ///
    /// # Panics
    /// Panics when the snapshot's fleet size disagrees with this pool.
    pub fn import_dormant(&mut self, dormant: Vec<DormantState>) {
        assert_eq!(dormant.len(), self.stubs.len(), "dormant snapshot fleet size mismatch");
        for (stub, d) in self.stubs.iter_mut().zip(dormant) {
            stub.dormant = d;
        }
    }
}

/// Per-client activation seed, decorrelated from the fleet seed.
fn stub_seed(seed: u64, id: u32) -> u64 {
    let mut z = seed ^ (id as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FleetTopologyConfig;
    use fedmigr_data::SyntheticConfig;

    fn pool(k: usize, per_lan: usize) -> ClientPool {
        let world = SyntheticWorld::new(&SyntheticConfig::c10_like(4, 5), 8);
        let assignment = FleetAssignment::build(k, 12, 5);
        let topo = FleetTopology::new(FleetTopologyConfig::uniform(k / per_lan, per_lan, 5));
        ClientPool::new(world, assignment, &topo, 5)
    }

    #[test]
    fn stub_marginals_match_materialized_data_exactly() {
        let p = pool(20, 5);
        for id in [0usize, 7, 19] {
            let stub = p.stub(id);
            let ds = p.materialize(id);
            assert_eq!(ds.len() as u64, stub.len);
            let counts = ds.class_counts();
            for (c, &m) in counts.iter().zip(&stub.marginal) {
                assert!((m - *c as f32 / ds.len() as f32).abs() < 1e-6);
            }
            let sum: f32 = stub.marginal.iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn materialization_is_repeatable() {
        let p = pool(12, 4);
        let a = p.materialize(3);
        let b = p.materialize(3);
        assert_eq!(a.full_batch().0, b.full_batch().0);
        assert_eq!(a.labels(), b.labels());
    }

    #[test]
    fn retire_banks_dormant_state_and_round_trips() {
        let mut p = pool(8, 4);
        assert_eq!(p.stub(2).dormant, DormantState::default());
        p.retire(2, [1, 2, 3, 4], 5);
        p.retire(2, [9, 9, 9, 9], 6);
        let d = &p.stub(2).dormant;
        assert_eq!(d.rng, Some([9, 9, 9, 9]));
        assert_eq!(d.migrations_received, 6);
        assert_eq!(d.participations, 2);
        let snap = p.export_dormant();
        let mut q = pool(8, 4);
        q.import_dormant(snap);
        assert_eq!(q.stub(2).dormant, p.stub(2).dormant);
    }

    #[test]
    fn tiers_alternate_like_testbed_mix() {
        let p = pool(8, 4);
        assert_eq!(p.stub(0).tier, DeviceTier::Tx2);
        assert_eq!(p.stub(1).tier, DeviceTier::Nx);
        assert_eq!(p.stub(6).tier, DeviceTier::Tx2);
    }

    #[test]
    #[should_panic(expected = "fleet size mismatch")]
    fn mismatched_sizes_are_rejected() {
        let world = SyntheticWorld::new(&SyntheticConfig::c10_like(4, 5), 8);
        let assignment = FleetAssignment::build(10, 12, 5);
        let topo = FleetTopology::new(FleetTopologyConfig::uniform(2, 4, 5));
        let _ = ClientPool::new(world, assignment, &topo, 5);
    }
}
