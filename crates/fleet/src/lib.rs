//! fedmigr-fleet: lazy sharded client state and factored migration
//! planning for 10k–1M simulated FedMigr clients.
//!
//! The dense FedMigr runner materializes every client — dataset, model,
//! and `K × K` topology/score matrices — which caps simulations near
//! `K ≈ 100`. This crate virtualizes the population so peak memory and
//! per-round planning cost scale with *participants per round* instead:
//!
//! - [`FleetAssignment`] — interval-tree assignment of a global sample
//!   space to clients (exact cover, proptest-verified).
//! - [`FleetTopology`] — the MEC LAN topology in O(LANs) memory with
//!   closed-form hash-derived link classes.
//! - [`ClientPool`] / [`ClientStub`] — dormant clients as compact stubs;
//!   activation regenerates the dataset deterministically from
//!   [`fedmigr_data::SyntheticWorld`].
//! - [`plan_migrations`] / [`LanProfile`] — LAN-local candidate pruning
//!   plus top-M shortlists and pooled per-LAN aggregates, replacing the
//!   dense `K²` planning path.

mod assignment;
mod planner;
mod pool;
mod topology;

pub use assignment::FleetAssignment;
pub use planner::{plan_migrations, FleetPlannerConfig, LanProfile, PlannedMove};
pub use pool::{ClientPool, ClientStub, DormantState};
pub use topology::{FleetTopology, FleetTopologyConfig};
