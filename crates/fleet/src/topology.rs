//! A fleet-scale MEC topology in O(LANs) memory.
//!
//! [`fedmigr_net::Topology`] stores the C2C bandwidth and link-class
//! matrices densely — `K × K` entries, ~800 MB at `K = 10,000` — which by
//! itself sinks the fleet memory budget (peak RSS must scale with
//! participants-per-round, not `K`). [`FleetTopology`] stores only the LAN
//! layout and link parameters and derives any pair's bandwidth on demand:
//! intra-LAN links are fast, cross-LAN links are classed moderate/slow by a
//! splitmix hash of the unordered client pair (the dense topology draws the
//! classes from a sequential RNG over all pairs, which cannot be reproduced
//! in O(1), so the fleet topology is its own seeded world — fleet mode is a
//! new opt-in path, not a byte-compatible replay of the dense one).

use fedmigr_net::LinkClass;

/// Configuration of a [`FleetTopology`]. Bandwidths default to the paper's
/// edge test-bed (50 Mbps WAN, 400 Mbps LAN, 100/16 Mbps cross-LAN).
#[derive(Clone, Debug)]
pub struct FleetTopologyConfig {
    /// Number of clients in each LAN; the sum is the fleet size `K`.
    pub lan_sizes: Vec<usize>,
    /// C2S (WAN) bandwidth in bytes/second.
    pub c2s_bandwidth: f64,
    /// Intra-LAN C2C bandwidth in bytes/second.
    pub lan_bandwidth: f64,
    /// Bandwidth of `Moderate` cross-LAN links in bytes/second.
    pub cross_moderate_bandwidth: f64,
    /// Bandwidth of `Slow` cross-LAN links in bytes/second.
    pub cross_slow_bandwidth: f64,
    /// Probability that a cross-LAN link is `Slow`.
    pub slow_fraction: f64,
    /// Relative amplitude of per-epoch multiplicative bandwidth jitter in
    /// `[0, 1)`.
    pub jitter: f64,
    /// Seed for link-class hashing and jitter.
    pub seed: u64,
}

impl FleetTopologyConfig {
    /// The paper's edge defaults over `num_lans` LANs of `per_lan` clients.
    pub fn uniform(num_lans: usize, per_lan: usize, seed: u64) -> Self {
        Self {
            lan_sizes: vec![per_lan; num_lans],
            c2s_bandwidth: 6.25e6,
            lan_bandwidth: 5.0e7,
            cross_moderate_bandwidth: 1.25e7,
            cross_slow_bandwidth: 2.0e6,
            slow_fraction: 0.3,
            jitter: 0.0,
            seed,
        }
    }
}

/// Compact fleet topology: LAN offsets plus closed-form link derivation.
#[derive(Clone, Debug)]
pub struct FleetTopology {
    /// `offsets[l]..offsets[l + 1]` are the clients of LAN `l`.
    offsets: Vec<usize>,
    cfg: FleetTopologyConfig,
}

impl FleetTopology {
    /// Builds the topology.
    ///
    /// # Panics
    /// Panics on an empty fleet, a non-positive bandwidth, or jitter
    /// outside `[0, 1)`.
    pub fn new(cfg: FleetTopologyConfig) -> Self {
        let k: usize = cfg.lan_sizes.iter().sum();
        assert!(k > 0, "fleet topology needs at least one client");
        assert!(
            cfg.c2s_bandwidth > 0.0
                && cfg.lan_bandwidth > 0.0
                && cfg.cross_moderate_bandwidth > 0.0
                && cfg.cross_slow_bandwidth > 0.0,
            "bandwidths must be positive"
        );
        assert!((0.0..1.0).contains(&cfg.jitter), "jitter must be in [0, 1)");
        let mut offsets = Vec::with_capacity(cfg.lan_sizes.len() + 1);
        let mut sum = 0usize;
        offsets.push(0);
        for &s in &cfg.lan_sizes {
            assert!(s > 0, "every LAN needs at least one client");
            sum += s;
            offsets.push(sum);
        }
        Self { offsets, cfg }
    }

    /// Fleet size `K`.
    pub fn num_clients(&self) -> usize {
        *self.offsets.last().unwrap()
    }

    /// Number of LANs.
    pub fn num_lans(&self) -> usize {
        self.offsets.len() - 1
    }

    /// The link parameters this topology was built from.
    pub fn config(&self) -> &FleetTopologyConfig {
        &self.cfg
    }

    /// LAN index of client `i`.
    pub fn lan_of(&self, i: usize) -> usize {
        assert!(i < self.num_clients(), "client {i} out of range");
        // partition_point returns the first offset > i; offsets[0] = 0.
        self.offsets.partition_point(|&o| o <= i) - 1
    }

    /// The contiguous client range of LAN `l`.
    pub fn lan_members(&self, l: usize) -> std::ops::Range<usize> {
        self.offsets[l]..self.offsets[l + 1]
    }

    /// Whether clients `i` and `j` share a LAN.
    pub fn same_lan(&self, i: usize, j: usize) -> bool {
        self.lan_of(i) == self.lan_of(j)
    }

    /// C2S (WAN) bandwidth at `epoch` in bytes/second.
    pub fn c2s_bandwidth(&self, epoch: usize) -> f64 {
        self.cfg.c2s_bandwidth * self.jitter_factor(epoch, u64::MAX)
    }

    /// Speed class of the `i ↔ j` link, derived by hashing the unordered
    /// pair (stable across epochs, symmetric by construction).
    ///
    /// # Panics
    /// Panics on the degenerate `i == j` "link".
    pub fn link_class(&self, i: usize, j: usize) -> LinkClass {
        assert_ne!(i, j, "self-link has no class");
        if self.same_lan(i, j) {
            return LinkClass::Fast;
        }
        let (a, b) = (i.min(j) as u64, i.max(j) as u64);
        let h = splitmix(self.cfg.seed ^ 0x5A5A_1234, a.wrapping_mul(0x1_0000_0001) ^ b);
        let unit = (h >> 11) as f64 / (1u64 << 53) as f64;
        if unit < self.cfg.slow_fraction {
            LinkClass::Slow
        } else {
            LinkClass::Moderate
        }
    }

    /// C2C bandwidth between clients `i` and `j` at `epoch` in
    /// bytes/second, with per-epoch jitter applied.
    ///
    /// # Panics
    /// Panics on the degenerate `i == j` "link".
    pub fn c2c_bandwidth(&self, i: usize, j: usize, epoch: usize) -> f64 {
        let base = match self.link_class(i, j) {
            LinkClass::Fast => self.cfg.lan_bandwidth,
            LinkClass::Moderate => self.cfg.cross_moderate_bandwidth,
            LinkClass::Slow => self.cfg.cross_slow_bandwidth,
        };
        let (a, b) = (i.min(j) as u64, i.max(j) as u64);
        base * self.jitter_factor(epoch, a.wrapping_mul(0x1_0000_0001) ^ b)
    }

    /// Deterministic multiplicative jitter in `[1 - jitter, 1 + jitter]`.
    fn jitter_factor(&self, epoch: usize, link: u64) -> f64 {
        if self.cfg.jitter == 0.0 {
            return 1.0;
        }
        let h = splitmix(self.cfg.seed.wrapping_add(epoch as u64), link);
        let unit = (h >> 11) as f64 / (1u64 << 53) as f64;
        1.0 + self.cfg.jitter * (2.0 * unit - 1.0)
    }
}

/// Splitmix-style finalizer over a (seed, payload) pair.
fn splitmix(seed: u64, x: u64) -> u64 {
    let mut z = seed ^ x.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo() -> FleetTopology {
        FleetTopology::new(FleetTopologyConfig::uniform(4, 25, 7))
    }

    #[test]
    fn lan_membership_matches_offsets() {
        let t = topo();
        assert_eq!(t.num_clients(), 100);
        assert_eq!(t.num_lans(), 4);
        assert_eq!(t.lan_of(0), 0);
        assert_eq!(t.lan_of(24), 0);
        assert_eq!(t.lan_of(25), 1);
        assert_eq!(t.lan_of(99), 3);
        assert!(t.same_lan(0, 24));
        assert!(!t.same_lan(24, 25));
        assert_eq!(t.lan_members(2), 50..75);
    }

    #[test]
    fn links_are_symmetric_and_classed() {
        let t = topo();
        let (mut slow, mut total) = (0usize, 0usize);
        for i in 0..25 {
            for j in 25..100 {
                assert_eq!(t.link_class(i, j), t.link_class(j, i));
                assert_eq!(t.c2c_bandwidth(i, j, 3), t.c2c_bandwidth(j, i, 3));
                assert_ne!(t.link_class(i, j), LinkClass::Fast);
                total += 1;
                if t.link_class(i, j) == LinkClass::Slow {
                    slow += 1;
                }
            }
        }
        let frac = slow as f64 / total as f64;
        assert!((0.2..0.4).contains(&frac), "slow fraction {frac}");
        assert_eq!(t.link_class(0, 1), LinkClass::Fast);
        assert!(t.c2c_bandwidth(0, 1, 0) > t.c2s_bandwidth(0));
    }

    #[test]
    fn jitter_is_bounded_and_varies() {
        let mut cfg = FleetTopologyConfig::uniform(2, 5, 3);
        cfg.jitter = 0.2;
        let t = FleetTopology::new(cfg);
        let base = topo().cfg.cross_moderate_bandwidth;
        let mut distinct = std::collections::HashSet::new();
        for e in 0..10 {
            let bw = t.c2c_bandwidth(0, 5, e);
            assert!(bw >= 2.0e6 * 0.8 && bw <= base * 1.2 + 1.0);
            distinct.insert(bw.to_bits());
        }
        assert!(distinct.len() > 5, "jitter should vary across epochs");
    }

    #[test]
    fn memory_is_independent_of_k() {
        // The whole point: a million-client topology is just the offsets.
        let t = FleetTopology::new(FleetTopologyConfig::uniform(100, 10_000, 1));
        assert_eq!(t.num_clients(), 1_000_000);
        assert_eq!(t.offsets.len(), 101);
        let _ = t.c2c_bandwidth(3, 999_999, 5);
    }

    #[test]
    #[should_panic(expected = "self-link")]
    fn self_link_panics() {
        let _ = topo().link_class(2, 2);
    }
}
