//! Effective-label-distribution tracking through the migration chain.
//!
//! The runner maintains one *mixture* vector per model slot — an EMA of the
//! label distribution the model in that slot recently trained on. Migration
//! permutes the vectors, aggregation resets them to the population; the
//! mixture is therefore the model's *virtual dataset* in the sense of the
//! paper's Sec. II-C. This module measures how far each virtual dataset
//! still is from the population using the normalized 1-D earth mover's
//! distance, which is the quantity FedMigr's migration chain is supposed to
//! contract.

use fedmigr_data::distribution::normalized_emd;

/// Fleet-wide EMD picture for one round.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct EmdSnapshot {
    /// Normalized EMD (`[0, 1]`) from each slot's mixture to the population.
    pub per_client: Vec<f64>,
    /// Mean over all slots.
    pub mean: f64,
    /// Worst slot.
    pub max: f64,
}

impl EmdSnapshot {
    /// Measures every mixture vector against the population distribution.
    pub fn measure(mix: &[Vec<f64>], population: &[f64]) -> Self {
        let per_client: Vec<f64> = mix.iter().map(|m| normalized_emd(m, population)).collect();
        let mean = if per_client.is_empty() {
            0.0
        } else {
            per_client.iter().sum::<f64>() / per_client.len() as f64
        };
        let max = per_client.iter().fold(0.0, |a: f64, &b| a.max(b));
        EmdSnapshot { per_client, mean, max }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_fleet_mean_and_max() {
        let pop = vec![0.5, 0.5];
        let mix = vec![vec![0.5, 0.5], vec![1.0, 0.0]];
        let s = EmdSnapshot::measure(&mix, &pop);
        assert_eq!(s.per_client.len(), 2);
        assert!(s.per_client[0].abs() < 1e-12, "population slot has zero EMD");
        assert!((s.per_client[1] - 0.5).abs() < 1e-12, "one-hot vs uniform over 2 labels");
        assert!((s.mean - 0.25).abs() < 1e-12);
        assert!((s.max - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_fleet_is_zero() {
        let s = EmdSnapshot::measure(&[], &[0.5, 0.5]);
        assert_eq!(s, EmdSnapshot::default());
    }
}
