//! The run flight recorder: a versioned JSONL artifact capturing one run's
//! learning dynamics round by round.
//!
//! Line kinds, in file order:
//!
//! 1. exactly one `{"kind":"header",...}` — schema version plus the run's
//!    identifying configuration;
//! 2. one `{"kind":"round",...}` per epoch — loss/accuracy/traffic plus the
//!    [`EmdSnapshot`], [`DriftSnapshot`], [`DrlSnapshot`] and
//!    [`GraphSnapshot`] diagnostics and the round's migration edge list;
//! 3. at most one `{"kind":"summary",...}` — run-level outcome;
//! 4. at most one `{"kind":"tolerances",...}` — regression budgets, present
//!    on checked-in baselines so `fedmigr_diff` runs self-contained in CI.
//!
//! Serialization reuses the telemetry crate's hand-written JSON helpers
//! (`json_num`/`json_str`) and its [`JsonValue`] parser, keeping the whole
//! workspace on one JSON dialect with no external dependency. All numbers
//! are written as JSON floats (integers gain `.0`), matching the trace
//! schema.

use std::collections::BTreeMap;
use std::io::{BufWriter, Write};

use fedmigr_telemetry::trace::{json_num, json_str, JsonValue};

use crate::diff::Tolerances;
use crate::drift::DriftSnapshot;
use crate::drl_probe::DrlSnapshot;
use crate::emd::EmdSnapshot;
use crate::graph::{EdgeOutcome, GraphSnapshot, MigrationEdge};

/// Current flight-recording schema version.
pub const FLIGHT_VERSION: u64 = 1;

/// Identifying configuration of the recorded run.
#[derive(Clone, Debug, PartialEq)]
pub struct FlightHeader {
    /// Schema version ([`FLIGHT_VERSION`] when written by this build).
    pub version: u64,
    /// Scheme name (`"FedMigr"`, `"FedAvg"`, ...).
    pub scheme: String,
    /// Number of clients.
    pub clients: usize,
    /// Configured epoch budget.
    pub epochs: usize,
    /// Run seed.
    pub seed: u64,
    /// Aggregation interval (`M + 1`).
    pub agg_interval: usize,
    /// Wire-codec name.
    pub codec: String,
}

/// One epoch's diagnostics.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RoundRecord {
    /// 1-based epoch.
    pub epoch: usize,
    /// Mean weighted local training loss.
    pub train_loss: f64,
    /// Test accuracy, when this was an evaluation epoch.
    pub test_accuracy: Option<f64>,
    /// Cumulative virtual seconds.
    pub sim_time: f64,
    /// Cumulative client↔server bytes.
    pub c2s_bytes: u64,
    /// Cumulative intra-LAN client-to-client bytes.
    pub c2c_local_bytes: u64,
    /// Cumulative cross-LAN client-to-client bytes.
    pub c2c_global_bytes: u64,
    /// Cumulative virtual seconds in local training.
    pub phase_train_s: f64,
    /// Cumulative virtual seconds on the client↔server path.
    pub phase_c2s_s: f64,
    /// Cumulative virtual seconds migrating models.
    pub phase_migration_s: f64,
    /// Cumulative virtual seconds stalled in backoff.
    pub phase_backoff_s: f64,
    /// Virtual-dataset EMD picture (the runner's mixture, which aggregation
    /// resets to the population: what the *next* round starts from).
    pub emd: EmdSnapshot,
    /// Training-history EMD picture: the same mixture tracked through the
    /// migration chain but never reset by aggregation — the label
    /// distribution of the data that actually generated each model
    /// replica's gradients. FedAvg keeps this pinned at the local
    /// distribution (each model only ever trains on its host's shard);
    /// migration is what drives it down.
    pub train_emd: EmdSnapshot,
    /// Client-drift picture (absent when parameters were not sampled).
    pub drift: Option<DriftSnapshot>,
    /// DDPG introspection (absent for non-DRL schemes).
    pub drl: Option<DrlSnapshot>,
    /// Migration-graph statistics.
    pub graph: GraphSnapshot,
    /// The round's migration edge list.
    pub migrations: Vec<MigrationEdge>,
}

/// Run-level outcome written when the run finishes.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FlightSummary {
    /// Epochs actually run.
    pub epochs_run: usize,
    /// Last evaluated accuracy.
    pub final_accuracy: f64,
    /// Best evaluated accuracy.
    pub best_accuracy: f64,
    /// Total wire bytes.
    pub total_bytes: u64,
    /// Total virtual seconds.
    pub sim_time: f64,
    /// Intra-LAN migrations executed.
    pub migrations_local: usize,
    /// Cross-LAN migrations executed.
    pub migrations_global: usize,
    /// Fleet-mean virtual-dataset EMD at the final round.
    pub final_emd_mean: f64,
    /// Whether the run hit its target accuracy.
    pub target_reached: bool,
    /// Whether the run ran out of resource budget.
    pub budget_exhausted: bool,
}

/// Streaming JSONL writer for a flight recording.
pub struct FlightRecorder {
    out: BufWriter<Box<dyn Write + Send>>,
}

impl FlightRecorder {
    /// Opens (truncating) `path` for recording.
    pub fn create(path: &str) -> std::io::Result<Self> {
        let file = std::fs::File::create(path)?;
        Ok(Self::to_writer(Box::new(file)))
    }

    /// Records into an arbitrary writer (tests use a `Vec<u8>` proxy).
    pub fn to_writer(w: Box<dyn Write + Send>) -> Self {
        FlightRecorder { out: BufWriter::new(w) }
    }

    /// Reopens an interrupted recording for appending, truncated back to
    /// `keep_epoch`: the header, any tolerances line and every round line
    /// with `epoch <= keep_epoch` survive **byte for byte** (reserializing
    /// could perturb float formatting and break resume byte-identity);
    /// rounds past the checkpoint, any summary, and a torn final line left
    /// by a crash are dropped.
    pub fn resume(path: &str, keep_epoch: usize) -> std::io::Result<Self> {
        let text = std::fs::read_to_string(path)?;
        let mut kept = String::with_capacity(text.len());
        for line in text.lines() {
            let t = line.trim();
            if t.is_empty() {
                continue;
            }
            let keep = match JsonValue::parse(t) {
                // A line the crash tore mid-write.
                Err(_) => false,
                Ok(v) => {
                    let obj = v.as_object();
                    let kind = obj.and_then(|o| o.get("kind")).and_then(JsonValue::as_str);
                    match kind {
                        Some("header") | Some("tolerances") => true,
                        Some("round") => obj
                            .and_then(|o| o.get("epoch"))
                            .and_then(JsonValue::as_f64)
                            .is_some_and(|e| e as usize <= keep_epoch),
                        _ => false,
                    }
                }
            };
            if keep {
                kept.push_str(line);
                kept.push('\n');
            }
        }
        std::fs::write(path, &kept)?;
        let file = std::fs::OpenOptions::new().append(true).open(path)?;
        Ok(Self::to_writer(Box::new(file)))
    }

    /// Writes the header line. Call exactly once, first.
    pub fn header(&mut self, h: &FlightHeader) -> std::io::Result<()> {
        writeln!(
            self.out,
            "{{\"kind\":\"header\",\"version\":{},\"scheme\":{},\"clients\":{},\"epochs\":{},\"seed\":{},\"agg_interval\":{},\"codec\":{}}}",
            json_num(h.version as f64),
            json_str(&h.scheme),
            json_num(h.clients as f64),
            json_num(h.epochs as f64),
            json_num(h.seed as f64),
            json_num(h.agg_interval as f64),
            json_str(&h.codec),
        )
    }

    /// Writes one round line.
    pub fn round(&mut self, r: &RoundRecord) -> std::io::Result<()> {
        let mut line = String::with_capacity(512);
        line.push_str("{\"kind\":\"round\"");
        push_field(&mut line, "epoch", json_num(r.epoch as f64));
        push_field(&mut line, "train_loss", json_num(r.train_loss));
        let acc = r.test_accuracy.map(json_num).unwrap_or_else(|| "null".into());
        push_field(&mut line, "test_accuracy", acc);
        push_field(&mut line, "sim_time", json_num(r.sim_time));
        push_field(&mut line, "c2s_bytes", json_num(r.c2s_bytes as f64));
        push_field(&mut line, "c2c_local_bytes", json_num(r.c2c_local_bytes as f64));
        push_field(&mut line, "c2c_global_bytes", json_num(r.c2c_global_bytes as f64));
        push_field(
            &mut line,
            "phase",
            format!(
                "{{\"train_s\":{},\"c2s_s\":{},\"migration_s\":{},\"backoff_s\":{}}}",
                json_num(r.phase_train_s),
                json_num(r.phase_c2s_s),
                json_num(r.phase_migration_s),
                json_num(r.phase_backoff_s),
            ),
        );
        push_field(
            &mut line,
            "emd",
            format!(
                "{{\"mean\":{},\"max\":{},\"per_client\":{}}}",
                json_num(r.emd.mean),
                json_num(r.emd.max),
                num_array(&r.emd.per_client),
            ),
        );
        push_field(
            &mut line,
            "train_emd",
            format!(
                "{{\"mean\":{},\"max\":{},\"per_client\":{}}}",
                json_num(r.train_emd.mean),
                json_num(r.train_emd.max),
                num_array(&r.train_emd.per_client),
            ),
        );
        let drift = match &r.drift {
            None => "null".to_string(),
            Some(d) => format!(
                "{{\"mean_dist\":{},\"max_dist\":{},\"mean_cosine\":{},\"mean_divergence\":{},\"dist\":{},\"cosine\":{},\"divergence\":{}}}",
                json_num(d.mean_dist),
                json_num(d.max_dist),
                json_num(d.mean_cosine),
                json_num(d.mean_divergence),
                num_array(&d.dist),
                num_array(&d.cosine),
                num_array(&d.divergence),
            ),
        };
        push_field(&mut line, "drift", drift);
        let drl = match &r.drl {
            None => "null".to_string(),
            Some(d) => format!(
                "{{\"mean_entropy\":{},\"mean_saturation\":{},\"mean_q\":{},\"mean_abs_td\":{},\"max_abs_td\":{},\"critic_grad_norm\":{},\"actor_grad_norm\":{},\"replay_occupancy\":{},\"replay_capacity\":{},\"replay_priority_spread\":{},\"replay_mean_age\":{},\"replay_max_age\":{}}}",
                json_num(d.mean_entropy),
                json_num(d.mean_saturation),
                json_num(d.mean_q),
                json_num(d.mean_abs_td),
                json_num(d.max_abs_td),
                json_num(d.critic_grad_norm),
                json_num(d.actor_grad_norm),
                json_num(d.replay_occupancy as f64),
                json_num(d.replay_capacity as f64),
                json_num(d.replay_priority_spread),
                json_num(d.replay_mean_age),
                json_num(d.replay_max_age),
            ),
        };
        push_field(&mut line, "drl", drl);
        push_field(
            &mut line,
            "graph",
            format!(
                "{{\"attempted\":{},\"delivered\":{},\"fallbacks\":{},\"out_concentration\":{},\"in_concentration\":{},\"cycles\":{}}}",
                json_num(r.graph.attempted as f64),
                json_num(r.graph.delivered as f64),
                json_num(r.graph.fallbacks as f64),
                json_num(r.graph.out_concentration),
                json_num(r.graph.in_concentration),
                json_num(r.graph.cycles as f64),
            ),
        );
        let edges: Vec<String> = r
            .migrations
            .iter()
            .map(|e| {
                format!(
                    "{{\"src\":{},\"dst\":{},\"bytes\":{},\"time_s\":{},\"outcome\":{}}}",
                    json_num(e.src as f64),
                    json_num(e.dst as f64),
                    json_num(e.bytes as f64),
                    json_num(e.time_s),
                    json_str(e.outcome.name()),
                )
            })
            .collect();
        push_field(&mut line, "migrations", format!("[{}]", edges.join(",")));
        line.push('}');
        writeln!(self.out, "{line}")
    }

    /// Writes the summary line and flushes.
    pub fn finish(&mut self, s: &FlightSummary) -> std::io::Result<()> {
        writeln!(
            self.out,
            "{{\"kind\":\"summary\",\"epochs_run\":{},\"final_accuracy\":{},\"best_accuracy\":{},\"total_bytes\":{},\"sim_time\":{},\"migrations_local\":{},\"migrations_global\":{},\"final_emd_mean\":{},\"target_reached\":{},\"budget_exhausted\":{}}}",
            json_num(s.epochs_run as f64),
            json_num(s.final_accuracy),
            json_num(s.best_accuracy),
            json_num(s.total_bytes as f64),
            json_num(s.sim_time),
            json_num(s.migrations_local as f64),
            json_num(s.migrations_global as f64),
            json_num(s.final_emd_mean),
            s.target_reached,
            s.budget_exhausted,
        )?;
        self.out.flush()
    }

    /// Writes a tolerances line (baselines only).
    pub fn tolerances(&mut self, t: &Tolerances) -> std::io::Result<()> {
        writeln!(
            self.out,
            "{{\"kind\":\"tolerances\",\"accuracy_drop\":{},\"emd_rise\":{},\"bytes_rise_frac\":{},\"time_rise_frac\":{}}}",
            json_num(t.accuracy_drop),
            json_num(t.emd_rise),
            json_num(t.bytes_rise_frac),
            json_num(t.time_rise_frac),
        )?;
        self.out.flush()
    }
}

fn push_field(line: &mut String, key: &str, value: String) {
    line.push_str(",\"");
    line.push_str(key);
    line.push_str("\":");
    line.push_str(&value);
}

fn num_array(xs: &[f64]) -> String {
    let cells: Vec<String> = xs.iter().map(|&x| json_num(x)).collect();
    format!("[{}]", cells.join(","))
}

/// A parsed flight recording.
#[derive(Clone, Debug, PartialEq)]
pub struct FlightRecording {
    /// The run's header.
    pub header: FlightHeader,
    /// Per-round diagnostics, in epoch order.
    pub rounds: Vec<RoundRecord>,
    /// Run-level summary, if the run finished cleanly.
    pub summary: Option<FlightSummary>,
    /// Regression budgets, when this recording is a tagged baseline.
    pub tolerances: Option<Tolerances>,
}

impl FlightRecording {
    /// Reads and parses a recording from disk.
    pub fn from_file(path: &str) -> Result<Self, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        Self::parse(&text).map_err(|e| format!("{path}: {e}"))
    }

    /// Parses a recording from JSONL text.
    ///
    /// A recording whose process died mid-write may end in a torn final
    /// line; that line (and only that line — corruption anywhere earlier
    /// is still a hard error) is skipped with a WARN instead of failing
    /// the whole parse.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut header = None;
        let mut rounds = Vec::new();
        let mut summary = None;
        let mut tolerances = None;
        let lines: Vec<(usize, &str)> = text
            .lines()
            .enumerate()
            .map(|(idx, line)| (idx + 1, line.trim()))
            .filter(|(_, line)| !line.is_empty())
            .collect();
        let last = lines.len().saturating_sub(1);
        for (pos, &(n, line)) in lines.iter().enumerate() {
            let v = match JsonValue::parse(line) {
                Ok(v) => v,
                Err(e) if pos == last => {
                    fedmigr_telemetry::warn!(
                        "diag::flight",
                        "line {n}: skipping truncated final line ({e})"
                    );
                    break;
                }
                Err(e) => return Err(format!("line {n}: {e}")),
            };
            let obj = v.as_object().ok_or(format!("line {n}: not an object"))?;
            match obj.get("kind").and_then(JsonValue::as_str) {
                Some("header") => {
                    let version = get_u64(obj, "version", n)?;
                    if version > FLIGHT_VERSION {
                        return Err(format!(
                            "recording version {version} is newer than supported {FLIGHT_VERSION}"
                        ));
                    }
                    header = Some(FlightHeader {
                        version,
                        scheme: get_str(obj, "scheme", n)?,
                        clients: get_u64(obj, "clients", n)? as usize,
                        epochs: get_u64(obj, "epochs", n)? as usize,
                        seed: get_u64(obj, "seed", n)?,
                        agg_interval: get_u64(obj, "agg_interval", n)? as usize,
                        codec: get_str(obj, "codec", n)?,
                    });
                }
                Some("round") => rounds.push(parse_round(obj, n)?),
                Some("summary") => {
                    summary = Some(FlightSummary {
                        epochs_run: get_u64(obj, "epochs_run", n)? as usize,
                        final_accuracy: get_f64(obj, "final_accuracy", n)?,
                        best_accuracy: get_f64(obj, "best_accuracy", n)?,
                        total_bytes: get_u64(obj, "total_bytes", n)?,
                        sim_time: get_f64(obj, "sim_time", n)?,
                        migrations_local: get_u64(obj, "migrations_local", n)? as usize,
                        migrations_global: get_u64(obj, "migrations_global", n)? as usize,
                        final_emd_mean: get_f64(obj, "final_emd_mean", n)?,
                        target_reached: get_bool(obj, "target_reached", n)?,
                        budget_exhausted: get_bool(obj, "budget_exhausted", n)?,
                    });
                }
                Some("tolerances") => {
                    tolerances = Some(Tolerances {
                        accuracy_drop: get_f64(obj, "accuracy_drop", n)?,
                        emd_rise: get_f64(obj, "emd_rise", n)?,
                        bytes_rise_frac: get_f64(obj, "bytes_rise_frac", n)?,
                        time_rise_frac: get_f64(obj, "time_rise_frac", n)?,
                    });
                }
                other => return Err(format!("line {n}: unknown record kind {other:?}")),
            }
        }
        let header = header.ok_or("recording has no header line")?;
        Ok(FlightRecording { header, rounds, summary, tolerances })
    }

    /// Last evaluated accuracy (summary, else scanned from rounds).
    pub fn final_accuracy(&self) -> f64 {
        if let Some(s) = &self.summary {
            return s.final_accuracy;
        }
        self.rounds.iter().rev().find_map(|r| r.test_accuracy).unwrap_or(0.0)
    }

    /// Best evaluated accuracy (summary, else scanned from rounds).
    pub fn best_accuracy(&self) -> f64 {
        if let Some(s) = &self.summary {
            return s.best_accuracy;
        }
        self.rounds.iter().filter_map(|r| r.test_accuracy).fold(0.0, f64::max)
    }

    /// Total wire bytes (summary, else from the last round).
    pub fn total_bytes(&self) -> u64 {
        if let Some(s) = &self.summary {
            return s.total_bytes;
        }
        self.rounds
            .last()
            .map(|r| r.c2s_bytes + r.c2c_local_bytes + r.c2c_global_bytes)
            .unwrap_or(0)
    }

    /// Total virtual seconds (summary, else from the last round).
    pub fn sim_time(&self) -> f64 {
        if let Some(s) = &self.summary {
            return s.sim_time;
        }
        self.rounds.last().map(|r| r.sim_time).unwrap_or(0.0)
    }

    /// Fleet-mean EMD at the final recorded round.
    pub fn final_emd_mean(&self) -> f64 {
        self.rounds.last().map(|r| r.emd.mean).unwrap_or(0.0)
    }

    /// Fleet-mean EMD averaged over every recorded round.
    pub fn mean_emd_over_run(&self) -> f64 {
        if self.rounds.is_empty() {
            return 0.0;
        }
        self.rounds.iter().map(|r| r.emd.mean).sum::<f64>() / self.rounds.len() as f64
    }

    /// Fleet-mean *training-history* EMD averaged over every recorded round
    /// — the trajectory integral the FedMigr-vs-FedAvg comparison uses
    /// (never reset by aggregation, so it measures what migration alone
    /// buys).
    pub fn mean_train_emd_over_run(&self) -> f64 {
        if self.rounds.is_empty() {
            return 0.0;
        }
        self.rounds.iter().map(|r| r.train_emd.mean).sum::<f64>() / self.rounds.len() as f64
    }
}

type Obj = BTreeMap<String, JsonValue>;

fn get_f64(obj: &Obj, key: &str, line: usize) -> Result<f64, String> {
    obj.get(key).and_then(JsonValue::as_f64).ok_or(format!("line {line}: missing number {key:?}"))
}

fn get_u64(obj: &Obj, key: &str, line: usize) -> Result<u64, String> {
    Ok(get_f64(obj, key, line)?.max(0.0) as u64)
}

fn get_str(obj: &Obj, key: &str, line: usize) -> Result<String, String> {
    obj.get(key)
        .and_then(JsonValue::as_str)
        .map(str::to_string)
        .ok_or(format!("line {line}: missing string {key:?}"))
}

fn get_bool(obj: &Obj, key: &str, line: usize) -> Result<bool, String> {
    match obj.get(key) {
        Some(JsonValue::Bool(b)) => Ok(*b),
        _ => Err(format!("line {line}: missing bool {key:?}")),
    }
}

fn opt_f64(obj: &Obj, key: &str) -> Option<f64> {
    obj.get(key).and_then(JsonValue::as_f64)
}

fn get_num_array(obj: &Obj, key: &str, line: usize) -> Result<Vec<f64>, String> {
    match obj.get(key) {
        Some(JsonValue::Array(xs)) => xs
            .iter()
            .map(|x| x.as_f64().ok_or(format!("line {line}: non-number in {key:?}")))
            .collect(),
        _ => Err(format!("line {line}: missing array {key:?}")),
    }
}

fn sub_object<'a>(obj: &'a Obj, key: &str, line: usize) -> Result<Option<&'a Obj>, String> {
    match obj.get(key) {
        None | Some(JsonValue::Null) => Ok(None),
        Some(JsonValue::Object(m)) => Ok(Some(m)),
        Some(_) => Err(format!("line {line}: {key:?} is not an object or null")),
    }
}

fn parse_round(obj: &Obj, n: usize) -> Result<RoundRecord, String> {
    let phase = sub_object(obj, "phase", n)?.ok_or(format!("line {n}: missing \"phase\""))?;
    let emd = sub_object(obj, "emd", n)?.ok_or(format!("line {n}: missing \"emd\""))?;
    let train_emd =
        sub_object(obj, "train_emd", n)?.ok_or(format!("line {n}: missing \"train_emd\""))?;
    let graph = sub_object(obj, "graph", n)?.ok_or(format!("line {n}: missing \"graph\""))?;
    let drift = match sub_object(obj, "drift", n)? {
        None => None,
        Some(d) => Some(DriftSnapshot {
            dist: get_num_array(d, "dist", n)?,
            cosine: get_num_array(d, "cosine", n)?,
            divergence: get_num_array(d, "divergence", n)?,
            mean_dist: get_f64(d, "mean_dist", n)?,
            max_dist: get_f64(d, "max_dist", n)?,
            mean_cosine: get_f64(d, "mean_cosine", n)?,
            mean_divergence: get_f64(d, "mean_divergence", n)?,
        }),
    };
    let drl = match sub_object(obj, "drl", n)? {
        None => None,
        Some(d) => Some(DrlSnapshot {
            mean_entropy: get_f64(d, "mean_entropy", n)?,
            mean_saturation: get_f64(d, "mean_saturation", n)?,
            mean_q: get_f64(d, "mean_q", n)?,
            mean_abs_td: get_f64(d, "mean_abs_td", n)?,
            max_abs_td: get_f64(d, "max_abs_td", n)?,
            critic_grad_norm: get_f64(d, "critic_grad_norm", n)?,
            actor_grad_norm: get_f64(d, "actor_grad_norm", n)?,
            replay_occupancy: get_u64(d, "replay_occupancy", n)? as usize,
            replay_capacity: get_u64(d, "replay_capacity", n)? as usize,
            replay_priority_spread: get_f64(d, "replay_priority_spread", n)?,
            replay_mean_age: get_f64(d, "replay_mean_age", n)?,
            replay_max_age: get_f64(d, "replay_max_age", n)?,
        }),
    };
    let migrations = match obj.get("migrations") {
        Some(JsonValue::Array(xs)) => {
            let mut edges = Vec::with_capacity(xs.len());
            for x in xs {
                let e = x.as_object().ok_or(format!("line {n}: migration is not an object"))?;
                let outcome_name = get_str(e, "outcome", n)?;
                let outcome = EdgeOutcome::parse(&outcome_name)
                    .ok_or(format!("line {n}: unknown outcome {outcome_name:?}"))?;
                edges.push(MigrationEdge {
                    src: get_u64(e, "src", n)? as usize,
                    dst: get_u64(e, "dst", n)? as usize,
                    bytes: get_u64(e, "bytes", n)?,
                    time_s: get_f64(e, "time_s", n)?,
                    outcome,
                });
            }
            edges
        }
        _ => return Err(format!("line {n}: missing array \"migrations\"")),
    };
    Ok(RoundRecord {
        epoch: get_u64(obj, "epoch", n)? as usize,
        train_loss: get_f64(obj, "train_loss", n)?,
        test_accuracy: opt_f64(obj, "test_accuracy"),
        sim_time: get_f64(obj, "sim_time", n)?,
        c2s_bytes: get_u64(obj, "c2s_bytes", n)?,
        c2c_local_bytes: get_u64(obj, "c2c_local_bytes", n)?,
        c2c_global_bytes: get_u64(obj, "c2c_global_bytes", n)?,
        phase_train_s: get_f64(phase, "train_s", n)?,
        phase_c2s_s: get_f64(phase, "c2s_s", n)?,
        phase_migration_s: get_f64(phase, "migration_s", n)?,
        phase_backoff_s: get_f64(phase, "backoff_s", n)?,
        emd: EmdSnapshot {
            per_client: get_num_array(emd, "per_client", n)?,
            mean: get_f64(emd, "mean", n)?,
            max: get_f64(emd, "max", n)?,
        },
        train_emd: EmdSnapshot {
            per_client: get_num_array(train_emd, "per_client", n)?,
            mean: get_f64(train_emd, "mean", n)?,
            max: get_f64(train_emd, "max", n)?,
        },
        drift,
        drl,
        graph: GraphSnapshot {
            attempted: get_u64(graph, "attempted", n)? as usize,
            delivered: get_u64(graph, "delivered", n)? as usize,
            fallbacks: get_u64(graph, "fallbacks", n)? as usize,
            out_concentration: get_f64(graph, "out_concentration", n)?,
            in_concentration: get_f64(graph, "in_concentration", n)?,
            cycles: get_u64(graph, "cycles", n)? as usize,
        },
        migrations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_round(epoch: usize) -> RoundRecord {
        RoundRecord {
            epoch,
            train_loss: 2.25,
            test_accuracy: if epoch.is_multiple_of(2) {
                Some(0.5 + epoch as f64 / 100.0)
            } else {
                None
            },
            sim_time: epoch as f64 * 10.0,
            c2s_bytes: 1000 * epoch as u64,
            c2c_local_bytes: 500,
            c2c_global_bytes: 250,
            phase_train_s: 6.0,
            phase_c2s_s: 2.0,
            phase_migration_s: 1.5,
            phase_backoff_s: 0.5,
            emd: EmdSnapshot { per_client: vec![0.4, 0.1], mean: 0.25, max: 0.4 },
            train_emd: EmdSnapshot { per_client: vec![0.5, 0.2], mean: 0.35, max: 0.5 },
            drift: Some(DriftSnapshot {
                dist: vec![1.0, 2.0],
                cosine: vec![0.9, -0.1],
                divergence: vec![0.5, 0.6],
                mean_dist: 1.5,
                max_dist: 2.0,
                mean_cosine: 0.4,
                mean_divergence: 0.55,
            }),
            drl: Some(DrlSnapshot {
                mean_entropy: 1.2,
                mean_saturation: 0.6,
                mean_q: 0.3,
                mean_abs_td: 0.05,
                max_abs_td: 0.2,
                critic_grad_norm: 1.1,
                actor_grad_norm: 0.7,
                replay_occupancy: 12,
                replay_capacity: 64,
                replay_priority_spread: 3.0,
                replay_mean_age: 4.5,
                replay_max_age: 11.0,
            }),
            graph: GraphSnapshot {
                attempted: 2,
                delivered: 2,
                fallbacks: 1,
                out_concentration: 0.5,
                in_concentration: 0.5,
                cycles: 1,
            },
            migrations: vec![
                MigrationEdge {
                    src: 0,
                    dst: 1,
                    bytes: 100,
                    time_s: 0.75,
                    outcome: EdgeOutcome::Direct,
                },
                MigrationEdge {
                    src: 1,
                    dst: 0,
                    bytes: 100,
                    time_s: 1.5,
                    outcome: EdgeOutcome::Relay,
                },
            ],
        }
    }

    fn sample_recording() -> (FlightHeader, Vec<RoundRecord>, FlightSummary) {
        let header = FlightHeader {
            version: FLIGHT_VERSION,
            scheme: "FedMigr".into(),
            clients: 2,
            epochs: 4,
            seed: 47,
            agg_interval: 2,
            codec: "identity".into(),
        };
        let rounds = vec![sample_round(1), sample_round(2)];
        let summary = FlightSummary {
            epochs_run: 2,
            final_accuracy: 0.52,
            best_accuracy: 0.52,
            total_bytes: 2750,
            sim_time: 20.0,
            migrations_local: 1,
            migrations_global: 1,
            final_emd_mean: 0.25,
            target_reached: false,
            budget_exhausted: false,
        };
        (header, rounds, summary)
    }

    #[test]
    fn recording_round_trips_through_jsonl() {
        let (header, rounds, summary) = sample_recording();
        let buf = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
        struct Proxy(std::sync::Arc<std::sync::Mutex<Vec<u8>>>);
        impl Write for Proxy {
            fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(b);
                Ok(b.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let mut rec = FlightRecorder::to_writer(Box::new(Proxy(buf.clone())));
        rec.header(&header).unwrap();
        for r in &rounds {
            rec.round(r).unwrap();
        }
        rec.finish(&summary).unwrap();
        rec.tolerances(&Tolerances::default()).unwrap();
        drop(rec);

        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        assert_eq!(text.lines().count(), 5, "header + 2 rounds + summary + tolerances");
        let parsed = FlightRecording::parse(&text).unwrap();
        assert_eq!(parsed.header, header);
        assert_eq!(parsed.rounds, rounds);
        assert_eq!(parsed.summary, Some(summary));
        assert_eq!(parsed.tolerances, Some(Tolerances::default()));
        assert_eq!(parsed.final_accuracy(), 0.52);
        assert_eq!(parsed.total_bytes(), 2750);
        assert_eq!(parsed.final_emd_mean(), 0.25);
    }

    #[test]
    fn summary_accessors_fall_back_to_rounds() {
        let (header, rounds, _) = sample_recording();
        let rec = FlightRecording { header, rounds, summary: None, tolerances: None };
        assert_eq!(rec.final_accuracy(), 0.52);
        assert_eq!(rec.best_accuracy(), 0.52);
        assert_eq!(rec.total_bytes(), 2000 + 500 + 250);
        assert_eq!(rec.sim_time(), 20.0);
        assert_eq!(rec.mean_emd_over_run(), 0.25);
    }

    #[test]
    fn parser_skips_truncated_final_line_only() {
        let (header, rounds, _) = sample_recording();
        let buf = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
        struct Proxy(std::sync::Arc<std::sync::Mutex<Vec<u8>>>);
        impl Write for Proxy {
            fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(b);
                Ok(b.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let mut rec = FlightRecorder::to_writer(Box::new(Proxy(buf.clone())));
        rec.header(&header).unwrap();
        for r in &rounds {
            rec.round(r).unwrap();
        }
        drop(rec);
        let clean = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        // A crash mid-write leaves a torn final line: skipped with a WARN.
        let torn = format!("{clean}{{\"kind\":\"rou");
        let parsed = FlightRecording::parse(&torn).unwrap();
        assert_eq!(parsed.rounds, rounds);
        assert_eq!(parsed.summary, None);
        // The same garbage anywhere *earlier* is still a hard error.
        let mid = format!("{{\"kind\":\"rou\n{clean}");
        assert!(FlightRecording::parse(&mid).is_err());
    }

    #[test]
    fn resume_truncates_to_checkpoint_and_appends() {
        let (header, rounds, summary) = sample_recording();
        let dir = std::env::temp_dir().join("fedmigr_flight_resume_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("flight.jsonl");
        let path_s = path.to_str().unwrap();
        let mut rec = FlightRecorder::create(path_s).unwrap();
        rec.header(&header).unwrap();
        for r in &rounds {
            rec.round(r).unwrap();
        }
        rec.finish(&summary).unwrap();
        drop(rec);
        // Simulate a crash artifact on top: a torn trailing fragment.
        {
            use std::io::Write as _;
            let mut f = std::fs::OpenOptions::new().append(true).open(&path).unwrap();
            write!(f, "{{\"kind\":\"round\",\"epo").unwrap();
        }
        let before = std::fs::read_to_string(&path).unwrap();
        // Resume keeping epoch 1: round 2, the summary and the torn
        // fragment all drop; the surviving prefix is byte-identical.
        let mut rec = FlightRecorder::resume(path_s, 1).unwrap();
        rec.round(&sample_round(2)).unwrap();
        rec.finish(&summary).unwrap();
        drop(rec);
        let after = std::fs::read_to_string(&path).unwrap();
        let kept: Vec<&str> = before.lines().take(2).collect();
        assert!(after.starts_with(&format!("{}\n", kept.join("\n"))), "prefix preserved verbatim");
        let parsed = FlightRecording::parse(&after).unwrap();
        assert_eq!(parsed.rounds, rounds, "round 2 re-recorded after resume");
        assert_eq!(parsed.summary, Some(summary));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn parser_rejects_bad_input() {
        assert!(FlightRecording::parse("").unwrap_err().contains("no header"));
        assert!(FlightRecording::parse("{\"kind\":\"wat\"}").is_err());
        assert!(FlightRecording::parse("not json").is_err());
        let future = format!(
            "{{\"kind\":\"header\",\"version\":{},\"scheme\":\"x\",\"clients\":1.0,\"epochs\":1.0,\"seed\":0.0,\"agg_interval\":1.0,\"codec\":\"identity\"}}",
            json_num((FLIGHT_VERSION + 1) as f64)
        );
        assert!(FlightRecording::parse(&future).unwrap_err().contains("newer"));
    }
}
