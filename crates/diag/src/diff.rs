//! Flight-recording comparison — the repo's first metric-regression gate.
//!
//! [`diff_recordings`] compares a freshly recorded run against a checked-in
//! baseline and reports every metric that moved past its tolerance in the
//! *bad* direction: accuracy falling, virtual-dataset EMD rising, wire
//! bytes or virtual time growing. Improvements never fail the gate. CI runs
//! this through the `fedmigr_diff` binary, which exits non-zero when any
//! regression survives.

use crate::flight::FlightRecording;

/// How far each metric may regress before the gate fails.
///
/// Accuracy and EMD budgets are absolute (both metrics live in `[0, 1]`);
/// bytes and time budgets are fractional since their scales vary with
/// config. The defaults absorb cross-platform float jitter on a seeded
/// smoke run while still catching real regressions.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Tolerances {
    /// Allowed absolute drop in final/best accuracy.
    pub accuracy_drop: f64,
    /// Allowed absolute rise in fleet-mean EMD (final and run-mean).
    pub emd_rise: f64,
    /// Allowed fractional rise in total wire bytes.
    pub bytes_rise_frac: f64,
    /// Allowed fractional rise in total virtual time.
    pub time_rise_frac: f64,
}

impl Default for Tolerances {
    fn default() -> Self {
        Tolerances {
            accuracy_drop: 0.05,
            emd_rise: 0.05,
            bytes_rise_frac: 0.10,
            time_rise_frac: 0.25,
        }
    }
}

/// One metric that moved past its tolerance.
#[derive(Clone, Debug, PartialEq)]
pub struct Regression {
    /// Metric name (`"final_accuracy"`, `"total_bytes"`, ...).
    pub metric: String,
    /// Baseline value.
    pub baseline: f64,
    /// Current value.
    pub current: f64,
    /// Budget that was exceeded, in the metric's units.
    pub allowed: f64,
}

impl Regression {
    /// One-line human rendering for gate output.
    pub fn describe(&self) -> String {
        format!(
            "{}: baseline {:.6} -> current {:.6} (allowed slack {:.6})",
            self.metric, self.baseline, self.current, self.allowed
        )
    }
}

/// Compares `current` against `baseline` under `tol`.
///
/// Returns `Err` when the recordings are not comparable (different scheme,
/// client count or codec — a config change, not a regression); otherwise
/// returns the list of regressions, empty when the gate passes.
pub fn diff_recordings(
    baseline: &FlightRecording,
    current: &FlightRecording,
    tol: &Tolerances,
) -> Result<Vec<Regression>, String> {
    for (what, b, c) in [
        ("scheme", &baseline.header.scheme, &current.header.scheme),
        ("codec", &baseline.header.codec, &current.header.codec),
    ] {
        if b != c {
            return Err(format!("recordings are not comparable: {what} {b:?} vs {c:?}"));
        }
    }
    if baseline.header.clients != current.header.clients {
        return Err(format!(
            "recordings are not comparable: clients {} vs {}",
            baseline.header.clients, current.header.clients
        ));
    }

    let mut out = Vec::new();
    // Lower-is-worse metrics: fail when current < baseline − slack.
    for (metric, b, c, slack) in [
        ("final_accuracy", baseline.final_accuracy(), current.final_accuracy(), tol.accuracy_drop),
        ("best_accuracy", baseline.best_accuracy(), current.best_accuracy(), tol.accuracy_drop),
    ] {
        if c < b - slack {
            out.push(Regression { metric: metric.into(), baseline: b, current: c, allowed: slack });
        }
    }
    // Higher-is-worse metrics with absolute slack.
    for (metric, b, c, slack) in [
        ("final_emd_mean", baseline.final_emd_mean(), current.final_emd_mean(), tol.emd_rise),
        (
            "mean_emd_over_run",
            baseline.mean_emd_over_run(),
            current.mean_emd_over_run(),
            tol.emd_rise,
        ),
        (
            "mean_train_emd_over_run",
            baseline.mean_train_emd_over_run(),
            current.mean_train_emd_over_run(),
            tol.emd_rise,
        ),
    ] {
        if c > b + slack {
            out.push(Regression { metric: metric.into(), baseline: b, current: c, allowed: slack });
        }
    }
    // Higher-is-worse metrics with fractional slack.
    for (metric, b, c, frac) in [
        (
            "total_bytes",
            baseline.total_bytes() as f64,
            current.total_bytes() as f64,
            tol.bytes_rise_frac,
        ),
        ("sim_time", baseline.sim_time(), current.sim_time(), tol.time_rise_frac),
    ] {
        let slack = b * frac;
        if c > b + slack {
            out.push(Regression { metric: metric.into(), baseline: b, current: c, allowed: slack });
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::emd::EmdSnapshot;
    use crate::flight::{FlightHeader, RoundRecord, FLIGHT_VERSION};

    fn recording(acc: f64, emd: f64, bytes: u64, time: f64) -> FlightRecording {
        let header = FlightHeader {
            version: FLIGHT_VERSION,
            scheme: "FedMigr".into(),
            clients: 4,
            epochs: 10,
            seed: 1,
            agg_interval: 5,
            codec: "identity".into(),
        };
        let round = RoundRecord {
            epoch: 10,
            train_loss: 1.0,
            test_accuracy: Some(acc),
            sim_time: time,
            c2s_bytes: bytes,
            emd: EmdSnapshot { per_client: vec![emd; 4], mean: emd, max: emd },
            train_emd: EmdSnapshot { per_client: vec![emd; 4], mean: emd, max: emd },
            ..RoundRecord::default()
        };
        FlightRecording { header, rounds: vec![round], summary: None, tolerances: None }
    }

    #[test]
    fn identical_recordings_pass() {
        let a = recording(0.7, 0.2, 1000, 50.0);
        let regs = diff_recordings(&a, &a.clone(), &Tolerances::default()).unwrap();
        assert!(regs.is_empty(), "{regs:?}");
    }

    #[test]
    fn improvements_never_fail() {
        let base = recording(0.7, 0.2, 1000, 50.0);
        let better = recording(0.9, 0.05, 500, 25.0);
        let regs = diff_recordings(&base, &better, &Tolerances::default()).unwrap();
        assert!(regs.is_empty(), "{regs:?}");
    }

    #[test]
    fn each_axis_trips_its_own_gate() {
        let tol = Tolerances::default();
        let base = recording(0.7, 0.2, 1000, 50.0);

        let worse_acc = recording(0.7 - tol.accuracy_drop - 0.01, 0.2, 1000, 50.0);
        let regs = diff_recordings(&base, &worse_acc, &tol).unwrap();
        assert!(
            regs.iter().any(|r| r.metric == "final_accuracy"),
            "accuracy regression caught: {regs:?}"
        );

        let worse_emd = recording(0.7, 0.2 + tol.emd_rise + 0.01, 1000, 50.0);
        let regs = diff_recordings(&base, &worse_emd, &tol).unwrap();
        assert!(regs.iter().any(|r| r.metric == "final_emd_mean"), "{regs:?}");

        let worse_bytes = recording(0.7, 0.2, 1200, 50.0);
        let regs = diff_recordings(&base, &worse_bytes, &tol).unwrap();
        assert!(regs.iter().any(|r| r.metric == "total_bytes"), "{regs:?}");

        let worse_time = recording(0.7, 0.2, 1000, 70.0);
        let regs = diff_recordings(&base, &worse_time, &tol).unwrap();
        assert!(regs.iter().any(|r| r.metric == "sim_time"), "{regs:?}");
        assert!(regs[0].describe().contains("sim_time"), "describe names the metric");
    }

    #[test]
    fn within_tolerance_passes() {
        let tol = Tolerances::default();
        let base = recording(0.7, 0.2, 1000, 50.0);
        let near = recording(0.66, 0.24, 1090, 60.0);
        let regs = diff_recordings(&base, &near, &tol).unwrap();
        assert!(regs.is_empty(), "{regs:?}");
    }

    #[test]
    fn incomparable_configs_error() {
        let base = recording(0.7, 0.2, 1000, 50.0);
        let mut other = recording(0.7, 0.2, 1000, 50.0);
        other.header.scheme = "FedAvg".into();
        assert!(diff_recordings(&base, &other, &Tolerances::default()).is_err());
        let mut other = recording(0.7, 0.2, 1000, 50.0);
        other.header.clients = 8;
        assert!(diff_recordings(&base, &other, &Tolerances::default()).is_err());
    }
}
