//! The round timeline: a versioned JSONL stream of per-client round
//! intervals, per-flow transport events and per-link utilization series,
//! written behind `--timeline-out`.
//!
//! The timeline answers the question the flight recorder cannot: *where did
//! the round's wall clock go, per client and per link?* Each round the
//! runner buffers payload lines — client intervals (train / wait / upload /
//! migrate / idle / stale_buffered), flow lifecycle events carried up from
//! [`fedmigr_net`'s flow tracer], link declarations and coalesced link
//! utilization/queue series — and flushes them sorted by start time behind
//! one `{"kind":"round",...}` marker. All times are the run's *virtual*
//! seconds, so a seeded run produces a byte-identical timeline on every
//! host.
//!
//! Line kinds, in file order:
//!
//! 1. exactly one `{"kind":"header","version":1,...}`;
//! 2. per epoch: one `{"kind":"round","epoch":E,"t0":..,"t1":..}` marker
//!    followed by that round's payload lines sorted by start time —
//!    `{"kind":"link",...}` declarations, `{"kind":"interval",...}` client
//!    states, `{"kind":"flow",...}` transport events and
//!    `{"kind":"link_series",...}` sampled utilization/queue arrays;
//! 3. a `{"kind":"rollback","epoch":E}` marker whenever the divergence
//!    watchdog rewinds the run (the time watermark restarts there);
//! 4. at most one `{"kind":"finish","epochs":N}`.
//!
//! Start timestamps are globally non-decreasing across the stream except
//! across a rollback marker — `telemetry_validate --timeline` enforces
//! exactly that, plus closed intervals and flow events referencing declared
//! links. Everything here is observation-only: the recorder reads the
//! runner's state and never touches its RNG or virtual clock.
//!
//! [`fedmigr_net`'s flow tracer]: https://docs.rs/fedmigr-net

use std::collections::BTreeMap;
use std::io::{BufWriter, Write};

use fedmigr_telemetry::trace::{json_num, json_str, JsonValue};

/// Current timeline schema version.
pub const TIMELINE_VERSION: u64 = 1;

/// What a client was doing over one interval of virtual time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IntervalState {
    /// Local training on the client's shard.
    Train,
    /// Finished training, waiting for the round's upload deadline.
    Wait,
    /// Uploading to (or downloading from) the server.
    Upload,
    /// Sending its model to a migration peer.
    Migrate,
    /// Nothing to do until the round closes.
    Idle,
    /// Upload missed the deadline; result parked in the staleness buffer.
    StaleBuffered,
}

impl IntervalState {
    /// Wire spelling of the state.
    pub fn name(&self) -> &'static str {
        match self {
            Self::Train => "train",
            Self::Wait => "wait",
            Self::Upload => "upload",
            Self::Migrate => "migrate",
            Self::Idle => "idle",
            Self::StaleBuffered => "stale_buffered",
        }
    }

    /// Parses the wire spelling back.
    pub fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "train" => Self::Train,
            "wait" => Self::Wait,
            "upload" => Self::Upload,
            "migrate" => Self::Migrate,
            "idle" => Self::Idle,
            "stale_buffered" => Self::StaleBuffered,
            _ => return None,
        })
    }

    /// All states, for validators and analyzers.
    pub const ALL: [IntervalState; 6] =
        [Self::Train, Self::Wait, Self::Upload, Self::Migrate, Self::Idle, Self::StaleBuffered];
}

/// Identifying configuration of the recorded run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TimelineHeader {
    /// Schema version ([`TIMELINE_VERSION`] when written by this build).
    pub version: u64,
    /// `"dense"` or `"fleet"`.
    pub mode: String,
    /// Scheme name.
    pub scheme: String,
    /// Transport name (`"lockstep"` or `"flow"`).
    pub transport: String,
    /// Number of clients.
    pub clients: usize,
    /// Run seed.
    pub seed: u64,
}

/// Streaming JSONL writer for a round timeline.
///
/// Payload lines are buffered per round and flushed, sorted by start time,
/// by [`TimelineRecorder::round`]. Mirrors [`crate::FlightRecorder`]'s
/// error contract: methods that hit the file return `io::Result` and the
/// caller disables recording on the first error.
pub struct TimelineRecorder {
    out: BufWriter<Box<dyn Write + Send>>,
    buf: Vec<(f64, String)>,
}

impl TimelineRecorder {
    /// Opens (truncating) `path` for recording.
    pub fn create(path: &str) -> std::io::Result<Self> {
        let file = std::fs::File::create(path)?;
        Ok(Self::to_writer(Box::new(file)))
    }

    /// Records into an arbitrary writer (tests use a `Vec<u8>` proxy).
    pub fn to_writer(w: Box<dyn Write + Send>) -> Self {
        TimelineRecorder { out: BufWriter::new(w), buf: Vec::new() }
    }

    /// Writes the header line. Call exactly once, first.
    pub fn header(&mut self, h: &TimelineHeader) -> std::io::Result<()> {
        writeln!(
            self.out,
            "{{\"kind\":\"header\",\"version\":{},\"mode\":{},\"scheme\":{},\"transport\":{},\"clients\":{},\"seed\":{}}}",
            json_num(h.version as f64),
            json_str(&h.mode),
            json_str(&h.scheme),
            json_str(&h.transport),
            json_num(h.clients as f64),
            json_num(h.seed as f64),
        )
    }

    /// Buffers a link declaration for the phase starting at virtual `t`.
    pub fn link(&mut self, epoch: usize, phase: &str, id: &str, capacity: f64, t: f64) {
        let line = format!(
            "{{\"kind\":\"link\",\"epoch\":{},\"phase\":{},\"id\":{},\"capacity\":{},\"t\":{}}}",
            json_num(epoch as f64),
            json_str(phase),
            json_str(id),
            json_num(capacity),
            json_num(t),
        );
        self.buf.push((t, line));
    }

    /// Buffers one client interval `[t0, t1]` in virtual seconds.
    pub fn interval(
        &mut self,
        epoch: usize,
        client: usize,
        state: IntervalState,
        t0: f64,
        t1: f64,
    ) {
        let line = format!(
            "{{\"kind\":\"interval\",\"epoch\":{},\"client\":{},\"state\":{},\"t0\":{},\"t1\":{}}}",
            json_num(epoch as f64),
            json_num(client as f64),
            json_str(state.name()),
            json_num(t0),
            json_num(t1),
        );
        self.buf.push((t0, line));
    }

    /// Buffers one flow lifecycle event at absolute virtual time `t`.
    #[allow(clippy::too_many_arguments)]
    pub fn flow_event(
        &mut self,
        epoch: usize,
        phase: &str,
        flow: usize,
        client: usize,
        link: &str,
        event: &str,
        t: f64,
        cwnd: f64,
    ) {
        let line = format!(
            "{{\"kind\":\"flow\",\"epoch\":{},\"phase\":{},\"flow\":{},\"client\":{},\"link\":{},\"event\":{},\"t\":{},\"cwnd\":{}}}",
            json_num(epoch as f64),
            json_str(phase),
            json_num(flow as f64),
            json_num(client as f64),
            json_str(link),
            json_str(event),
            json_num(t),
            json_num(cwnd),
        );
        self.buf.push((t, line));
    }

    /// Buffers one link's sampled utilization/queue series; the sample
    /// times are already absolute virtual seconds.
    pub fn link_series(
        &mut self,
        epoch: usize,
        phase: &str,
        id: &str,
        t: &[f64],
        util: &[f64],
        queue: &[u32],
    ) {
        if t.is_empty() {
            return;
        }
        let line = format!(
            "{{\"kind\":\"link_series\",\"epoch\":{},\"phase\":{},\"id\":{},\"t\":{},\"util\":{},\"queue\":{}}}",
            json_num(epoch as f64),
            json_str(phase),
            json_str(id),
            num_array(t),
            num_array(util),
            num_array_u32(queue),
        );
        self.buf.push((t[0], line));
    }

    /// Writes the round marker for `[t0, t1]` and flushes the buffered
    /// payload sorted by start time. Call once per completed round.
    pub fn round(&mut self, epoch: usize, t0: f64, t1: f64) -> std::io::Result<()> {
        writeln!(
            self.out,
            "{{\"kind\":\"round\",\"epoch\":{},\"t0\":{},\"t1\":{}}}",
            json_num(epoch as f64),
            json_num(t0),
            json_num(t1),
        )?;
        let mut buf = std::mem::take(&mut self.buf);
        buf.sort_by(|a, b| a.0.total_cmp(&b.0));
        for (_, line) in &buf {
            writeln!(self.out, "{line}")?;
        }
        Ok(())
    }

    /// Writes a rollback marker: the watchdog rewound the run to the end
    /// of `epoch`, so the time watermark restarts there. Drops any payload
    /// buffered for the abandoned round.
    pub fn rollback(&mut self, epoch: usize) -> std::io::Result<()> {
        self.buf.clear();
        writeln!(self.out, "{{\"kind\":\"rollback\",\"epoch\":{}}}", json_num(epoch as f64))
    }

    /// Writes the finish line and flushes.
    pub fn finish(&mut self, epochs: usize) -> std::io::Result<()> {
        writeln!(self.out, "{{\"kind\":\"finish\",\"epochs\":{}}}", json_num(epochs as f64))?;
        self.out.flush()
    }
}

fn num_array(vals: &[f64]) -> String {
    let items: Vec<String> = vals.iter().map(|&v| json_num(v)).collect();
    format!("[{}]", items.join(","))
}

fn num_array_u32(vals: &[u32]) -> String {
    let items: Vec<String> = vals.iter().map(|&v| json_num(v as f64)).collect();
    format!("[{}]", items.join(","))
}

/// One parsed `{"kind":"interval",...}` line.
#[derive(Clone, Debug, PartialEq)]
pub struct IntervalRow {
    /// 1-based epoch.
    pub epoch: usize,
    /// Client index.
    pub client: usize,
    /// What the client was doing.
    pub state: IntervalState,
    /// Interval start, virtual seconds.
    pub t0: f64,
    /// Interval end, virtual seconds.
    pub t1: f64,
}

/// One parsed `{"kind":"flow",...}` line.
#[derive(Clone, Debug, PartialEq)]
pub struct FlowRow {
    /// 1-based epoch.
    pub epoch: usize,
    /// Phase label (`"upload"`, `"download"`, `"migration"`).
    pub phase: String,
    /// Flow index within the phase.
    pub flow: usize,
    /// Owning client.
    pub client: usize,
    /// First link on the flow's path.
    pub link: String,
    /// Event name from the flow tracer.
    pub event: String,
    /// Absolute virtual time.
    pub t: f64,
    /// Congestion window at the event, in segments.
    pub cwnd: f64,
}

/// One parsed `{"kind":"link",...}` declaration.
#[derive(Clone, Debug, PartialEq)]
pub struct LinkRow {
    /// 1-based epoch.
    pub epoch: usize,
    /// Phase label.
    pub phase: String,
    /// Stable link label (`"wan"`, `"access:3"`, ...).
    pub id: String,
    /// Capacity in bytes/second.
    pub capacity: f64,
    /// Phase start, virtual seconds.
    pub t: f64,
}

/// One parsed `{"kind":"link_series",...}` line.
#[derive(Clone, Debug, PartialEq)]
pub struct SeriesRow {
    /// 1-based epoch.
    pub epoch: usize,
    /// Phase label.
    pub phase: String,
    /// Link label.
    pub id: String,
    /// Sample times, absolute virtual seconds (step-function breakpoints).
    pub t: Vec<f64>,
    /// Utilization in `[0, 1]` from each sample time to the next.
    pub util: Vec<f64>,
    /// Flows queued with zero rate over the same spans.
    pub queue: Vec<u32>,
}

/// One round's slice of the timeline.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RoundTimeline {
    /// 1-based epoch.
    pub epoch: usize,
    /// Round start, virtual seconds.
    pub t0: f64,
    /// Round end, virtual seconds.
    pub t1: f64,
    /// Client intervals, in start order.
    pub intervals: Vec<IntervalRow>,
    /// Flow lifecycle events, in time order.
    pub flows: Vec<FlowRow>,
    /// Link declarations.
    pub links: Vec<LinkRow>,
    /// Link utilization/queue series.
    pub series: Vec<SeriesRow>,
}

/// A fully parsed timeline.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TimelineRecording {
    /// The header line.
    pub header: TimelineHeader,
    /// Rounds in file order. After a watchdog rollback the same epoch can
    /// appear again; analyzers usually want [`TimelineRecording::settled_rounds`].
    pub rounds: Vec<RoundTimeline>,
    /// Epochs named by rollback markers, in file order.
    pub rollbacks: Vec<usize>,
    /// Whether the finish line is present.
    pub finished: bool,
}

impl TimelineRecording {
    /// Parses a timeline written by [`TimelineRecorder`]. A torn final
    /// line (crash mid-write) is tolerated; any other malformed line is an
    /// error.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut rec = TimelineRecording::default();
        let mut saw_header = false;
        let lines: Vec<&str> = text.lines().filter(|l| !l.trim().is_empty()).collect();
        for (idx, line) in lines.iter().enumerate() {
            let v = match JsonValue::parse(line.trim()) {
                Ok(v) => v,
                Err(e) if idx + 1 == lines.len() => {
                    // Torn final line from a crash; drop it.
                    let _ = e;
                    break;
                }
                Err(e) => return Err(format!("line {}: {e}", idx + 1)),
            };
            let obj = v.as_object().ok_or_else(|| format!("line {}: not an object", idx + 1))?;
            let kind = obj
                .get("kind")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| format!("line {}: missing kind", idx + 1))?;
            let ctx = |what: &str| format!("line {}: {kind} missing {what}", idx + 1);
            let num = |key: &str| obj.get(key).and_then(JsonValue::as_f64).ok_or_else(|| ctx(key));
            let st = |key: &str| {
                obj.get(key).and_then(JsonValue::as_str).map(str::to_owned).ok_or_else(|| ctx(key))
            };
            match kind {
                "header" => {
                    rec.header = TimelineHeader {
                        version: num("version")? as u64,
                        mode: st("mode")?,
                        scheme: st("scheme")?,
                        transport: st("transport")?,
                        clients: num("clients")? as usize,
                        seed: num("seed")? as u64,
                    };
                    saw_header = true;
                }
                "round" => rec.rounds.push(RoundTimeline {
                    epoch: num("epoch")? as usize,
                    t0: num("t0")?,
                    t1: num("t1")?,
                    ..RoundTimeline::default()
                }),
                "interval" => {
                    let state = IntervalState::parse(&st("state")?)
                        .ok_or_else(|| format!("line {}: unknown interval state", idx + 1))?;
                    let row = IntervalRow {
                        epoch: num("epoch")? as usize,
                        client: num("client")? as usize,
                        state,
                        t0: num("t0")?,
                        t1: num("t1")?,
                    };
                    rec.rounds
                        .last_mut()
                        .ok_or_else(|| format!("line {}: interval before any round", idx + 1))?
                        .intervals
                        .push(row);
                }
                "flow" => {
                    let row = FlowRow {
                        epoch: num("epoch")? as usize,
                        phase: st("phase")?,
                        flow: num("flow")? as usize,
                        client: num("client")? as usize,
                        link: st("link")?,
                        event: st("event")?,
                        t: num("t")?,
                        cwnd: num("cwnd")?,
                    };
                    rec.rounds
                        .last_mut()
                        .ok_or_else(|| format!("line {}: flow before any round", idx + 1))?
                        .flows
                        .push(row);
                }
                "link" => {
                    let row = LinkRow {
                        epoch: num("epoch")? as usize,
                        phase: st("phase")?,
                        id: st("id")?,
                        capacity: num("capacity")?,
                        t: num("t")?,
                    };
                    rec.rounds
                        .last_mut()
                        .ok_or_else(|| format!("line {}: link before any round", idx + 1))?
                        .links
                        .push(row);
                }
                "link_series" => {
                    let arr = |key: &str| -> Result<Vec<f64>, String> {
                        match obj.get(key) {
                            Some(JsonValue::Array(items)) => {
                                items.iter().map(|v| v.as_f64().ok_or_else(|| ctx(key))).collect()
                            }
                            _ => Err(ctx(key)),
                        }
                    };
                    let row = SeriesRow {
                        epoch: num("epoch")? as usize,
                        phase: st("phase")?,
                        id: st("id")?,
                        t: arr("t")?,
                        util: arr("util")?,
                        queue: arr("queue")?.into_iter().map(|v| v as u32).collect(),
                    };
                    rec.rounds
                        .last_mut()
                        .ok_or_else(|| format!("line {}: link_series before any round", idx + 1))?
                        .series
                        .push(row);
                }
                "rollback" => rec.rollbacks.push(num("epoch")? as usize),
                "finish" => rec.finished = true,
                other => return Err(format!("line {}: unknown kind {other:?}", idx + 1)),
            }
        }
        if !saw_header {
            return Err("no header line".into());
        }
        if rec.header.version > TIMELINE_VERSION {
            return Err(format!(
                "timeline version {} is newer than supported {}",
                rec.header.version, TIMELINE_VERSION
            ));
        }
        Ok(rec)
    }

    /// Rounds that survived every rollback: for each epoch, the last
    /// occurrence in file order, restricted to epochs not rewound past by
    /// a later rollback marker. This is the view analyzers should use.
    pub fn settled_rounds(&self) -> Vec<&RoundTimeline> {
        let mut by_epoch: BTreeMap<usize, &RoundTimeline> = BTreeMap::new();
        for r in &self.rounds {
            by_epoch.insert(r.epoch, r);
        }
        by_epoch.into_values().collect()
    }
}

/// Converts a timeline into Chrome trace-event JSON (the `traceEvents`
/// array format), viewable in Perfetto or `chrome://tracing`.
///
/// Client intervals become `B`/`E` duration pairs on `pid` 1 with one
/// thread row per client (tid `client + 1`; round spans sit on tid 0);
/// flow lifecycle events become instant (`"ph":"i"`) events on `pid` 2.
/// Timestamps are virtual microseconds. Every `B` is closed by its `E`
/// before the next event on the same thread begins, so the stream is
/// well-nested by construction — the e2e test asserts it.
pub fn chrome_trace(rec: &TimelineRecording) -> String {
    let mut events: Vec<String> = Vec::new();
    let us = |t: f64| (t * 1e6).round();
    let pair = |events: &mut Vec<String>, name: &str, tid: usize, t0: f64, t1: f64| {
        events.push(format!(
            "{{\"name\":{},\"ph\":\"B\",\"pid\":1,\"tid\":{},\"ts\":{}}}",
            json_str(name),
            json_num(tid as f64),
            json_num(us(t0)),
        ));
        events.push(format!(
            "{{\"name\":{},\"ph\":\"E\",\"pid\":1,\"tid\":{},\"ts\":{}}}",
            json_str(name),
            json_num(tid as f64),
            json_num(us(t1)),
        ));
    };
    for round in &rec.rounds {
        pair(&mut events, &format!("round {}", round.epoch), 0, round.t0, round.t1);
        for iv in &round.intervals {
            pair(&mut events, iv.state.name(), iv.client + 1, iv.t0, iv.t1);
        }
        for f in &round.flows {
            events.push(format!(
                "{{\"name\":{},\"ph\":\"i\",\"s\":\"t\",\"pid\":2,\"tid\":{},\"ts\":{},\"args\":{{\"link\":{},\"phase\":{},\"cwnd\":{}}}}}",
                json_str(&f.event),
                json_num((f.client + 1) as f64),
                json_num(us(f.t)),
                json_str(&f.link),
                json_str(&f.phase),
                json_num(f.cwnd),
            ));
        }
    }
    format!("{{\"traceEvents\":[{}]}}", events.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> String {
        let buf = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
        struct Proxy(std::sync::Arc<std::sync::Mutex<Vec<u8>>>);
        impl Write for Proxy {
            fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(b);
                Ok(b.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let mut rec = TimelineRecorder::to_writer(Box::new(Proxy(buf.clone())));
        rec.header(&TimelineHeader {
            version: TIMELINE_VERSION,
            mode: "dense".into(),
            scheme: "FedMigr".into(),
            transport: "flow".into(),
            clients: 2,
            seed: 7,
        })
        .unwrap();
        // Deliberately buffered out of order; round() must sort by start.
        rec.interval(1, 1, IntervalState::Wait, 2.0, 3.0);
        rec.interval(1, 0, IntervalState::Train, 0.0, 2.0);
        rec.link(1, "upload", "wan", 1e6, 2.0);
        rec.flow_event(1, "upload", 0, 0, "access:0", "retransmit", 2.5, 4.0);
        rec.link_series(1, "upload", "wan", &[2.0, 2.5], &[0.5, 1.0], &[0, 1]);
        rec.link_series(1, "upload", "unused", &[], &[], &[]);
        rec.round(1, 0.0, 3.0).unwrap();
        rec.rollback(1).unwrap();
        rec.interval(2, 0, IntervalState::Idle, 3.0, 4.0);
        rec.round(2, 3.0, 4.0).unwrap();
        rec.finish(2).unwrap();
        let bytes = buf.lock().unwrap().clone();
        String::from_utf8(bytes).unwrap()
    }

    #[test]
    fn roundtrips_and_sorts_payload_by_start_time() {
        let text = sample();
        let rec = TimelineRecording::parse(&text).expect("parses");
        assert_eq!(rec.header.mode, "dense");
        assert_eq!(rec.rounds.len(), 2);
        assert_eq!(rec.rollbacks, vec![1]);
        assert!(rec.finished);
        let r1 = &rec.rounds[0];
        assert_eq!(r1.intervals.len(), 2);
        // Sorted: train (t0=0) before wait (t0=2).
        assert_eq!(r1.intervals[0].state, IntervalState::Train);
        assert_eq!(r1.intervals[1].state, IntervalState::Wait);
        assert_eq!(r1.flows.len(), 1);
        assert_eq!(r1.flows[0].event, "retransmit");
        assert_eq!(r1.links.len(), 1);
        // The empty series line is suppressed.
        assert_eq!(r1.series.len(), 1);
        assert_eq!(r1.series[0].queue, vec![0, 1]);
        assert_eq!(rec.settled_rounds().len(), 2);

        // Start timestamps are non-decreasing line by line within a round.
        let mut last = f64::NEG_INFINITY;
        for line in text.lines() {
            let v = JsonValue::parse(line).unwrap();
            let obj = v.as_object().unwrap();
            let t = obj.get("t0").or_else(|| obj.get("t")).and_then(|v| match v {
                JsonValue::Array(items) => items.first().and_then(JsonValue::as_f64),
                v => v.as_f64(),
            });
            match obj.get("kind").and_then(JsonValue::as_str) {
                Some("header") | Some("finish") => continue,
                Some("rollback") => last = f64::NEG_INFINITY,
                _ => {
                    let t = t.expect("payload line has a start time");
                    assert!(t >= last, "timestamps regressed: {t} < {last}\n{line}");
                    last = t;
                }
            }
        }
    }

    #[test]
    fn parse_rejects_bad_streams_but_tolerates_torn_tail() {
        assert!(TimelineRecording::parse("").is_err());
        let good = sample();
        // Unknown kind is an error.
        let bad = format!("{good}{{\"kind\":\"mystery\"}}\n");
        assert!(TimelineRecording::parse(&bad).is_err());
        // A torn final line is dropped.
        let torn = format!("{good}{{\"kind\":\"round\",\"epo");
        assert!(TimelineRecording::parse(&torn).is_ok());
        // Future version refused.
        let future = good.replacen("\"version\":1.0", "\"version\":2.0", 1);
        let err = TimelineRecording::parse(&future).unwrap_err();
        assert!(err.contains("newer"), "{err}");
    }

    #[test]
    fn chrome_trace_is_json_with_nested_pairs() {
        let rec = TimelineRecording::parse(&sample()).unwrap();
        let trace = chrome_trace(&rec);
        let v = JsonValue::parse(&trace).expect("valid JSON");
        let events = match v.as_object().unwrap().get("traceEvents").unwrap() {
            JsonValue::Array(items) => items.clone(),
            _ => panic!("traceEvents must be an array"),
        };
        assert!(!events.is_empty());
        // Per (pid, tid): B/E strictly alternate and every B is closed.
        let mut depth: BTreeMap<(u64, u64), u64> = BTreeMap::new();
        for e in &events {
            let o = e.as_object().unwrap();
            let key = (
                o.get("pid").and_then(JsonValue::as_f64).unwrap() as u64,
                o.get("tid").and_then(JsonValue::as_f64).unwrap() as u64,
            );
            match o.get("ph").and_then(JsonValue::as_str).unwrap() {
                "B" => *depth.entry(key).or_insert(0) += 1,
                "E" => {
                    let d = depth.get_mut(&key).expect("E without B");
                    assert!(*d > 0, "E without open B on {key:?}");
                    *d -= 1;
                }
                "i" => {}
                other => panic!("unexpected phase {other}"),
            }
        }
        assert!(depth.values().all(|&d| d == 0), "unclosed B events: {depth:?}");
    }
}
