//! Migration-graph analytics.
//!
//! Every executed (or attempted) client-to-client transfer in a round is
//! one [`MigrationEdge`]; the round's edge list plus the executed source
//! permutation yields degree-concentration and cycle statistics that show
//! *how* a policy circulates models — FedMigr's learned policy tends to
//! concentrate on a few productive links (the paper's Fig. 8), while
//! RandMigr spreads uniformly.

/// How a transfer was ultimately carried (mirrors the runner's delivery
/// fallback chain).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EdgeOutcome {
    /// Delivered on the direct C2C path, first try.
    Direct,
    /// Delivered on the direct path after bounded retries.
    DirectRetry,
    /// Delivered through a same-LAN relay peer.
    Relay,
    /// Delivered by bouncing through the server.
    C2sBounce,
    /// Every fallback failed; the model stayed at the source.
    Cancelled,
}

impl EdgeOutcome {
    /// Stable lower-snake name used in the flight recording.
    pub fn name(self) -> &'static str {
        match self {
            EdgeOutcome::Direct => "direct",
            EdgeOutcome::DirectRetry => "direct_retry",
            EdgeOutcome::Relay => "relay",
            EdgeOutcome::C2sBounce => "c2s_bounce",
            EdgeOutcome::Cancelled => "cancelled",
        }
    }

    /// Parses a [`Self::name`] string back.
    pub fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "direct" => EdgeOutcome::Direct,
            "direct_retry" => EdgeOutcome::DirectRetry,
            "relay" => EdgeOutcome::Relay,
            "c2s_bounce" => EdgeOutcome::C2sBounce,
            "cancelled" => EdgeOutcome::Cancelled,
            _ => return None,
        })
    }

    /// Whether the model actually arrived at the destination.
    pub fn delivered(self) -> bool {
        self != EdgeOutcome::Cancelled
    }
}

/// One attempted model migration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MigrationEdge {
    /// Sending client.
    pub src: usize,
    /// Receiving client.
    pub dst: usize,
    /// Wire bytes of the (possibly compressed) model payload.
    pub bytes: u64,
    /// Virtual seconds the transfer (including fallbacks) took.
    pub time_s: f64,
    /// Path the transfer ended on.
    pub outcome: EdgeOutcome,
}

/// Round-level migration-graph statistics.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct GraphSnapshot {
    /// Edges attempted this round.
    pub attempted: usize,
    /// Edges that delivered a model.
    pub delivered: usize,
    /// Edges that needed any fallback (retry/relay/bounce).
    pub fallbacks: usize,
    /// Herfindahl–Hirschman concentration of out-degree over delivered
    /// edges (`1/k`..`1`; higher = traffic concentrated on few senders;
    /// 0 when nothing delivered).
    pub out_concentration: f64,
    /// Same for in-degree (receivers).
    pub in_concentration: f64,
    /// Cycles of length ≥ 2 in the executed source permutation — how many
    /// closed loops the round's model circulation formed.
    pub cycles: usize,
}

impl GraphSnapshot {
    /// Analyzes one round's edges plus the executed `src_of` map
    /// (`src_of[i]` = which slot client `i`'s post-round model came from).
    pub fn measure(edges: &[MigrationEdge], src_of: &[usize]) -> Self {
        let attempted = edges.len();
        let delivered = edges.iter().filter(|e| e.outcome.delivered()).count();
        let fallbacks = edges.iter().filter(|e| e.outcome != EdgeOutcome::Direct).count();
        let mut out_deg = vec![0usize; src_of.len()];
        let mut in_deg = vec![0usize; src_of.len()];
        for e in edges.iter().filter(|e| e.outcome.delivered()) {
            if e.src < out_deg.len() && e.dst < in_deg.len() {
                out_deg[e.src] += 1;
                in_deg[e.dst] += 1;
            }
        }
        GraphSnapshot {
            attempted,
            delivered,
            fallbacks,
            out_concentration: hhi(&out_deg),
            in_concentration: hhi(&in_deg),
            cycles: permutation_cycles(src_of),
        }
    }
}

/// Herfindahl–Hirschman index of a degree histogram: the sum of squared
/// shares. 0 when the histogram is empty.
fn hhi(deg: &[usize]) -> f64 {
    let total: usize = deg.iter().sum();
    if total == 0 {
        return 0.0;
    }
    deg.iter().map(|&d| (d as f64 / total as f64).powi(2)).sum()
}

/// Counts cycles of length ≥ 2 in the functional graph `i → src_of[i]`.
///
/// The runner's post-migration state maps every slot to the slot its model
/// came from, so a length-2 cycle is a swap, a length-k cycle a rotation;
/// fixed points (`src_of[i] == i`, i.e. no migration) are not counted.
pub fn permutation_cycles(src_of: &[usize]) -> usize {
    let n = src_of.len();
    // Standard functional-graph walk: colors 0 = unseen, 1 = on current
    // path, 2 = finished. Each walk that re-enters its own path closes at
    // most one new cycle.
    let mut color = vec![0u8; n];
    let mut cycles = 0;
    for start in 0..n {
        if color[start] != 0 {
            continue;
        }
        let mut path = Vec::new();
        let mut cur = start;
        loop {
            if src_of[cur] >= n {
                // Defensive: treat an out-of-range source as a terminal.
                color[cur] = 2;
                break;
            }
            match color[cur] {
                0 => {
                    color[cur] = 1;
                    path.push(cur);
                    cur = src_of[cur];
                }
                1 => {
                    // Found a new cycle; count it unless it is a fixed point.
                    let len = path.len() - path.iter().position(|&p| p == cur).unwrap();
                    if len >= 2 {
                        cycles += 1;
                    }
                    break;
                }
                _ => break,
            }
        }
        for p in path {
            color[p] = 2;
        }
    }
    cycles
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edge(src: usize, dst: usize, outcome: EdgeOutcome) -> MigrationEdge {
        MigrationEdge { src, dst, bytes: 100, time_s: 1.0, outcome }
    }

    #[test]
    fn outcome_names_round_trip() {
        for o in [
            EdgeOutcome::Direct,
            EdgeOutcome::DirectRetry,
            EdgeOutcome::Relay,
            EdgeOutcome::C2sBounce,
            EdgeOutcome::Cancelled,
        ] {
            assert_eq!(EdgeOutcome::parse(o.name()), Some(o));
        }
        assert_eq!(EdgeOutcome::parse("bogus"), None);
        assert!(!EdgeOutcome::Cancelled.delivered());
        assert!(EdgeOutcome::Relay.delivered());
    }

    #[test]
    fn cycle_counting() {
        assert_eq!(permutation_cycles(&[0, 1, 2]), 0, "identity has no cycles");
        assert_eq!(permutation_cycles(&[1, 0, 2]), 1, "one swap");
        assert_eq!(permutation_cycles(&[1, 2, 0]), 1, "one 3-rotation");
        assert_eq!(permutation_cycles(&[1, 0, 3, 2]), 2, "two swaps");
        // Non-permutation functional graph (duplication after a cancelled
        // transfer): 0→1→2→1 closes one 2-cycle, slot 3 self-loops.
        assert_eq!(permutation_cycles(&[1, 2, 1, 3]), 1);
        assert_eq!(permutation_cycles(&[]), 0);
    }

    #[test]
    fn degree_concentration_spans_uniform_to_hub() {
        // Uniform circulation: 4 edges, every client sends and receives once.
        let uniform = vec![
            edge(0, 1, EdgeOutcome::Direct),
            edge(1, 2, EdgeOutcome::Direct),
            edge(2, 3, EdgeOutcome::Direct),
            edge(3, 0, EdgeOutcome::Direct),
        ];
        let s = GraphSnapshot::measure(&uniform, &[3, 0, 1, 2]);
        assert!((s.out_concentration - 0.25).abs() < 1e-12, "uniform HHI = 1/k");
        assert_eq!(s.cycles, 1);
        assert_eq!(s.fallbacks, 0);

        // Hub: one sender fans out to everyone.
        let hub = vec![
            edge(0, 1, EdgeOutcome::Direct),
            edge(0, 2, EdgeOutcome::Relay),
            edge(0, 3, EdgeOutcome::Cancelled),
        ];
        let s = GraphSnapshot::measure(&hub, &[0, 0, 0, 3]);
        assert_eq!(s.attempted, 3);
        assert_eq!(s.delivered, 2);
        assert_eq!(s.fallbacks, 2, "relay and cancelled both count as fallbacks");
        assert!((s.out_concentration - 1.0).abs() < 1e-12, "single sender HHI = 1");
        assert_eq!(s.cycles, 0);
    }

    #[test]
    fn empty_round_is_zero() {
        assert_eq!(
            GraphSnapshot::measure(&[], &[0, 1]),
            GraphSnapshot {
                attempted: 0,
                delivered: 0,
                fallbacks: 0,
                out_concentration: 0.0,
                in_concentration: 0.0,
                cycles: 0,
            }
        );
    }
}
