//! Analyzes a round timeline (`--timeline-out` JSONL): per-round critical
//! path, makespan decomposition (compute vs comm vs idle), per-link
//! utilization histograms and the overlap-opportunity estimate.
//!
//! ```text
//! fedmigr_netview <timeline.jsonl> [--json <out.json>] [--chrome-out <trace.json>]
//!                 [--check <baseline.json>] [--tol X]
//! ```
//!
//! Prints the text summary to stdout. `--json` writes the deterministic
//! JSON report; `--chrome-out` converts the timeline to Chrome trace-event
//! JSON (Perfetto-viewable); `--check` diffs the JSON report against a
//! checked-in baseline with relative tolerance `--tol` (default 1e-6).
//! Exits 0 when clean, 1 when the check finds mismatches, 2 on usage or
//! parse errors.

use fedmigr_diag::netview::{analyze, diff_json, render_json, render_text};
use fedmigr_diag::TimelineRecording;
use fedmigr_telemetry::trace::JsonValue;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut timeline: Option<&String> = None;
    let mut json_out: Option<&String> = None;
    let mut chrome_out: Option<&String> = None;
    let mut check: Option<&String> = None;
    let mut tol = 1e-6f64;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--json" => {
                json_out = Some(value(&args, i));
                i += 2;
            }
            "--chrome-out" => {
                chrome_out = Some(value(&args, i));
                i += 2;
            }
            "--check" => {
                check = Some(value(&args, i));
                i += 2;
            }
            "--tol" => {
                tol = value(&args, i).parse().unwrap_or_else(|_| {
                    eprintln!("error: --tol wants a number, got {:?}", args[i + 1]);
                    std::process::exit(2);
                });
                i += 2;
            }
            flag if flag.starts_with("--") => {
                eprintln!("error: unknown flag {flag}");
                usage();
            }
            _ if timeline.is_none() => {
                timeline = Some(&args[i]);
                i += 1;
            }
            extra => {
                eprintln!("error: unexpected argument {extra:?}");
                usage();
            }
        }
    }
    let Some(path) = timeline else { usage() };

    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("error: cannot read {path}: {e}");
        std::process::exit(2);
    });
    let rec = TimelineRecording::parse(&text).unwrap_or_else(|e| {
        eprintln!("error: {path}: {e}");
        std::process::exit(2);
    });
    let report = analyze(&rec);
    print!("{}", render_text(&report));
    let json = render_json(&report);

    if let Some(out) = json_out {
        if let Err(e) = std::fs::write(out, format!("{json}\n")) {
            eprintln!("error: cannot write {out}: {e}");
            std::process::exit(2);
        }
        println!("wrote {out}");
    }
    if let Some(out) = chrome_out {
        if let Err(e) = std::fs::write(out, fedmigr_diag::chrome_trace(&rec)) {
            eprintln!("error: cannot write {out}: {e}");
            std::process::exit(2);
        }
        println!("wrote {out}");
    }
    if let Some(baseline_path) = check {
        let baseline_text = std::fs::read_to_string(baseline_path).unwrap_or_else(|e| {
            eprintln!("error: cannot read baseline {baseline_path}: {e}");
            std::process::exit(2);
        });
        let baseline = JsonValue::parse(baseline_text.trim()).unwrap_or_else(|e| {
            eprintln!("error: baseline {baseline_path}: {e}");
            std::process::exit(2);
        });
        let current = JsonValue::parse(&json).expect("own JSON parses");
        let regs = diff_json(&baseline, &current, tol);
        if regs.is_empty() {
            println!("OK: netview matches {baseline_path} (tol {tol})");
        } else {
            eprintln!("FAIL: {} netview mismatch(es) vs {baseline_path}:", regs.len());
            for r in &regs {
                eprintln!("  {r}");
            }
            std::process::exit(1);
        }
    }
}

fn value(args: &[String], i: usize) -> &String {
    args.get(i + 1).unwrap_or_else(|| {
        eprintln!("error: {} wants a value", args[i]);
        std::process::exit(2);
    })
}

fn usage() -> ! {
    eprintln!(
        "usage: fedmigr_netview <timeline.jsonl> [--json <out.json>] \
         [--chrome-out <trace.json>] [--check <baseline.json>] [--tol X]"
    );
    std::process::exit(2);
}
