//! Compares a flight recording against a baseline and gates on metric
//! regressions.
//!
//! ```text
//! fedmigr_diff <baseline.jsonl> <current.jsonl> \
//!     [--tol-accuracy X] [--tol-emd X] [--tol-bytes-frac X] [--tol-time-frac X]
//! ```
//!
//! Tolerance precedence per axis: explicit flag > the baseline's embedded
//! `tolerances` record > built-in defaults. Exits 0 when no metric
//! regressed past its budget, 1 on regressions, 2 on usage/parse errors.

use fedmigr_diag::{diff_recordings, FlightRecording};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    const TOL_FLAGS: [&str; 4] =
        ["--tol-accuracy", "--tol-emd", "--tol-bytes-frac", "--tol-time-frac"];
    let mut paths: Vec<&String> = Vec::new();
    let mut i = 1;
    while i < args.len() {
        if TOL_FLAGS.contains(&args[i].as_str()) {
            i += 2; // skip the flag's value so it is not mistaken for a path
        } else {
            paths.push(&args[i]);
            i += 1;
        }
    }
    let [baseline_path, current_path] = paths[..] else {
        eprintln!(
            "usage: fedmigr_diff <baseline.jsonl> <current.jsonl> [--tol-accuracy X] \
             [--tol-emd X] [--tol-bytes-frac X] [--tol-time-frac X]"
        );
        std::process::exit(2);
    };

    let baseline = load(baseline_path);
    let current = load(current_path);

    let mut tol = baseline.tolerances.unwrap_or_default();
    override_tol(&args, "--tol-accuracy", &mut tol.accuracy_drop);
    override_tol(&args, "--tol-emd", &mut tol.emd_rise);
    override_tol(&args, "--tol-bytes-frac", &mut tol.bytes_rise_frac);
    override_tol(&args, "--tol-time-frac", &mut tol.time_rise_frac);

    match diff_recordings(&baseline, &current, &tol) {
        Ok(regs) if regs.is_empty() => {
            println!(
                "OK: {} vs baseline — acc {:.4} (base {:.4}), run-mean EMD {:.4} (base {:.4}), \
                 {:.2} MB (base {:.2})",
                current.header.scheme,
                current.final_accuracy(),
                baseline.final_accuracy(),
                current.mean_emd_over_run(),
                baseline.mean_emd_over_run(),
                current.total_bytes() as f64 / 1e6,
                baseline.total_bytes() as f64 / 1e6,
            );
        }
        Ok(regs) => {
            eprintln!("FAIL: {} metric(s) regressed past tolerance:", regs.len());
            for r in &regs {
                eprintln!("  {}", r.describe());
            }
            std::process::exit(1);
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    }
}

fn load(path: &str) -> FlightRecording {
    FlightRecording::from_file(path).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(2);
    })
}

fn override_tol(args: &[String], flag: &str, slot: &mut f64) {
    if let Some(w) = args.windows(2).find(|w| w[0] == flag) {
        match w[1].parse::<f64>() {
            Ok(v) if v >= 0.0 => *slot = v,
            _ => {
                eprintln!("error: {flag} wants a non-negative number, got {:?}", w[1]);
                std::process::exit(2);
            }
        }
    }
}
