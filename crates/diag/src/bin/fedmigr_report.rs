//! Renders a human-readable report from a flight recording.
//!
//! ```text
//! fedmigr_report <flight.jsonl>
//! ```
//!
//! Exits 0 on success, 2 on usage or parse errors.

use fedmigr_diag::{render_report, FlightRecording};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let path = match args.get(1) {
        Some(p) if !p.starts_with('-') => p,
        _ => {
            eprintln!("usage: fedmigr_report <flight.jsonl>");
            std::process::exit(2);
        }
    };
    match FlightRecording::from_file(path) {
        Ok(rec) => print!("{}", render_report(&rec)),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    }
}
