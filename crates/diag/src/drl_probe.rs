//! DDPG introspection: is the migration policy still learning?
//!
//! Combines three read-only probes of the agent into one round snapshot:
//! the actor's decision sharpness over this round's states (entropy and
//! saturation of the softmax over destinations), the critic's learning
//! signals from the most recent update ([`fedmigr_drl::UpdateStats`]), and
//! the replay buffer's health ([`fedmigr_drl::ReplayHealth`]). All three
//! come from forward passes or bookkeeping that never touch the run's RNG.

use fedmigr_drl::{policy_entropy_saturation, ReplayHealth, UpdateStats};

/// One round's view of the DDPG agent.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct DrlSnapshot {
    /// Mean Shannon entropy (nats) of the actor's destination softmax over
    /// this round's states. High = undecided, near 0 = collapsed.
    pub mean_entropy: f64,
    /// Mean max-probability of the softmax — the saturation companion to
    /// entropy (1 = fully deterministic policy).
    pub mean_saturation: f64,
    /// Mean critic Q-value of the last update batch.
    pub mean_q: f64,
    /// Mean |TD error| of the last update batch.
    pub mean_abs_td: f64,
    /// Max |TD error| of the last update batch.
    pub max_abs_td: f64,
    /// L2 norm of the critic gradient at the last update.
    pub critic_grad_norm: f64,
    /// L2 norm of the actor gradient at the last update.
    pub actor_grad_norm: f64,
    /// Transitions currently in the replay buffer.
    pub replay_occupancy: usize,
    /// Replay buffer capacity.
    pub replay_capacity: usize,
    /// Max/min stored priority ratio (1 = flat priorities).
    pub replay_priority_spread: f64,
    /// Mean age (in pushes) of stored transitions.
    pub replay_mean_age: f64,
    /// Oldest stored transition's age in pushes.
    pub replay_max_age: f64,
}

impl DrlSnapshot {
    /// Builds the snapshot from this round's per-client action
    /// distributions plus the agent's last update stats and replay health.
    pub fn collect(
        action_probs: &[Vec<f32>],
        last_update: Option<UpdateStats>,
        replay: ReplayHealth,
    ) -> Self {
        let mut mean_entropy = 0.0;
        let mut mean_saturation = 0.0;
        if !action_probs.is_empty() {
            for probs in action_probs {
                let (h, sat) = policy_entropy_saturation(probs);
                mean_entropy += h;
                mean_saturation += sat;
            }
            mean_entropy /= action_probs.len() as f64;
            mean_saturation /= action_probs.len() as f64;
        }
        let u = last_update.unwrap_or(UpdateStats {
            mean_q: 0.0,
            mean_abs_td: 0.0,
            max_abs_td: 0.0,
            critic_grad_norm: 0.0,
            actor_grad_norm: 0.0,
        });
        DrlSnapshot {
            mean_entropy,
            mean_saturation,
            mean_q: u.mean_q,
            mean_abs_td: u.mean_abs_td,
            max_abs_td: u.max_abs_td,
            critic_grad_norm: u.critic_grad_norm,
            actor_grad_norm: u.actor_grad_norm,
            replay_occupancy: replay.occupancy,
            replay_capacity: replay.capacity,
            replay_priority_spread: replay.priority_spread,
            replay_mean_age: replay.mean_age,
            replay_max_age: replay.max_age as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn health() -> ReplayHealth {
        ReplayHealth {
            occupancy: 5,
            capacity: 16,
            pushes: 9,
            priority_spread: 2.5,
            mean_age: 3.0,
            max_age: 8,
        }
    }

    #[test]
    fn collects_all_three_probes() {
        let probs = vec![vec![0.5f32, 0.5], vec![1.0f32, 0.0]];
        let stats = UpdateStats {
            mean_q: 0.7,
            mean_abs_td: 0.2,
            max_abs_td: 0.9,
            critic_grad_norm: 1.5,
            actor_grad_norm: 0.4,
        };
        let s = DrlSnapshot::collect(&probs, Some(stats), health());
        // Mean of ln(2) (uniform over 2) and 0 (collapsed).
        assert!((s.mean_entropy - 0.5 * std::f64::consts::LN_2).abs() < 1e-9);
        assert!((s.mean_saturation - 0.75).abs() < 1e-6);
        assert_eq!(s.mean_q, 0.7);
        assert_eq!(s.critic_grad_norm, 1.5);
        assert_eq!(s.replay_occupancy, 5);
        assert_eq!(s.replay_max_age, 8.0);
    }

    #[test]
    fn missing_update_stats_zero_out() {
        let s = DrlSnapshot::collect(&[], None, health());
        assert_eq!(s.mean_entropy, 0.0);
        assert_eq!(s.mean_q, 0.0);
        assert_eq!(s.replay_capacity, 16);
    }
}
