//! Network & round-timeline analysis: critical path, makespan
//! decomposition, per-link utilization histograms and the overlap
//! opportunity estimate — the analysis layer behind `fedmigr_netview`.
//!
//! Everything works off a parsed [`TimelineRecording`] (see
//! [`crate::timeline`]); only settled rounds (the survivors of any
//! watchdog rollbacks) are analyzed. All figures are virtual seconds, so a
//! seeded run produces an identical report on every host.

use std::collections::BTreeMap;

use fedmigr_telemetry::trace::{json_num, json_str, JsonValue};

use crate::timeline::{IntervalState, RoundTimeline, TimelineRecording};

/// Number of utilization buckets in a link histogram (deciles of `[0, 1]`).
pub const UTIL_BUCKETS: usize = 10;

/// Client-seconds spent per activity class across the analyzed rounds.
///
/// `compute` is training; `comm` is upload/download plus migration wire
/// time; `wait` is post-activity blocking on stragglers or deadlines;
/// `idle` is the round tail with nothing to do; `stale` is time a late
/// upload sat in the staleness buffer.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Decomposition {
    /// Training client-seconds.
    pub compute_s: f64,
    /// Communication (upload + migration) client-seconds.
    pub comm_s: f64,
    /// Blocking client-seconds (deadline/straggler waits).
    pub wait_s: f64,
    /// Idle client-seconds.
    pub idle_s: f64,
    /// Stale-buffered client-seconds.
    pub stale_s: f64,
}

impl Decomposition {
    fn add(&mut self, state: IntervalState, secs: f64) {
        match state {
            IntervalState::Train => self.compute_s += secs,
            IntervalState::Upload | IntervalState::Migrate => self.comm_s += secs,
            IntervalState::Wait => self.wait_s += secs,
            IntervalState::Idle => self.idle_s += secs,
            IntervalState::StaleBuffered => self.stale_s += secs,
        }
    }

    /// Total client-seconds across all classes.
    pub fn total_s(&self) -> f64 {
        self.compute_s + self.comm_s + self.wait_s + self.idle_s + self.stale_s
    }
}

/// The round's critical path: the client whose busy (train + comm) chain
/// dominates the round, and how its time splits.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CriticalRound {
    /// 1-based epoch (0 is the seed broadcast).
    pub epoch: usize,
    /// Round wall span `t1 - t0`, virtual seconds.
    pub round_s: f64,
    /// The critical client.
    pub client: usize,
    /// Its busy seconds (train + upload + migrate).
    pub busy_s: f64,
    /// Its training share of the busy time.
    pub compute_s: f64,
    /// Its communication share of the busy time.
    pub comm_s: f64,
}

/// One link's utilization profile over the analyzed rounds.
#[derive(Clone, Debug, PartialEq)]
pub struct LinkReport {
    /// Stable link label (`"wan"`, `"access:3"`, `"pair:1-4"`, ...).
    pub id: String,
    /// Number of sampled spans.
    pub spans: usize,
    /// Seconds covered by the samples.
    pub sampled_s: f64,
    /// Seconds with positive utilization.
    pub busy_s: f64,
    /// Time-weighted mean utilization over the sampled seconds.
    pub mean_util: f64,
    /// Time-weighted p95 utilization.
    pub p95_util: f64,
    /// Peak utilization.
    pub max_util: f64,
    /// Seconds per utilization decile (`[0,0.1)`, ..., `[0.9,1.0]`).
    pub hist_s: [f64; UTIL_BUCKETS],
}

/// The full netview report.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct NetviewReport {
    /// Settled rounds analyzed (including the seed broadcast round 0).
    pub rounds: usize,
    /// Watchdog rollbacks seen in the stream.
    pub rollbacks: usize,
    /// Total wall makespan: sum of settled round spans, virtual seconds.
    pub makespan_s: f64,
    /// Client-seconds per activity class.
    pub decomposition: Decomposition,
    /// Per-round critical path, in epoch order.
    pub critical: Vec<CriticalRound>,
    /// Per-link utilization profiles, in label order.
    pub links: Vec<LinkReport>,
    /// Idle + wait seconds recoverable if finished uploaders trained
    /// ahead instead of blocking on the round close.
    pub overlap_opportunity_s: f64,
    /// Flow lifecycle event counts by event name.
    pub flow_events: BTreeMap<String, u64>,
}

/// Analyzes the settled rounds of a timeline.
pub fn analyze(rec: &TimelineRecording) -> NetviewReport {
    let mut report = NetviewReport { rollbacks: rec.rollbacks.len(), ..NetviewReport::default() };
    let mut links: BTreeMap<String, LinkAccum> = BTreeMap::new();
    for round in rec.settled_rounds() {
        report.rounds += 1;
        report.makespan_s += round.t1 - round.t0;
        report.critical.push(critical_round(round));
        for iv in &round.intervals {
            report.decomposition.add(iv.state, iv.t1 - iv.t0);
        }
        report.overlap_opportunity_s += overlap_opportunity(round);
        for f in &round.flows {
            *report.flow_events.entry(f.event.clone()).or_insert(0) += 1;
        }
        for s in &round.series {
            let acc = links.entry(s.id.clone()).or_default();
            for (i, &u) in s.util.iter().enumerate() {
                // Spans run breakpoint-to-breakpoint; the open tail after
                // the last sample is not attributable from the series
                // alone and is dropped.
                let Some(span) = s.t.get(i + 1).map(|&next| next - s.t[i]) else {
                    continue;
                };
                if span <= 0.0 {
                    continue;
                }
                acc.observe(u, span);
            }
        }
    }
    report.links = links.into_iter().map(|(id, acc)| acc.finish(id)).collect();
    report
}

/// The client whose busy chain (train + upload + migrate) dominates the
/// round. Ties break towards the lower client index.
fn critical_round(round: &RoundTimeline) -> CriticalRound {
    let mut busy: BTreeMap<usize, (f64, f64, f64)> = BTreeMap::new(); // (busy, compute, comm)
    for iv in &round.intervals {
        let secs = iv.t1 - iv.t0;
        let entry = busy.entry(iv.client).or_insert((0.0, 0.0, 0.0));
        match iv.state {
            IntervalState::Train => {
                entry.0 += secs;
                entry.1 += secs;
            }
            IntervalState::Upload | IntervalState::Migrate => {
                entry.0 += secs;
                entry.2 += secs;
            }
            _ => {}
        }
    }
    let mut out = CriticalRound {
        epoch: round.epoch,
        round_s: round.t1 - round.t0,
        ..CriticalRound::default()
    };
    for (client, (b, compute, comm)) in busy {
        if b > out.busy_s {
            out.client = client;
            out.busy_s = b;
            out.compute_s = compute;
            out.comm_s = comm;
        }
    }
    out
}

/// Wait + idle seconds, after their last upload settled, of clients whose
/// upload made the round (no stale-buffered tail): the time they could
/// have spent training ahead had the schedule overlapped compute with the
/// straggling uploads.
fn overlap_opportunity(round: &RoundTimeline) -> f64 {
    let mut upload_end: BTreeMap<usize, f64> = BTreeMap::new();
    let mut parked: BTreeMap<usize, bool> = BTreeMap::new();
    for iv in &round.intervals {
        match iv.state {
            IntervalState::Upload => {
                let e = upload_end.entry(iv.client).or_insert(f64::NEG_INFINITY);
                *e = e.max(iv.t1);
            }
            IntervalState::StaleBuffered => {
                parked.insert(iv.client, true);
            }
            _ => {}
        }
    }
    let mut recoverable = 0.0;
    for iv in &round.intervals {
        if !matches!(iv.state, IntervalState::Wait | IntervalState::Idle) {
            continue;
        }
        if parked.get(&iv.client).copied().unwrap_or(false) {
            continue;
        }
        let Some(&end) = upload_end.get(&iv.client) else { continue };
        if iv.t0 >= end - 1e-12 {
            recoverable += iv.t1 - iv.t0;
        }
    }
    recoverable
}

#[derive(Default)]
struct LinkAccum {
    spans: Vec<(f64, f64)>, // (util, seconds)
}

impl LinkAccum {
    fn observe(&mut self, util: f64, secs: f64) {
        self.spans.push((util, secs));
    }

    fn finish(mut self, id: String) -> LinkReport {
        // `+ 0.0` normalizes the empty sum's `-0.0` for display.
        let sampled_s: f64 = self.spans.iter().map(|&(_, s)| s).sum::<f64>() + 0.0;
        let busy_s: f64 =
            self.spans.iter().filter(|&&(u, _)| u > 0.0).map(|&(_, s)| s).sum::<f64>() + 0.0;
        let mean_util = if sampled_s > 0.0 {
            self.spans.iter().map(|&(u, s)| u * s).sum::<f64>() / sampled_s
        } else {
            0.0
        };
        let max_util = self.spans.iter().map(|&(u, _)| u).fold(0.0f64, f64::max);
        let mut hist_s = [0.0f64; UTIL_BUCKETS];
        for &(u, s) in &self.spans {
            let bucket = ((u * UTIL_BUCKETS as f64) as usize).min(UTIL_BUCKETS - 1);
            hist_s[bucket] += s;
        }
        // Time-weighted p95: the utilization below which 95% of the
        // sampled seconds sit.
        self.spans.sort_by(|a, b| a.0.total_cmp(&b.0));
        let mut acc = 0.0;
        let mut p95_util = max_util;
        for &(u, s) in &self.spans {
            acc += s;
            if acc >= 0.95 * sampled_s {
                p95_util = u;
                break;
            }
        }
        LinkReport {
            id,
            spans: self.spans.len(),
            sampled_s,
            busy_s,
            mean_util,
            p95_util,
            max_util,
            hist_s,
        }
    }
}

/// Renders the report as deterministic JSON (stable key order, numbers via
/// the telemetry JSON formatter).
pub fn render_json(r: &NetviewReport) -> String {
    let mut out = String::from("{");
    out.push_str(&format!("\"rounds\":{},", json_num(r.rounds as f64)));
    out.push_str(&format!("\"rollbacks\":{},", json_num(r.rollbacks as f64)));
    out.push_str(&format!("\"makespan_s\":{},", json_num(r.makespan_s)));
    let d = &r.decomposition;
    out.push_str(&format!(
        "\"decomposition\":{{\"compute_s\":{},\"comm_s\":{},\"wait_s\":{},\"idle_s\":{},\"stale_s\":{},\"total_s\":{}}},",
        json_num(d.compute_s),
        json_num(d.comm_s),
        json_num(d.wait_s),
        json_num(d.idle_s),
        json_num(d.stale_s),
        json_num(d.total_s()),
    ));
    out.push_str(&format!("\"overlap_opportunity_s\":{},", json_num(r.overlap_opportunity_s)));
    let critical: Vec<String> = r
        .critical
        .iter()
        .map(|c| {
            format!(
                "{{\"epoch\":{},\"round_s\":{},\"client\":{},\"busy_s\":{},\"compute_s\":{},\"comm_s\":{}}}",
                json_num(c.epoch as f64),
                json_num(c.round_s),
                json_num(c.client as f64),
                json_num(c.busy_s),
                json_num(c.compute_s),
                json_num(c.comm_s),
            )
        })
        .collect();
    out.push_str(&format!("\"critical_path\":[{}],", critical.join(",")));
    let links: Vec<String> = r
        .links
        .iter()
        .map(|l| {
            let hist: Vec<String> = l.hist_s.iter().map(|&v| json_num(v)).collect();
            format!(
                "{{\"id\":{},\"spans\":{},\"sampled_s\":{},\"busy_s\":{},\"mean_util\":{},\"p95_util\":{},\"max_util\":{},\"hist_s\":[{}]}}",
                json_str(&l.id),
                json_num(l.spans as f64),
                json_num(l.sampled_s),
                json_num(l.busy_s),
                json_num(l.mean_util),
                json_num(l.p95_util),
                json_num(l.max_util),
                hist.join(","),
            )
        })
        .collect();
    out.push_str(&format!("\"links\":[{}],", links.join(",")));
    let events: Vec<String> = r
        .flow_events
        .iter()
        .map(|(k, &v)| format!("{}:{}", json_str(k), json_num(v as f64)))
        .collect();
    out.push_str(&format!("\"flow_events\":{{{}}}", events.join(",")));
    out.push('}');
    out
}

/// Renders a human-readable summary (what the bin prints to stdout).
pub fn render_text(r: &NetviewReport) -> String {
    let mut out = String::new();
    let d = &r.decomposition;
    let total = d.total_s().max(f64::MIN_POSITIVE);
    out.push_str(&format!(
        "netview: {} settled round(s), {} rollback(s), makespan {:.3}s (virtual)\n",
        r.rounds, r.rollbacks, r.makespan_s
    ));
    out.push_str(&format!(
        "decomposition (client-seconds): compute {:.3} ({:.1}%), comm {:.3} ({:.1}%), \
         wait {:.3} ({:.1}%), idle {:.3} ({:.1}%), stale {:.3} ({:.1}%)\n",
        d.compute_s,
        100.0 * d.compute_s / total,
        d.comm_s,
        100.0 * d.comm_s / total,
        d.wait_s,
        100.0 * d.wait_s / total,
        d.idle_s,
        100.0 * d.idle_s / total,
        d.stale_s,
        100.0 * d.stale_s / total,
    ));
    out.push_str(&format!(
        "overlap opportunity: {:.3}s recoverable if finished uploaders trained ahead\n",
        r.overlap_opportunity_s
    ));
    // The worst critical path, as the headline.
    if let Some(worst) = r.critical.iter().max_by(|a, b| a.busy_s.total_cmp(&b.busy_s)) {
        out.push_str(&format!(
            "worst critical path: epoch {} client {} busy {:.3}s of {:.3}s round \
             (compute {:.3}s, comm {:.3}s)\n",
            worst.epoch, worst.client, worst.busy_s, worst.round_s, worst.compute_s, worst.comm_s
        ));
    }
    for l in &r.links {
        out.push_str(&format!(
            "link {:<12} {:>5} spans, {:.3}s sampled, busy {:.3}s, util mean {:.3} p95 {:.3} max {:.3}\n",
            l.id, l.spans, l.sampled_s, l.busy_s, l.mean_util, l.p95_util, l.max_util
        ));
    }
    out
}

/// Compares two netview JSON documents (baseline vs current) leaf by leaf.
/// Numeric leaves must agree within relative tolerance `tol` (absolute for
/// magnitudes below 1); strings and shapes must match exactly. Returns
/// human-readable mismatch descriptions, empty when the gate passes.
pub fn diff_json(baseline: &JsonValue, current: &JsonValue, tol: f64) -> Vec<String> {
    let mut out = Vec::new();
    diff_value("$", baseline, current, tol, &mut out);
    out
}

fn diff_value(path: &str, a: &JsonValue, b: &JsonValue, tol: f64, out: &mut Vec<String>) {
    // Cap the noise: a systematic mismatch floods every leaf.
    if out.len() >= 32 {
        return;
    }
    match (a, b) {
        (JsonValue::Object(ao), JsonValue::Object(bo)) => {
            for (k, av) in ao {
                match bo.get(k) {
                    Some(bv) => diff_value(&format!("{path}.{k}"), av, bv, tol, out),
                    None => out.push(format!("{path}.{k}: missing in current")),
                }
            }
            for k in bo.keys() {
                if !ao.contains_key(k) {
                    out.push(format!("{path}.{k}: unexpected in current"));
                }
            }
        }
        (JsonValue::Array(aa), JsonValue::Array(ba)) => {
            if aa.len() != ba.len() {
                out.push(format!("{path}: length {} vs {}", aa.len(), ba.len()));
                return;
            }
            for (i, (av, bv)) in aa.iter().zip(ba).enumerate() {
                diff_value(&format!("{path}[{i}]"), av, bv, tol, out);
            }
        }
        _ => match (a.as_f64(), b.as_f64()) {
            (Some(x), Some(y)) => {
                let scale = x.abs().max(1.0);
                if (x - y).abs() > tol * scale {
                    out.push(format!("{path}: {x} vs {y} (tol {tol})"));
                }
            }
            _ => {
                if a.as_str() != b.as_str() || a.as_str().is_none() {
                    out.push(format!("{path}: {a:?} vs {b:?}"));
                }
            }
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timeline::{IntervalRow, SeriesRow};

    fn round(epoch: usize, t0: f64, t1: f64) -> RoundTimeline {
        RoundTimeline { epoch, t0, t1, ..RoundTimeline::default() }
    }

    fn iv(epoch: usize, client: usize, state: IntervalState, t0: f64, t1: f64) -> IntervalRow {
        IntervalRow { epoch, client, state, t0, t1 }
    }

    #[test]
    fn critical_path_decomposition_and_overlap() {
        let mut r = round(1, 0.0, 10.0);
        // Client 0: trains 2s, uploads 1s, then waits 3s and idles 4s —
        // its upload made it, so 7s are recoverable.
        r.intervals.push(iv(1, 0, IntervalState::Train, 0.0, 2.0));
        r.intervals.push(iv(1, 0, IntervalState::Upload, 2.0, 3.0));
        r.intervals.push(iv(1, 0, IntervalState::Wait, 3.0, 6.0));
        r.intervals.push(iv(1, 0, IntervalState::Idle, 6.0, 10.0));
        // Client 1: the straggler — trains 6s, uploads 3s, late; its
        // stale-buffered tail disqualifies it from the overlap estimate.
        r.intervals.push(iv(1, 1, IntervalState::Train, 0.0, 6.0));
        r.intervals.push(iv(1, 1, IntervalState::Upload, 6.0, 9.0));
        r.intervals.push(iv(1, 1, IntervalState::StaleBuffered, 9.0, 10.0));
        let rec = TimelineRecording { rounds: vec![r], ..TimelineRecording::default() };
        let report = analyze(&rec);
        assert_eq!(report.rounds, 1);
        assert!((report.makespan_s - 10.0).abs() < 1e-12);
        assert_eq!(report.critical.len(), 1);
        let c = &report.critical[0];
        assert_eq!(c.client, 1, "straggler dominates the critical path");
        assert!((c.busy_s - 9.0).abs() < 1e-12);
        assert!((c.compute_s - 6.0).abs() < 1e-12);
        assert!((c.comm_s - 3.0).abs() < 1e-12);
        let d = &report.decomposition;
        assert!((d.compute_s - 8.0).abs() < 1e-12);
        assert!((d.comm_s - 4.0).abs() < 1e-12);
        assert!((d.wait_s - 3.0).abs() < 1e-12);
        assert!((d.idle_s - 4.0).abs() < 1e-12);
        assert!((d.stale_s - 1.0).abs() < 1e-12);
        assert!((report.overlap_opportunity_s - 7.0).abs() < 1e-12);
    }

    #[test]
    fn link_histogram_is_time_weighted() {
        let mut r = round(1, 0.0, 4.0);
        r.series.push(SeriesRow {
            epoch: 1,
            phase: "upload".into(),
            id: "wan".into(),
            t: vec![0.0, 1.0, 4.0],
            util: vec![1.0, 0.5, 0.25], // last sample's tail is dropped
            queue: vec![0, 0, 0],
        });
        let rec = TimelineRecording { rounds: vec![r], ..TimelineRecording::default() };
        let report = analyze(&rec);
        assert_eq!(report.links.len(), 1);
        let l = &report.links[0];
        assert_eq!(l.id, "wan");
        assert_eq!(l.spans, 2);
        assert!((l.sampled_s - 4.0).abs() < 1e-12);
        assert!((l.busy_s - 4.0).abs() < 1e-12);
        // 1s at 1.0 + 3s at 0.5 over 4s = 0.625.
        assert!((l.mean_util - 0.625).abs() < 1e-12);
        assert!((l.max_util - 1.0).abs() < 1e-12);
        // 95% of 4s = 3.8s: the 3s at 0.5 then into the 1s at 1.0.
        assert!((l.p95_util - 1.0).abs() < 1e-12);
        assert!((l.hist_s[5] - 3.0).abs() < 1e-12);
        assert!((l.hist_s[9] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn json_roundtrip_and_diff_gate() {
        let mut r = round(1, 0.0, 2.0);
        r.intervals.push(iv(1, 0, IntervalState::Train, 0.0, 1.0));
        r.intervals.push(iv(1, 0, IntervalState::Upload, 1.0, 2.0));
        let rec = TimelineRecording { rounds: vec![r], ..TimelineRecording::default() };
        let report = analyze(&rec);
        let json = render_json(&report);
        let v = JsonValue::parse(&json).expect("netview JSON parses");
        assert!(diff_json(&v, &v, 1e-9).is_empty(), "self-diff is clean");
        // A perturbed makespan trips the gate…
        let bumped = json.replacen("\"makespan_s\":2.0", "\"makespan_s\":2.5", 1);
        let bv = JsonValue::parse(&bumped).unwrap();
        let regs = diff_json(&v, &bv, 1e-6);
        assert!(regs.iter().any(|r| r.contains("makespan_s")), "{regs:?}");
        // …and stays quiet within tolerance.
        assert!(diff_json(&v, &bv, 0.5).is_empty());
        assert!(!render_text(&report).is_empty());
    }
}
