//! Learning-dynamics observability for FedMigr runs.
//!
//! Everything in this crate is *observation-only*: the diagnostics read the
//! runner's state (label-mixture vectors, client parameters, the DRL agent,
//! the migration edge list) and never feed anything back into the run. In
//! particular no function here consumes the run's RNG stream or advances the
//! virtual clock, so a seeded run produces byte-identical `RunMetrics`
//! whether diagnostics are on or off — the e2e tests assert exactly that.
//!
//! The crate has two halves:
//!
//! * **Per-round snapshots** — [`EmdSnapshot`] (how non-IID each client's
//!   *virtual dataset* still is, per the paper's Sec. II-C mixture
//!   argument), [`DriftSnapshot`] (classical client-drift numbers:
//!   `‖w_i − w_global‖`, update cosine alignment, divergence spread),
//!   [`DrlSnapshot`] (DDPG policy entropy/saturation, critic health,
//!   replay-buffer health) and [`GraphSnapshot`] (migration-graph
//!   analytics over the round's [`MigrationEdge`] list).
//! * **The flight recorder** — a versioned JSONL artifact
//!   ([`FlightRecorder`] writes, [`FlightRecording`] parses) consumed by
//!   the `fedmigr_report` and `fedmigr_diff` binaries; the latter is the
//!   repo's first metric-regression gate (see [`diff`]).

#![warn(missing_docs)]

pub mod diff;
pub mod drift;
pub mod drl_probe;
pub mod emd;
pub mod flight;
pub mod graph;
pub mod netview;
pub mod report;
pub mod timeline;

pub use diff::{diff_recordings, Regression, Tolerances};
pub use drift::DriftSnapshot;
pub use drl_probe::DrlSnapshot;
pub use emd::EmdSnapshot;
pub use flight::{
    FlightHeader, FlightRecorder, FlightRecording, FlightSummary, RoundRecord, FLIGHT_VERSION,
};
pub use graph::{permutation_cycles, EdgeOutcome, GraphSnapshot, MigrationEdge};
pub use report::render_report;
pub use timeline::{
    chrome_trace, IntervalState, TimelineHeader, TimelineRecorder, TimelineRecording,
    TIMELINE_VERSION,
};

/// Switches for the runner's learning-dynamics diagnostics.
///
/// Diagnostics are *active* when either flag is set: `enabled` exports the
/// per-round gauges and EMD-delta logs through the telemetry engine;
/// `flight_out` additionally streams the versioned JSONL flight recording
/// to the given path. Both are observation-only (see the crate docs).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct DiagConfig {
    /// Export per-round diagnostic gauges and logs.
    pub enabled: bool,
    /// Stream a flight recording (JSONL) to this path.
    pub flight_out: Option<String>,
    /// Stream a round timeline (JSONL) to this path. Independent of the
    /// learning-dynamics diagnostics: it does not imply [`Self::active`],
    /// so the per-round snapshot work stays off unless asked for.
    pub timeline_out: Option<String>,
}

impl DiagConfig {
    /// Whether any learning-dynamics diagnostic work should happen at all.
    pub fn active(&self) -> bool {
        self.enabled || self.flight_out.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diag_config_activation() {
        assert!(!DiagConfig::default().active());
        assert!(DiagConfig { enabled: true, ..DiagConfig::default() }.active());
        assert!(DiagConfig { flight_out: Some("x".into()), ..DiagConfig::default() }.active());
        // A timeline alone does not switch the snapshot diagnostics on.
        assert!(!DiagConfig { timeline_out: Some("x".into()), ..DiagConfig::default() }.active());
    }
}
