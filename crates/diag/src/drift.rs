//! Client-drift diagnostics.
//!
//! After local training, client `i`'s parameters sit at `w_i` while the
//! last aggregate sits at `w_global`. The drift picture is three numbers
//! per client plus fleet summaries:
//!
//! * `dist_i = ‖w_i − w_global‖₂` — raw parameter distance;
//! * `cos_i = cos(u_i, ū)` where `u_i = w_i − w_global` and `ū` is the
//!   sample-weighted mean update — how aligned each client's direction is
//!   with what aggregation is about to apply;
//! * `div_i = ‖u_i − ū‖₂` — the gradient-divergence term whose spread is
//!   the usual non-IID badness measure in the FL literature.
//!
//! Everything is computed in `f64` accumulation over `f32` parameters and
//! reads the parameter vectors only — no RNG, no clock.

/// Fleet drift picture for one round.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct DriftSnapshot {
    /// `‖w_i − w_global‖₂` per client.
    pub dist: Vec<f64>,
    /// Cosine of each client's update against the weighted mean update
    /// (0 when either vector is numerically zero).
    pub cosine: Vec<f64>,
    /// `‖u_i − ū‖₂` per client.
    pub divergence: Vec<f64>,
    /// Mean of `dist`.
    pub mean_dist: f64,
    /// Max of `dist`.
    pub max_dist: f64,
    /// Mean of `cosine`.
    pub mean_cosine: f64,
    /// Mean of `divergence` — the cross-client gradient-divergence spread.
    pub mean_divergence: f64,
}

impl DriftSnapshot {
    /// Measures drift of `params[i]` against `global`, weighting the mean
    /// update by `weights[i]` (client sample counts). All parameter vectors
    /// must share `global`'s length.
    pub fn measure(params: &[Vec<f32>], global: &[f32], weights: &[f64]) -> Self {
        assert_eq!(params.len(), weights.len(), "one weight per client");
        if params.is_empty() || global.is_empty() {
            return Self::default();
        }
        let total_w: f64 = weights.iter().sum();
        // Weighted mean update ū = Σ n_i (w_i − w_global) / Σ n_i.
        let mut mean_update = vec![0.0f64; global.len()];
        for (p, &w) in params.iter().zip(weights) {
            assert_eq!(p.len(), global.len(), "parameter vectors must share shape");
            let scale = if total_w > 0.0 { w / total_w } else { 1.0 / params.len() as f64 };
            for (m, (&pi, &gi)) in mean_update.iter_mut().zip(p.iter().zip(global)) {
                *m += scale * (pi as f64 - gi as f64);
            }
        }
        let mean_norm = l2(&mean_update);

        let mut dist = Vec::with_capacity(params.len());
        let mut cosine = Vec::with_capacity(params.len());
        let mut divergence = Vec::with_capacity(params.len());
        for p in params {
            let mut d2 = 0.0f64;
            let mut dot = 0.0f64;
            let mut div2 = 0.0f64;
            for ((&pi, &gi), &m) in p.iter().zip(global).zip(&mean_update) {
                let u = pi as f64 - gi as f64;
                d2 += u * u;
                dot += u * m;
                let e = u - m;
                div2 += e * e;
            }
            let d = d2.sqrt();
            dist.push(d);
            cosine.push(if d > 0.0 && mean_norm > 0.0 { dot / (d * mean_norm) } else { 0.0 });
            divergence.push(div2.sqrt());
        }
        let n = dist.len() as f64;
        DriftSnapshot {
            mean_dist: dist.iter().sum::<f64>() / n,
            max_dist: dist.iter().fold(0.0, |a: f64, &b| a.max(b)),
            mean_cosine: cosine.iter().sum::<f64>() / n,
            mean_divergence: divergence.iter().sum::<f64>() / n,
            dist,
            cosine,
            divergence,
        }
    }
}

fn l2(xs: &[f64]) -> f64 {
    xs.iter().map(|x| x * x).sum::<f64>().sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_params_have_zero_drift() {
        let g = vec![1.0f32, -2.0, 3.0];
        let s = DriftSnapshot::measure(&[g.clone(), g.clone()], &g, &[1.0, 1.0]);
        assert_eq!(s.mean_dist, 0.0);
        assert_eq!(s.max_dist, 0.0);
        assert_eq!(s.mean_divergence, 0.0);
        assert_eq!(s.cosine, vec![0.0, 0.0], "zero updates have undefined => 0 cosine");
    }

    #[test]
    fn opposing_updates_have_opposite_cosines() {
        let g = vec![0.0f32, 0.0];
        // Client 0 moves +x, client 1 moves -x but only half as far, so the
        // weighted mean points +x; cosines must be +1 and -1.
        let p0 = vec![2.0f32, 0.0];
        let p1 = vec![-1.0f32, 0.0];
        let s = DriftSnapshot::measure(&[p0, p1], &g, &[1.0, 1.0]);
        assert!((s.cosine[0] - 1.0).abs() < 1e-9, "cosine {:?}", s.cosine);
        assert!((s.cosine[1] + 1.0).abs() < 1e-9, "cosine {:?}", s.cosine);
        assert!((s.dist[0] - 2.0).abs() < 1e-9);
        assert!((s.dist[1] - 1.0).abs() < 1e-9);
        // ū = (2 - 1)/2 = 0.5 in x; divergences are 1.5 each.
        assert!((s.mean_divergence - 1.5).abs() < 1e-9, "divergence {:?}", s.divergence);
    }

    #[test]
    fn weights_shift_the_mean_direction() {
        let g = vec![0.0f32];
        let s = DriftSnapshot::measure(&[vec![1.0f32], vec![-1.0f32]], &g, &[3.0, 1.0]);
        // ū = (3·1 + 1·(−1))/4 = 0.5: aligned with the heavy client.
        assert!((s.cosine[0] - 1.0).abs() < 1e-9);
        assert!((s.cosine[1] + 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_is_safe() {
        assert_eq!(DriftSnapshot::measure(&[], &[], &[]), DriftSnapshot::default());
    }
}
