//! Human-readable rendering of a flight recording (`fedmigr_report`).

use std::collections::BTreeMap;
use std::fmt::Write;

use crate::flight::FlightRecording;

/// Renders the full report: run identity, convergence curve, EMD
/// trajectory, client-drift table, DRL introspection, migration-graph
/// summary and phase breakdown.
pub fn render_report(rec: &FlightRecording) -> String {
    let mut out = String::new();
    let h = &rec.header;
    let _ = writeln!(out, "flight recording v{}", h.version);
    let _ = writeln!(
        out,
        "run: {} | {} clients | {} epochs budgeted, {} recorded | seed {} | agg every {} | codec {}",
        h.scheme,
        h.clients,
        h.epochs,
        rec.rounds.len(),
        h.seed,
        h.agg_interval,
        h.codec,
    );
    if let Some(s) = &rec.summary {
        let _ = writeln!(
            out,
            "outcome: final acc {:.4}, best acc {:.4}, {:.2} MB, {:.2} sim-h, {} local + {} global migrations{}{}",
            s.final_accuracy,
            s.best_accuracy,
            s.total_bytes as f64 / 1e6,
            s.sim_time / 3600.0,
            s.migrations_local,
            s.migrations_global,
            if s.target_reached { ", target reached" } else { "" },
            if s.budget_exhausted { ", budget exhausted" } else { "" },
        );
    }

    convergence_section(&mut out, rec);
    emd_section(&mut out, rec);
    drift_section(&mut out, rec);
    drl_section(&mut out, rec);
    graph_section(&mut out, rec);
    phase_section(&mut out, rec);
    out
}

/// Picks ≤ `max` indices spread evenly over `0..n`, always keeping the
/// first and last.
fn sample_indices(n: usize, max: usize) -> Vec<usize> {
    if n <= max {
        return (0..n).collect();
    }
    let mut idx: Vec<usize> = (0..max).map(|i| i * (n - 1) / (max - 1)).collect();
    idx.dedup();
    idx
}

fn convergence_section(out: &mut String, rec: &FlightRecording) {
    let evals: Vec<_> = rec.rounds.iter().filter(|r| r.test_accuracy.is_some()).collect();
    let _ = writeln!(out, "\n== convergence ==");
    if evals.is_empty() {
        let _ = writeln!(out, "(no evaluation rounds recorded)");
        return;
    }
    let _ =
        writeln!(out, "{:>6} {:>10} {:>9} {:>10} {:>10}", "epoch", "loss", "acc", "MB", "sim-h");
    for &i in &sample_indices(evals.len(), 12) {
        let r = evals[i];
        let _ = writeln!(
            out,
            "{:>6} {:>10.4} {:>9.4} {:>10.2} {:>10.2}",
            r.epoch,
            r.train_loss,
            r.test_accuracy.unwrap_or(0.0),
            (r.c2s_bytes + r.c2c_local_bytes + r.c2c_global_bytes) as f64 / 1e6,
            r.sim_time / 3600.0,
        );
    }
}

fn emd_section(out: &mut String, rec: &FlightRecording) {
    let _ = writeln!(out, "\n== virtual-dataset EMD trajectory ==");
    if rec.rounds.is_empty() {
        let _ = writeln!(out, "(no rounds recorded)");
        return;
    }
    let _ = writeln!(out, "{:>6} {:>10} {:>10} {:>13}", "epoch", "mean", "max", "train-hist");
    for &i in &sample_indices(rec.rounds.len(), 12) {
        let r = &rec.rounds[i];
        let _ = writeln!(
            out,
            "{:>6} {:>10.4} {:>10.4} {:>13.4}",
            r.epoch, r.emd.mean, r.emd.max, r.train_emd.mean
        );
    }
    let _ = writeln!(
        out,
        "run-mean EMD {:.4} (final {:.4}); training-history EMD {:.4} — never reset by aggregation, what migration alone buys",
        rec.mean_emd_over_run(),
        rec.final_emd_mean(),
        rec.mean_train_emd_over_run(),
    );
}

fn drift_section(out: &mut String, rec: &FlightRecording) {
    let Some(r) = rec.rounds.iter().rev().find(|r| r.drift.is_some()) else {
        return;
    };
    let d = r.drift.as_ref().expect("filtered on is_some");
    let _ = writeln!(out, "\n== client drift (epoch {}) ==", r.epoch);
    let _ = writeln!(out, "{:>7} {:>12} {:>9} {:>12}", "client", "|w_i-w_g|", "cos", "divergence");
    for i in 0..d.dist.len() {
        let _ = writeln!(
            out,
            "{:>7} {:>12.4} {:>9.3} {:>12.4}",
            i, d.dist[i], d.cosine[i], d.divergence[i]
        );
    }
    let _ = writeln!(
        out,
        "mean dist {:.4} (max {:.4}), mean cosine {:.3}, mean divergence {:.4}",
        d.mean_dist, d.max_dist, d.mean_cosine, d.mean_divergence
    );
}

fn drl_section(out: &mut String, rec: &FlightRecording) {
    let with_drl: Vec<_> =
        rec.rounds.iter().filter_map(|r| r.drl.as_ref().map(|d| (r.epoch, d))).collect();
    let Some(&(last_epoch, last)) = with_drl.last() else {
        return;
    };
    let (first_epoch, first) = with_drl[0];
    let _ = writeln!(out, "\n== DDPG introspection ==");
    let _ = writeln!(
        out,
        "policy entropy {:.3} -> {:.3} nats (epochs {}..{}), saturation {:.3} -> {:.3}",
        first.mean_entropy,
        last.mean_entropy,
        first_epoch,
        last_epoch,
        first.mean_saturation,
        last.mean_saturation,
    );
    let _ = writeln!(
        out,
        "critic: mean Q {:.4}, mean |TD| {:.4} (max {:.4}), grad norms critic {:.4} / actor {:.4}",
        last.mean_q, last.mean_abs_td, last.max_abs_td, last.critic_grad_norm, last.actor_grad_norm,
    );
    let _ = writeln!(
        out,
        "replay: {}/{} filled, priority spread {:.2}x, mean age {:.1} (max {:.0}) pushes",
        last.replay_occupancy,
        last.replay_capacity,
        last.replay_priority_spread,
        last.replay_mean_age,
        last.replay_max_age,
    );
}

fn graph_section(out: &mut String, rec: &FlightRecording) {
    let _ = writeln!(out, "\n== migration graph ==");
    let (mut attempted, mut delivered, mut fallbacks, mut cycles) = (0usize, 0usize, 0usize, 0);
    let mut outcomes: BTreeMap<&'static str, usize> = BTreeMap::new();
    let mut bytes = 0u64;
    for r in &rec.rounds {
        attempted += r.graph.attempted;
        delivered += r.graph.delivered;
        fallbacks += r.graph.fallbacks;
        cycles += r.graph.cycles;
        for e in &r.migrations {
            *outcomes.entry(e.outcome.name()).or_default() += 1;
            if e.outcome.delivered() {
                bytes += e.bytes;
            }
        }
    }
    if attempted == 0 {
        let _ = writeln!(out, "(no migrations attempted)");
        return;
    }
    let _ = writeln!(
        out,
        "{attempted} attempted, {delivered} delivered ({fallbacks} via fallback), {:.2} MB moved, {cycles} circulation cycles",
        bytes as f64 / 1e6,
    );
    let paths: Vec<String> = outcomes.iter().map(|(k, v)| format!("{k} {v}")).collect();
    let _ = writeln!(out, "paths: {}", paths.join(", "));
    let migratory: Vec<_> = rec.rounds.iter().filter(|r| r.graph.delivered > 0).collect();
    if !migratory.is_empty() {
        let mean = |f: fn(&crate::graph::GraphSnapshot) -> f64| {
            migratory.iter().map(|r| f(&r.graph)).sum::<f64>() / migratory.len() as f64
        };
        let _ = writeln!(
            out,
            "degree concentration (HHI, mean over migratory rounds): out {:.3}, in {:.3}",
            mean(|g| g.out_concentration),
            mean(|g| g.in_concentration),
        );
    }
}

fn phase_section(out: &mut String, rec: &FlightRecording) {
    let Some(r) = rec.rounds.last() else {
        return;
    };
    let total = r.phase_train_s + r.phase_c2s_s + r.phase_migration_s + r.phase_backoff_s;
    if total <= 0.0 {
        return;
    }
    let _ = writeln!(out, "\n== phase breakdown (virtual time) ==");
    for (name, secs) in [
        ("train", r.phase_train_s),
        ("c2s", r.phase_c2s_s),
        ("migration", r.phase_migration_s),
        ("backoff", r.phase_backoff_s),
    ] {
        let _ = writeln!(out, "{name:>10}: {secs:>10.1}s ({:>5.1}%)", 100.0 * secs / total);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::emd::EmdSnapshot;
    use crate::flight::{FlightHeader, FlightSummary, RoundRecord, FLIGHT_VERSION};
    use crate::graph::{EdgeOutcome, GraphSnapshot, MigrationEdge};

    #[test]
    fn sampling_keeps_ends() {
        assert_eq!(sample_indices(3, 12), vec![0, 1, 2]);
        let idx = sample_indices(100, 12);
        assert_eq!(*idx.first().unwrap(), 0);
        assert_eq!(*idx.last().unwrap(), 99);
        assert!(idx.len() <= 12);
    }

    #[test]
    fn report_covers_every_section() {
        let header = FlightHeader {
            version: FLIGHT_VERSION,
            scheme: "FedMigr".into(),
            clients: 2,
            epochs: 2,
            seed: 7,
            agg_interval: 2,
            codec: "identity".into(),
        };
        let mut round = RoundRecord {
            epoch: 1,
            train_loss: 2.0,
            test_accuracy: Some(0.4),
            sim_time: 100.0,
            c2s_bytes: 1000,
            phase_train_s: 60.0,
            phase_c2s_s: 30.0,
            phase_migration_s: 10.0,
            emd: EmdSnapshot { per_client: vec![0.3, 0.1], mean: 0.2, max: 0.3 },
            drift: Some(crate::drift::DriftSnapshot {
                dist: vec![1.0, 2.0],
                cosine: vec![0.5, -0.5],
                divergence: vec![0.1, 0.2],
                mean_dist: 1.5,
                max_dist: 2.0,
                mean_cosine: 0.0,
                mean_divergence: 0.15,
            }),
            drl: Some(crate::drl_probe::DrlSnapshot {
                mean_entropy: 1.0,
                mean_saturation: 0.5,
                replay_capacity: 8,
                ..Default::default()
            }),
            graph: GraphSnapshot {
                attempted: 1,
                delivered: 1,
                fallbacks: 0,
                out_concentration: 1.0,
                in_concentration: 1.0,
                cycles: 0,
            },
            migrations: vec![MigrationEdge {
                src: 0,
                dst: 1,
                bytes: 500,
                time_s: 1.0,
                outcome: EdgeOutcome::Direct,
            }],
            ..Default::default()
        };
        round.phase_backoff_s = 0.0;
        let rec = FlightRecording {
            header,
            rounds: vec![round],
            summary: Some(FlightSummary {
                epochs_run: 1,
                final_accuracy: 0.4,
                best_accuracy: 0.4,
                total_bytes: 1000,
                sim_time: 100.0,
                migrations_local: 1,
                migrations_global: 0,
                final_emd_mean: 0.2,
                target_reached: false,
                budget_exhausted: false,
            }),
            tolerances: None,
        };
        let text = render_report(&rec);
        for needle in [
            "flight recording v1",
            "FedMigr",
            "== convergence ==",
            "== virtual-dataset EMD trajectory ==",
            "== client drift (epoch 1) ==",
            "== DDPG introspection ==",
            "== migration graph ==",
            "paths: direct 1",
            "== phase breakdown",
        ] {
            assert!(text.contains(needle), "report missing {needle:?}:\n{text}");
        }
    }

    #[test]
    fn empty_recording_reports_gracefully() {
        let rec = FlightRecording {
            header: FlightHeader {
                version: FLIGHT_VERSION,
                scheme: "FedAvg".into(),
                clients: 2,
                epochs: 0,
                seed: 0,
                agg_interval: 1,
                codec: "identity".into(),
            },
            rounds: vec![],
            summary: None,
            tolerances: None,
        };
        let text = render_report(&rec);
        assert!(text.contains("(no evaluation rounds recorded)"));
        assert!(text.contains("(no rounds recorded)"));
    }
}
