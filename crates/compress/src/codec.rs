//! The codec trait, the compressed wire blob, and the quantizing codecs.
//!
//! Every codec writes a self-contained little-endian byte format whose
//! length is a *pure function of the input length* — never of the values —
//! so transfer times, budgets and DRL costs stay deterministic. The
//! quantizers are chunked: each run of [`CHUNK`] coordinates carries its own
//! `f32` zero-point (the chunk minimum) and `f32` scale, followed by the
//! packed fixed-width codes. Chunking bounds the quantization step by the
//! *local* dynamic range, which matters because a model's first-layer
//! weights and its biases can differ by orders of magnitude.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::sparse::{topk_size, topk_uniform_size, TopKCodec, TopKUniformCodec};
use crate::CodecConfig;

/// Coordinates per quantization chunk (one `f32` min + `f32` scale each).
pub const CHUNK: usize = 256;

/// An encoded parameter vector plus its exact wire size.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CompressedBlob {
    bytes: Bytes,
}

impl CompressedBlob {
    pub(crate) fn new(bytes: Bytes) -> Self {
        Self { bytes }
    }

    /// Exact size of this blob on the wire, in bytes — what the network
    /// simulator charges for the transfer.
    pub fn wire_bytes(&self) -> u64 {
        self.bytes.len() as u64
    }

    /// The raw encoded bytes.
    pub fn bytes(&self) -> &Bytes {
        &self.bytes
    }
}

/// A wire codec: encodes a parameter vector into a [`CompressedBlob`] and
/// decodes it back (lossily, except for the identity codec).
pub trait WireCodec {
    /// Encodes `values`. `seed` feeds stochastic rounding only —
    /// deterministic codecs ignore it; equal `(values, seed)` always yields
    /// an identical blob.
    fn encode(&self, values: &[f32], seed: u64) -> CompressedBlob;

    /// Decodes a blob produced by [`WireCodec::encode`]. Returns `None` on
    /// a malformed buffer.
    fn decode(&self, blob: &CompressedBlob) -> Option<Vec<f32>>;

    /// Exact encoded size for an input of length `n` — a pure function of
    /// `n`, guaranteed equal to `encode(v, _).wire_bytes()` for any `v` of
    /// that length.
    fn encoded_size(&self, n: usize) -> u64;

    /// Whether decode(encode(v)) == v exactly for every finite v.
    fn is_lossless(&self) -> bool;
}

/// The concrete codec selected by a [`CodecConfig`].
#[derive(Clone, Debug)]
pub enum Codec {
    /// Uncompressed pass-through (`u64 n || f32 LE` — the seed wire format).
    Identity,
    /// Chunked uniform quantization, deterministic round-to-nearest.
    Uniform(QuantCodec),
    /// Chunked uniform quantization, stochastic rounding.
    Stochastic(QuantCodec),
    /// Top-k magnitude sparsification.
    TopK(TopKCodec),
    /// Top-k sparsification composed with uniform quantization.
    TopKUniform(TopKUniformCodec),
}

impl Codec {
    /// Builds the codec for a configuration.
    ///
    /// # Panics
    /// Panics on an unsupported bit width (only 4 and 8 are implemented) or
    /// an out-of-range sparsity fraction.
    pub fn from_config(config: &CodecConfig) -> Self {
        match *config {
            CodecConfig::Identity => Codec::Identity,
            CodecConfig::Uniform { bits, .. } => Codec::Uniform(QuantCodec::new(bits)),
            CodecConfig::Stochastic { bits, seed, .. } => {
                Codec::Stochastic(QuantCodec::with_seed(bits, seed))
            }
            CodecConfig::TopK { frac, .. } => Codec::TopK(TopKCodec::new(frac)),
            CodecConfig::TopKUniform { frac, bits, .. } => {
                Codec::TopKUniform(TopKUniformCodec::new(frac, bits))
            }
        }
    }
}

impl WireCodec for Codec {
    fn encode(&self, values: &[f32], seed: u64) -> CompressedBlob {
        match self {
            Codec::Identity => {
                let mut buf = BytesMut::with_capacity(8 + 4 * values.len());
                buf.put_u64_le(values.len() as u64);
                for &v in values {
                    buf.put_f32_le(v);
                }
                CompressedBlob::new(buf.freeze())
            }
            Codec::Uniform(q) => q.encode_rounded(values, None),
            Codec::Stochastic(q) => {
                let mut rng = StdRng::seed_from_u64(q.mix_seed(seed));
                q.encode_rounded(values, Some(&mut rng))
            }
            Codec::TopK(t) => t.encode(values),
            Codec::TopKUniform(t) => t.encode(values),
        }
    }

    fn decode(&self, blob: &CompressedBlob) -> Option<Vec<f32>> {
        match self {
            Codec::Identity => {
                let mut bytes = blob.bytes().clone();
                if bytes.len() < 8 {
                    return None;
                }
                let n = bytes.get_u64_le() as usize;
                if bytes.len() != 4 * n {
                    return None;
                }
                Some((0..n).map(|_| bytes.get_f32_le()).collect())
            }
            Codec::Uniform(q) | Codec::Stochastic(q) => q.decode(blob),
            Codec::TopK(t) => t.decode(blob),
            Codec::TopKUniform(t) => t.decode(blob),
        }
    }

    fn encoded_size(&self, n: usize) -> u64 {
        match self {
            Codec::Identity => 8 + 4 * n as u64,
            Codec::Uniform(q) | Codec::Stochastic(q) => quant_size(n, q.bits),
            Codec::TopK(t) => topk_size(t.keep(n)),
            Codec::TopKUniform(t) => topk_uniform_size(t.keep(n), t.bits()),
        }
    }

    fn is_lossless(&self) -> bool {
        matches!(self, Codec::Identity)
    }
}

/// Chunked uniform affine quantizer (shared by the deterministic and
/// stochastic codecs; the rounding rule is the only difference).
#[derive(Clone, Debug)]
pub struct QuantCodec {
    bits: u8,
    seed: u64,
}

impl QuantCodec {
    /// A deterministic round-to-nearest quantizer. `bits` must be 4 or 8.
    pub fn new(bits: u8) -> Self {
        Self::with_seed(bits, 0)
    }

    /// A quantizer carrying a base seed for stochastic rounding.
    pub fn with_seed(bits: u8, seed: u64) -> Self {
        assert!(bits == 4 || bits == 8, "supported code widths are 4 and 8 bits, got {bits}");
        Self { bits, seed }
    }

    /// Code width in bits.
    pub fn bits(&self) -> u8 {
        self.bits
    }

    pub(crate) fn mix_seed(&self, transfer_seed: u64) -> u64 {
        self.seed ^ transfer_seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(17)
    }

    fn encode_rounded(&self, values: &[f32], mut rng: Option<&mut StdRng>) -> CompressedBlob {
        let mut buf = BytesMut::with_capacity(quant_size(values.len(), self.bits) as usize);
        buf.put_u64_le(values.len() as u64);
        for chunk in values.chunks(CHUNK) {
            let (min, scale) = chunk_range(chunk, self.bits);
            buf.put_f32_le(min);
            buf.put_f32_le(scale);
            let codes: Vec<u8> = chunk
                .iter()
                .map(|&v| {
                    let u = rng.as_deref_mut().map(|r| r.random::<f32>());
                    quantize_one(v, min, scale, self.bits, u)
                })
                .collect();
            buf.put_slice(&pack_codes(&codes, self.bits));
        }
        CompressedBlob::new(buf.freeze())
    }

    fn decode(&self, blob: &CompressedBlob) -> Option<Vec<f32>> {
        let bytes: &[u8] = blob.bytes();
        let mut cur = Cursor::new(bytes);
        let n = cur.u64()? as usize;
        let mut out = Vec::with_capacity(n);
        let mut remaining = n;
        while remaining > 0 {
            let len = remaining.min(CHUNK);
            let min = cur.f32()?;
            let scale = cur.f32()?;
            let packed = cur.slice(packed_len(len, self.bits))?;
            let codes = unpack_codes(packed, len, self.bits);
            out.extend(codes.iter().map(|&q| min + q as f32 * scale));
            remaining -= len;
        }
        cur.done()?;
        Some(out)
    }
}

/// Encoded size of a chunked `bits`-wide quantization of `n` values.
pub(crate) fn quant_size(n: usize, bits: u8) -> u64 {
    let mut size = 8u64;
    let mut remaining = n;
    while remaining > 0 {
        let len = remaining.min(CHUNK);
        size += 8 + packed_len(len, bits) as u64;
        remaining -= len;
    }
    size
}

/// Bytes needed to pack `len` codes of `bits` width (per-chunk padding).
pub(crate) fn packed_len(len: usize, bits: u8) -> usize {
    (len * bits as usize).div_ceil(8)
}

/// Per-chunk zero-point (minimum) and step so that `min + levels * scale`
/// spans the chunk. A constant (or non-finite) chunk gets scale 0: every
/// code decodes to the minimum.
pub(crate) fn chunk_range(chunk: &[f32], bits: u8) -> (f32, f32) {
    let levels = ((1u32 << bits) - 1) as f32;
    // A NaN/Inf coordinate poisons the whole chunk: encode it as (NaN, 0)
    // so the decode is NaN and downstream finite-ness screens (quarantine,
    // robust aggregation) see the corruption. The check must be explicit —
    // f32::min/max silently skip NaN operands.
    if chunk.iter().any(|v| !v.is_finite()) {
        return (f32::NAN, 0.0);
    }
    let mut min = f32::INFINITY;
    let mut max = f32::NEG_INFINITY;
    for &v in chunk {
        min = min.min(v);
        max = max.max(v);
    }
    let scale = (max - min) / levels;
    (min, if scale.is_finite() && scale > 0.0 { scale } else { 0.0 })
}

/// Quantizes one value to a `bits`-wide code. `u` in `[0, 1)` selects
/// stochastic rounding (`None` = round-to-nearest).
pub(crate) fn quantize_one(v: f32, min: f32, scale: f32, bits: u8, u: Option<f32>) -> u8 {
    let levels = (1u32 << bits) - 1;
    if scale <= 0.0 || !v.is_finite() {
        return 0;
    }
    let t = ((v - min) / scale).clamp(0.0, levels as f32);
    let q = match u {
        None => t.round(),
        Some(u) => {
            let floor = t.floor();
            floor + if u < t - floor { 1.0 } else { 0.0 }
        }
    };
    (q.min(levels as f32)) as u8
}

/// Packs `bits`-wide codes into bytes (low nibble first for 4-bit).
pub(crate) fn pack_codes(codes: &[u8], bits: u8) -> Vec<u8> {
    match bits {
        8 => codes.to_vec(),
        4 => codes
            .chunks(2)
            .map(|pair| (pair[0] & 0x0F) | (pair.get(1).copied().unwrap_or(0) << 4))
            .collect(),
        _ => unreachable!("unsupported width"),
    }
}

/// Inverse of [`pack_codes`].
pub(crate) fn unpack_codes(packed: &[u8], len: usize, bits: u8) -> Vec<u8> {
    match bits {
        8 => packed[..len].to_vec(),
        4 => (0..len).map(|i| (packed[i / 2] >> (4 * (i % 2))) & 0x0F).collect(),
        _ => unreachable!("unsupported width"),
    }
}

/// Minimal checked reader over a byte slice (the `bytes` shim's [`Buf`]
/// has no u8/slice accessors, and decode must reject truncation instead of
/// panicking).
pub(crate) struct Cursor<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    pub(crate) fn new(data: &'a [u8]) -> Self {
        Self { data, pos: 0 }
    }

    pub(crate) fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.slice(8)?.try_into().ok()?))
    }

    pub(crate) fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.slice(4)?.try_into().ok()?))
    }

    pub(crate) fn f32(&mut self) -> Option<f32> {
        Some(f32::from_le_bytes(self.slice(4)?.try_into().ok()?))
    }

    pub(crate) fn slice(&mut self, len: usize) -> Option<&'a [u8]> {
        if self.pos + len > self.data.len() {
            return None;
        }
        let s = &self.data[self.pos..self.pos + len];
        self.pos += len;
        Some(s)
    }

    /// Succeeds only when the buffer was consumed exactly.
    pub(crate) fn done(&self) -> Option<()> {
        (self.pos == self.data.len()).then_some(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(n: usize) -> Vec<f32> {
        (0..n).map(|i| (i as f32 * 0.37).sin() * (1.0 + i as f32 / 50.0)).collect()
    }

    #[test]
    fn identity_matches_the_seed_wire_format() {
        let v = ramp(10);
        let c = Codec::Identity;
        let blob = c.encode(&v, 0);
        assert_eq!(blob.wire_bytes(), 8 + 4 * 10);
        assert_eq!(blob.wire_bytes(), c.encoded_size(10));
        assert_eq!(c.decode(&blob).unwrap(), v);
        assert!(c.is_lossless());
    }

    #[test]
    fn int8_round_trip_error_is_bounded_by_half_step() {
        let v = ramp(1000);
        let c = Codec::Uniform(QuantCodec::new(8));
        let blob = c.encode(&v, 0);
        assert_eq!(blob.wire_bytes(), c.encoded_size(v.len()));
        let d = c.decode(&blob).unwrap();
        for (chunk, dchunk) in v.chunks(CHUNK).zip(d.chunks(CHUNK)) {
            let (_, scale) = chunk_range(chunk, 8);
            for (&a, &b) in chunk.iter().zip(dchunk) {
                assert!(
                    (a - b).abs() <= scale * 0.5 + 1e-6,
                    "error {} exceeds half-step {}",
                    (a - b).abs(),
                    scale * 0.5
                );
            }
        }
    }

    #[test]
    fn int4_packs_two_codes_per_byte() {
        let v = ramp(CHUNK);
        let c = Codec::Uniform(QuantCodec::new(4));
        let blob = c.encode(&v, 0);
        // 8 (len) + 8 (chunk header) + 128 (256 nibbles).
        assert_eq!(blob.wire_bytes(), 8 + 8 + 128);
        assert_eq!(blob.wire_bytes(), c.encoded_size(v.len()));
        assert_eq!(c.decode(&blob).unwrap().len(), v.len());
    }

    #[test]
    fn constant_chunks_decode_exactly() {
        let v = vec![0.75f32; 70];
        let c = Codec::Uniform(QuantCodec::new(8));
        let d = c.decode(&c.encode(&v, 0)).unwrap();
        assert_eq!(d, v, "zero dynamic range must be lossless");
    }

    #[test]
    fn nan_inputs_decode_to_nan_for_screening() {
        let mut v = ramp(20);
        v[7] = f32::NAN;
        let c = Codec::Uniform(QuantCodec::new(8));
        let d = c.decode(&c.encode(&v, 0)).unwrap();
        assert!(d.iter().any(|x| x.is_nan()), "corruption must survive the codec");
    }

    #[test]
    fn stochastic_rounding_is_seeded_and_deterministic() {
        let v = ramp(300);
        let c = Codec::Stochastic(QuantCodec::with_seed(8, 5));
        let a = c.encode(&v, 42);
        let b = c.encode(&v, 42);
        assert_eq!(a, b, "same transfer seed, same blob");
        let other = c.encode(&v, 43);
        assert_ne!(a, other, "different transfer seeds should round differently");
        assert_eq!(a.wire_bytes(), c.encoded_size(v.len()));
    }

    #[test]
    fn decode_rejects_truncated_and_padded_buffers() {
        let v = ramp(100);
        for codec in [Codec::Identity, Codec::Uniform(QuantCodec::new(8))] {
            let blob = codec.encode(&v, 0);
            let raw = blob.bytes().clone();
            let truncated = CompressedBlob::new(raw.slice(0..raw.len() - 1));
            assert!(codec.decode(&truncated).is_none());
        }
    }

    #[test]
    fn empty_vector_round_trips() {
        for codec in [Codec::Identity, Codec::Uniform(QuantCodec::new(4))] {
            let blob = codec.encode(&[], 0);
            assert_eq!(blob.wire_bytes(), codec.encoded_size(0));
            assert_eq!(codec.decode(&blob).unwrap(), Vec::<f32>::new());
        }
    }

    #[test]
    #[should_panic(expected = "supported code widths")]
    fn unsupported_width_panics() {
        let _ = QuantCodec::new(3);
    }
}
