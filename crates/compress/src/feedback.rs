//! Error-feedback residuals (EF-SGD / 1-bit-SGD memory).
//!
//! A lossy codec throws information away on every transfer. Error feedback
//! keeps the discarded part — `residual = sent_intent − decoded` — and adds
//! it back to the *next* vector sent over the same lane, so the error does
//! not compound across rounds: over time the receiver integrates everything
//! the sender meant to transmit. One lane per logical stream — each
//! client's egress, each server-to-client unicast, and the shared
//! broadcast — keeps the residual local (residuals never travel).

/// Per-lane residual state for error-feedback compression.
#[derive(Clone, Debug, Default)]
pub struct ErrorFeedback {
    residuals: Vec<Vec<f32>>,
}

impl ErrorFeedback {
    /// Creates `lanes` empty residuals (they size themselves lazily to the
    /// first vector seen on each lane).
    pub fn new(lanes: usize) -> Self {
        Self { residuals: vec![Vec::new(); lanes] }
    }

    /// Rebuilds residual state captured by [`ErrorFeedback::residuals`]
    /// (run-checkpoint restore).
    pub fn from_residuals(residuals: Vec<Vec<f32>>) -> Self {
        Self { residuals }
    }

    /// Number of lanes.
    pub fn lanes(&self) -> usize {
        self.residuals.len()
    }

    /// The raw per-lane residuals (run-checkpoint capture).
    pub fn residuals(&self) -> &[Vec<f32>] {
        &self.residuals
    }

    /// The transmit intent for `lane`: `values + residual`. With an empty
    /// (never-updated) residual this is a plain copy.
    pub fn compensated(&self, lane: usize, values: &[f32]) -> Vec<f32> {
        let r = &self.residuals[lane];
        if r.len() == values.len() {
            values.iter().zip(r).map(|(&v, &e)| v + e).collect()
        } else {
            values.to_vec()
        }
    }

    /// Stores the new residual `intent − decoded` after a completed
    /// transmission. Non-finite entries (a NaN'd intent, e.g. from Byzantine
    /// corruption upstream) are sanitized to zero so one poisoned round
    /// cannot wedge the lane forever.
    pub fn update(&mut self, lane: usize, intent: &[f32], decoded: &[f32]) {
        debug_assert_eq!(intent.len(), decoded.len());
        let r = intent
            .iter()
            .zip(decoded)
            .map(|(&a, &b)| {
                let e = a - b;
                if e.is_finite() {
                    e
                } else {
                    0.0
                }
            })
            .collect();
        self.residuals[lane] = r;
    }

    /// L2 norm of a lane's residual (0 for an empty lane).
    pub fn residual_norm(&self, lane: usize) -> f64 {
        self.residuals[lane].iter().map(|&e| (e as f64) * (e as f64)).sum::<f64>().sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_residual_is_a_no_op() {
        let ef = ErrorFeedback::new(2);
        assert_eq!(ef.compensated(0, &[1.0, 2.0]), vec![1.0, 2.0]);
        assert_eq!(ef.residual_norm(0), 0.0);
    }

    #[test]
    fn residual_carries_the_lost_part_forward() {
        let mut ef = ErrorFeedback::new(1);
        // Transfer 1: intent [1.0, -1.0], receiver got [0.75, -0.75].
        ef.update(0, &[1.0, -1.0], &[0.75, -0.75]);
        assert!((ef.residual_norm(0) - (2.0f64 * 0.25 * 0.25).sqrt()).abs() < 1e-12);
        // Transfer 2 re-injects the loss.
        assert_eq!(ef.compensated(0, &[2.0, 2.0]), vec![2.25, 1.75]);
    }

    #[test]
    fn lanes_are_independent() {
        let mut ef = ErrorFeedback::new(2);
        ef.update(0, &[1.0], &[0.0]);
        assert_eq!(ef.compensated(1, &[5.0]), vec![5.0]);
        assert_eq!(ef.compensated(0, &[5.0]), vec![6.0]);
    }

    #[test]
    fn non_finite_errors_are_sanitized() {
        let mut ef = ErrorFeedback::new(1);
        ef.update(0, &[f32::NAN, 1.0], &[0.0, 0.5]);
        assert_eq!(ef.compensated(0, &[1.0, 1.0]), vec![1.0, 1.5]);
        assert!(ef.residual_norm(0).is_finite());
    }

    #[test]
    fn length_change_resets_the_lane() {
        let mut ef = ErrorFeedback::new(1);
        ef.update(0, &[1.0, 1.0], &[0.5, 0.5]);
        // A different-length vector ignores the stale residual.
        assert_eq!(ef.compensated(0, &[3.0]), vec![3.0]);
    }
}
