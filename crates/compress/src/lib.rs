//! Wire compression for federated model transfers.
//!
//! Half of FedMigr's claim is *communication* savings, yet an uncompressed
//! parameter vector costs 4 bytes per weight on every hop. Real edge-FL
//! deployments compress what goes on the wire; this crate provides the
//! pluggable codec layer the simulator charges transfers through:
//!
//! * [`WireCodec`] / [`Codec`] — deterministic, seeded encoders producing a
//!   [`CompressedBlob`] with *exact* byte accounting, and the matching
//!   decoders: identity, uniform int8/int4 quantization with per-chunk
//!   scale/zero-point, stochastic-rounding quantization, top-k magnitude
//!   sparsification, and composed sparsify-then-quantize.
//! * [`ErrorFeedback`] — per-stream residual state: lossy codecs accumulate
//!   the quantization error of each transmission and re-inject it into the
//!   next one, the standard trick (1-bit SGD, EF-SGD) that keeps compressed
//!   training unbiased over time.
//! * [`Compressor`] — the run-level orchestrator the experiment runner
//!   drives: one residual lane per client for egress transfers (uploads and
//!   C2C migrations), per-receiver unicast lanes plus a shared broadcast
//!   lane for server egress (error compensation on *both* directions, the
//!   DoubleSqueeze scheme), and cumulative [`CompressionStats`].
//! * [`CodecConfig`] — the serializable knob `RunConfig::codec` exposes.
//!
//! Every codec's encoded size is a pure function of the input length, never
//! of the values, so byte accounting (budgets, transfer times, DRL reward
//! costs) stays deterministic; the *stochastic* codec consumes no shared RNG
//! stream — its rounding noise is seeded per transmission from the run seed
//! and a transmission counter, exactly like the attack model's hash-based
//! corruption. The identity codec reproduces the uncompressed wire format
//! bit-for-bit (`8 + 4n` bytes), so a run configured with it is
//! byte-identical to one that never heard of this crate.

mod codec;
mod compressor;
mod feedback;
mod sparse;
mod stats;

pub use codec::{Codec, CompressedBlob, WireCodec, CHUNK};
pub use compressor::{Compressor, CompressorState};
pub use feedback::ErrorFeedback;
pub use stats::CompressionStats;

use serde::{Deserialize, Serialize};

/// Selects the wire codec (and error-feedback policy) of a run.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub enum CodecConfig {
    /// Uncompressed `u64 length || f32 LE` — byte-identical to the
    /// pre-compression wire format.
    #[default]
    Identity,
    /// Uniform affine quantization to `bits` (4 or 8) with per-chunk
    /// min/scale, deterministic round-to-nearest.
    Uniform {
        /// Code width in bits (4 or 8).
        bits: u8,
        /// Maintain per-client error-feedback residuals.
        error_feedback: bool,
    },
    /// Uniform affine quantization with *stochastic* rounding: unbiased in
    /// expectation, seeded per transmission.
    Stochastic {
        /// Code width in bits (4 or 8).
        bits: u8,
        /// Base seed of the rounding noise (mixed with the run seed and a
        /// transmission counter).
        seed: u64,
        /// Maintain per-client error-feedback residuals.
        error_feedback: bool,
    },
    /// Top-k magnitude sparsification: the `frac` largest-|v| coordinates
    /// travel as (index, value) pairs, the rest decode to zero.
    TopK {
        /// Fraction of coordinates kept, in (0, 1].
        frac: f64,
        /// Maintain per-client error-feedback residuals.
        error_feedback: bool,
    },
    /// Sparsify-then-quantize: top-k selection, then the surviving values
    /// are uniformly quantized to `bits`.
    TopKUniform {
        /// Fraction of coordinates kept, in (0, 1].
        frac: f64,
        /// Code width in bits (4 or 8).
        bits: u8,
        /// Maintain per-client error-feedback residuals.
        error_feedback: bool,
    },
}

impl CodecConfig {
    /// int8 uniform quantization with error feedback (the workhorse).
    pub fn int8() -> Self {
        CodecConfig::Uniform { bits: 8, error_feedback: true }
    }

    /// int4 uniform quantization with error feedback.
    pub fn int4() -> Self {
        CodecConfig::Uniform { bits: 4, error_feedback: true }
    }

    /// int8 stochastic-rounding quantization with error feedback.
    pub fn stochastic8(seed: u64) -> Self {
        CodecConfig::Stochastic { bits: 8, seed, error_feedback: true }
    }

    /// Top-`frac` magnitude sparsification with error feedback.
    pub fn topk(frac: f64) -> Self {
        CodecConfig::TopK { frac, error_feedback: true }
    }

    /// Top-`frac` sparsification composed with int8 quantization, with
    /// error feedback.
    pub fn topk_int8(frac: f64) -> Self {
        CodecConfig::TopKUniform { frac, bits: 8, error_feedback: true }
    }

    /// The same codec with error feedback disabled (ablation).
    pub fn without_feedback(mut self) -> Self {
        match &mut self {
            CodecConfig::Identity => {}
            CodecConfig::Uniform { error_feedback, .. }
            | CodecConfig::Stochastic { error_feedback, .. }
            | CodecConfig::TopK { error_feedback, .. }
            | CodecConfig::TopKUniform { error_feedback, .. } => *error_feedback = false,
        }
        self
    }

    /// Whether per-client error-feedback residuals are maintained.
    pub fn error_feedback(&self) -> bool {
        match self {
            CodecConfig::Identity => false,
            CodecConfig::Uniform { error_feedback, .. }
            | CodecConfig::Stochastic { error_feedback, .. }
            | CodecConfig::TopK { error_feedback, .. }
            | CodecConfig::TopKUniform { error_feedback, .. } => *error_feedback,
        }
    }

    /// Display name, e.g. `"int8+ef"`, `"top10%"`, `"identity"`.
    pub fn name(&self) -> String {
        let ef = |on: &bool| if *on { "+ef" } else { "" };
        match self {
            CodecConfig::Identity => "identity".into(),
            CodecConfig::Uniform { bits, error_feedback } => {
                format!("int{bits}{}", ef(error_feedback))
            }
            CodecConfig::Stochastic { bits, error_feedback, .. } => {
                format!("stoch{bits}{}", ef(error_feedback))
            }
            CodecConfig::TopK { frac, error_feedback } => {
                format!("top{:.0}%{}", 100.0 * frac, ef(error_feedback))
            }
            CodecConfig::TopKUniform { frac, bits, error_feedback } => {
                format!("top{:.0}%+int{bits}{}", 100.0 * frac, ef(error_feedback))
            }
        }
    }

    /// Parses a codec spec as accepted on command lines:
    /// `identity | int8 | int4 | stoch8 | topk:<frac> | topk-int8:<frac>`,
    /// each (except identity) optionally suffixed `,noef` to disable error
    /// feedback. Returns `None` on an unknown spec.
    pub fn parse(spec: &str) -> Option<Self> {
        let (base, noef) = match spec.strip_suffix(",noef") {
            Some(b) => (b, true),
            None => (spec, false),
        };
        let cfg = match base {
            "identity" | "none" => CodecConfig::Identity,
            "int8" => CodecConfig::int8(),
            "int4" => CodecConfig::int4(),
            "stoch8" => CodecConfig::stochastic8(0),
            _ => {
                let (kind, frac) = base.split_once(':')?;
                let frac: f64 = frac.parse().ok()?;
                if !(frac > 0.0 && frac <= 1.0) {
                    return None;
                }
                match kind {
                    "topk" => CodecConfig::topk(frac),
                    "topk-int8" => CodecConfig::topk_int8(frac),
                    _ => return None,
                }
            }
        };
        Some(if noef { cfg.without_feedback() } else { cfg })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_identity() {
        assert_eq!(CodecConfig::default(), CodecConfig::Identity);
        assert!(!CodecConfig::default().error_feedback());
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(CodecConfig::Identity.name(), "identity");
        assert_eq!(CodecConfig::int8().name(), "int8+ef");
        assert_eq!(CodecConfig::int4().without_feedback().name(), "int4");
        assert_eq!(CodecConfig::topk(0.1).name(), "top10%+ef");
        assert_eq!(CodecConfig::topk_int8(0.25).name(), "top25%+int8+ef");
        assert_eq!(CodecConfig::stochastic8(3).name(), "stoch8+ef");
    }

    #[test]
    fn parse_round_trips_the_cli_grammar() {
        assert_eq!(CodecConfig::parse("identity"), Some(CodecConfig::Identity));
        assert_eq!(CodecConfig::parse("int8"), Some(CodecConfig::int8()));
        assert_eq!(CodecConfig::parse("int4,noef"), Some(CodecConfig::int4().without_feedback()));
        assert_eq!(CodecConfig::parse("topk:0.1"), Some(CodecConfig::topk(0.1)));
        assert_eq!(CodecConfig::parse("topk-int8:0.2"), Some(CodecConfig::topk_int8(0.2)));
        assert_eq!(CodecConfig::parse("stoch8"), Some(CodecConfig::stochastic8(0)));
        assert_eq!(CodecConfig::parse("topk:1.5"), None);
        assert_eq!(CodecConfig::parse("gzip"), None);
    }
}
