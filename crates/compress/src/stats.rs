//! Cumulative compression accounting for a run.

use serde::{Deserialize, Serialize};

/// Byte and distortion totals across every model encode of a run.
///
/// Counts are per *encode* (one per transmitted model copy on client egress
/// and per distinct server payload; a broadcast of one blob to K receivers
/// is one encode), while the network meter separately counts per-hop bytes.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct CompressionStats {
    /// Number of model vectors encoded.
    pub encodes: u64,
    /// What those vectors would have cost uncompressed (`8 + 4n` each).
    pub uncompressed_bytes: u64,
    /// What they actually cost on the wire.
    pub compressed_bytes: u64,
    /// Sum over encodes of Σ(original − decoded)² (finite terms only).
    pub sum_sq_error: f64,
    /// Total coordinates across all encodes (denominator for mean MSE).
    pub coords: u64,
    /// Sum of post-update error-feedback residual L2 norms.
    pub residual_norm_sum: f64,
    /// Number of encodes that updated an error-feedback residual.
    pub ef_transmits: u64,
}

impl CompressionStats {
    /// Bytes saved versus uncompressed transfers (0 when compression costs
    /// more, e.g. top-k with a high fraction on tiny models).
    pub fn saved(&self) -> u64 {
        self.uncompressed_bytes.saturating_sub(self.compressed_bytes)
    }

    /// Compression ratio `uncompressed / compressed` (1.0 when nothing was
    /// encoded).
    pub fn ratio(&self) -> f64 {
        if self.compressed_bytes == 0 {
            1.0
        } else {
            self.uncompressed_bytes as f64 / self.compressed_bytes as f64
        }
    }

    /// Mean per-coordinate squared error across all encodes.
    pub fn mean_mse(&self) -> f64 {
        if self.coords == 0 {
            0.0
        } else {
            self.sum_sq_error / self.coords as f64
        }
    }

    /// Mean error-feedback residual norm per EF transmit.
    pub fn mean_residual_norm(&self) -> f64 {
        if self.ef_transmits == 0 {
            0.0
        } else {
            self.residual_norm_sum / self.ef_transmits as f64
        }
    }

    /// Whether any encoding happened.
    pub fn any(&self) -> bool {
        self.encodes > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats_are_neutral() {
        let s = CompressionStats::default();
        assert!(!s.any());
        assert_eq!(s.saved(), 0);
        assert_eq!(s.ratio(), 1.0);
        assert_eq!(s.mean_mse(), 0.0);
        assert_eq!(s.mean_residual_norm(), 0.0);
    }

    #[test]
    fn derived_quantities() {
        let s = CompressionStats {
            encodes: 2,
            uncompressed_bytes: 800,
            compressed_bytes: 200,
            sum_sq_error: 50.0,
            coords: 100,
            residual_norm_sum: 3.0,
            ef_transmits: 2,
        };
        assert!(s.any());
        assert_eq!(s.saved(), 600);
        assert_eq!(s.ratio(), 4.0);
        assert_eq!(s.mean_mse(), 0.5);
        assert_eq!(s.mean_residual_norm(), 1.5);
    }

    #[test]
    fn saved_saturates_when_compression_expands() {
        let s = CompressionStats {
            uncompressed_bytes: 100,
            compressed_bytes: 150,
            ..Default::default()
        };
        assert_eq!(s.saved(), 0);
        assert!(s.ratio() < 1.0);
    }
}
