//! Top-k magnitude sparsification, plain and composed with quantization.
//!
//! Wire format: `u64 n || u64 k || k × u32 index`, followed by the kept
//! values either verbatim (`k × f32`, [`TopKCodec`]) or chunk-quantized
//! ([`TopKUniformCodec`], reusing the quantizer's per-chunk min/scale
//! layout without a redundant inner length prefix). Indices are emitted in
//! ascending order; ties in magnitude break toward the *lower* index, so
//! selection is deterministic even for vectors full of equal weights.

use bytes::{BufMut, BytesMut};

use crate::codec::{
    chunk_range, pack_codes, packed_len, quantize_one, unpack_codes, CompressedBlob, Cursor, CHUNK,
};

/// Indices of the `k` largest-magnitude coordinates, ascending. Non-finite
/// magnitudes sort as +∞ so corruption still travels (and gets screened on
/// decode by the receiver's integrity checks).
fn select_topk(values: &[f32], k: usize) -> Vec<u32> {
    let mut idx: Vec<u32> = (0..values.len() as u32).collect();
    let mag = |i: u32| {
        let a = values[i as usize].abs();
        if a.is_nan() {
            f32::INFINITY
        } else {
            a
        }
    };
    idx.sort_by(|&a, &b| mag(b).partial_cmp(&mag(a)).unwrap().then(a.cmp(&b)));
    idx.truncate(k);
    idx.sort_unstable();
    idx
}

/// Number of coordinates kept for a length-`n` vector at fraction `frac`:
/// `max(1, ceil(frac · n))`, capped at `n` (0 for an empty vector).
pub(crate) fn keep_count(frac: f64, n: usize) -> usize {
    if n == 0 {
        return 0;
    }
    ((frac * n as f64).ceil() as usize).clamp(1, n)
}

/// Encoded size of a plain top-k blob keeping `k` coordinates.
pub(crate) fn topk_size(k: usize) -> u64 {
    16 + 8 * k as u64
}

/// Encoded size of a quantized top-k blob keeping `k` coordinates.
pub(crate) fn topk_uniform_size(k: usize, bits: u8) -> u64 {
    let mut size = 16 + 4 * k as u64;
    let mut remaining = k;
    while remaining > 0 {
        let len = remaining.min(CHUNK);
        size += 8 + packed_len(len, bits) as u64;
        remaining -= len;
    }
    size
}

/// Top-k magnitude sparsification with full-precision kept values.
#[derive(Clone, Debug)]
pub struct TopKCodec {
    frac: f64,
}

impl TopKCodec {
    /// Keeps the `frac` (in `(0, 1]`) largest-magnitude coordinates.
    pub fn new(frac: f64) -> Self {
        assert!(frac > 0.0 && frac <= 1.0, "sparsity fraction must be in (0, 1], got {frac}");
        Self { frac }
    }

    /// Coordinates kept for a length-`n` input.
    pub fn keep(&self, n: usize) -> usize {
        keep_count(self.frac, n)
    }

    pub(crate) fn encode(&self, values: &[f32]) -> CompressedBlob {
        let k = self.keep(values.len());
        let idx = select_topk(values, k);
        let mut buf = BytesMut::with_capacity(topk_size(k) as usize);
        buf.put_u64_le(values.len() as u64);
        buf.put_u64_le(k as u64);
        for &i in &idx {
            buf.put_u32_le(i);
        }
        for &i in &idx {
            buf.put_f32_le(values[i as usize]);
        }
        CompressedBlob::new(buf.freeze())
    }

    pub(crate) fn decode(&self, blob: &CompressedBlob) -> Option<Vec<f32>> {
        let mut cur = Cursor::new(blob.bytes());
        let n = cur.u64()? as usize;
        let k = cur.u64()? as usize;
        if k > n {
            return None;
        }
        let idx: Vec<u32> = (0..k).map(|_| cur.u32()).collect::<Option<_>>()?;
        let mut out = vec![0.0f32; n];
        for &i in &idx {
            if i as usize >= n {
                return None;
            }
            out[i as usize] = cur.f32()?;
        }
        cur.done()?;
        Some(out)
    }
}

/// Top-k sparsification whose kept values are then uniformly quantized.
#[derive(Clone, Debug)]
pub struct TopKUniformCodec {
    frac: f64,
    bits: u8,
}

impl TopKUniformCodec {
    /// Keeps the top `frac` coordinates and quantizes them to `bits`.
    pub fn new(frac: f64, bits: u8) -> Self {
        assert!(frac > 0.0 && frac <= 1.0, "sparsity fraction must be in (0, 1], got {frac}");
        assert!(bits == 4 || bits == 8, "supported code widths are 4 and 8 bits, got {bits}");
        Self { frac, bits }
    }

    /// Coordinates kept for a length-`n` input.
    pub fn keep(&self, n: usize) -> usize {
        keep_count(self.frac, n)
    }

    /// Code width in bits.
    pub fn bits(&self) -> u8 {
        self.bits
    }

    pub(crate) fn encode(&self, values: &[f32]) -> CompressedBlob {
        let k = self.keep(values.len());
        let idx = select_topk(values, k);
        let kept: Vec<f32> = idx.iter().map(|&i| values[i as usize]).collect();
        let mut buf = BytesMut::with_capacity(topk_uniform_size(k, self.bits) as usize);
        buf.put_u64_le(values.len() as u64);
        buf.put_u64_le(k as u64);
        for &i in &idx {
            buf.put_u32_le(i);
        }
        for chunk in kept.chunks(CHUNK) {
            let (min, scale) = chunk_range(chunk, self.bits);
            buf.put_f32_le(min);
            buf.put_f32_le(scale);
            let codes: Vec<u8> =
                chunk.iter().map(|&v| quantize_one(v, min, scale, self.bits, None)).collect();
            buf.put_slice(&pack_codes(&codes, self.bits));
        }
        CompressedBlob::new(buf.freeze())
    }

    pub(crate) fn decode(&self, blob: &CompressedBlob) -> Option<Vec<f32>> {
        let mut cur = Cursor::new(blob.bytes());
        let n = cur.u64()? as usize;
        let k = cur.u64()? as usize;
        if k > n {
            return None;
        }
        let idx: Vec<u32> = (0..k).map(|_| cur.u32()).collect::<Option<_>>()?;
        let mut kept = Vec::with_capacity(k);
        let mut remaining = k;
        while remaining > 0 {
            let len = remaining.min(CHUNK);
            let min = cur.f32()?;
            let scale = cur.f32()?;
            let packed = cur.slice(packed_len(len, self.bits))?;
            let codes = unpack_codes(packed, len, self.bits);
            kept.extend(codes.iter().map(|&q| min + q as f32 * scale));
            remaining -= len;
        }
        cur.done()?;
        let mut out = vec![0.0f32; n];
        for (&i, &v) in idx.iter().zip(&kept) {
            if i as usize >= n {
                return None;
            }
            out[i as usize] = v;
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topk_keeps_the_largest_magnitudes() {
        let v = vec![0.1, -5.0, 0.2, 4.0, -0.3];
        let c = TopKCodec::new(0.4);
        assert_eq!(c.keep(v.len()), 2);
        let blob = c.encode(&v);
        assert_eq!(blob.wire_bytes(), topk_size(2));
        let d = c.decode(&blob).unwrap();
        assert_eq!(d, vec![0.0, -5.0, 0.0, 4.0, 0.0]);
    }

    #[test]
    fn ties_break_toward_the_lower_index() {
        let v = vec![1.0f32; 8];
        let c = TopKCodec::new(0.25);
        let d = c.decode(&c.encode(&v)).unwrap();
        assert_eq!(d, vec![1.0, 1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn keep_count_is_at_least_one_and_at_most_n() {
        assert_eq!(keep_count(0.01, 10), 1);
        assert_eq!(keep_count(1.0, 10), 10);
        assert_eq!(keep_count(0.5, 10), 5);
        assert_eq!(keep_count(0.5, 0), 0);
    }

    #[test]
    fn quantized_topk_round_trips_within_step() {
        let v: Vec<f32> = (0..600).map(|i| ((i as f32) * 0.11).cos() * (i % 7) as f32).collect();
        let c = TopKUniformCodec::new(0.5, 8);
        let blob = c.encode(&v);
        assert_eq!(blob.wire_bytes(), topk_uniform_size(c.keep(v.len()), 8));
        let d = c.decode(&blob).unwrap();
        assert_eq!(d.len(), v.len());
        // Every decoded coordinate is either 0 (dropped) or close to the
        // original (kept & quantized; ranges here are modest).
        for (&a, &b) in v.iter().zip(&d) {
            assert!(b == 0.0 || (a - b).abs() < 0.1, "a={a} b={b}");
        }
    }

    #[test]
    fn decode_rejects_out_of_range_indices() {
        let v = vec![1.0, 2.0, 3.0];
        let c = TopKCodec::new(0.5);
        let blob = c.encode(&v);
        let mut raw = blob.bytes().to_vec();
        // Corrupt the first index (offset 16) to point past the end.
        raw[16..20].copy_from_slice(&100u32.to_le_bytes());
        assert!(c.decode(&CompressedBlob::new(raw.into())).is_none());
    }

    #[test]
    fn nan_coordinates_are_prioritized_and_survive() {
        let mut v = vec![0.01f32; 50];
        v[33] = f32::NAN;
        let c = TopKCodec::new(0.02);
        let d = c.decode(&c.encode(&v)).unwrap();
        assert!(d[33].is_nan(), "corruption must not be silently dropped");
    }
}
