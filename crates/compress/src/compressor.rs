//! The run-level compression orchestrator.
//!
//! The experiment runner owns exactly one [`Compressor`] per run. Client
//! egress (uploads, C2C migrations) goes through [`Compressor::transmit`],
//! which applies that client's error-feedback residual; server egress goes
//! through [`Compressor::transmit_down`] (per-receiver unicast lanes) and
//! [`Compressor::broadcast`] (one shared lane — one encode fans out to all
//! receivers). Error compensation on *both* directions matters: the global
//! model is re-broadcast every round, and without a server-side residual
//! its quantization error is a fresh random step each time, which
//! random-walks training; compensated, consecutive broadcasts cancel each
//! other's error (the DoubleSqueeze scheme of Tang et al., 2019). All
//! paths share one transmission counter so stochastic rounding noise is
//! unique per transfer yet reproducible from the run seed — no shared RNG
//! stream is consumed.

use crate::codec::{Codec, WireCodec};
use crate::feedback::ErrorFeedback;
use crate::stats::CompressionStats;
use crate::CodecConfig;

/// Splitmix-style finalizer decorrelating (base seed, sequence) pairs.
fn mix(seed: u64, seq: u64) -> u64 {
    let mut z = seed ^ seq.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The silent mutable state of a [`Compressor`], as captured for run
/// checkpoints: residual lanes in both directions, the transmission
/// counter that seeds stochastic rounding, and cumulative stats. The codec
/// itself is rebuilt from `RunConfig`, not persisted.
#[derive(Clone, Debug, PartialEq)]
pub struct CompressorState {
    /// Client-egress residual lanes (`None` without error feedback).
    pub feedback: Option<Vec<Vec<f32>>>,
    /// Server-egress residual lanes, last lane = broadcast.
    pub down_feedback: Option<Vec<Vec<f32>>>,
    /// Transmission counter (drives per-transfer rounding noise).
    pub seq: u64,
    /// Cumulative stats so far.
    pub stats: CompressionStats,
}

/// Stateful wire compressor for one run: a codec, per-lane error-feedback
/// residuals, a transmission counter, and cumulative stats.
#[derive(Clone, Debug)]
pub struct Compressor {
    codec: Codec,
    /// Codec display name, used as the telemetry label for the per-codec
    /// timing histogram and byte counters.
    name: String,
    feedback: Option<ErrorFeedback>,
    down_feedback: Option<ErrorFeedback>,
    base_seed: u64,
    seq: u64,
    stats: CompressionStats,
}

impl Compressor {
    /// Builds the compressor for `config` with `lanes` client-egress
    /// residual lanes (the server egress gets `lanes` unicast lanes plus
    /// one broadcast lane); `base_seed` (typically the run seed) drives
    /// stochastic rounding.
    pub fn new(config: &CodecConfig, lanes: usize, base_seed: u64) -> Self {
        let with_ef = config.error_feedback() && !matches!(config, CodecConfig::Identity);
        Self {
            codec: Codec::from_config(config),
            name: config.name(),
            feedback: with_ef.then(|| ErrorFeedback::new(lanes)),
            down_feedback: with_ef.then(|| ErrorFeedback::new(lanes + 1)),
            base_seed,
            seq: 0,
            stats: CompressionStats::default(),
        }
    }

    /// Whether transfers are bit-exact pass-throughs.
    pub fn is_identity(&self) -> bool {
        self.codec.is_lossless()
    }

    /// Exact wire size of one encoded model of `n` parameters.
    pub fn encoded_size(&self, n: usize) -> u64 {
        self.codec.encoded_size(n)
    }

    /// Cumulative stats so far.
    pub fn stats(&self) -> CompressionStats {
        self.stats
    }

    /// Mean error-feedback residual norm across lanes right now (0 without
    /// error feedback).
    pub fn current_residual_norm(&self) -> f64 {
        match &self.feedback {
            None => 0.0,
            Some(ef) => {
                let lanes = ef.lanes().max(1);
                (0..ef.lanes()).map(|l| ef.residual_norm(l)).sum::<f64>() / lanes as f64
            }
        }
    }

    /// Captures the compressor's mutable state for a run checkpoint.
    pub fn export_state(&self) -> CompressorState {
        CompressorState {
            feedback: self.feedback.as_ref().map(|ef| ef.residuals().to_vec()),
            down_feedback: self.down_feedback.as_ref().map(|ef| ef.residuals().to_vec()),
            seq: self.seq,
            stats: self.stats,
        }
    }

    /// Restores state captured by [`Compressor::export_state`]. The
    /// compressor must have been built from the same `CodecConfig` and lane
    /// count (the snapshot's lane structure must match).
    pub fn import_state(&mut self, state: CompressorState) {
        let lanes = |fb: &Option<ErrorFeedback>| fb.as_ref().map(|ef| ef.lanes());
        let snap_lanes = |fb: &Option<Vec<Vec<f32>>>| fb.as_ref().map(|r| r.len());
        assert_eq!(lanes(&self.feedback), snap_lanes(&state.feedback), "egress lane mismatch");
        assert_eq!(
            lanes(&self.down_feedback),
            snap_lanes(&state.down_feedback),
            "downlink lane mismatch"
        );
        self.feedback = state.feedback.map(ErrorFeedback::from_residuals);
        self.down_feedback = state.down_feedback.map(ErrorFeedback::from_residuals);
        self.seq = state.seq;
        self.stats = state.stats;
    }

    /// Client-egress transfer on `lane`: compensates with the lane's
    /// error-feedback residual, encodes, updates the residual with what the
    /// wire lost, and returns what the receiver decodes. Call only for
    /// transfers that actually complete — a cancelled transfer must not
    /// consume the residual.
    pub fn transmit(&mut self, lane: usize, values: &[f32]) -> Vec<f32> {
        self.send(false, lane, values)
    }

    /// Server-egress transfer of one payload to one `receiver`, compensated
    /// with that receiver's dedicated downlink residual lane (the server
    /// sends many distinct per-receiver streams, so each gets its own
    /// residual).
    pub fn transmit_down(&mut self, receiver: usize, values: &[f32]) -> Vec<f32> {
        self.send(true, receiver, values)
    }

    /// Server-egress broadcast: one encode, every receiver decodes the same
    /// blob, so one shared residual lane is well-defined. Callers use it
    /// when one payload fans out, charging the meter per receiver while the
    /// codec encodes once.
    pub fn broadcast(&mut self, values: &[f32]) -> Vec<f32> {
        let lane = self.down_feedback.as_ref().map_or(0, |ef| ef.lanes() - 1);
        self.send(true, lane, values)
    }

    fn send(&mut self, down: bool, lane: usize, values: &[f32]) -> Vec<f32> {
        // Real (host) encode+decode time per completed transfer; a pure
        // telemetry observation that never feeds back into the run.
        let tel = fedmigr_telemetry::global();
        let start = tel.now();
        let decoded = self.send_inner(down, lane, values);
        tel.registry()
            .histogram("fedmigr_codec_transfer_seconds", &[("codec", &self.name)])
            .observe(tel.now() - start);
        decoded
    }

    fn send_inner(&mut self, down: bool, lane: usize, values: &[f32]) -> Vec<f32> {
        let seq = self.seq;
        self.seq += 1;
        if self.is_identity() {
            self.count(values.len(), values.len() as u64 * 4 + 8, 0.0);
            return values.to_vec();
        }
        let fb = if down { &self.down_feedback } else { &self.feedback };
        let intent = match fb {
            Some(ef) => ef.compensated(lane, values),
            None => values.to_vec(),
        };
        let decoded = self.round_trip(&intent, seq);
        let fb = if down { &mut self.down_feedback } else { &mut self.feedback };
        let mut norm = None;
        if let Some(ef) = fb {
            ef.update(lane, &intent, &decoded);
            norm = Some(ef.residual_norm(lane));
        }
        if let Some(n) = norm {
            self.stats.residual_norm_sum += n;
            self.stats.ef_transmits += 1;
        }
        self.record(&intent, &decoded);
        decoded
    }

    /// Batched client-egress transfers: byte-identical to calling
    /// [`Compressor::transmit`] on each `(lane, values)` item in order, but
    /// with the encode/decode round trips computed in parallel.
    ///
    /// Parallelism is sound because the serial data flow factors cleanly:
    /// sequence numbers are assigned in item order up front, each lane's
    /// compensated intent depends only on that lane's residual (valid
    /// because lanes within one batch are **distinct** — duplicates fall
    /// back to the serial path), the round trip itself is a pure function
    /// of `(intent, seq)`, and residual updates plus f64 stats accumulation
    /// replay serially in item order afterwards.
    pub fn transmit_batch(&mut self, items: Vec<(usize, Vec<f32>)>) -> Vec<Vec<f32>> {
        let distinct = {
            let mut lanes: Vec<usize> = items.iter().map(|(l, _)| *l).collect();
            lanes.sort_unstable();
            lanes.windows(2).all(|w| w[0] != w[1])
        };
        if items.len() < 2 || self.is_identity() || !distinct {
            return items.into_iter().map(|(lane, v)| self.transmit(lane, &v)).collect();
        }
        let tel = fedmigr_telemetry::global();
        let start = tel.now();
        let seq0 = self.seq;
        self.seq += items.len() as u64;
        let intents: Vec<Vec<f32>> = items
            .iter()
            .map(|(lane, v)| match &self.feedback {
                Some(ef) => ef.compensated(*lane, v),
                None => v.clone(),
            })
            .collect();
        let workers = std::thread::available_parallelism().map_or(1, |p| p.get()).min(items.len());
        let chunk = items.len().div_ceil(workers);
        let mut decoded: Vec<Vec<f32>> = vec![Vec::new(); items.len()];
        std::thread::scope(|scope| {
            for (w, out) in decoded.chunks_mut(chunk).enumerate() {
                let this = &*self;
                let intents = &intents;
                scope.spawn(move || {
                    for (d, j) in out.iter_mut().zip(w * chunk..) {
                        *d = this.round_trip(&intents[j], seq0 + j as u64);
                    }
                });
            }
        });
        for (((lane, _), intent), dec) in items.iter().zip(&intents).zip(&decoded) {
            if let Some(ef) = &mut self.feedback {
                ef.update(*lane, intent, dec);
                self.stats.residual_norm_sum += ef.residual_norm(*lane);
                self.stats.ef_transmits += 1;
            }
            self.record(intent, dec);
        }
        // One host-time observation per item (averaged) so the per-codec
        // timing histogram keeps comparable counts to the serial path.
        let per_item = (tel.now() - start) / items.len() as f64;
        let hist =
            tel.registry().histogram("fedmigr_codec_transfer_seconds", &[("codec", &self.name)]);
        for _ in 0..items.len() {
            hist.observe(per_item);
        }
        decoded
    }

    /// What `transmit(lane, values)` *would* deliver, without updating the
    /// residual, the counter, or the stats. Used for hypothetical transfers
    /// (e.g. evaluation-time shadow uploads) so measurement reflects codec
    /// distortion without perturbing run state.
    pub fn preview(&self, lane: usize, values: &[f32]) -> Vec<f32> {
        if self.is_identity() {
            return values.to_vec();
        }
        let intent = match &self.feedback {
            Some(ef) => ef.compensated(lane, values),
            None => values.to_vec(),
        };
        self.round_trip(&intent, self.seq)
    }

    fn round_trip(&self, values: &[f32], seq: u64) -> Vec<f32> {
        let blob = self.codec.encode(values, mix(self.base_seed, seq));
        debug_assert_eq!(blob.wire_bytes(), self.codec.encoded_size(values.len()));
        self.codec.decode(&blob).expect("self-encoded blob must decode")
    }

    fn record(&mut self, intent: &[f32], decoded: &[f32]) {
        let sq: f64 = intent
            .iter()
            .zip(decoded)
            .map(|(&a, &b)| {
                let e = (a - b) as f64;
                if e.is_finite() {
                    e * e
                } else {
                    0.0
                }
            })
            .sum();
        self.count(intent.len(), self.codec.encoded_size(intent.len()), sq);
    }

    fn count(&mut self, n: usize, wire: u64, sq: f64) {
        self.stats.encodes += 1;
        self.stats.uncompressed_bytes += 8 + 4 * n as u64;
        self.stats.compressed_bytes += wire;
        self.stats.sum_sq_error += sq;
        self.stats.coords += n as u64;
        let registry = fedmigr_telemetry::global().registry();
        registry
            .counter("fedmigr_codec_bytes_total", &[("codec", &self.name), ("dir", "in")])
            .add(8 + 4 * n as u64);
        registry
            .counter("fedmigr_codec_bytes_total", &[("codec", &self.name), ("dir", "out")])
            .add(wire);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vals(n: usize) -> Vec<f32> {
        (0..n).map(|i| ((i * 31 % 17) as f32 - 8.0) * 0.1).collect()
    }

    #[test]
    fn identity_is_a_counted_pass_through() {
        let mut c = Compressor::new(&CodecConfig::Identity, 4, 7);
        let v = vals(100);
        assert!(c.is_identity());
        assert_eq!(c.transmit(0, &v), v);
        assert_eq!(c.transmit_down(0, &v), v);
        assert_eq!(c.broadcast(&v), v);
        let s = c.stats();
        assert_eq!(s.encodes, 3);
        assert_eq!(s.compressed_bytes, s.uncompressed_bytes);
        assert_eq!(s.saved(), 0);
        assert_eq!(s.sum_sq_error, 0.0);
        assert_eq!(s.ef_transmits, 0, "identity never touches residuals");
    }

    #[test]
    fn int8_saves_bytes_and_tracks_error() {
        let mut c = Compressor::new(&CodecConfig::int8(), 2, 7);
        let v = vals(1000);
        let d = c.transmit(0, &v);
        assert_eq!(d.len(), v.len());
        let s = c.stats();
        assert!(s.ratio() > 3.0, "int8 should approach 4x, got {}", s.ratio());
        assert!(s.mean_mse() > 0.0);
        assert_eq!(s.ef_transmits, 1);
    }

    #[test]
    fn error_feedback_reinjects_loss_on_the_same_lane() {
        let cfg = CodecConfig::int4();
        let v = vals(512);
        let mut with_ef = Compressor::new(&cfg, 1, 7);
        let mut no_ef = Compressor::new(&cfg.clone().without_feedback(), 1, 7);
        // Accumulate the same vector several times; with EF the *sum* of
        // deliveries tracks the sum of intents much more closely.
        let rounds = 8;
        let (mut sum_ef, mut sum_plain) = (vec![0.0f64; v.len()], vec![0.0f64; v.len()]);
        for _ in 0..rounds {
            for (s, x) in sum_ef.iter_mut().zip(with_ef.transmit(0, &v)) {
                *s += x as f64;
            }
            for (s, x) in sum_plain.iter_mut().zip(no_ef.transmit(0, &v)) {
                *s += x as f64;
            }
        }
        let err = |sum: &[f64]| -> f64 {
            sum.iter()
                .zip(&v)
                .map(|(&s, &t)| (s - rounds as f64 * t as f64).powi(2))
                .sum::<f64>()
                .sqrt()
        };
        assert!(
            err(&sum_ef) < err(&sum_plain) * 0.5,
            "EF accumulated error {} should beat plain {}",
            err(&sum_ef),
            err(&sum_plain)
        );
    }

    #[test]
    fn broadcast_and_unicast_downlinks_have_independent_residuals() {
        let cfg = CodecConfig::int4();
        let v = vals(512);
        let mut c = Compressor::new(&cfg, 2, 7);
        let b1 = c.broadcast(&v); // empty residual: plain Q(v)
        let b2 = c.broadcast(&v); // compensated by the broadcast residual
        let u1 = c.transmit_down(0, &v); // unicast lane 0 is still empty
        assert_eq!(b1, u1, "broadcast residual must not leak into unicast lane 0");
        assert_ne!(b2, u1, "second broadcast must be residual-compensated");
        // Consecutive broadcasts compensate each other: over several rounds
        // the *sum* of compensated broadcasts tracks the sum of intents far
        // better than stateless re-encodes, whose deterministic rounding
        // error just piles up.
        let rounds = 6;
        let mut stateless = Compressor::new(&cfg.clone().without_feedback(), 2, 7);
        let (mut sum_ef, mut sum_plain) = (vec![0.0f64; v.len()], vec![0.0f64; v.len()]);
        for round in 0..rounds {
            let b = match round {
                0 => b1.clone(),
                1 => b2.clone(),
                _ => c.broadcast(&v),
            };
            for (s, x) in sum_ef.iter_mut().zip(b) {
                *s += x as f64;
            }
            for (s, x) in sum_plain.iter_mut().zip(stateless.broadcast(&v)) {
                *s += x as f64;
            }
        }
        let err = |sum: &[f64]| -> f64 {
            sum.iter()
                .zip(&v)
                .map(|(&s, &t)| (s - rounds as f64 * t as f64).powi(2))
                .sum::<f64>()
                .sqrt()
        };
        assert!(
            err(&sum_ef) < err(&sum_plain) * 0.5,
            "compensated broadcasts {} should beat stateless {}",
            err(&sum_ef),
            err(&sum_plain)
        );
    }

    #[test]
    fn preview_leaves_state_untouched() {
        let mut c = Compressor::new(&CodecConfig::int8(), 1, 7);
        let v = vals(300);
        let before = c.stats();
        let p1 = c.preview(0, &v);
        let p2 = c.preview(0, &v);
        assert_eq!(p1, p2, "preview is deterministic");
        assert_eq!(c.stats(), before, "preview must not count");
        let t = c.transmit(0, &v);
        assert_eq!(p1, t, "preview predicts the next transmit exactly");
    }

    #[test]
    fn stochastic_transfers_differ_but_runs_reproduce() {
        let cfg = CodecConfig::stochastic8(3);
        let v = vals(400);
        let mut a = Compressor::new(&cfg, 1, 9);
        let mut b = Compressor::new(&cfg, 1, 9);
        let a1 = a.transmit(0, &v);
        let a2 = a.transmit(0, &v);
        assert_ne!(a1, a2, "successive transfers use fresh rounding noise");
        assert_eq!(a1, b.transmit(0, &v), "same seed, same sequence, same bits");
        assert_eq!(a2, b.transmit(0, &v));
    }

    #[test]
    fn state_round_trip_resumes_the_exact_stream() {
        let cfg = CodecConfig::stochastic8(3);
        let v = vals(400);
        let mut live = Compressor::new(&cfg, 2, 9);
        live.transmit(0, &v);
        live.broadcast(&v);
        live.transmit_down(1, &v);
        let snap = live.export_state();
        let mut resumed = Compressor::new(&cfg, 2, 9);
        resumed.import_state(snap);
        for lane in [0usize, 1] {
            assert_eq!(live.transmit(lane, &v), resumed.transmit(lane, &v));
        }
        assert_eq!(live.broadcast(&v), resumed.broadcast(&v));
        assert_eq!(live.stats(), resumed.stats());
    }

    #[test]
    #[should_panic(expected = "lane mismatch")]
    fn import_rejects_mismatched_lanes() {
        let cfg = CodecConfig::int8();
        let snap = Compressor::new(&cfg, 2, 9).export_state();
        Compressor::new(&cfg, 3, 9).import_state(snap);
    }

    #[test]
    fn transmit_batch_is_byte_identical_to_serial() {
        for cfg in [
            CodecConfig::Identity,
            CodecConfig::int8(),
            CodecConfig::int4(),
            CodecConfig::stochastic8(3),
            CodecConfig::topk_int8(0.25),
            CodecConfig::int8().without_feedback(),
        ] {
            let lanes = 8;
            let mut serial = Compressor::new(&cfg, lanes, 9);
            let mut batched = Compressor::new(&cfg, lanes, 9);
            // Two rounds so residual state carried between batches matters.
            for round in 0..2 {
                let items: Vec<(usize, Vec<f32>)> = (0..lanes)
                    .map(|l| {
                        let mut v = vals(200 + 13 * l);
                        v[0] += round as f32;
                        (l, v)
                    })
                    .collect();
                let expect: Vec<Vec<f32>> =
                    items.iter().map(|(l, v)| serial.transmit(*l, v)).collect();
                let got = batched.transmit_batch(items);
                assert_eq!(got, expect, "codec {} round {round}", cfg.name());
            }
            assert_eq!(serial.stats(), batched.stats(), "codec {}", cfg.name());
            assert_eq!(serial.export_state(), batched.export_state(), "codec {}", cfg.name());
        }
    }

    #[test]
    fn transmit_batch_with_duplicate_lanes_falls_back_serially() {
        let cfg = CodecConfig::int8();
        let v = vals(128);
        let mut serial = Compressor::new(&cfg, 2, 5);
        let mut batched = Compressor::new(&cfg, 2, 5);
        let items = vec![(0usize, v.clone()), (0usize, v.clone()), (1usize, v.clone())];
        let expect: Vec<Vec<f32>> = items.iter().map(|(l, v)| serial.transmit(*l, v)).collect();
        assert_eq!(batched.transmit_batch(items), expect);
        assert_eq!(serial.export_state(), batched.export_state());
    }

    #[test]
    fn encoded_size_matches_wire_exactly_for_every_codec() {
        for cfg in [
            CodecConfig::Identity,
            CodecConfig::int8(),
            CodecConfig::int4(),
            CodecConfig::stochastic8(1),
            CodecConfig::topk(0.1),
            CodecConfig::topk_int8(0.25),
        ] {
            let mut c = Compressor::new(&cfg, 1, 5);
            for n in [0usize, 1, 255, 256, 257, 1000] {
                let v = vals(n);
                let before = c.stats().compressed_bytes;
                c.transmit(0, &v);
                let wire = c.stats().compressed_bytes - before;
                assert_eq!(wire, c.encoded_size(n), "codec {} n {}", cfg.name(), n);
            }
        }
    }
}
