//! Log levels and target-scoped filtering.
//!
//! A [`Filter`] is a default [`Level`] plus per-target overrides, parsed
//! from the `FEDMIGR_LOG` syntax: `info`, `debug,drl=trace`, or
//! `warn,net=off,core=debug`. Target matching is longest-prefix, so
//! `core=debug` covers `core::runner` too.

use std::fmt;
use std::str::FromStr;

/// Severity of a log record, most severe first.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Level {
    /// The operation failed; output or state may be incomplete.
    Error,
    /// Something surprising that the run survives.
    Warn,
    /// Progress lines a human running an experiment wants to see.
    Info,
    /// Per-run diagnostics (configs resolved, phases entered).
    Debug,
    /// Per-epoch / per-transfer firehose.
    Trace,
}

impl Level {
    /// Canonical lowercase name.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for Level {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "error" => Ok(Level::Error),
            "warn" | "warning" => Ok(Level::Warn),
            "info" => Ok(Level::Info),
            "debug" => Ok(Level::Debug),
            "trace" => Ok(Level::Trace),
            other => Err(format!("unknown log level {other:?}")),
        }
    }
}

/// A level threshold: everything at most this severe passes; `None` is
/// fully silent.
pub type Threshold = Option<Level>;

fn parse_threshold(s: &str) -> Result<Threshold, String> {
    match s.trim().to_ascii_lowercase().as_str() {
        "off" | "none" => Ok(None),
        other => other.parse::<Level>().map(Some),
    }
}

/// Target-scoped level filter.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Filter {
    default: Threshold,
    /// `(target prefix, threshold)`, consulted by longest matching prefix.
    targets: Vec<(String, Threshold)>,
}

impl Default for Filter {
    /// `info` everywhere — keeps the runner's historical progress lines
    /// visible without any configuration.
    fn default() -> Self {
        Self { default: Some(Level::Info), targets: Vec::new() }
    }
}

impl Filter {
    /// A filter passing `level` and above for every target.
    pub fn at(level: Level) -> Self {
        Self { default: Some(level), targets: Vec::new() }
    }

    /// A fully silent filter.
    pub fn off() -> Self {
        Self { default: None, targets: Vec::new() }
    }

    /// Parses the `FEDMIGR_LOG` syntax: a comma-separated list of either a
    /// bare threshold (the new default) or `target=threshold` overrides.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut filter = Self::default();
        for part in spec.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            match part.split_once('=') {
                Some((target, level)) => {
                    let t = target.trim();
                    if t.is_empty() {
                        return Err(format!("empty target in {part:?}"));
                    }
                    filter.targets.push((t.to_string(), parse_threshold(level)?));
                }
                None => filter.default = parse_threshold(part)?,
            }
        }
        // Longest prefix first so `enabled` can take the first match.
        filter.targets.sort_by_key(|t| std::cmp::Reverse(t.0.len()));
        Ok(filter)
    }

    /// Resolves the effective process filter from an explicit `--log-level`
    /// flag value and the `FEDMIGR_LOG` environment spec, in precedence
    /// order **flag > env > default**: a present flag wins outright (even
    /// over a set environment variable), the environment is consulted only
    /// when no flag was given, and with neither the [`Filter::default`]
    /// (`info`) applies. Returns the parse error of whichever layer won.
    pub fn resolve(flag: Option<&str>, env: Option<&str>) -> Result<Self, String> {
        match (flag, env) {
            (Some(spec), _) => Self::parse(spec),
            (None, Some(spec)) => Self::parse(spec),
            (None, None) => Ok(Self::default()),
        }
    }

    /// Adds or replaces a per-target override.
    pub fn with_target(mut self, target: &str, threshold: Threshold) -> Self {
        self.targets.retain(|(t, _)| t != target);
        self.targets.push((target.to_string(), threshold));
        self.targets.sort_by_key(|t| std::cmp::Reverse(t.0.len()));
        self
    }

    /// Whether a record at `level` for `target` passes this filter.
    pub fn enabled(&self, target: &str, level: Level) -> bool {
        let threshold = self
            .targets
            .iter()
            .find(|(prefix, _)| target.starts_with(prefix.as_str()))
            .map(|(_, t)| *t)
            .unwrap_or(self.default);
        match threshold {
            Some(max) => level <= max,
            None => false,
        }
    }

    /// The most verbose threshold any target can reach (used to short-cut
    /// fully-silent paths).
    pub fn max_threshold(&self) -> Threshold {
        self.targets.iter().map(|(_, t)| *t).chain([self.default]).max().flatten()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_order_and_parse() {
        assert!(Level::Error < Level::Trace);
        assert_eq!("WARN".parse::<Level>().unwrap(), Level::Warn);
        assert!("loud".parse::<Level>().is_err());
    }

    #[test]
    fn default_filter_is_info() {
        let f = Filter::default();
        assert!(f.enabled("core::runner", Level::Info));
        assert!(f.enabled("core::runner", Level::Warn));
        assert!(!f.enabled("core::runner", Level::Debug));
    }

    #[test]
    fn parse_with_target_overrides() {
        let f = Filter::parse("warn,drl=trace,net=off").unwrap();
        assert!(!f.enabled("core", Level::Info));
        assert!(f.enabled("core", Level::Warn));
        assert!(f.enabled("drl::agent", Level::Trace));
        assert!(!f.enabled("net", Level::Error));
        assert_eq!(f.max_threshold(), Some(Level::Trace));
    }

    #[test]
    fn longest_prefix_wins() {
        let f = Filter::parse("info,core=off,core::runner=debug").unwrap();
        assert!(!f.enabled("core::client", Level::Error));
        assert!(f.enabled("core::runner", Level::Debug));
    }

    #[test]
    fn off_is_silent_everywhere() {
        let f = Filter::off();
        assert!(!f.enabled("anything", Level::Error));
        assert_eq!(f.max_threshold(), None);
    }

    #[test]
    fn resolve_precedence_is_flag_env_default() {
        // Flag beats a set environment variable.
        let f = Filter::resolve(Some("debug"), Some("trace")).unwrap();
        assert!(f.enabled("core", Level::Debug) && !f.enabled("core", Level::Trace));
        // Environment applies only when no flag is given.
        let f = Filter::resolve(None, Some("warn,drl=trace")).unwrap();
        assert!(!f.enabled("core", Level::Info) && f.enabled("drl", Level::Trace));
        // Neither set: the stock `info` default.
        assert_eq!(Filter::resolve(None, None).unwrap(), Filter::default());
        // The winning layer's parse error surfaces; the loser is ignored.
        assert!(Filter::resolve(Some("loud"), Some("info")).is_err());
        assert!(Filter::resolve(None, Some("loud")).is_err());
        assert!(Filter::resolve(Some("info"), Some("loud")).is_ok());
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Filter::parse("=debug").is_err());
        assert!(Filter::parse("loudest").is_err());
    }
}
