//! The JSONL trace event stream: schema, serializer, and a minimal JSON
//! parser used for round-trip tests and CI validation of emitted traces.
//!
//! One event per line. Two kinds exist:
//!
//! ```json
//! {"kind":"span","ts":1.25,"dur":0.5,"target":"core","name":"local_train","depth":1,"labels":{"epoch":"3"}}
//! {"kind":"log","ts":1.30,"level":"info","target":"cli","msg":"running FedMigr..."}
//! ```
//!
//! `ts` is seconds since the telemetry clock's origin; a span's `ts` is its
//! *start* and `dur` its duration, so `[ts, ts + dur]` intervals nest.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::level::Level;

/// One record of the JSONL trace stream.
#[derive(Clone, Debug, PartialEq)]
pub enum TraceEvent {
    /// A closed profiling span.
    Span {
        /// Start time, seconds since clock origin.
        ts: f64,
        /// Duration in seconds.
        dur: f64,
        /// Instrumentation target (crate/module scope).
        target: String,
        /// Phase name, e.g. `local_train`.
        name: String,
        /// Nesting depth at open time (0 = top level).
        depth: usize,
        /// Extra context, e.g. `epoch`, `codec`.
        labels: BTreeMap<String, String>,
    },
    /// A log record mirrored into the trace.
    Log {
        /// Emission time, seconds since clock origin.
        ts: f64,
        /// Severity.
        level: Level,
        /// Instrumentation target.
        target: String,
        /// Rendered message.
        msg: String,
    },
}

impl TraceEvent {
    /// Serializes to one JSONL line (no trailing newline).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        match self {
            TraceEvent::Span { ts, dur, target, name, depth, labels } => {
                let _ = write!(
                    out,
                    "{{\"kind\":\"span\",\"ts\":{},\"dur\":{},\"target\":{},\"name\":{},\"depth\":{depth}",
                    json_num(*ts),
                    json_num(*dur),
                    json_str(target),
                    json_str(name),
                );
                if !labels.is_empty() {
                    out.push_str(",\"labels\":{");
                    for (i, (k, v)) in labels.iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        let _ = write!(out, "{}:{}", json_str(k), json_str(v));
                    }
                    out.push('}');
                }
                out.push('}');
            }
            TraceEvent::Log { ts, level, target, msg } => {
                let _ = write!(
                    out,
                    "{{\"kind\":\"log\",\"ts\":{},\"level\":\"{level}\",\"target\":{},\"msg\":{}}}",
                    json_num(*ts),
                    json_str(target),
                    json_str(msg),
                );
            }
        }
        out
    }

    /// Parses one JSONL line back into an event, validating the schema.
    pub fn parse(line: &str) -> Result<TraceEvent, String> {
        let value = JsonValue::parse(line)?;
        let obj = value.as_object().ok_or("trace line is not a JSON object")?;
        let kind = obj.get("kind").and_then(JsonValue::as_str).ok_or("missing \"kind\"")?;
        let ts = obj.get("ts").and_then(JsonValue::as_f64).ok_or("missing numeric \"ts\"")?;
        let target =
            obj.get("target").and_then(JsonValue::as_str).ok_or("missing \"target\"")?.to_string();
        match kind {
            "span" => {
                let dur =
                    obj.get("dur").and_then(JsonValue::as_f64).ok_or("span missing \"dur\"")?;
                if !(dur.is_finite() && dur >= 0.0) {
                    return Err(format!("span has invalid dur {dur}"));
                }
                let name = obj
                    .get("name")
                    .and_then(JsonValue::as_str)
                    .ok_or("span missing \"name\"")?
                    .to_string();
                let depth =
                    obj.get("depth").and_then(JsonValue::as_f64).ok_or("span missing \"depth\"")?
                        as usize;
                let mut labels = BTreeMap::new();
                if let Some(raw) = obj.get("labels") {
                    let map = raw.as_object().ok_or("\"labels\" is not an object")?;
                    for (k, v) in map {
                        let v = v.as_str().ok_or("label values must be strings")?;
                        labels.insert(k.clone(), v.to_string());
                    }
                }
                Ok(TraceEvent::Span { ts, dur, target, name, depth, labels })
            }
            "log" => {
                let level: Level = obj
                    .get("level")
                    .and_then(JsonValue::as_str)
                    .ok_or("log missing \"level\"")?
                    .parse()?;
                let msg = obj
                    .get("msg")
                    .and_then(JsonValue::as_str)
                    .ok_or("log missing \"msg\"")?
                    .to_string();
                Ok(TraceEvent::Log { ts, level, target, msg })
            }
            other => Err(format!("unknown event kind {other:?}")),
        }
    }
}

/// Serializes an `f64` as a JSON number (shortest round-trippable form;
/// integers gain `.0` so the value stays typed as a float for downstream
/// tools; non-finite values clamp to `0.0` since JSON has no Inf/NaN).
/// Shared by every hand-written JSONL emitter in the workspace.
pub fn json_num(v: f64) -> String {
    if v.is_finite() {
        if v == v.trunc() && v.abs() < 1e15 {
            format!("{v:.1}")
        } else {
            format!("{v}")
        }
    } else {
        "0.0".to_string()
    }
}

/// Serializes a string as a quoted, escaped JSON string literal.
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A minimal JSON value: the subset the trace schema needs (objects,
/// strings, numbers, booleans, null; arrays accepted for forward
/// compatibility).
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Any JSON number.
    Number(f64),
    /// JSON string, unescaped.
    String(String),
    /// JSON array.
    Array(Vec<JsonValue>),
    /// JSON object, key-sorted.
    Object(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// Parses a complete JSON document (rejects trailing garbage).
    pub fn parse(text: &str) -> Result<JsonValue, String> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing garbage at byte {}", p.pos));
        }
        Ok(v)
    }

    /// The object map, if this is an object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, JsonValue>> {
        match self {
            JsonValue::Object(m) => Some(m),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek().ok_or("unexpected end of input")? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(JsonValue::String(self.string()?)),
            b't' => self.literal("true", JsonValue::Bool(true)),
            b'f' => self.literal("false", JsonValue::Bool(false)),
            b'n' => self.literal("null", JsonValue::Null),
            b'-' | b'0'..=b'9' => self.number(),
            other => Err(format!("unexpected byte {:?} at {}", other as char, self.pos)),
        }
    }

    fn literal(&mut self, lit: &str, value: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        while self
            .peek()
            .is_some_and(|b| matches!(b, b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        text.parse::<f64>().map(JsonValue::Number).map_err(|e| format!("bad number {text:?}: {e}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek().ok_or("unterminated string")? {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err("truncated \\u escape".into());
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|e| e.to_string())?;
                            let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                            self.pos += 4;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("bad escape \\{}", other as char)),
                    }
                }
                _ => {
                    // Consume one UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid UTF-8 in string")?;
                    let c = rest.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(map));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_round_trips_through_jsonl() {
        let mut labels = BTreeMap::new();
        labels.insert("epoch".to_string(), "12".to_string());
        labels.insert("codec".to_string(), "int8+ef".to_string());
        let ev = TraceEvent::Span {
            ts: 1.25,
            dur: 0.5,
            target: "core::runner".into(),
            name: "local_train".into(),
            depth: 1,
            labels,
        };
        let line = ev.to_jsonl();
        assert_eq!(TraceEvent::parse(&line).unwrap(), ev);
    }

    #[test]
    fn log_round_trips_with_awkward_characters() {
        let ev = TraceEvent::Log {
            ts: 0.0,
            level: Level::Warn,
            target: "cli".into(),
            msg: "path \"a\\b\"\nline2\ttab".into(),
        };
        let line = ev.to_jsonl();
        assert!(!line.contains('\n'), "JSONL lines must be newline-free: {line}");
        assert_eq!(TraceEvent::parse(&line).unwrap(), ev);
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        for bad in [
            "",
            "not json",
            "{\"kind\":\"span\"}",
            "{\"kind\":\"warp\",\"ts\":0,\"target\":\"x\"}",
            "{\"kind\":\"log\",\"ts\":0,\"target\":\"x\",\"level\":\"loud\",\"msg\":\"m\"}",
            "{\"kind\":\"span\",\"ts\":0,\"dur\":-1,\"target\":\"t\",\"name\":\"n\",\"depth\":0}",
            "{} trailing",
        ] {
            assert!(TraceEvent::parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn json_parser_handles_nesting_and_escapes() {
        let v = JsonValue::parse(
            "{\"a\": [1, 2.5, -3e2], \"b\": {\"c\": \"x\\u0041\"}, \"d\": null, \"e\": true}",
        )
        .unwrap();
        let obj = v.as_object().unwrap();
        assert_eq!(
            obj["a"],
            JsonValue::Array(vec![
                JsonValue::Number(1.0),
                JsonValue::Number(2.5),
                JsonValue::Number(-300.0),
            ])
        );
        assert_eq!(obj["b"].as_object().unwrap()["c"].as_str(), Some("xA"));
        assert_eq!(obj["d"], JsonValue::Null);
        assert_eq!(obj["e"], JsonValue::Bool(true));
    }
}
