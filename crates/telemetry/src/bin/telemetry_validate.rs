//! CI validator for telemetry exports.
//!
//! ```text
//! telemetry_validate [<trace.jsonl>] [--metrics <file.prom>]
//!                    [--require <metric family>]... [--min-coverage <0..1>]
//!                    [--mode <dense|fleet>] [--timeline <timeline.jsonl>]
//! ```
//!
//! * Parses every line of the JSONL trace through the strict
//!   [`TraceEvent::parse`] schema; any malformed line fails the run.
//! * With `--metrics`, checks the Prometheus exposition dump declares a
//!   `# TYPE` line for each `--require`d family.
//! * With `--min-coverage`, computes what fraction of the total `round`
//!   span time is covered by its direct child phase spans and fails below
//!   the bound — the guard behind the "spans cover the round wall-clock"
//!   acceptance criterion.
//! * With `--mode`, checks every span name against that runner's whitelist
//!   and requires the core phases of the mode to appear at least once, so
//!   a renamed or silently-dropped phase span fails CI instead of shipping.
//! * With `--timeline`, validates a round-timeline JSONL (`--timeline-out`):
//!   versioned header first, start timestamps monotonically non-decreasing
//!   (the watermark legitimately resets at a `rollback` marker), every
//!   interval closed (`t1 >= t0`), and every flow event referencing a link
//!   id that a `link` declaration introduced. The positional trace becomes
//!   optional when `--timeline` is the only job.

use std::collections::BTreeSet;
use std::process::ExitCode;

use fedmigr_telemetry::TraceEvent;

/// Span names each runner mode may emit.
const DENSE_SPANS: &[&str] = &[
    "round",
    "local_train",
    "decision",
    "communicate",
    "aggregate",
    "migration_plan",
    "migration_transfer",
    "quarantine_screen",
    "evaluate",
    "agent_update",
    "bookkeeping",
    "diagnostics",
    "update",
    "bench_main",
];

const FLEET_SPANS: &[&str] = &[
    "round",
    "cohort_activate",
    "local_train",
    "decision",
    "migrate",
    "aggregate",
    "evaluate",
    "retire",
    "bookkeeping",
    "update",
    "bench_main",
];

/// Span names that must appear at least once per mode.
const DENSE_REQUIRED: &[&str] = &["round", "local_train", "communicate", "evaluate"];
const FLEET_REQUIRED: &[&str] = &["round", "cohort_activate", "local_train", "aggregate"];

struct Args {
    trace: String,
    metrics: Option<String>,
    require: Vec<String>,
    min_coverage: Option<f64>,
    mode: Option<String>,
    timeline: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: telemetry_validate [<trace.jsonl>] [--metrics <file.prom>] \
         [--require <family>]... [--min-coverage <0..1>] [--mode <dense|fleet>] \
         [--timeline <timeline.jsonl>]"
    );
    std::process::exit(2)
}

fn parse_args() -> Args {
    let mut args = Args {
        trace: String::new(),
        metrics: None,
        require: Vec::new(),
        min_coverage: None,
        mode: None,
        timeline: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--metrics" => args.metrics = Some(it.next().unwrap_or_else(|| usage())),
            "--require" => args.require.push(it.next().unwrap_or_else(|| usage())),
            "--timeline" => args.timeline = Some(it.next().unwrap_or_else(|| usage())),
            "--mode" => {
                let raw = it.next().unwrap_or_else(|| usage());
                match raw.as_str() {
                    "dense" | "fleet" => args.mode = Some(raw),
                    _ => {
                        eprintln!("telemetry_validate: unknown --mode {raw:?}");
                        usage()
                    }
                }
            }
            "--min-coverage" => {
                let raw = it.next().unwrap_or_else(|| usage());
                match raw.parse::<f64>() {
                    Ok(v) if (0.0..=1.0).contains(&v) => args.min_coverage = Some(v),
                    _ => {
                        eprintln!("telemetry_validate: bad --min-coverage {raw:?}");
                        usage()
                    }
                }
            }
            "--help" | "-h" => usage(),
            other if args.trace.is_empty() && !other.starts_with('-') => {
                args.trace = other.to_string();
            }
            other => {
                eprintln!("telemetry_validate: unknown argument {other:?}");
                usage()
            }
        }
    }
    if args.trace.is_empty() && args.timeline.is_none() {
        usage()
    }
    args
}

fn main() -> ExitCode {
    let args = parse_args();
    let mut failed = false;

    if let Some(path) = &args.timeline {
        failed |= !validate_timeline(path);
    }
    if args.trace.is_empty() {
        return if failed { ExitCode::FAILURE } else { ExitCode::SUCCESS };
    }

    let raw = match std::fs::read_to_string(&args.trace) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("telemetry_validate: cannot read {}: {e}", args.trace);
            return ExitCode::FAILURE;
        }
    };

    let mut events = Vec::new();
    for (i, line) in raw.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        match TraceEvent::parse(line) {
            Ok(ev) => events.push(ev),
            Err(e) => {
                eprintln!("telemetry_validate: {}:{}: {e}", args.trace, i + 1);
                failed = true;
            }
        }
    }
    let (mut spans, mut logs) = (0usize, 0usize);
    for ev in &events {
        match ev {
            TraceEvent::Span { .. } => spans += 1,
            TraceEvent::Log { .. } => logs += 1,
        }
    }
    println!("{}: {spans} span events, {logs} log events, all lines valid", args.trace);
    if events.is_empty() {
        eprintln!("telemetry_validate: trace is empty");
        failed = true;
    }

    if let Some(mode) = &args.mode {
        let (allowed, required) = match mode.as_str() {
            "dense" => (DENSE_SPANS, DENSE_REQUIRED),
            _ => (FLEET_SPANS, FLEET_REQUIRED),
        };
        let mut seen: BTreeSet<&str> = BTreeSet::new();
        let mut unknown: BTreeSet<String> = BTreeSet::new();
        for ev in &events {
            if let TraceEvent::Span { name, .. } = ev {
                if let Some(known) = allowed.iter().find(|a| *a == name) {
                    seen.insert(known);
                } else {
                    unknown.insert(name.clone());
                }
            }
        }
        for name in &unknown {
            eprintln!("telemetry_validate: span {name:?} is not in the {mode} whitelist");
            failed = true;
        }
        let mut missing = 0usize;
        for name in required {
            if !seen.contains(name) {
                eprintln!("telemetry_validate: required {mode} span {name:?} never appeared");
                failed = true;
                missing += 1;
            }
        }
        if unknown.is_empty() && missing == 0 {
            println!(
                "mode {mode}: {} distinct span names, all whitelisted, required set present",
                seen.len()
            );
        }
    }

    if let Some(min) = args.min_coverage {
        // Direct child phase spans (depth == round depth + 1) over the time
        // the `round` spans themselves measured.
        let mut round_total = 0.0;
        let mut round_depth = None;
        for ev in &events {
            if let TraceEvent::Span { name, dur, depth, .. } = ev {
                if name == "round" {
                    round_total += dur;
                    round_depth = Some(*depth);
                }
            }
        }
        let mut child_total = 0.0;
        if let Some(rd) = round_depth {
            for ev in &events {
                if let TraceEvent::Span { name, dur, depth, .. } = ev {
                    if name != "round" && *depth == rd + 1 {
                        child_total += dur;
                    }
                }
            }
        }
        if round_total <= 0.0 {
            eprintln!("telemetry_validate: no `round` spans found; cannot check coverage");
            failed = true;
        } else {
            let coverage = (child_total / round_total).min(1.0);
            println!("round coverage: {:.1}% (bound {:.1}%)", coverage * 100.0, min * 100.0);
            if coverage < min {
                eprintln!(
                    "telemetry_validate: phase spans cover {:.1}% of round time, below {:.1}%",
                    coverage * 100.0,
                    min * 100.0
                );
                failed = true;
            }
        }
    }

    if let Some(path) = &args.metrics {
        match std::fs::read_to_string(path) {
            Ok(dump) => {
                for family in &args.require {
                    if !dump.contains(&format!("# TYPE {family} ")) {
                        eprintln!("telemetry_validate: {path}: missing metric family {family}");
                        failed = true;
                    }
                }
                if !failed {
                    println!("{path}: all {} required families present", args.require.len());
                }
            }
            Err(e) => {
                eprintln!("telemetry_validate: cannot read {path}: {e}");
                failed = true;
            }
        }
    }

    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// The timeline schema version this validator understands.
const TIMELINE_VERSION: u64 = 1;

/// Validates a round-timeline JSONL file. Returns `true` when clean;
/// prints every violation and returns `false` otherwise.
fn validate_timeline(path: &str) -> bool {
    use fedmigr_telemetry::trace::JsonValue;

    let raw = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("telemetry_validate: cannot read {path}: {e}");
            return false;
        }
    };

    let mut ok = true;
    let fail = |line: usize, msg: String| {
        eprintln!("telemetry_validate: {path}:{line}: {msg}");
    };
    let mut saw_header = false;
    let mut finished = false;
    // Start-timestamp watermark; a rollback marker legitimately rewinds it.
    let mut watermark = f64::NEG_INFINITY;
    let mut links: BTreeSet<String> = BTreeSet::new();
    let (mut rounds, mut intervals, mut flows) = (0usize, 0usize, 0usize);

    for (i, line) in raw.lines().enumerate() {
        let n = i + 1;
        if line.trim().is_empty() {
            continue;
        }
        let v = match JsonValue::parse(line) {
            Ok(v) => v,
            Err(e) => {
                fail(n, format!("bad JSON: {e}"));
                ok = false;
                continue;
            }
        };
        let Some(obj) = v.as_object() else {
            fail(n, "line is not a JSON object".into());
            ok = false;
            continue;
        };
        let field = |k: &str| obj.get(k).and_then(|x| x.as_f64());
        let kind = obj.get("kind").and_then(|x| x.as_str()).unwrap_or("");
        if !saw_header {
            if kind != "header" {
                fail(n, format!("first line must be the header, got kind {kind:?}"));
                return false;
            }
            match field("version") {
                Some(v) if v == TIMELINE_VERSION as f64 => {}
                other => {
                    fail(n, format!("unsupported timeline version {other:?}"));
                    return false;
                }
            }
            saw_header = true;
            continue;
        }
        if finished {
            fail(n, format!("kind {kind:?} after the finish marker"));
            ok = false;
        }
        // The start stamp of each row kind, for the monotonicity check.
        let start = match kind {
            "round" => {
                rounds += 1;
                field("t0")
            }
            "interval" => {
                intervals += 1;
                match (field("t0"), field("t1")) {
                    (Some(t0), Some(t1)) => {
                        if t1 < t0 {
                            fail(n, format!("interval not closed: t1 {t1} < t0 {t0}"));
                            ok = false;
                        }
                        Some(t0)
                    }
                    _ => {
                        fail(n, "interval missing t0/t1".into());
                        ok = false;
                        None
                    }
                }
            }
            "link" => {
                match obj.get("id").and_then(|x| x.as_str()) {
                    Some(id) => {
                        links.insert(id.to_string());
                    }
                    None => {
                        fail(n, "link declaration missing id".into());
                        ok = false;
                    }
                }
                field("t")
            }
            "flow" => {
                flows += 1;
                match obj.get("link").and_then(|x| x.as_str()) {
                    Some(link) if links.contains(link) => {}
                    Some(link) => {
                        fail(n, format!("flow event references undeclared link {link:?}"));
                        ok = false;
                    }
                    None => {
                        fail(n, "flow event missing link".into());
                        ok = false;
                    }
                }
                field("t")
            }
            "link_series" => field("t"),
            "rollback" => {
                watermark = f64::NEG_INFINITY;
                None
            }
            "finish" => {
                finished = true;
                None
            }
            "header" => {
                fail(n, "duplicate header".into());
                ok = false;
                None
            }
            other => {
                fail(n, format!("unknown kind {other:?}"));
                ok = false;
                None
            }
        };
        if let Some(t) = start {
            // A hair of slack: start stamps are written through the same
            // f64 formatter, so exact comparison is safe, but keep the
            // check strict about real regressions only.
            if t < watermark {
                fail(n, format!("start timestamp {t} below watermark {watermark}"));
                ok = false;
            } else {
                watermark = t;
            }
        }
    }

    if !saw_header {
        eprintln!("telemetry_validate: {path}: timeline is empty (no header)");
        return false;
    }
    if rounds == 0 {
        eprintln!("telemetry_validate: {path}: no round markers");
        ok = false;
    }
    if ok {
        println!(
            "{path}: timeline v{TIMELINE_VERSION} valid — {rounds} round(s), {intervals} \
             interval(s), {flows} flow event(s), {} link(s), monotone stamps, intervals closed",
            links.len()
        );
    }
    ok
}
