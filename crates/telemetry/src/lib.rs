//! Zero-dependency structured observability for the FedMigr workspace.
//!
//! Three instruments share one [`Telemetry`] engine:
//!
//! * **Leveled, target-scoped logging** — [`error!`], [`warn!`], [`info!`],
//!   [`debug!`], [`trace!`] write through a global, silenceable sink.
//!   Verbosity comes from the `FEDMIGR_LOG` environment variable (or
//!   [`set_filter`]), e.g. `FEDMIGR_LOG=debug,drl=trace,net=off`. The
//!   default (`info`, plain message format, stderr) renders exactly the
//!   progress lines the pre-telemetry binaries printed, so existing result
//!   files stay byte-comparable.
//! * **A metrics registry** — counters, gauges and fixed-bucket histograms
//!   keyed by `(name, labels)` ([`metrics::Registry`]), rendered as a
//!   Prometheus-style text exposition dump ([`render_metrics`]).
//! * **RAII span timers** — [`span!`] opens a [`Span`] that, on drop,
//!   records its duration into the `fedmigr_phase_seconds{target,phase}`
//!   histogram and (when a trace writer is attached) appends a JSONL event
//!   to the trace stream ([`set_trace_file`]).
//!
//! # Determinism contract
//!
//! Telemetry is *observation only*: it never consumes an experiment's RNG
//! stream, never touches the simulated clock, and writes solely to its own
//! sinks. A seeded run therefore produces byte-identical `RunMetrics`
//! whether telemetry is enabled, disabled, or pointed at a trace file —
//! the workspace test `telemetry_e2e.rs` asserts exactly this. Span
//! *timings* read the host's monotonic clock and are naturally
//! non-deterministic; tests that golden-file trace output inject a
//! [`FakeClock`] instead.

#![warn(missing_docs)]

mod clock;
mod level;
pub mod metrics;
pub mod profiler;
pub mod rss;
pub mod trace;

use std::collections::BTreeMap;
use std::io::Write;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};

pub use clock::{FakeClock, MonotonicClock, TelemetryClock};
pub use level::{Filter, Level};
pub use metrics::Registry;
pub use rss::{peak_rss_bytes, record_peak_rss, reset_peak_rss};
pub use trace::TraceEvent;

/// Name of the span-duration histogram family.
pub const PHASE_SECONDS: &str = "fedmigr_phase_seconds";

/// Canonical metric names shared across crates, so producers (the network
/// simulator, the runner) and consumers (`telemetry_validate`, dashboards)
/// agree on spelling.
pub mod names {
    /// Gauge: mean link utilization of the last simulated transport phase.
    pub const LINK_UTILIZATION: &str = "fedmigr_net_link_utilization";
    /// Histogram: per-flow queueing delay in seconds (time spent with zero
    /// allocated rate) under the flow transport.
    pub const QUEUE_DELAY_SECONDS: &str = "fedmigr_net_queue_delay_seconds";
    /// Counter: segments lost and retransmitted by the flow transport.
    pub const RETRANSMITS_TOTAL: &str = "fedmigr_net_retransmits_total";
    /// Counter: retransmission timeouts fired by the flow transport.
    pub const FLOW_TIMEOUTS_TOTAL: &str = "fedmigr_net_flow_timeouts_total";
    /// Counter: flow lifecycle events per `{event}` (start, rate,
    /// retransmit, timeout, ...), emitted only while the round timeline is
    /// recording.
    pub const FLOW_EVENTS_TOTAL: &str = "fedmigr_net_flow_events_total";
    /// Histogram: seconds each traced link spent busy (allocated rate
    /// above zero) during one transport phase, emitted only while the
    /// round timeline is recording.
    pub const LINK_BUSY_SECONDS: &str = "fedmigr_net_link_busy_seconds";
    /// Counter: declared FLOPs per `{kernel, phase}` (from `fedmigr-tensor`
    /// kernel accounting, attributed to phases by the runners).
    pub const KERNEL_FLOPS_TOTAL: &str = "fedmigr_kernel_flops_total";
    /// Counter: declared bytes moved per `{kernel, phase}`.
    pub const KERNEL_BYTES_TOTAL: &str = "fedmigr_kernel_bytes_total";
    /// Counter: kernel invocations per `{kernel, phase}`.
    pub const KERNEL_CALLS_TOTAL: &str = "fedmigr_kernel_calls_total";
    /// Counter: outermost kernel wall time per `{kernel, phase}`, in
    /// nanoseconds (a counter, not a histogram, so per-phase GFLOP/s is an
    /// exact ratio of two counters).
    pub const KERNEL_NANOS_TOTAL: &str = "fedmigr_kernel_nanos_total";
    /// Counter: process CPU time (utime + stime across all threads) per
    /// `{phase}`, in nanoseconds. The honest denominator for kernel
    /// attribution: kernel nanos are summed across worker threads, so
    /// dividing by wall clock overstates coverage on parallel phases.
    pub const PHASE_CPU_NANOS_TOTAL: &str = "fedmigr_phase_cpu_nanos_total";
}

/// Where rendered log lines go.
pub enum LogSink {
    /// Standard error (the default — matches the historical `eprintln!`s).
    Stderr,
    /// Drop everything (sub-silent even for passing levels).
    Silent,
    /// Append to a shared in-memory buffer (tests).
    Memory(Arc<Mutex<String>>),
}

/// One observability engine: clock + filter + registry + sinks.
///
/// Production code uses the process-wide [`global`] instance; tests build
/// their own (typically over a [`FakeClock`]) to stay isolated.
pub struct Telemetry {
    clock: Box<dyn TelemetryClock>,
    filter: RwLock<Filter>,
    registry: Registry,
    tracer: Mutex<Option<Box<dyn Write + Send>>>,
    trace_on: AtomicBool,
    spans_on: AtomicBool,
    depth: AtomicUsize,
    sink: Mutex<LogSink>,
}

impl Default for Telemetry {
    fn default() -> Self {
        Self::new()
    }
}

impl Telemetry {
    /// An engine over the monotonic real clock with default filtering.
    pub fn new() -> Self {
        Self::with_clock(Box::new(MonotonicClock::new()))
    }

    /// An engine over an explicit clock (tests inject [`FakeClock`] here).
    pub fn with_clock(clock: Box<dyn TelemetryClock>) -> Self {
        Self {
            clock,
            filter: RwLock::new(Filter::default()),
            registry: Registry::new(),
            tracer: Mutex::new(None),
            trace_on: AtomicBool::new(false),
            spans_on: AtomicBool::new(true),
            depth: AtomicUsize::new(0),
            sink: Mutex::new(LogSink::Stderr),
        }
    }

    /// Seconds since this engine's clock origin.
    pub fn now(&self) -> f64 {
        self.clock.now()
    }

    /// The metrics registry.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Replaces the log filter.
    pub fn set_filter(&self, filter: Filter) {
        *self.filter.write().expect("telemetry filter poisoned") = filter;
    }

    /// Whether a record at `level` for `target` would be emitted.
    pub fn enabled(&self, target: &str, level: Level) -> bool {
        self.filter.read().expect("telemetry filter poisoned").enabled(target, level)
    }

    /// Replaces the log sink.
    pub fn set_sink(&self, sink: LogSink) {
        *self.sink.lock().expect("telemetry sink poisoned") = sink;
    }

    /// Enables/disables span recording entirely (both histogram and trace).
    pub fn set_spans_enabled(&self, on: bool) {
        self.spans_on.store(on, Ordering::Relaxed);
    }

    /// Emits one log record if the filter passes. Prefer the [`error!`] …
    /// [`trace!`] macros, which route here through the global engine.
    pub fn log(&self, level: Level, target: &str, args: std::fmt::Arguments<'_>) {
        if !self.enabled(target, level) {
            return;
        }
        let msg = args.to_string();
        {
            let mut sink = self.sink.lock().expect("telemetry sink poisoned");
            match &mut *sink {
                LogSink::Stderr => eprintln!("{msg}"),
                LogSink::Silent => {}
                LogSink::Memory(buf) => {
                    let mut buf = buf.lock().expect("telemetry memory sink poisoned");
                    buf.push_str(&msg);
                    buf.push('\n');
                }
            }
        }
        if self.trace_on.load(Ordering::Relaxed) {
            let ev = TraceEvent::Log { ts: self.now(), level, target: target.to_string(), msg };
            self.write_event(&ev);
        }
    }

    /// Opens an unlabeled span. See [`Span`].
    pub fn span(&self, target: &'static str, name: &'static str) -> Span<'_> {
        self.span_labeled(target, name, Vec::new())
    }

    /// Opens a span carrying extra trace labels (labels enrich the JSONL
    /// stream only — the timing histogram is keyed by `(target, phase)` to
    /// keep series cardinality bounded).
    pub fn span_labeled(
        &self,
        target: &'static str,
        name: &'static str,
        labels: Vec<(String, String)>,
    ) -> Span<'_> {
        if !self.spans_on.load(Ordering::Relaxed) {
            return Span {
                engine: None,
                target,
                name,
                start: 0.0,
                depth: 0,
                labels: Vec::new(),
                _frame: profiler::Frame::inert(),
            };
        }
        let depth = self.depth.fetch_add(1, Ordering::Relaxed);
        // Spans double as profiler frames so the collapsed-stack report
        // nests under the same phase names as the trace (inert when
        // profiling is off).
        let frame = profiler::frame(name);
        Span { engine: Some(self), target, name, start: self.now(), depth, labels, _frame: frame }
    }

    /// Attaches a JSONL trace writer; subsequent spans and passing log
    /// records are appended to it.
    pub fn set_trace_writer(&self, writer: Box<dyn Write + Send>) {
        *self.tracer.lock().expect("telemetry tracer poisoned") = Some(writer);
        self.trace_on.store(true, Ordering::Relaxed);
    }

    /// Opens (creates/truncates) `path` as the JSONL trace sink.
    pub fn set_trace_file(&self, path: &str) -> std::io::Result<()> {
        let file = std::fs::File::create(path)?;
        self.set_trace_writer(Box::new(std::io::BufWriter::new(file)));
        Ok(())
    }

    /// Flushes and detaches the trace writer, ending the stream.
    pub fn close_trace(&self) {
        self.trace_on.store(false, Ordering::Relaxed);
        if let Some(mut w) = self.tracer.lock().expect("telemetry tracer poisoned").take() {
            let _ = w.flush();
        }
    }

    /// Flushes the trace writer without detaching it.
    pub fn flush(&self) {
        if let Some(w) = self.tracer.lock().expect("telemetry tracer poisoned").as_mut() {
            let _ = w.flush();
        }
    }

    /// Renders the Prometheus-style exposition dump of the registry.
    pub fn render_metrics(&self) -> String {
        self.registry.render_prometheus()
    }

    fn write_event(&self, ev: &TraceEvent) {
        let mut tracer = self.tracer.lock().expect("telemetry tracer poisoned");
        if let Some(w) = tracer.as_mut() {
            if writeln!(w, "{}", ev.to_jsonl()).is_err() {
                // A dead trace sink must never take the experiment down;
                // drop the writer and keep running.
                *tracer = None;
                self.trace_on.store(false, Ordering::Relaxed);
                eprintln!("fedmigr-telemetry: trace sink write failed; tracing disabled");
            }
        }
    }
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("trace_on", &self.trace_on.load(Ordering::Relaxed))
            .field("spans_on", &self.spans_on.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

/// An RAII profiling span: created by [`Telemetry::span`] (usually via the
/// [`span!`] macro), it measures from construction to drop and then
/// records into the `fedmigr_phase_seconds` histogram and the trace.
#[must_use = "a span measures until dropped; binding it to _ drops it immediately"]
pub struct Span<'a> {
    engine: Option<&'a Telemetry>,
    target: &'static str,
    name: &'static str,
    start: f64,
    depth: usize,
    labels: Vec<(String, String)>,
    /// Closes (recording the profiler frame) after the span records.
    _frame: profiler::Frame,
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        let Some(engine) = self.engine else { return };
        let dur = (engine.now() - self.start).max(0.0);
        engine.depth.fetch_sub(1, Ordering::Relaxed);
        engine
            .registry
            .histogram(PHASE_SECONDS, &[("target", self.target), ("phase", self.name)])
            .observe(dur);
        if engine.trace_on.load(Ordering::Relaxed) {
            let ev = TraceEvent::Span {
                ts: self.start,
                dur,
                target: self.target.to_string(),
                name: self.name.to_string(),
                depth: self.depth,
                labels: BTreeMap::from_iter(std::mem::take(&mut self.labels)),
            };
            engine.write_event(&ev);
        }
    }
}

static GLOBAL: OnceLock<Telemetry> = OnceLock::new();

/// The process-wide engine. First use initializes the filter from the
/// `FEDMIGR_LOG` environment variable (malformed specs fall back to the
/// default with a warning).
pub fn global() -> &'static Telemetry {
    GLOBAL.get_or_init(|| {
        let t = Telemetry::new();
        if let Ok(spec) = std::env::var("FEDMIGR_LOG") {
            match Filter::parse(&spec) {
                Ok(f) => t.set_filter(f),
                Err(e) => eprintln!("fedmigr-telemetry: ignoring FEDMIGR_LOG: {e}"),
            }
        }
        t
    })
}

/// Replaces the global log filter (e.g. from a `--log-level` flag).
pub fn set_filter(filter: Filter) {
    global().set_filter(filter);
}

/// Points the global JSONL trace stream at `path`.
pub fn set_trace_file(path: &str) -> std::io::Result<()> {
    global().set_trace_file(path)
}

/// Flushes and closes the global trace stream.
pub fn close_trace() {
    global().close_trace();
}

/// Renders the global registry as a Prometheus text exposition dump.
pub fn render_metrics() -> String {
    global().render_metrics()
}

/// Logs at [`Level::Error`]: `error!("target", "format {}", args)`.
#[macro_export]
macro_rules! error {
    ($target:expr, $($arg:tt)*) => {
        $crate::global().log($crate::Level::Error, $target, format_args!($($arg)*))
    };
}

/// Logs at [`Level::Warn`]: `warn!("target", "format {}", args)`.
#[macro_export]
macro_rules! warn {
    ($target:expr, $($arg:tt)*) => {
        $crate::global().log($crate::Level::Warn, $target, format_args!($($arg)*))
    };
}

/// Logs at [`Level::Info`]: `info!("target", "format {}", args)`.
#[macro_export]
macro_rules! info {
    ($target:expr, $($arg:tt)*) => {
        $crate::global().log($crate::Level::Info, $target, format_args!($($arg)*))
    };
}

/// Logs at [`Level::Debug`]: `debug!("target", "format {}", args)`.
#[macro_export]
macro_rules! debug {
    ($target:expr, $($arg:tt)*) => {
        $crate::global().log($crate::Level::Debug, $target, format_args!($($arg)*))
    };
}

/// Logs at [`Level::Trace`]: `trace!("target", "format {}", args)`.
#[macro_export]
macro_rules! trace {
    ($target:expr, $($arg:tt)*) => {
        $crate::global().log($crate::Level::Trace, $target, format_args!($($arg)*))
    };
}

/// Opens a span on the global engine. Bind it to a named guard:
///
/// ```
/// let _span = fedmigr_telemetry::span!("core", "local_train");
/// let _span = fedmigr_telemetry::span!("core", "migrate", "epoch" => 7);
/// ```
#[macro_export]
macro_rules! span {
    ($target:expr, $name:expr $(,)?) => {
        $crate::global().span($target, $name)
    };
    ($target:expr, $name:expr, $($k:expr => $v:expr),+ $(,)?) => {
        $crate::global().span_labeled($target, $name, vec![$(($k.to_string(), $v.to_string())),+])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake_engine() -> (Telemetry, FakeClock) {
        let clock = FakeClock::new();
        let t = Telemetry::with_clock(Box::new(clock.clone()));
        (t, clock)
    }

    /// A shared in-memory trace sink.
    #[derive(Clone, Default)]
    struct Buf(Arc<Mutex<Vec<u8>>>);

    impl Write for Buf {
        fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(data);
            Ok(data.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    fn events(buf: &Buf) -> Vec<TraceEvent> {
        let raw = buf.0.lock().unwrap().clone();
        String::from_utf8(raw)
            .unwrap()
            .lines()
            .map(|l| TraceEvent::parse(l).expect("valid JSONL"))
            .collect()
    }

    #[test]
    fn spans_nest_and_time_under_the_fake_clock() {
        let (t, clock) = fake_engine();
        let buf = Buf::default();
        t.set_trace_writer(Box::new(buf.clone()));
        {
            let _outer = t.span("core", "round");
            clock.advance(1.0);
            {
                let _inner = t.span("core", "local_train");
                clock.advance(2.0);
            }
            clock.advance(0.5);
        }
        t.close_trace();
        let evs = events(&buf);
        assert_eq!(evs.len(), 2, "inner closes first, then outer");
        match &evs[0] {
            TraceEvent::Span { name, ts, dur, depth, .. } => {
                assert_eq!(name, "local_train");
                assert!((ts - 1.0).abs() < 1e-9);
                assert!((dur - 2.0).abs() < 1e-9);
                assert_eq!(*depth, 1);
            }
            other => panic!("expected span, got {other:?}"),
        }
        match &evs[1] {
            TraceEvent::Span { name, ts, dur, depth, .. } => {
                assert_eq!(name, "round");
                assert_eq!(*ts, 0.0);
                assert!((dur - 3.5).abs() < 1e-9);
                assert_eq!(*depth, 0);
            }
            other => panic!("expected span, got {other:?}"),
        }
        // Both spans also landed in the phase histogram.
        let snap = t
            .registry()
            .histogram(PHASE_SECONDS, &[("target", "core"), ("phase", "round")])
            .snapshot();
        assert_eq!(snap.count, 1);
        assert!((snap.sum - 3.5).abs() < 1e-9);
    }

    #[test]
    fn disabled_spans_cost_nothing_and_record_nothing() {
        let (t, clock) = fake_engine();
        t.set_spans_enabled(false);
        {
            let _s = t.span("core", "round");
            clock.advance(1.0);
        }
        let snap = t
            .registry()
            .histogram(PHASE_SECONDS, &[("target", "core"), ("phase", "round")])
            .snapshot();
        assert_eq!(snap.count, 0);
    }

    #[test]
    fn log_respects_filter_and_mirrors_to_trace() {
        let (t, _clock) = fake_engine();
        let lines = Arc::new(Mutex::new(String::new()));
        t.set_sink(LogSink::Memory(Arc::clone(&lines)));
        let buf = Buf::default();
        t.set_trace_writer(Box::new(buf.clone()));
        t.set_filter(Filter::parse("warn,core=debug").unwrap());
        t.log(Level::Info, "net", format_args!("hidden"));
        t.log(Level::Debug, "core::runner", format_args!("shown {}", 42));
        t.log(Level::Error, "net", format_args!("also shown"));
        t.close_trace();
        assert_eq!(*lines.lock().unwrap(), "shown 42\nalso shown\n");
        let evs = events(&buf);
        assert_eq!(evs.len(), 2);
        assert!(matches!(&evs[0], TraceEvent::Log { level: Level::Debug, .. }));
    }

    #[test]
    fn failed_trace_sink_disables_tracing_without_panicking() {
        struct Broken;
        impl Write for Broken {
            fn write(&mut self, _: &[u8]) -> std::io::Result<usize> {
                Err(std::io::Error::other("disk full"))
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let (t, clock) = fake_engine();
        t.set_trace_writer(Box::new(Broken));
        {
            let _s = t.span("core", "round");
            clock.advance(1.0);
        }
        // Tracing is now off, but spans still feed the registry.
        {
            let _s = t.span("core", "round");
            clock.advance(1.0);
        }
        let snap = t
            .registry()
            .histogram(PHASE_SECONDS, &[("target", "core"), ("phase", "round")])
            .snapshot();
        assert_eq!(snap.count, 2);
    }

    #[test]
    fn global_macros_do_not_panic() {
        // The global engine writes to stderr by default; just exercise the
        // macro plumbing end to end.
        let _span = crate::span!("telemetry", "self_test", "k" => "v");
        crate::debug!("telemetry", "self test {}", 1);
    }
}
