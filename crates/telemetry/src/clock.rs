//! Pluggable time sources for span profiling.
//!
//! Production telemetry reads a monotonic real clock; tests swap in a
//! [`FakeClock`] so span durations (and therefore trace files and timing
//! histograms) are fully deterministic. The simulation's *virtual* clock is
//! a separate concept that lives in `fedmigr-net` — telemetry measures
//! where the *host's* time goes, never the simulated network's.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A monotonic source of seconds since an arbitrary origin.
pub trait TelemetryClock: Send + Sync {
    /// Seconds elapsed since this clock's origin.
    fn now(&self) -> f64;
}

/// Wall-clock time via [`Instant`], anchored at construction.
#[derive(Debug)]
pub struct MonotonicClock {
    origin: Instant,
}

impl Default for MonotonicClock {
    fn default() -> Self {
        Self { origin: Instant::now() }
    }
}

impl MonotonicClock {
    /// A clock anchored now.
    pub fn new() -> Self {
        Self::default()
    }
}

impl TelemetryClock for MonotonicClock {
    fn now(&self) -> f64 {
        self.origin.elapsed().as_secs_f64()
    }
}

/// A manually advanced clock for deterministic tests. Cheap to clone; all
/// clones share the same time.
#[derive(Clone, Debug, Default)]
pub struct FakeClock {
    nanos: Arc<AtomicU64>,
}

impl FakeClock {
    /// A fake clock at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Advances by `seconds` (must be non-negative and finite).
    pub fn advance(&self, seconds: f64) {
        assert!(seconds >= 0.0 && seconds.is_finite(), "invalid advance {seconds}");
        self.nanos.fetch_add((seconds * 1e9).round() as u64, Ordering::SeqCst);
    }
}

impl TelemetryClock for FakeClock {
    fn now(&self) -> f64 {
        self.nanos.load(Ordering::SeqCst) as f64 / 1e9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic_clock_advances() {
        let c = MonotonicClock::new();
        let a = c.now();
        let b = c.now();
        assert!(b >= a);
    }

    #[test]
    fn fake_clock_is_shared_across_clones() {
        let c = FakeClock::new();
        let d = c.clone();
        c.advance(1.5);
        assert!((d.now() - 1.5).abs() < 1e-9);
        d.advance(0.5);
        assert!((c.now() - 2.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "invalid advance")]
    fn fake_clock_rejects_negative() {
        FakeClock::new().advance(-1.0);
    }
}
