//! Peak-RSS probing via `/proc/self/status`.
//!
//! The fleet memory contract — peak RSS scales with participants-per-round,
//! not fleet size — is enforced by CI and charted by the Fig.-6 harness, so
//! the probe lives in telemetry where both can reach it. `VmHWM` is the
//! kernel's high-water mark of resident set size; it is monotone for the
//! process lifetime unless explicitly reset through `/proc/self/clear_refs`,
//! which lets a benchmark measure each configuration's own peak.
//!
//! Everything here is observation-only and Linux-specific: on platforms
//! without procfs the probe returns `None` and the gauge is simply never
//! set.

use std::io::Write;

/// Name of the peak-RSS gauge exported by [`record_peak_rss`].
pub const PEAK_RSS_BYTES: &str = "fedmigr_peak_rss_bytes";

/// The process's peak resident set size (`VmHWM`) in bytes, or `None`
/// when `/proc/self/status` is unavailable or unparseable.
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    parse_vm_hwm(&status)
}

/// Resets the kernel's RSS high-water mark by writing `5` to
/// `/proc/self/clear_refs` (best-effort; returns whether the write
/// succeeded). After a successful reset, [`peak_rss_bytes`] reports the
/// peak *since the reset*, enabling per-configuration measurement.
pub fn reset_peak_rss() -> bool {
    std::fs::OpenOptions::new()
        .write(true)
        .open("/proc/self/clear_refs")
        .and_then(|mut f| f.write_all(b"5"))
        .is_ok()
}

/// Samples [`peak_rss_bytes`] into the global `fedmigr_peak_rss_bytes`
/// gauge and returns the sampled value.
pub fn record_peak_rss() -> Option<u64> {
    let peak = peak_rss_bytes()?;
    crate::global().registry().gauge(PEAK_RSS_BYTES, &[]).set(peak as f64);
    Some(peak)
}

/// Extracts `VmHWM` (reported by the kernel in kB) from a
/// `/proc/self/status` dump.
fn parse_vm_hwm(status: &str) -> Option<u64> {
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_vm_hwm_line() {
        let status = "Name:\tfedmigr\nVmPeak:\t  999 kB\nVmHWM:\t  123456 kB\nVmRSS:\t 5 kB\n";
        assert_eq!(parse_vm_hwm(status), Some(123456 * 1024));
        assert_eq!(parse_vm_hwm("Name:\tx\n"), None);
        assert_eq!(parse_vm_hwm("VmHWM:\tgarbage kB\n"), None);
    }

    #[test]
    fn probe_reports_a_plausible_peak_on_linux() {
        if let Some(peak) = peak_rss_bytes() {
            // Any live test process resides in at least a few hundred kB.
            assert!(peak > 100 * 1024, "peak {peak} implausibly small");
            assert_eq!(record_peak_rss(), peak_rss_bytes());
        }
    }

    #[test]
    fn reset_is_best_effort() {
        // Must not panic whether or not the platform allows the write.
        let _ = reset_peak_rss();
    }
}
