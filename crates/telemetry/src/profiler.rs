//! In-process scoped profiler: thread-aware timer frames aggregated into a
//! flamegraph-compatible collapsed-stack report, with an opt-in counting
//! global allocator for per-scope allocation accounting.
//!
//! Frames nest: each thread keeps a stack of frame names, and when a frame
//! closes its *self time* (wall time minus time spent in child frames) is
//! credited to the full `outer;inner;leaf` path, which is exactly the
//! [collapsed-stack format] flamegraph tools consume (`path count`, one
//! line per path, counts here in integer microseconds). Telemetry [`Span`]s
//! open a frame automatically when profiling is on, so the report nests
//! under the same phase names as the JSONL trace; hot code can add finer
//! frames with [`frame`] directly.
//!
//! Allocation accounting requires two opt-ins: the binary must register
//! [`CountingAlloc`] as its `#[global_allocator]`, and
//! [`set_alloc_enabled`] must be turned on (the CLI's `--profile-alloc`).
//! Each frame then also records the allocations, allocated bytes, and peak
//! net live bytes observed on its thread while it was open.
//!
//! Determinism contract: like the rest of the telemetry crate, the
//! profiler is observation-only — it never touches an experiment's RNG or
//! simulated clock, so seeded runs are byte-identical with profiling on or
//! off (`tests/telemetry_e2e.rs` asserts this). Disabled, the cost is one
//! relaxed atomic load per span/frame and per allocation.
//!
//! [collapsed-stack format]: https://github.com/brendangregg/FlameGraph
//!
//! # Example
//!
//! ```
//! use fedmigr_telemetry::profiler;
//!
//! profiler::reset();
//! profiler::set_enabled(true);
//! {
//!     let _outer = profiler::frame("round");
//!     let _inner = profiler::frame("local_train");
//! }
//! profiler::set_enabled(false);
//! let report = profiler::collapsed_report();
//! assert!(report.lines().any(|l| l.starts_with("round;local_train ")));
//! ```

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::Instant;

static ENABLED: AtomicBool = AtomicBool::new(false);
static ALLOC_ENABLED: AtomicBool = AtomicBool::new(false);

/// Aggregated statistics for one stack path.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ScopeStat {
    /// Times a frame closed at this path.
    pub count: u64,
    /// Self wall time (excluding child frames), nanoseconds.
    pub self_nanos: u64,
    /// Heap allocations made on the frame's thread while open.
    pub allocs: u64,
    /// Bytes requested by those allocations.
    pub alloc_bytes: u64,
    /// Peak net live bytes (allocated minus freed on this thread) observed
    /// above the level at frame entry.
    pub peak_bytes: u64,
}

impl ScopeStat {
    fn absorb(&mut self, other: &ScopeStat) {
        self.count = self.count.saturating_add(other.count);
        self.self_nanos = self.self_nanos.saturating_add(other.self_nanos);
        self.allocs = self.allocs.saturating_add(other.allocs);
        self.alloc_bytes = self.alloc_bytes.saturating_add(other.alloc_bytes);
        self.peak_bytes = self.peak_bytes.max(other.peak_bytes);
    }
}

static GLOBAL: Mutex<Option<BTreeMap<String, ScopeStat>>> = Mutex::new(None);

struct StackEntry {
    name: &'static str,
    /// Wall time already attributed to closed children, to subtract.
    child_nanos: u64,
    /// Alloc counters at entry, to delta on exit.
    allocs_at_entry: u64,
    bytes_at_entry: u64,
    /// Net live level at entry and the enclosing frame's running peak.
    level_at_entry: u64,
    saved_peak: u64,
}

struct Local {
    stack: RefCell<Vec<StackEntry>>,
    table: RefCell<BTreeMap<String, ScopeStat>>,
    /// Reentrancy guard: the profiler's own bookkeeping allocates.
    in_profiler: Cell<bool>,
    /// Thread-local allocation counters fed by [`CountingAlloc`].
    alloc_count: Cell<u64>,
    alloc_bytes: Cell<u64>,
    live_bytes: Cell<u64>,
    live_peak: Cell<u64>,
}

impl Drop for Local {
    fn drop(&mut self) {
        flush_table(&self.table.borrow());
    }
}

fn flush_table(table: &BTreeMap<String, ScopeStat>) {
    if table.is_empty() {
        return;
    }
    let mut global = GLOBAL.lock().expect("profiler table poisoned");
    let global = global.get_or_insert_with(BTreeMap::new);
    for (path, stat) in table {
        global.entry(path.clone()).or_default().absorb(stat);
    }
}

thread_local! {
    static LOCAL: Local = const {
        Local {
            stack: RefCell::new(Vec::new()),
            table: RefCell::new(BTreeMap::new()),
            in_profiler: Cell::new(false),
            alloc_count: Cell::new(0),
            alloc_bytes: Cell::new(0),
            live_bytes: Cell::new(0),
            live_peak: Cell::new(0),
        }
    };
}

/// Turns frame timing on or off. Spans opened while enabled automatically
/// become frames.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether frame timing is active.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns per-scope allocation accounting on or off. Only produces data in
/// binaries that register [`CountingAlloc`] as their global allocator.
pub fn set_alloc_enabled(on: bool) {
    ALLOC_ENABLED.store(on, Ordering::Relaxed);
}

/// Whether allocation accounting is active.
#[inline]
pub fn alloc_enabled() -> bool {
    ALLOC_ENABLED.load(Ordering::Relaxed)
}

/// Opens a profiled frame named `name` on this thread. Inert (and
/// allocation-free) when profiling is disabled.
pub fn frame(name: &'static str) -> Frame {
    if !enabled() {
        return Frame { start: None };
    }
    let start = Instant::now();
    let _ = LOCAL.try_with(|l| {
        l.in_profiler.set(true);
        let entry = StackEntry {
            name,
            child_nanos: 0,
            allocs_at_entry: l.alloc_count.get(),
            bytes_at_entry: l.alloc_bytes.get(),
            level_at_entry: l.live_bytes.get(),
            saved_peak: l.live_peak.get(),
        };
        // Peak within this frame is measured from the current level.
        l.live_peak.set(l.live_bytes.get());
        l.stack.borrow_mut().push(entry);
        l.in_profiler.set(false);
    });
    Frame { start: Some(start) }
}

/// RAII guard returned by [`frame`]; records on drop.
#[must_use = "a frame measures until dropped; binding it to _ drops it immediately"]
pub struct Frame {
    start: Option<Instant>,
}

impl Frame {
    /// A guard that records nothing (for spans built while disabled).
    pub fn inert() -> Frame {
        Frame { start: None }
    }
}

impl Drop for Frame {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let elapsed = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let _ = LOCAL.try_with(|l| {
            l.in_profiler.set(true);
            let mut stack = l.stack.borrow_mut();
            let Some(entry) = stack.pop() else {
                l.in_profiler.set(false);
                return;
            };
            let path = {
                let mut p = String::new();
                for e in stack.iter() {
                    p.push_str(e.name);
                    p.push(';');
                }
                p.push_str(entry.name);
                p
            };
            let frame_peak = l.live_peak.get();
            let stat = ScopeStat {
                count: 1,
                self_nanos: elapsed.saturating_sub(entry.child_nanos),
                allocs: l.alloc_count.get().saturating_sub(entry.allocs_at_entry),
                alloc_bytes: l.alloc_bytes.get().saturating_sub(entry.bytes_at_entry),
                peak_bytes: frame_peak.saturating_sub(entry.level_at_entry),
            };
            if let Some(parent) = stack.last_mut() {
                parent.child_nanos = parent.child_nanos.saturating_add(elapsed);
            }
            // The enclosing frame's peak must cover anything seen in here.
            l.live_peak.set(entry.saved_peak.max(frame_peak));
            drop(stack);
            l.table.borrow_mut().entry(path).or_default().absorb(&stat);
            l.in_profiler.set(false);
        });
    }
}

fn merged_table() -> BTreeMap<String, ScopeStat> {
    let mut out = GLOBAL.lock().expect("profiler table poisoned").clone().unwrap_or_default();
    let _ = LOCAL.try_with(|l| {
        for (path, stat) in l.table.borrow().iter() {
            out.entry(path.clone()).or_default().absorb(stat);
        }
    });
    out
}

/// The collapsed-stack report: one `outer;inner;leaf <self-microseconds>`
/// line per observed stack path, sorted by path — directly consumable by
/// flamegraph tooling. Includes frames from exited threads and the calling
/// thread; live sibling threads contribute after they exit.
pub fn collapsed_report() -> String {
    let mut out = String::new();
    for (path, stat) in merged_table() {
        out.push_str(&path);
        out.push(' ');
        out.push_str(&(stat.self_nanos / 1_000).to_string());
        out.push('\n');
    }
    out
}

/// The allocation report: one line per stack path with call count,
/// allocations, allocated bytes, and peak net live bytes. Only meaningful
/// in binaries running under [`CountingAlloc`] with [`set_alloc_enabled`]
/// on; otherwise all allocation columns are zero.
pub fn alloc_report() -> String {
    let table = merged_table();
    let mut out = String::from("# scope calls allocs bytes peak_bytes\n");
    for (path, stat) in table {
        out.push_str(&format!(
            "{path} {} {} {} {}\n",
            stat.count, stat.allocs, stat.alloc_bytes, stat.peak_bytes
        ));
    }
    out
}

/// Aggregated statistics per stack path (for tests and custom renderers).
pub fn report_table() -> Vec<(String, ScopeStat)> {
    merged_table().into_iter().collect()
}

/// Clears all recorded frames (global table and the calling thread's).
/// Call only while no sibling thread is profiling.
pub fn reset() {
    *GLOBAL.lock().expect("profiler table poisoned") = None;
    let _ = LOCAL.try_with(|l| {
        l.table.borrow_mut().clear();
    });
}

#[inline]
fn note_alloc(size: usize) {
    if !alloc_enabled() {
        return;
    }
    let _ = LOCAL.try_with(|l| {
        if l.in_profiler.get() {
            return;
        }
        l.alloc_count.set(l.alloc_count.get().saturating_add(1));
        l.alloc_bytes.set(l.alloc_bytes.get().saturating_add(size as u64));
        let live = l.live_bytes.get().saturating_add(size as u64);
        l.live_bytes.set(live);
        if live > l.live_peak.get() {
            l.live_peak.set(live);
        }
    });
}

#[inline]
fn note_dealloc(size: usize) {
    if !alloc_enabled() {
        return;
    }
    let _ = LOCAL.try_with(|l| {
        if l.in_profiler.get() {
            return;
        }
        l.live_bytes.set(l.live_bytes.get().saturating_sub(size as u64));
    });
}

/// A counting wrapper around the system allocator. Register it in a binary
/// with `#[global_allocator]`; it forwards every call to [`System`] and,
/// when [`set_alloc_enabled`] is on, feeds the thread-local allocation
/// counters the profiler samples at frame boundaries. Disabled, the
/// overhead is one relaxed atomic load per allocator call.
pub struct CountingAlloc;

// SAFETY: every method forwards to `System` with the caller's layout
// unchanged; the accounting side effects never touch the returned memory.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = unsafe { System.alloc(layout) };
        if !p.is_null() {
            note_alloc(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) };
        note_dealloc(layout.size());
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = unsafe { System.alloc_zeroed(layout) };
        if !p.is_null() {
            note_alloc(layout.size());
        }
        p
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = unsafe { System.realloc(ptr, layout, new_size) };
        if !p.is_null() {
            note_dealloc(layout.size());
            note_alloc(new_size);
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The profiler table is process-global, so the assertions that depend
    // on its contents share one test to avoid cross-test interference.
    #[test]
    fn frames_nest_self_time_and_merge_across_threads() {
        reset();
        // Disabled frames record nothing.
        {
            let _f = frame("ignored");
        }
        assert!(report_table().is_empty());

        set_enabled(true);
        {
            let _outer = frame("round");
            std::thread::sleep(std::time::Duration::from_millis(2));
            {
                let _inner = frame("local_train");
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
        }
        std::thread::scope(|s| {
            s.spawn(|| {
                let _f = frame("worker");
                std::thread::sleep(std::time::Duration::from_millis(1));
            });
        });
        set_enabled(false);

        let table: BTreeMap<String, ScopeStat> = report_table().into_iter().collect();
        let round = table.get("round").expect("outer frame recorded");
        let inner = table.get("round;local_train").expect("nested path recorded");
        let worker = table.get("worker").expect("worker thread flushed on exit");
        assert_eq!(round.count, 1);
        assert_eq!(inner.count, 1);
        assert!(inner.self_nanos >= 1_000_000, "inner slept ~2ms");
        assert!(worker.self_nanos >= 500_000, "worker slept ~1ms");

        // Self time: the outer frame's own time excludes the inner frame.
        let outer_total = round.self_nanos + inner.self_nanos;
        assert!(round.self_nanos < outer_total);

        // Collapsed report: one "path micros" line per path, sorted.
        let report = collapsed_report();
        let lines: Vec<&str> = report.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("round "));
        assert!(lines[1].starts_with("round;local_train "));
        assert!(lines[2].starts_with("worker "));
        for l in &lines {
            let count = l.rsplit(' ').next().unwrap();
            count.parse::<u64>().expect("count column is an integer");
        }

        // Alloc report renders a row per path (zero columns without the
        // counting allocator installed in the test binary).
        let alloc = alloc_report();
        assert!(alloc.starts_with("# scope"));
        assert!(alloc.lines().count() == 4);

        reset();
        assert!(report_table().is_empty());

        // Drive note_alloc/note_dealloc directly (the test binary does not
        // install CountingAlloc), checking the per-frame delta plumbing.
        set_enabled(true);
        set_alloc_enabled(true);
        let f = frame("alloc_scope");
        note_alloc(1000);
        note_alloc(500);
        note_dealloc(500);
        drop(f);
        set_alloc_enabled(false);
        set_enabled(false);
        let table: BTreeMap<String, ScopeStat> = report_table().into_iter().collect();
        let s = table.get("alloc_scope").expect("frame recorded");
        assert_eq!(s.allocs, 2);
        assert_eq!(s.alloc_bytes, 1500);
        assert_eq!(s.peak_bytes, 1500);
        reset();
    }
}
