//! Metrics registry: counters, gauges, and fixed-bucket histograms keyed
//! by `(name, labels)`, with a Prometheus-style text exposition renderer.
//!
//! Handles returned by the registry are cheap `Arc`-backed clones whose
//! operations are lock-free atomics, so instrumented hot paths pay one
//! atomic RMW per event. The registry itself is only locked on first
//! registration of a `(name, labels)` pair and at render time.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing event/byte counter.
#[derive(Clone, Debug, Default)]
pub struct Counter {
    value: Arc<AtomicU64>,
}

impl Counter {
    /// Increments by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increments by `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A last-value-wins instantaneous measurement.
#[derive(Clone, Debug, Default)]
pub struct Gauge {
    bits: Arc<AtomicU64>,
}

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value (0.0 before the first `set`).
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// Default duration buckets: 1 µs to ~4.5 min in ×4 steps. Wide enough for
/// per-batch kernels at the bottom and whole-run phases at the top.
pub fn duration_buckets() -> Vec<f64> {
    (0..14).map(|i| 1e-6 * 4f64.powi(i)).collect()
}

/// Default size buckets: 64 B to ~1 GiB in ×4 steps.
pub fn byte_buckets() -> Vec<f64> {
    (0..13).map(|i| 64.0 * 4f64.powi(i)).collect()
}

#[derive(Debug)]
struct HistogramCore {
    /// Upper bounds of the finite buckets, strictly increasing. An
    /// implicit `+Inf` bucket follows.
    bounds: Vec<f64>,
    /// `bounds.len() + 1` non-cumulative bucket counts.
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    /// Sum of observations, stored as f64 bits and updated by CAS.
    sum_bits: AtomicU64,
}

/// A fixed-bucket histogram of `f64` observations.
#[derive(Clone, Debug)]
pub struct Histogram {
    core: Arc<HistogramCore>,
}

impl Histogram {
    /// Builds a histogram over `bounds` (must be finite, strictly
    /// increasing, non-empty).
    pub fn new(bounds: Vec<f64>) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bucket bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]) && bounds.iter().all(|b| b.is_finite()),
            "histogram bounds must be finite and strictly increasing"
        );
        let buckets = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
        Self {
            core: Arc::new(HistogramCore {
                bounds,
                buckets,
                count: AtomicU64::new(0),
                sum_bits: AtomicU64::new(0f64.to_bits()),
            }),
        }
    }

    /// Index of the bucket `v` falls into: the first bound `>= v`, or the
    /// overflow bucket. NaN lands in the overflow bucket.
    pub fn bucket_index(&self, v: f64) -> usize {
        self.core.bounds.partition_point(|&b| b < v)
    }

    /// Records one observation.
    pub fn observe(&self, v: f64) {
        let idx = self.bucket_index(v);
        self.core.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.core.count.fetch_add(1, Ordering::Relaxed);
        let add = if v.is_finite() { v } else { 0.0 };
        let mut cur = self.core.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + add).to_bits();
            match self.core.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }

    /// A consistent point-in-time copy.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.core.bounds.clone(),
            counts: self.core.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
            count: self.core.count.load(Ordering::Relaxed),
            sum: f64::from_bits(self.core.sum_bits.load(Ordering::Relaxed)),
        }
    }
}

/// An owned copy of a [`Histogram`]'s state, mergeable across shards.
#[derive(Clone, Debug, PartialEq)]
pub struct HistogramSnapshot {
    /// Finite bucket upper bounds.
    pub bounds: Vec<f64>,
    /// Non-cumulative counts, one per bound plus the overflow bucket.
    pub counts: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of (finite) observations.
    pub sum: f64,
}

impl HistogramSnapshot {
    /// Merges another snapshot over the same bounds into this one.
    ///
    /// # Panics
    /// Panics if the bucket layouts differ.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        assert_eq!(self.bounds, other.bounds, "cannot merge histograms with different buckets");
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
    }

    /// Mean observation (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// The `q`-quantile (`q` in `[0, 1]`) estimated with linear
    /// interpolation inside the target bucket, Prometheus-style: the rank
    /// is assumed uniformly distributed between the bucket's edges, the
    /// first bucket's lower edge is 0 when its bound is positive, and
    /// ranks falling in the overflow bucket clamp to the highest finite
    /// bound. Monotone in `q`; 0 when empty. (The previous estimator
    /// snapped to bucket upper bounds, which misranks everything sharing a
    /// bucket — fatal for comparing kernel timings.)
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
        if self.count == 0 {
            return 0.0;
        }
        let rank = q * self.count as f64;
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let prev = cum as f64;
            cum += c;
            if cum as f64 >= rank {
                let Some(&hi) = self.bounds.get(i) else {
                    // Overflow bucket: no upper edge to interpolate towards.
                    return self.bounds.last().copied().unwrap_or(f64::INFINITY);
                };
                let lo = if i == 0 {
                    if hi > 0.0 {
                        0.0
                    } else {
                        hi
                    }
                } else {
                    self.bounds[i - 1]
                };
                let frac = ((rank - prev) / c as f64).clamp(0.0, 1.0);
                return lo + (hi - lo) * frac;
            }
        }
        self.bounds.last().copied().unwrap_or(f64::INFINITY)
    }
}

/// Sorted, owned label set — the second half of a metric key.
pub type Labels = Vec<(String, String)>;

fn owned_labels(labels: &[(&str, &str)]) -> Labels {
    let mut v: Labels = labels.iter().map(|(k, val)| (k.to_string(), val.to_string())).collect();
    v.sort();
    v
}

#[derive(Clone, Debug)]
enum MetricEntry {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

impl MetricEntry {
    fn kind(&self) -> &'static str {
        match self {
            MetricEntry::Counter(_) => "counter",
            MetricEntry::Gauge(_) => "gauge",
            MetricEntry::Histogram(_) => "histogram",
        }
    }
}

/// A registry of metrics keyed by `(name, sorted labels)`.
#[derive(Debug, Default)]
pub struct Registry {
    entries: Mutex<HashMap<(String, Labels), MetricEntry>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn entry(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> MetricEntry,
    ) -> MetricEntry {
        let key = (name.to_string(), owned_labels(labels));
        let mut map = self.entries.lock().expect("metrics registry poisoned");
        map.entry(key).or_insert_with(make).clone()
    }

    /// The counter registered under `(name, labels)`, created on first use.
    ///
    /// # Panics
    /// Panics if the key is already registered as a different metric type.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        match self.entry(name, labels, || MetricEntry::Counter(Counter::default())) {
            MetricEntry::Counter(c) => c,
            other => panic!("{name} already registered as a {}", other.kind()),
        }
    }

    /// The gauge registered under `(name, labels)`, created on first use.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        match self.entry(name, labels, || MetricEntry::Gauge(Gauge::default())) {
            MetricEntry::Gauge(g) => g,
            other => panic!("{name} already registered as a {}", other.kind()),
        }
    }

    /// The histogram under `(name, labels)` with [`duration_buckets`].
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Histogram {
        self.histogram_with(name, labels, duration_buckets)
    }

    /// The histogram under `(name, labels)`, created with `bounds` on first
    /// use (later calls return the existing instance regardless of bounds).
    pub fn histogram_with(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        bounds: impl FnOnce() -> Vec<f64>,
    ) -> Histogram {
        match self.entry(name, labels, || MetricEntry::Histogram(Histogram::new(bounds()))) {
            MetricEntry::Histogram(h) => h,
            other => panic!("{name} already registered as a {}", other.kind()),
        }
    }

    /// Point-in-time snapshots of every histogram series registered under
    /// `name`, paired with their label sets and ordered deterministically
    /// by labels. Series of other names or metric types are ignored; an
    /// unknown name yields an empty vector.
    pub fn histogram_family(&self, name: &str) -> Vec<(Labels, HistogramSnapshot)> {
        let map = self.entries.lock().expect("metrics registry poisoned");
        let mut out: Vec<(Labels, HistogramSnapshot)> = map
            .iter()
            .filter_map(|((n, labels), entry)| match entry {
                MetricEntry::Histogram(h) if n == name => Some((labels.clone(), h.snapshot())),
                _ => None,
            })
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Current values of every counter series registered under `name`,
    /// paired with their label sets and ordered deterministically by
    /// labels. Series of other names or metric types are ignored; an
    /// unknown name yields an empty vector.
    pub fn counter_family(&self, name: &str) -> Vec<(Labels, u64)> {
        let map = self.entries.lock().expect("metrics registry poisoned");
        let mut out: Vec<(Labels, u64)> = map
            .iter()
            .filter_map(|((n, labels), entry)| match entry {
                MetricEntry::Counter(c) if n == name => Some((labels.clone(), c.get())),
                _ => None,
            })
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Drops every registered metric (tests only; production code should
    /// let series accumulate for the process lifetime).
    pub fn clear(&self) {
        self.entries.lock().expect("metrics registry poisoned").clear();
    }

    /// Renders the Prometheus text exposition format, deterministically
    /// ordered by `(name, labels)`.
    pub fn render_prometheus(&self) -> String {
        let map = self.entries.lock().expect("metrics registry poisoned");
        let mut keys: Vec<&(String, Labels)> = map.keys().collect();
        keys.sort();
        let mut out = String::new();
        let mut last_name: Option<&str> = None;
        for key in keys {
            let (name, labels) = key;
            let entry = &map[key];
            if last_name != Some(name.as_str()) {
                let _ = writeln!(out, "# TYPE {name} {}", entry.kind());
                last_name = Some(name.as_str());
            }
            match entry {
                MetricEntry::Counter(c) => {
                    let _ = writeln!(out, "{name}{} {}", render_labels(labels, &[]), c.get());
                }
                MetricEntry::Gauge(g) => {
                    let _ =
                        writeln!(out, "{name}{} {}", render_labels(labels, &[]), fmt_f64(g.get()));
                }
                MetricEntry::Histogram(h) => {
                    let snap = h.snapshot();
                    let mut cumulative = 0u64;
                    for (i, &c) in snap.counts.iter().enumerate() {
                        cumulative += c;
                        let le = snap
                            .bounds
                            .get(i)
                            .map(|b| fmt_f64(*b))
                            .unwrap_or_else(|| "+Inf".to_string());
                        let _ = writeln!(
                            out,
                            "{name}_bucket{} {cumulative}",
                            render_labels(labels, &[("le", &le)]),
                        );
                    }
                    let _ = writeln!(
                        out,
                        "{name}_sum{} {}",
                        render_labels(labels, &[]),
                        fmt_f64(snap.sum)
                    );
                    let _ =
                        writeln!(out, "{name}_count{} {}", render_labels(labels, &[]), snap.count);
                }
            }
        }
        out
    }
}

fn fmt_f64(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{v:.1}")
    } else {
        format!("{v}")
    }
}

/// Escapes a label value per the Prometheus text exposition format: the
/// backslash, the double quote, and the line feed are the three characters
/// the spec requires escaping inside quoted label values.
fn escape_label_value(v: &str) -> String {
    v.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

fn render_labels(labels: &Labels, extra: &[(&str, &str)]) -> String {
    if labels.is_empty() && extra.is_empty() {
        return String::new();
    }
    let parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| (k.as_str(), v.as_str()))
        .chain(extra.iter().copied())
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label_value(v)))
        .collect();
    format!("{{{}}}", parts.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn counters_and_gauges_round_trip() {
        let r = Registry::new();
        let c = r.counter("requests_total", &[("path", "c2s")]);
        c.inc();
        c.add(4);
        assert_eq!(r.counter("requests_total", &[("path", "c2s")]).get(), 5);
        let g = r.gauge("occupancy", &[]);
        g.set(0.75);
        assert_eq!(r.gauge("occupancy", &[]).get(), 0.75);
    }

    #[test]
    fn label_order_does_not_split_series() {
        let r = Registry::new();
        r.counter("x", &[("a", "1"), ("b", "2")]).inc();
        r.counter("x", &[("b", "2"), ("a", "1")]).inc();
        assert_eq!(r.counter("x", &[("a", "1"), ("b", "2")]).get(), 2);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn type_mismatch_panics() {
        let r = Registry::new();
        r.counter("m", &[]).inc();
        r.gauge("m", &[]);
    }

    #[test]
    fn histogram_buckets_count_and_sum() {
        let h = Histogram::new(vec![1.0, 10.0]);
        for v in [0.5, 1.0, 5.0, 100.0] {
            h.observe(v);
        }
        let s = h.snapshot();
        assert_eq!(s.counts, vec![2, 1, 1], "le=1 gets 0.5 and 1.0 (bound inclusive)");
        assert_eq!(s.count, 4);
        assert!((s.sum - 106.5).abs() < 1e-9);
        assert!((s.mean() - 26.625).abs() < 1e-9);
    }

    #[test]
    fn quantile_interpolates_within_buckets() {
        // counts per bucket: le=1 -> 2, le=2 -> 1, le=4 -> 1, +Inf -> 1.
        let h = Histogram::new(vec![1.0, 2.0, 4.0]);
        for v in [0.5, 0.6, 1.5, 3.0, 100.0] {
            h.observe(v);
        }
        let s = h.snapshot();
        // rank 0 sits at the first bucket's lower edge (0 for positive bounds).
        assert_eq!(s.quantile(0.0), 0.0);
        // rank 1.0 of 2 observations in [0, 1] -> halfway up the bucket.
        assert!((s.quantile(0.2) - 0.5).abs() < 1e-12);
        // rank 2.5: 0.5 into the single observation of bucket (1, 2].
        assert!((s.quantile(0.5) - 1.5).abs() < 1e-12);
        // rank 4.0 exhausts bucket (2, 4] exactly -> its upper bound.
        assert!((s.quantile(0.8) - 4.0).abs() < 1e-12);
        // Ranks in the overflow bucket clamp to the highest finite bound.
        assert_eq!(s.quantile(1.0), 4.0);
    }

    #[test]
    fn quantile_of_single_bucket_histogram_stays_finite() {
        let h = Histogram::new(vec![8.0]);
        for v in [1.0, 3.0, 20.0] {
            h.observe(v);
        }
        let s = h.snapshot();
        assert!((s.quantile(0.5) - 6.0).abs() < 1e-12, "1.5/2 of [0, 8]");
        assert_eq!(s.quantile(1.0), 8.0);
    }

    #[test]
    fn prometheus_rendering_is_sorted_and_typed() {
        let r = Registry::new();
        r.counter("b_total", &[("k", "2")]).add(7);
        r.counter("b_total", &[("k", "1")]).add(3);
        r.gauge("a_gauge", &[]).set(2.0);
        let h = r.histogram_with("c_seconds", &[], || vec![1.0]);
        h.observe(0.5);
        h.observe(3.0);
        let text = r.render_prometheus();
        let expected = "# TYPE a_gauge gauge\n\
                        a_gauge 2.0\n\
                        # TYPE b_total counter\n\
                        b_total{k=\"1\"} 3\n\
                        b_total{k=\"2\"} 7\n\
                        # TYPE c_seconds histogram\n\
                        c_seconds_bucket{le=\"1.0\"} 1\n\
                        c_seconds_bucket{le=\"+Inf\"} 2\n\
                        c_seconds_sum 3.5\n\
                        c_seconds_count 2\n";
        assert_eq!(text, expected);
    }

    #[test]
    fn label_values_are_escaped_per_text_format_spec() {
        let r = Registry::new();
        // Backslash, double quote, and newline are the three characters the
        // exposition format requires escaping inside label values.
        r.counter("adversarial_total", &[("path", "c:\\tmp\\x"), ("msg", "say \"hi\"\nbye")])
            .add(1);
        let text = r.render_prometheus();
        assert_eq!(
            text,
            "# TYPE adversarial_total counter\n\
             adversarial_total{msg=\"say \\\"hi\\\"\\nbye\",path=\"c:\\\\tmp\\\\x\"} 1\n"
        );
        // Each physical exposition line stays a single line: the raw
        // newline must not survive into the output.
        assert_eq!(text.lines().count(), 2);
    }

    #[test]
    fn histogram_family_enumerates_label_sets() {
        let r = Registry::new();
        r.histogram_with("phase_seconds", &[("phase", "train")], || vec![1.0]).observe(0.5);
        r.histogram_with("phase_seconds", &[("phase", "agg")], || vec![1.0]).observe(2.0);
        r.counter("phase_seconds_other", &[]).inc();
        let fam = r.histogram_family("phase_seconds");
        assert_eq!(fam.len(), 2);
        assert_eq!(fam[0].0, vec![("phase".to_string(), "agg".to_string())]);
        assert_eq!(fam[1].0, vec![("phase".to_string(), "train".to_string())]);
        assert!((fam[0].1.sum - 2.0).abs() < 1e-12);
        assert!(r.histogram_family("absent").is_empty());
    }

    #[test]
    fn counter_family_enumerates_label_sets() {
        let r = Registry::new();
        r.counter("kernel_flops", &[("kernel", "matmul")]).add(10);
        r.counter("kernel_flops", &[("kernel", "im2col")]).add(3);
        r.gauge("kernel_flops_other", &[]).set(1.0);
        let fam = r.counter_family("kernel_flops");
        assert_eq!(fam.len(), 2);
        assert_eq!(fam[0].0, vec![("kernel".to_string(), "im2col".to_string())]);
        assert_eq!(fam[0].1, 3);
        assert_eq!(fam[1].1, 10);
        assert!(r.counter_family("absent").is_empty());
    }

    #[test]
    fn default_bucket_layouts_are_valid() {
        for bounds in [duration_buckets(), byte_buckets()] {
            assert!(bounds.windows(2).all(|w| w[0] < w[1]));
            Histogram::new(bounds); // must not panic
        }
    }

    proptest! {
        /// Every observation lands in the first bucket whose bound is >= v
        /// (or the overflow bucket), and count/sum track exactly.
        #[test]
        fn bucket_math_is_exact(values in prop::collection::vec(-1e6f64..1e6, 1..200)) {
            let bounds = vec![-1e3, 0.0, 1.0, 1e3];
            let h = Histogram::new(bounds.clone());
            for &v in &values {
                let idx = h.bucket_index(v);
                prop_assert!(idx == bounds.len() || v <= bounds[idx]);
                prop_assert!(idx == 0 || v > bounds[idx - 1]);
                h.observe(v);
            }
            let s = h.snapshot();
            prop_assert_eq!(s.count, values.len() as u64);
            prop_assert_eq!(s.counts.iter().sum::<u64>(), values.len() as u64);
            let sum: f64 = values.iter().sum();
            prop_assert!((s.sum - sum).abs() < 1e-6 * (1.0 + sum.abs()));
        }

        /// Merging two shards equals observing the union.
        #[test]
        fn merge_equals_union(
            a in prop::collection::vec(-1e3f64..1e3, 0..100),
            b in prop::collection::vec(-1e3f64..1e3, 0..100),
        ) {
            let bounds = vec![-10.0, 0.0, 10.0, 100.0];
            let (ha, hb, hu) = (
                Histogram::new(bounds.clone()),
                Histogram::new(bounds.clone()),
                Histogram::new(bounds.clone()),
            );
            for &v in &a { ha.observe(v); hu.observe(v); }
            for &v in &b { hb.observe(v); hu.observe(v); }
            let mut merged = ha.snapshot();
            merged.merge(&hb.snapshot());
            let union = hu.snapshot();
            prop_assert_eq!(&merged.counts, &union.counts);
            prop_assert_eq!(merged.count, union.count);
            prop_assert!((merged.sum - union.sum).abs() < 1e-6 * (1.0 + union.sum.abs()));
        }

        /// The quantile estimator is monotone in q.
        #[test]
        fn quantiles_are_monotone(values in prop::collection::vec(0.0f64..1e4, 1..100)) {
            let h = Histogram::new(duration_buckets());
            for &v in &values { h.observe(v); }
            let s = h.snapshot();
            let qs = [0.0, 0.25, 0.5, 0.75, 0.9, 1.0];
            for w in qs.windows(2) {
                prop_assert!(s.quantile(w[0]) <= s.quantile(w[1]));
            }
        }
    }
}
