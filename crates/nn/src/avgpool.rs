use fedmigr_tensor::Tensor;

use crate::Layer;

/// Average pooling over `[B, C, H, W]` inputs with a square window.
///
/// Unlike max pooling there is nothing to cache except the input shape:
/// the backward pass spreads each output gradient uniformly over its
/// window.
#[derive(Clone)]
pub struct AvgPool2d {
    size: usize,
    stride: usize,
    input_shape: Vec<usize>,
}

impl AvgPool2d {
    /// Creates an average-pooling layer.
    pub fn new(size: usize, stride: usize) -> Self {
        assert!(size > 0 && stride > 0, "pool size and stride must be positive");
        Self { size, stride, input_shape: Vec::new() }
    }

    fn out_size(&self, in_size: usize) -> usize {
        (in_size - self.size) / self.stride + 1
    }
}

impl Layer for AvgPool2d {
    fn forward(&mut self, input: &Tensor, _train: bool) -> Tensor {
        let shape = input.shape();
        assert_eq!(shape.len(), 4, "AvgPool2d expects [B, C, H, W]");
        let (b, c, h, w) = (shape[0], shape[1], shape[2], shape[3]);
        let (oh, ow) = (self.out_size(h), self.out_size(w));
        let inv = 1.0 / (self.size * self.size) as f32;
        let mut out = vec![0.0f32; b * c * oh * ow];
        let data = input.data();
        for bc in 0..b * c {
            let plane = bc * h * w;
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut sum = 0.0f32;
                    for ky in 0..self.size {
                        let iy = oy * self.stride + ky;
                        for kx in 0..self.size {
                            sum += data[plane + iy * w + ox * self.stride + kx];
                        }
                    }
                    out[(bc * oh + oy) * ow + ox] = sum * inv;
                }
            }
        }
        self.input_shape = shape.to_vec();
        Tensor::from_vec(vec![b, c, oh, ow], out)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let (b, c, h, w) =
            (self.input_shape[0], self.input_shape[1], self.input_shape[2], self.input_shape[3]);
        let shape = grad_out.shape();
        let (oh, ow) = (shape[2], shape[3]);
        let inv = 1.0 / (self.size * self.size) as f32;
        let mut grad_in = Tensor::zeros(&self.input_shape);
        let dst = grad_in.data_mut();
        let g = grad_out.data();
        for bc in 0..b * c {
            let plane = bc * h * w;
            for oy in 0..oh {
                for ox in 0..ow {
                    let gv = g[(bc * oh + oy) * ow + ox] * inv;
                    for ky in 0..self.size {
                        let iy = oy * self.stride + ky;
                        for kx in 0..self.size {
                            dst[plane + iy * w + ox * self.stride + kx] += gv;
                        }
                    }
                }
            }
        }
        grad_in
    }

    fn name(&self) -> &'static str {
        "AvgPool2d"
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn averages_windows() {
        let mut pool = AvgPool2d::new(2, 2);
        let x = Tensor::from_vec(vec![1, 1, 2, 2], vec![1.0, 2.0, 3.0, 6.0]);
        let y = pool.forward(&x, true);
        assert_eq!(y.shape(), &[1, 1, 1, 1]);
        assert_eq!(y.data()[0], 3.0);
    }

    #[test]
    fn backward_spreads_uniformly() {
        let mut pool = AvgPool2d::new(2, 2);
        let x = Tensor::from_vec(vec![1, 1, 2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let y = pool.forward(&x, true);
        let g = pool.backward(&Tensor::full(y.shape(), 4.0));
        assert_eq!(g.data(), &[1.0, 1.0, 1.0, 1.0]);
    }

    #[test]
    fn shape_arithmetic() {
        let mut pool = AvgPool2d::new(2, 2);
        let y = pool.forward(&Tensor::zeros(&[2, 3, 8, 8]), true);
        assert_eq!(y.shape(), &[2, 3, 4, 4]);
    }
}
