use fedmigr_tensor::kcount::{self, Kernel};
use fedmigr_tensor::Tensor;

use crate::Layer;

/// Max pooling over `[B, C, H, W]` inputs with a square window.
///
/// The forward pass caches the flat index of each window maximum so the
/// backward pass can route gradients with no recomputation.
#[derive(Clone)]
pub struct MaxPool2d {
    size: usize,
    stride: usize,
    argmax: Vec<usize>,
    input_shape: Vec<usize>,
}

impl MaxPool2d {
    /// Creates a pooling layer with `size`x`size` windows and the given stride.
    pub fn new(size: usize, stride: usize) -> Self {
        assert!(size > 0 && stride > 0, "pool size and stride must be positive");
        Self { size, stride, argmax: Vec::new(), input_shape: Vec::new() }
    }

    fn out_size(&self, in_size: usize) -> usize {
        (in_size - self.size) / self.stride + 1
    }
}

impl Layer for MaxPool2d {
    fn forward(&mut self, input: &Tensor, _train: bool) -> Tensor {
        let shape = input.shape();
        assert_eq!(shape.len(), 4, "MaxPool2d expects [B, C, H, W]");
        let (b, c, h, w) = (shape[0], shape[1], shape[2], shape[3]);
        let (oh, ow) = (self.out_size(h), self.out_size(w));
        let windows = (b * c * oh * ow) as u64;
        let _k = kcount::scope(
            Kernel::Pool,
            windows * (self.size * self.size) as u64,
            4 * windows * (self.size * self.size + 1) as u64,
        );
        let mut out = vec![0.0f32; b * c * oh * ow];
        self.argmax.clear();
        self.argmax.resize(out.len(), 0);
        let data = input.data();
        for bc in 0..b * c {
            let plane = bc * h * w;
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut best_idx = plane + (oy * self.stride) * w + ox * self.stride;
                    let mut best = data[best_idx];
                    for ky in 0..self.size {
                        let iy = oy * self.stride + ky;
                        for kx in 0..self.size {
                            let ix = ox * self.stride + kx;
                            let idx = plane + iy * w + ix;
                            if data[idx] > best {
                                best = data[idx];
                                best_idx = idx;
                            }
                        }
                    }
                    let o = (bc * oh + oy) * ow + ox;
                    out[o] = best;
                    self.argmax[o] = best_idx;
                }
            }
        }
        self.input_shape = shape.to_vec();
        Tensor::from_vec(vec![b, c, oh, ow], out)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        assert_eq!(
            grad_out.numel(),
            self.argmax.len(),
            "MaxPool2d::backward grad shape mismatch (forward not called?)"
        );
        let _k = kcount::scope(Kernel::Pool, grad_out.numel() as u64, 12 * grad_out.numel() as u64);
        let mut grad_in = Tensor::zeros(&self.input_shape);
        let dst = grad_in.data_mut();
        for (o, &g) in grad_out.data().iter().enumerate() {
            dst[self.argmax[o]] += g;
        }
        grad_in
    }

    fn name(&self) -> &'static str {
        "MaxPool2d"
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn picks_window_maxima() {
        let mut pool = MaxPool2d::new(2, 2);
        let x = Tensor::from_vec(
            vec![1, 1, 4, 4],
            vec![
                1.0, 2.0, 5.0, 6.0, //
                3.0, 4.0, 7.0, 8.0, //
                9.0, 10.0, 13.0, 14.0, //
                11.0, 12.0, 15.0, 16.0,
            ],
        );
        let y = pool.forward(&x, true);
        assert_eq!(y.shape(), &[1, 1, 2, 2]);
        assert_eq!(y.data(), &[4.0, 8.0, 12.0, 16.0]);
    }

    #[test]
    fn backward_routes_to_argmax_only() {
        let mut pool = MaxPool2d::new(2, 2);
        let x = Tensor::from_vec(vec![1, 1, 2, 2], vec![1.0, 9.0, 3.0, 4.0]);
        let y = pool.forward(&x, true);
        let g = pool.backward(&Tensor::ones(y.shape()));
        assert_eq!(g.data(), &[0.0, 1.0, 0.0, 0.0]);
    }

    #[test]
    fn multi_channel_planes_are_independent() {
        let mut pool = MaxPool2d::new(2, 2);
        let x =
            Tensor::from_vec(vec![1, 2, 2, 2], vec![1.0, 2.0, 3.0, 4.0, 40.0, 30.0, 20.0, 10.0]);
        let y = pool.forward(&x, true);
        assert_eq!(y.data(), &[4.0, 40.0]);
    }
}
