//! Model checkpointing: save/load parameter snapshots to disk.
//!
//! The format is deliberately simple and stable: a magic tag, a
//! length-prefixed UTF-8 model name, the little-endian parameter payload of
//! [`crate::params::encode_params`], and a trailing CRC-32 over everything
//! before it. Loading verifies the checksum, the name and the parameter
//! count, so a corrupt or mismatched checkpoint cannot be silently loaded
//! into the wrong architecture.

use std::fs;
use std::io;
use std::path::Path;

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::params::{decode_params, encode_params};
use crate::Model;

const MAGIC: &[u8; 8] = b"FEDMIGR1";

const fn make_crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC32_TABLE: [u32; 256] = make_crc32_table();

/// CRC-32 (IEEE 802.3, polynomial `0xEDB88320`) of `bytes`. Shared by every
/// checkpoint format in the workspace so corruption detection is uniform.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC32_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

/// Serializes a model snapshot to bytes.
pub fn to_bytes(model: &mut Model) -> Bytes {
    let params = model.params();
    let name = model.name().as_bytes();
    let payload = encode_params(&params);
    let mut buf = BytesMut::with_capacity(8 + 4 + name.len() + payload.len() + 4);
    buf.put_slice(MAGIC);
    buf.put_u32_le(name.len() as u32);
    buf.put_slice(name);
    buf.put_slice(&payload);
    let body = buf.freeze();
    let mut out = BytesMut::with_capacity(body.len() + 4);
    out.put_slice(&body);
    out.put_u32_le(crc32(&body));
    out.freeze()
}

/// Restores a snapshot produced by [`to_bytes`] into `model`.
///
/// Returns an error if the header is malformed, the model name differs, or
/// the parameter count does not match the target architecture.
pub fn from_bytes(model: &mut Model, mut bytes: Bytes) -> io::Result<()> {
    let bad = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_string());
    if bytes.len() < 16 || &bytes[..8] != MAGIC {
        return Err(bad("not a FedMigr checkpoint"));
    }
    let body_len = bytes.len() - 4;
    let mut body = bytes.split_to(body_len);
    let stored = u32::from_le_bytes(bytes[..4].try_into().unwrap());
    if crc32(&body) != stored {
        return Err(bad("checkpoint checksum mismatch"));
    }
    body.advance(8);
    let mut bytes = body;
    let name_len = bytes.get_u32_le() as usize;
    if bytes.len() < name_len {
        return Err(bad("truncated checkpoint name"));
    }
    let name = bytes.split_to(name_len);
    let name = std::str::from_utf8(&name).map_err(|_| bad("checkpoint name is not UTF-8"))?;
    if name != model.name() {
        return Err(bad(&format!("checkpoint is for model {name:?}, not {:?}", model.name())));
    }
    let params = decode_params(bytes).ok_or_else(|| bad("corrupt parameter payload"))?;
    if params.len() != model.num_params() {
        return Err(bad(&format!(
            "checkpoint has {} parameters, model has {}",
            params.len(),
            model.num_params()
        )));
    }
    model.set_params(&params);
    Ok(())
}

/// Saves a model snapshot to `path`.
pub fn save(model: &mut Model, path: impl AsRef<Path>) -> io::Result<()> {
    fs::write(path, to_bytes(model))
}

/// Loads a snapshot from `path` into `model`.
pub fn load(model: &mut Model, path: impl AsRef<Path>) -> io::Result<()> {
    let data = fs::read(path)?;
    from_bytes(model, Bytes::from(data))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo::{self, NetScale};

    #[test]
    fn round_trips_through_bytes() {
        let mut a = zoo::c10_cnn(1, 8, NetScale::Small, 3);
        let snapshot = to_bytes(&mut a);
        let mut b = zoo::c10_cnn(1, 8, NetScale::Small, 99);
        assert_ne!(a.params(), b.params());
        from_bytes(&mut b, snapshot).unwrap();
        assert_eq!(a.params(), b.params());
    }

    #[test]
    fn round_trips_through_a_file() {
        let dir = std::env::temp_dir().join("fedmigr-ckpt-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.fmck");
        let mut a = zoo::mlp(6, &[4], 3, 1);
        save(&mut a, &path).unwrap();
        let mut b = zoo::mlp(6, &[4], 3, 2);
        load(&mut b, &path).unwrap();
        assert_eq!(a.params(), b.params());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn rejects_wrong_architecture() {
        let mut a = zoo::mlp(6, &[4], 3, 1);
        let snapshot = to_bytes(&mut a);
        let mut other_name = zoo::c10_cnn(1, 8, NetScale::Small, 1);
        assert!(from_bytes(&mut other_name, snapshot.clone()).is_err());
        let mut other_size = zoo::mlp(6, &[8], 3, 1);
        // Same name "MLP" but different parameter count.
        assert!(from_bytes(&mut other_size, snapshot).is_err());
    }

    #[test]
    fn rejects_garbage() {
        let mut m = zoo::mlp(2, &[], 2, 0);
        assert!(from_bytes(&mut m, Bytes::from_static(b"nonsense")).is_err());
        assert!(from_bytes(&mut m, Bytes::from_static(b"FEDMIGR1\xff\xff\xff\xff")).is_err());
    }

    #[test]
    fn rejects_single_bit_flips() {
        let mut a = zoo::mlp(3, &[4], 2, 1);
        let snapshot = to_bytes(&mut a).to_vec();
        for byte in [0, 9, 14, snapshot.len() / 2, snapshot.len() - 1] {
            let mut corrupt = snapshot.clone();
            corrupt[byte] ^= 0x10;
            let err = from_bytes(&mut a, Bytes::from(corrupt)).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::InvalidData, "flip at byte {byte}");
        }
    }

    #[test]
    fn crc32_matches_known_vector() {
        // IEEE CRC-32 of "123456789" is the classic check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }
}
