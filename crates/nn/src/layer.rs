use fedmigr_tensor::Tensor;

/// A differentiable network layer.
///
/// `forward` must cache whatever activations `backward` needs; `backward`
/// consumes the gradient w.r.t. the layer output and returns the gradient
/// w.r.t. the layer input while accumulating parameter gradients internally.
/// Calling `backward` before `forward` is a programming error and may panic.
///
/// Layers are `Send` so the FL simulator can train clients on worker threads.
pub trait Layer: Send {
    /// Computes the layer output for `input`. `train` distinguishes training
    /// from inference for layers like dropout.
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor;

    /// Backpropagates `grad_out` (gradient w.r.t. the forward output),
    /// accumulating parameter gradients and returning the gradient w.r.t.
    /// the forward input.
    fn backward(&mut self, grad_out: &Tensor) -> Tensor;

    /// Visits every `(parameter, gradient)` pair, in a stable order.
    ///
    /// The default is a no-op for parameterless layers.
    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Tensor, &mut Tensor)) {}

    /// Resets all accumulated parameter gradients to zero.
    fn zero_grad(&mut self) {
        self.visit_params(&mut |_, g| g.fill_zero());
    }

    /// Total number of scalar parameters in this layer.
    fn param_count(&mut self) -> usize {
        let mut n = 0;
        self.visit_params(&mut |p, _| n += p.numel());
        n
    }

    /// Human-readable layer name for debugging.
    fn name(&self) -> &'static str;

    /// Clones the layer behind a fresh box (object-safe `Clone`).
    fn clone_box(&self) -> Box<dyn Layer>;
}

impl Clone for Box<dyn Layer> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}
