use fedmigr_tensor::Tensor;

use crate::{Conv2d, Layer, Relu, Sequential};

/// A pre-activation residual block: `y = relu(F(x) + x)` where `F` is
/// `conv3x3 -> relu -> conv3x3` with channel-preserving padding.
///
/// This is the building block of the `MiniResNet` that stands in for the
/// paper's ResNet-152: the skip connection — the defining property of the
/// architecture — is exercised in both the forward and the backward pass.
#[derive(Clone)]
pub struct ResidualBlock {
    path: Sequential,
    out_relu: Relu,
}

impl ResidualBlock {
    /// Creates a residual block over `channels` feature maps.
    pub fn new(channels: usize, seed: u64) -> Self {
        let path = Sequential::new()
            .push(Conv2d::new(channels, channels, 3, 1, 1, seed))
            .push(Relu::new())
            .push(Conv2d::new(channels, channels, 3, 1, 1, seed.wrapping_add(1)));
        Self { path, out_relu: Relu::new() }
    }
}

impl Layer for ResidualBlock {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let f = self.path.forward(input, train);
        let summed = f.add(input);
        self.out_relu.forward(&summed, train)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let g_sum = self.out_relu.backward(grad_out);
        let g_path = self.path.backward(&g_sum);
        // The skip connection contributes the gradient of the sum directly.
        g_path.add(&g_sum)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Tensor, &mut Tensor)) {
        self.path.visit_params(f);
    }

    fn name(&self) -> &'static str {
        "ResidualBlock"
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn preserves_shape() {
        let mut block = ResidualBlock::new(4, 0);
        let x = Tensor::zeros(&[2, 4, 6, 6]);
        let y = block.forward(&x, true);
        assert_eq!(y.shape(), x.shape());
    }

    #[test]
    fn zero_path_weights_make_block_a_relu_identity() {
        let mut block = ResidualBlock::new(2, 0);
        block.visit_params(&mut |p, _| p.fill_zero());
        let x = Tensor::from_vec(vec![1, 2, 1, 2], vec![1.0, -1.0, 2.0, -2.0]);
        let y = block.forward(&x, true);
        assert_eq!(y.data(), &[1.0, 0.0, 2.0, 0.0]);
    }

    #[test]
    fn numerical_gradient_check_includes_skip() {
        let mut block = ResidualBlock::new(2, 11);
        let mut rng = StdRng::seed_from_u64(3);
        let x = Tensor::randn(&[1, 2, 3, 3], 1.0, &mut rng);
        let y = block.forward(&x, true);
        block.zero_grad();
        let gx = block.backward(&Tensor::ones(y.shape()));

        let eps = 1e-2f32;
        for &i in &[0usize, 4, 9, 17] {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let num =
                (block.forward(&xp, true).sum() - block.forward(&xm, true).sum()) / (2.0 * eps);
            assert!(
                (num - gx.data()[i]).abs() < 0.1,
                "grad mismatch at {i}: numeric {num} vs analytic {}",
                gx.data()[i]
            );
        }
    }
}
