//! From-scratch neural-network substrate for the FedMigr reproduction.
//!
//! The paper trains CNNs with PyTorch; Rust has no comparable deep-learning
//! stack, so this crate implements the required pieces directly on
//! [`fedmigr_tensor::Tensor`]:
//!
//! * a [`Layer`] trait where `forward` caches activations and `backward`
//!   produces parameter and input gradients (no general autograd — each
//!   layer owns its backward kernel),
//! * dense, convolution, pooling, activation, dropout and residual layers,
//! * a [`Sequential`] container and a [`Model`] wrapper with the softmax
//!   cross-entropy training step used by every FL client,
//! * an [`Sgd`] optimizer with momentum/weight-decay and the FedProx
//!   proximal-term hook,
//! * parameter flattening ([`params`]) — the representation that is
//!   aggregated (Eq. 7 of the paper) and *migrated* between clients,
//! * the paper's model zoo ([`zoo`]): C10-CNN, C100-CNN, a genuine residual
//!   network standing in for ResNet-152, and an AlexNet-lite for Fig. 3.
//!
//! # Example
//!
//! ```
//! use fedmigr_nn::{zoo, Sgd};
//! use fedmigr_tensor::Tensor;
//!
//! let mut model = zoo::mlp(8, &[16], 3, 0);
//! let mut opt = Sgd::new(0.1);
//! let x = Tensor::ones(&[4, 8]);
//! let labels = [0usize, 1, 2, 0];
//! let before = model.loss(&x, &labels);
//! for _ in 0..20 {
//!     model.train_step(&x, &labels, &mut opt);
//! }
//! assert!(model.loss(&x, &labels) < before);
//! ```

mod activations;
mod adam;
mod avgpool;
mod batchnorm;
pub mod checkpoint;
mod conv;
mod dense;
mod extra_activations;
mod layer;
mod loss;
mod model;
mod optim;
pub mod params;
mod pool;
mod residual;
mod schedule;
mod sequential;
pub mod zoo;

pub use activations::{Dropout, Flatten, Relu};
pub use adam::Adam;
pub use avgpool::AvgPool2d;
pub use batchnorm::BatchNorm2d;
pub use conv::Conv2d;
pub use dense::Dense;
pub use extra_activations::{Sigmoid, Tanh};
pub use layer::Layer;
pub use loss::{accuracy, softmax_cross_entropy};
pub use model::Model;
pub use optim::{clip_grad_norm, Sgd};
pub use pool::MaxPool2d;
pub use residual::ResidualBlock;
pub use schedule::LrSchedule;
pub use sequential::Sequential;
