use fedmigr_tensor::Tensor;

use crate::optim::apply_prox_term;
use crate::params::{grad_vector, param_vector, set_param_vector, wire_size};
use crate::{accuracy, softmax_cross_entropy, Layer, Sequential, Sgd};

/// A classification model: a [`Sequential`] network plus the metadata an FL
/// client needs (per-sample input shape, class count, a human-readable name).
#[derive(Clone)]
pub struct Model {
    net: Sequential,
    input_shape: Vec<usize>,
    num_classes: usize,
    name: String,
    non_finite_batches: u64,
    num_params: usize,
}

impl Model {
    /// Wraps a network. `input_shape` is per-sample (no batch dimension).
    pub fn new(mut net: Sequential, input_shape: &[usize], num_classes: usize, name: &str) -> Self {
        // The layer-visitor API needs `&mut`, so count once here: the
        // architecture is fixed after construction and size queries
        // (`num_params`, `wire_bytes`) should not demand mutable access.
        let num_params = net.param_count();
        Self {
            net,
            input_shape: input_shape.to_vec(),
            num_classes,
            name: name.to_string(),
            non_finite_batches: 0,
            num_params,
        }
    }

    /// Per-sample input shape.
    pub fn input_shape(&self) -> &[usize] {
        &self.input_shape
    }

    /// Number of output classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Model name (e.g. `"C10-CNN"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Mutable access to the underlying network.
    pub fn net_mut(&mut self) -> &mut Sequential {
        &mut self.net
    }

    /// Total scalar parameter count (cached at construction).
    pub fn num_params(&self) -> usize {
        self.num_params
    }

    /// Size in bytes of this model on the wire *uncompressed* — the
    /// identity-codec cost; compressing codecs report their own sizes.
    pub fn wire_bytes(&self) -> u64 {
        wire_size(self.num_params())
    }

    /// Forward pass on a batch `[B, ...input_shape]`.
    pub fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        self.net.forward(x, train)
    }

    /// Mean cross-entropy loss on a batch (inference mode, no grads).
    pub fn loss(&mut self, x: &Tensor, labels: &[usize]) -> f32 {
        let logits = self.net.forward(x, false);
        softmax_cross_entropy(&logits, labels).0
    }

    /// Loss and accuracy on a batch (inference mode).
    pub fn evaluate(&mut self, x: &Tensor, labels: &[usize]) -> (f32, f64) {
        let logits = self.net.forward(x, false);
        let (loss, _) = softmax_cross_entropy(&logits, labels);
        (loss, accuracy(&logits, labels))
    }

    /// One SGD step on a mini-batch; returns the pre-step loss.
    pub fn train_step(&mut self, x: &Tensor, labels: &[usize], opt: &mut Sgd) -> f32 {
        self.train_step_inner(x, labels, opt, None)
    }

    /// One FedProx step: like [`Model::train_step`] but adds the proximal
    /// gradient `mu * (w - w_global)` before the update.
    pub fn train_step_prox(
        &mut self,
        x: &Tensor,
        labels: &[usize],
        opt: &mut Sgd,
        global: &[f32],
        mu: f32,
    ) -> f32 {
        self.train_step_inner(x, labels, opt, Some((global, mu)))
    }

    fn train_step_inner(
        &mut self,
        x: &Tensor,
        labels: &[usize],
        opt: &mut Sgd,
        prox: Option<(&[f32], f32)>,
    ) -> f32 {
        let logits = self.net.forward(x, true);
        let (loss, grad) = softmax_cross_entropy(&logits, labels);
        if !loss.is_finite() {
            // A NaN/Inf batch loss means the gradient is garbage: stepping
            // would poison every parameter. Skip the update, count it, and
            // let the caller decide how to treat the reported loss.
            self.non_finite_batches += 1;
            return loss;
        }
        self.net.zero_grad();
        self.net.backward(&grad);
        if let Some((global, mu)) = prox {
            apply_prox_term(&mut self.net, global, mu);
        }
        opt.step(&mut self.net);
        loss
    }

    /// Number of training batches skipped because the loss was NaN/Inf.
    pub fn non_finite_batches(&self) -> u64 {
        self.non_finite_batches
    }

    /// Resets the non-finite-batch counter (e.g. at epoch boundaries when
    /// harvesting per-epoch statistics).
    pub fn take_non_finite_batches(&mut self) -> u64 {
        std::mem::take(&mut self.non_finite_batches)
    }

    /// Flattened parameters (the migrated/aggregated representation).
    pub fn params(&mut self) -> Vec<f32> {
        param_vector(&mut self.net)
    }

    /// Flattened accumulated gradients.
    pub fn grads(&mut self) -> Vec<f32> {
        grad_vector(&mut self.net)
    }

    /// Replaces all parameters from a flat vector.
    pub fn set_params(&mut self, values: &[f32]) {
        set_param_vector(&mut self.net, values);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo;

    #[test]
    fn train_step_reduces_loss_on_fixed_batch() {
        let mut model = zoo::mlp(4, &[8], 2, 0);
        let x = Tensor::from_vec(
            vec![4, 4],
            vec![
                1.0, 0.0, 0.0, 0.0, //
                0.0, 1.0, 0.0, 0.0, //
                0.0, 0.0, 1.0, 0.0, //
                0.0, 0.0, 0.0, 1.0,
            ],
        );
        let labels = [0usize, 0, 1, 1];
        let mut opt = Sgd::new(0.5);
        let before = model.loss(&x, &labels);
        for _ in 0..50 {
            model.train_step(&x, &labels, &mut opt);
        }
        let after = model.loss(&x, &labels);
        assert!(after < before * 0.5, "loss {before} -> {after}");
        let (_, acc) = model.evaluate(&x, &labels);
        assert_eq!(acc, 1.0);
    }

    #[test]
    fn set_params_round_trips() {
        let mut model = zoo::mlp(4, &[8], 2, 0);
        let p = model.params();
        let zeros = vec![0.0f32; p.len()];
        model.set_params(&zeros);
        assert!(model.params().iter().all(|&x| x == 0.0));
        model.set_params(&p);
        assert_eq!(model.params(), p);
    }

    #[test]
    fn non_finite_loss_skips_update_and_counts() {
        let mut model = zoo::mlp(4, &[8], 2, 1);
        // Poison the parameters so the forward pass produces NaN logits.
        let n = model.params().len();
        model.set_params(&vec![f32::NAN; n]);
        let x = Tensor::from_vec(vec![1, 4], vec![1.0, 0.0, 0.0, 0.0]);
        let before = model.params();
        let mut opt = Sgd::new(0.5);
        let loss = model.train_step(&x, &[0], &mut opt);
        assert!(!loss.is_finite());
        assert_eq!(model.non_finite_batches(), 1);
        // Parameters must be untouched: no optimizer step happened.
        let after = model.params();
        assert_eq!(before.len(), after.len());
        assert!(after.iter().all(|x| x.is_nan()));
        assert_eq!(model.take_non_finite_batches(), 1);
        assert_eq!(model.non_finite_batches(), 0);
    }

    #[test]
    fn finite_training_never_touches_the_counter() {
        let mut model = zoo::mlp(4, &[8], 2, 2);
        let x = Tensor::from_vec(vec![2, 4], vec![1.0, 0.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0]);
        let mut opt = Sgd::new(0.1);
        for _ in 0..5 {
            model.train_step(&x, &[0, 1], &mut opt);
        }
        assert_eq!(model.non_finite_batches(), 0);
    }

    #[test]
    fn prox_step_stays_closer_to_global() {
        // Train two identical models on the same batch; the proximal one
        // must end nearer the anchor (its starting parameters).
        let x = Tensor::from_vec(vec![2, 4], vec![1.0, 0.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0]);
        let labels = [0usize, 1];
        let mut plain = zoo::mlp(4, &[8], 2, 3);
        let mut proxed = plain.clone();
        let anchor = plain.params();
        let mut o1 = Sgd::new(0.5);
        let mut o2 = Sgd::new(0.5);
        for _ in 0..30 {
            plain.train_step(&x, &labels, &mut o1);
            proxed.train_step_prox(&x, &labels, &mut o2, &anchor, 1.0);
        }
        let dist = |p: &[f32]| -> f32 {
            p.iter().zip(&anchor).map(|(a, b)| (a - b) * (a - b)).sum::<f32>().sqrt()
        };
        let dp = dist(&plain.params());
        let dx = dist(&proxed.params());
        assert!(dx < dp, "prox distance {dx} should be < plain distance {dp}");
    }
}
