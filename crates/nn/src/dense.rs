use fedmigr_tensor::{xavier_std, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::Layer;

/// A fully-connected layer: `y = x W + b` with `x: [B, in]`, `W: [in, out]`.
#[derive(Clone)]
pub struct Dense {
    weight: Tensor,
    bias: Tensor,
    grad_weight: Tensor,
    grad_bias: Tensor,
    cached_input: Option<Tensor>,
}

impl Dense {
    /// Creates a dense layer with Xavier-initialized weights.
    pub fn new(in_dim: usize, out_dim: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        Self {
            weight: Tensor::randn(&[in_dim, out_dim], xavier_std(in_dim, out_dim), &mut rng),
            bias: Tensor::zeros(&[out_dim]),
            grad_weight: Tensor::zeros(&[in_dim, out_dim]),
            grad_bias: Tensor::zeros(&[out_dim]),
            cached_input: None,
        }
    }

    /// Input dimensionality.
    pub fn in_dim(&self) -> usize {
        self.weight.shape()[0]
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        self.weight.shape()[1]
    }
}

impl Layer for Dense {
    fn forward(&mut self, input: &Tensor, _train: bool) -> Tensor {
        assert_eq!(
            input.cols(),
            self.in_dim(),
            "Dense expected input dim {}, got {}",
            self.in_dim(),
            input.cols()
        );
        let mut out = input.matmul(&self.weight);
        let (b, o) = (out.rows(), out.cols());
        let bias = self.bias.data();
        for r in 0..b {
            let row = &mut out.data_mut()[r * o..(r + 1) * o];
            for (v, &bv) in row.iter_mut().zip(bias) {
                *v += bv;
            }
        }
        self.cached_input = Some(input.clone());
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let input = self.cached_input.as_ref().expect("Dense::backward called before forward");
        // dW = x^T g, db = sum_rows(g), dx = g W^T
        self.grad_weight.add_assign(&input.transpose2().matmul(grad_out));
        let (b, o) = (grad_out.rows(), grad_out.cols());
        for r in 0..b {
            let row = grad_out.row(r);
            for (g, &gv) in self.grad_bias.data_mut().iter_mut().zip(row) {
                *g += gv;
            }
        }
        let _ = o;
        grad_out.matmul(&self.weight.transpose2())
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Tensor, &mut Tensor)) {
        f(&mut self.weight, &mut self.grad_weight);
        f(&mut self.bias, &mut self.grad_bias);
    }

    fn name(&self) -> &'static str {
        "Dense"
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_applies_affine_map() {
        let mut layer = Dense::new(2, 2, 0);
        // Overwrite weights with a known matrix.
        layer.visit_params(&mut |p, _| {
            if p.shape() == [2, 2] {
                p.data_mut().copy_from_slice(&[1.0, 2.0, 3.0, 4.0]);
            } else {
                p.data_mut().copy_from_slice(&[0.5, -0.5]);
            }
        });
        let x = Tensor::from_vec(vec![1, 2], vec![1.0, 1.0]);
        let y = layer.forward(&x, true);
        assert_eq!(y.data(), &[4.5, 5.5]);
    }

    #[test]
    fn numerical_gradient_check() {
        let mut layer = Dense::new(3, 2, 7);
        let x = Tensor::from_vec(vec![2, 3], vec![0.1, -0.2, 0.3, 0.4, 0.5, -0.6]);
        // Scalar objective: sum of outputs.
        let eps = 1e-3f32;
        let y = layer.forward(&x, true);
        let grad_out = Tensor::ones(y.shape());
        layer.zero_grad();
        let gx = layer.backward(&grad_out);

        // Check input gradient numerically.
        for i in 0..x.numel() {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let fp = layer.forward(&xp, true).sum();
            let fm = layer.forward(&xm, true).sum();
            let num = (fp - fm) / (2.0 * eps);
            assert!(
                (num - gx.data()[i]).abs() < 1e-2,
                "input grad mismatch at {i}: numeric {num} vs analytic {}",
                gx.data()[i]
            );
        }

        // Check weight gradients numerically.
        let mut analytic = Vec::new();
        layer.visit_params(&mut |_, g| analytic.extend_from_slice(g.data()));
        fn bump(layer: &mut Dense, which: usize, i: usize, delta: f32) {
            let mut k = 0;
            layer.visit_params(&mut |p, _| {
                if k == which {
                    p.data_mut()[i] += delta;
                }
                k += 1;
            });
        }
        let mut idx = 0usize;
        for which in 0..2 {
            let count = if which == 0 { 6 } else { 2 };
            for i in 0..count {
                let expected = analytic[idx];
                bump(&mut layer, which, i, eps);
                let fp = layer.forward(&x, true).sum();
                bump(&mut layer, which, i, -2.0 * eps);
                let fm = layer.forward(&x, true).sum();
                bump(&mut layer, which, i, eps);
                let num = (fp - fm) / (2.0 * eps);
                assert!(
                    (num - expected).abs() < 1e-2,
                    "param grad mismatch: numeric {num} vs analytic {expected}"
                );
                idx += 1;
            }
        }
    }

    #[test]
    fn zero_grad_clears_accumulation() {
        let mut layer = Dense::new(2, 2, 0);
        let x = Tensor::ones(&[1, 2]);
        let y = layer.forward(&x, true);
        layer.backward(&Tensor::ones(y.shape()));
        layer.zero_grad();
        let mut total = 0.0;
        layer.visit_params(&mut |_, g| total += g.data().iter().map(|v| v.abs()).sum::<f32>());
        assert_eq!(total, 0.0);
    }
}
