use fedmigr_tensor::kcount::{self, Kernel};
use fedmigr_tensor::Tensor;

use crate::Layer;

/// Batch normalization over the channel dimension of `[B, C, H, W]` inputs
/// (Ioffe & Szegedy), with learnable per-channel scale `γ` and shift `β`
/// and running statistics for inference.
///
/// In training mode activations are normalized with the batch statistics
/// and the running mean/variance are updated with `momentum`; in inference
/// mode the running statistics are used. The backward pass implements the
/// full batch-norm gradient (including the terms through the batch mean
/// and variance).
///
/// Note for FL use: γ/β participate in aggregation/migration like any
/// other parameter, while the running statistics are part of the layer
/// state and stay on the client — the standard (and slightly subtle)
/// BatchNorm-in-FL behaviour.
#[derive(Clone)]
pub struct BatchNorm2d {
    channels: usize,
    momentum: f32,
    eps: f32,
    gamma: Tensor,
    beta: Tensor,
    grad_gamma: Tensor,
    grad_beta: Tensor,
    running_mean: Vec<f32>,
    running_var: Vec<f32>,
    // Forward cache (training mode).
    x_hat: Vec<f32>,
    inv_std: Vec<f32>,
    input_shape: Vec<usize>,
}

impl BatchNorm2d {
    /// Creates a batch-norm layer over `channels` feature maps.
    pub fn new(channels: usize) -> Self {
        Self {
            channels,
            momentum: 0.1,
            eps: 1e-5,
            gamma: Tensor::ones(&[channels]),
            beta: Tensor::zeros(&[channels]),
            grad_gamma: Tensor::zeros(&[channels]),
            grad_beta: Tensor::zeros(&[channels]),
            running_mean: vec![0.0; channels],
            running_var: vec![1.0; channels],
            x_hat: Vec::new(),
            inv_std: Vec::new(),
            input_shape: Vec::new(),
        }
    }

    /// Current running mean (inference statistics).
    pub fn running_mean(&self) -> &[f32] {
        &self.running_mean
    }

    /// Current running variance (inference statistics).
    pub fn running_var(&self) -> &[f32] {
        &self.running_var
    }

    fn dims(shape: &[usize]) -> (usize, usize, usize) {
        assert_eq!(shape.len(), 4, "BatchNorm2d expects [B, C, H, W]");
        (shape[0], shape[1], shape[2] * shape[3])
    }
}

impl Layer for BatchNorm2d {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let (b, c, s) = Self::dims(input.shape());
        assert_eq!(c, self.channels, "BatchNorm2d channel mismatch");
        let n = (b * s) as f32;
        let _k =
            kcount::scope(Kernel::BatchNorm, 7 * input.numel() as u64, 20 * input.numel() as u64);
        let data = input.data();
        let mut out = vec![0.0f32; data.len()];
        if train {
            self.x_hat.resize(data.len(), 0.0);
            self.inv_std.resize(c, 0.0);
            self.input_shape = input.shape().to_vec();
            for ch in 0..c {
                let mut mean = 0.0f32;
                for bi in 0..b {
                    let plane = (bi * c + ch) * s;
                    mean += data[plane..plane + s].iter().sum::<f32>();
                }
                mean /= n;
                let mut var = 0.0f32;
                for bi in 0..b {
                    let plane = (bi * c + ch) * s;
                    var +=
                        data[plane..plane + s].iter().map(|x| (x - mean) * (x - mean)).sum::<f32>();
                }
                var /= n;
                let inv_std = 1.0 / (var + self.eps).sqrt();
                self.inv_std[ch] = inv_std;
                self.running_mean[ch] =
                    (1.0 - self.momentum) * self.running_mean[ch] + self.momentum * mean;
                self.running_var[ch] =
                    (1.0 - self.momentum) * self.running_var[ch] + self.momentum * var;
                let g = self.gamma.data()[ch];
                let bt = self.beta.data()[ch];
                for bi in 0..b {
                    let plane = (bi * c + ch) * s;
                    for i in plane..plane + s {
                        let xh = (data[i] - mean) * inv_std;
                        self.x_hat[i] = xh;
                        out[i] = g * xh + bt;
                    }
                }
            }
        } else {
            for ch in 0..c {
                let inv_std = 1.0 / (self.running_var[ch] + self.eps).sqrt();
                let mean = self.running_mean[ch];
                let g = self.gamma.data()[ch];
                let bt = self.beta.data()[ch];
                for bi in 0..b {
                    let plane = (bi * c + ch) * s;
                    for i in plane..plane + s {
                        out[i] = g * (data[i] - mean) * inv_std + bt;
                    }
                }
            }
        }
        Tensor::from_vec(input.shape().to_vec(), out)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        assert_eq!(
            grad_out.shape(),
            &self.input_shape[..],
            "BatchNorm2d backward before training-mode forward"
        );
        let (b, c, s) = Self::dims(&self.input_shape);
        let n = (b * s) as f32;
        let _k = kcount::scope(
            Kernel::BatchNorm,
            10 * grad_out.numel() as u64,
            16 * grad_out.numel() as u64,
        );
        let g = grad_out.data();
        let mut grad_in = vec![0.0f32; g.len()];
        for ch in 0..c {
            // Per-channel reductions: Σ dy and Σ dy * x_hat.
            let mut sum_dy = 0.0f32;
            let mut sum_dy_xhat = 0.0f32;
            for bi in 0..b {
                let plane = (bi * c + ch) * s;
                for (gi, xh) in g[plane..plane + s].iter().zip(&self.x_hat[plane..plane + s]) {
                    sum_dy += gi;
                    sum_dy_xhat += gi * xh;
                }
            }
            self.grad_beta.data_mut()[ch] += sum_dy;
            self.grad_gamma.data_mut()[ch] += sum_dy_xhat;
            let gamma = self.gamma.data()[ch];
            let inv_std = self.inv_std[ch];
            // dx = γ / (N σ) * (N dy - Σdy - x_hat ΣdyX)
            for bi in 0..b {
                let plane = (bi * c + ch) * s;
                for i in plane..plane + s {
                    grad_in[i] =
                        gamma * inv_std / n * (n * g[i] - sum_dy - self.x_hat[i] * sum_dy_xhat);
                }
            }
        }
        Tensor::from_vec(self.input_shape.clone(), grad_in)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Tensor, &mut Tensor)) {
        f(&mut self.gamma, &mut self.grad_gamma);
        f(&mut self.beta, &mut self.grad_beta);
    }

    fn name(&self) -> &'static str {
        "BatchNorm2d"
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn training_output_is_normalized() {
        let mut bn = BatchNorm2d::new(2);
        let mut rng = StdRng::seed_from_u64(1);
        let x = Tensor::randn(&[4, 2, 3, 3], 3.0, &mut rng).map(|v| v + 5.0);
        let y = bn.forward(&x, true);
        // Per channel: mean ~0, var ~1.
        for ch in 0..2 {
            let mut vals = Vec::new();
            for bi in 0..4 {
                let plane = (bi * 2 + ch) * 9;
                vals.extend_from_slice(&y.data()[plane..plane + 9]);
            }
            let mean: f32 = vals.iter().sum::<f32>() / vals.len() as f32;
            let var: f32 =
                vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / vals.len() as f32;
            assert!(mean.abs() < 1e-4, "mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "var {var}");
        }
    }

    #[test]
    fn running_stats_track_batch_stats() {
        let mut bn = BatchNorm2d::new(1);
        let x = Tensor::full(&[2, 1, 2, 2], 10.0);
        for _ in 0..300 {
            bn.forward(&x, true);
        }
        assert!((bn.running_mean()[0] - 10.0).abs() < 1e-3);
        assert!(bn.running_var()[0] < 1e-3);
        // Inference on the same constant input is ~beta (0). The tolerance
        // is loose because the tiny running variance amplifies the residual
        // running-mean error.
        let y = bn.forward(&x, false);
        assert!(y.data().iter().all(|v| v.abs() < 0.05), "{:?}", &y.data()[..2]);
    }

    #[test]
    fn numerical_gradient_check() {
        let mut bn = BatchNorm2d::new(2);
        let mut rng = StdRng::seed_from_u64(7);
        let x = Tensor::randn(&[2, 2, 2, 2], 1.0, &mut rng);
        // Weighted objective so the gradient isn't identically zero (a sum
        // is invariant to normalization up to gamma/beta).
        let w = Tensor::randn(x.shape(), 1.0, &mut rng);
        let objective =
            |bn: &mut BatchNorm2d, x: &Tensor| -> f32 { bn.forward(x, true).mul(&w).sum() };
        let y = bn.forward(&x, true);
        bn.zero_grad();
        let gx = bn.backward(&w.clone());
        let _ = y;
        let eps = 1e-2f32;
        for &i in &[0usize, 3, 7, 12, 15] {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let num = (objective(&mut bn, &xp) - objective(&mut bn, &xm)) / (2.0 * eps);
            assert!(
                (num - gx.data()[i]).abs() < 2e-2,
                "input grad mismatch at {i}: {num} vs {}",
                gx.data()[i]
            );
        }
    }

    #[test]
    fn params_are_gamma_and_beta_only() {
        let mut bn = BatchNorm2d::new(4);
        assert_eq!(bn.param_count(), 8);
    }
}
