//! Additional activations beyond ReLU: tanh and the logistic sigmoid.

use fedmigr_tensor::Tensor;

use crate::Layer;

/// Hyperbolic-tangent activation. Caches outputs: `d tanh(x)/dx = 1 - y²`.
#[derive(Clone, Default)]
pub struct Tanh {
    output: Vec<f32>,
}

impl Tanh {
    /// Creates a tanh activation.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Tanh {
    fn forward(&mut self, input: &Tensor, _train: bool) -> Tensor {
        let out = input.map(f32::tanh);
        self.output.clear();
        self.output.extend_from_slice(out.data());
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        assert_eq!(grad_out.numel(), self.output.len(), "Tanh backward before forward");
        let data =
            grad_out.data().iter().zip(&self.output).map(|(&g, &y)| g * (1.0 - y * y)).collect();
        Tensor::from_vec(grad_out.shape().to_vec(), data)
    }

    fn name(&self) -> &'static str {
        "Tanh"
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

/// Logistic sigmoid activation. Caches outputs: `dσ(x)/dx = y (1 - y)`.
#[derive(Clone, Default)]
pub struct Sigmoid {
    output: Vec<f32>,
}

impl Sigmoid {
    /// Creates a sigmoid activation.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Sigmoid {
    fn forward(&mut self, input: &Tensor, _train: bool) -> Tensor {
        let out = input.map(|x| 1.0 / (1.0 + (-x).exp()));
        self.output.clear();
        self.output.extend_from_slice(out.data());
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        assert_eq!(grad_out.numel(), self.output.len(), "Sigmoid backward before forward");
        let data =
            grad_out.data().iter().zip(&self.output).map(|(&g, &y)| g * y * (1.0 - y)).collect();
        Tensor::from_vec(grad_out.shape().to_vec(), data)
    }

    fn name(&self) -> &'static str {
        "Sigmoid"
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn numeric_check(layer: &mut dyn Layer, x: &Tensor) {
        let y = layer.forward(x, true);
        let g = layer.backward(&Tensor::ones(y.shape()));
        let eps = 1e-3f32;
        for i in 0..x.numel() {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let num =
                (layer.forward(&xp, true).sum() - layer.forward(&xm, true).sum()) / (2.0 * eps);
            assert!(
                (num - g.data()[i]).abs() < 1e-2,
                "gradient mismatch at {i}: {num} vs {}",
                g.data()[i]
            );
        }
    }

    #[test]
    fn tanh_values_and_gradient() {
        let mut t = Tanh::new();
        let x = Tensor::from_vec(vec![3], vec![-2.0, 0.0, 2.0]);
        let y = t.forward(&x, true);
        assert!((y.data()[1]).abs() < 1e-7);
        assert!(y.data()[2] > 0.9 && y.data()[2] < 1.0);
        numeric_check(&mut t, &x);
    }

    #[test]
    fn sigmoid_values_and_gradient() {
        let mut s = Sigmoid::new();
        let x = Tensor::from_vec(vec![3], vec![-4.0, 0.0, 4.0]);
        let y = s.forward(&x, true);
        assert!((y.data()[1] - 0.5).abs() < 1e-7);
        assert!(y.data()[0] < 0.05 && y.data()[2] > 0.95);
        numeric_check(&mut s, &x);
    }
}
