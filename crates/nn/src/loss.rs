//! Softmax cross-entropy loss and classification accuracy.

use fedmigr_tensor::{argmax_slice, log_softmax_rows, softmax_rows, Tensor};

/// Mean softmax cross-entropy over a batch.
///
/// Returns `(loss, grad_logits)` where `grad_logits = (softmax - onehot) / B`
/// — the gradient of the *mean* loss w.r.t. the logits, ready to feed into
/// `Layer::backward`.
///
/// # Panics
/// Panics if `labels.len() != logits.rows()` or any label is out of range.
pub fn softmax_cross_entropy(logits: &Tensor, labels: &[usize]) -> (f32, Tensor) {
    let (b, l) = (logits.rows(), logits.cols());
    assert_eq!(labels.len(), b, "one label per logit row required");
    let log_p = log_softmax_rows(logits);
    let mut loss = 0.0f32;
    for (r, &y) in labels.iter().enumerate() {
        assert!(y < l, "label {y} out of range for {l} classes");
        loss -= log_p.at2(r, y);
    }
    loss /= b as f32;

    let mut grad = softmax_rows(logits);
    let inv_b = 1.0 / b as f32;
    for (r, &y) in labels.iter().enumerate() {
        *grad.at2_mut(r, y) -= 1.0;
    }
    grad.scale_assign(inv_b);
    (loss, grad)
}

/// Fraction of rows whose argmax matches the label.
pub fn accuracy(logits: &Tensor, labels: &[usize]) -> f64 {
    assert_eq!(labels.len(), logits.rows());
    let correct =
        labels.iter().enumerate().filter(|&(r, &y)| argmax_slice(logits.row(r)) == y).count();
    correct as f64 / labels.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_logits_give_log_l_loss() {
        let logits = Tensor::zeros(&[2, 4]);
        let (loss, _) = softmax_cross_entropy(&logits, &[0, 3]);
        assert!((loss - 4.0f32.ln()).abs() < 1e-5);
    }

    #[test]
    fn confident_correct_prediction_has_small_loss() {
        let logits = Tensor::from_vec(vec![1, 3], vec![10.0, 0.0, 0.0]);
        let (loss, _) = softmax_cross_entropy(&logits, &[0]);
        assert!(loss < 1e-3);
    }

    #[test]
    fn gradient_rows_sum_to_zero() {
        let logits = Tensor::from_vec(vec![2, 3], vec![1.0, -2.0, 0.5, 0.0, 0.1, 0.2]);
        let (_, grad) = softmax_cross_entropy(&logits, &[2, 0]);
        for r in 0..2 {
            let s: f32 = grad.row(r).iter().sum();
            assert!(s.abs() < 1e-6);
        }
    }

    #[test]
    fn gradient_matches_numerical() {
        let logits = Tensor::from_vec(vec![1, 3], vec![0.3, -0.7, 1.1]);
        let labels = [1usize];
        let (_, grad) = softmax_cross_entropy(&logits, &labels);
        let eps = 1e-3f32;
        for i in 0..3 {
            let mut lp = logits.clone();
            lp.data_mut()[i] += eps;
            let mut lm = logits.clone();
            lm.data_mut()[i] -= eps;
            let (fp, _) = softmax_cross_entropy(&lp, &labels);
            let (fm, _) = softmax_cross_entropy(&lm, &labels);
            let num = (fp - fm) / (2.0 * eps);
            assert!((num - grad.data()[i]).abs() < 1e-3);
        }
    }

    #[test]
    fn accuracy_counts_argmax_hits() {
        let logits = Tensor::from_vec(vec![2, 2], vec![0.9, 0.1, 0.2, 0.8]);
        assert_eq!(accuracy(&logits, &[0, 1]), 1.0);
        assert_eq!(accuracy(&logits, &[1, 1]), 0.5);
    }
}
