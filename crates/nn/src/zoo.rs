//! The paper's model architectures, at configurable scale.
//!
//! The paper evaluates three networks (Sec. IV-B): **C10-CNN** (two 5x5
//! convolutions of 32/64 channels each followed by 2x2 max pooling, one
//! 512-unit fully-connected layer, 10-way softmax — the architecture of
//! McMahan et al.), **C100-CNN** (the same convolutional trunk with *two*
//! 512-unit fully-connected layers and a 100-way output), and **ResNet-152**
//! on ImageNet-100. Fig. 3 additionally uses **AlexNet** on CIFAR-10.
//!
//! Training full-size networks on CPU inside a simulator is infeasible, so
//! every constructor takes a [`NetScale`]: `Paper` reproduces the layer
//! widths verbatim (for 32x32 inputs), while `Small` keeps the exact layer
//! *structure* at reduced width for 8x8 synthetic inputs. ResNet-152 is
//! represented by [`mini_resnet`], a genuine residual network (conv stem +
//! residual blocks with skip connections + pooling + linear head).

use crate::{Conv2d, Dense, Flatten, MaxPool2d, Model, Relu, ResidualBlock, Sequential};

/// Width preset for the model zoo.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NetScale {
    /// Paper-faithful widths (32/64-channel convolutions, 512-unit FC).
    Paper,
    /// Reduced widths (8/16-channel convolutions, 64-unit FC) for
    /// simulator-speed training on 8x8 synthetic images.
    Small,
}

impl NetScale {
    fn conv_widths(self) -> (usize, usize) {
        match self {
            NetScale::Paper => (32, 64),
            NetScale::Small => (8, 16),
        }
    }

    fn fc_width(self) -> usize {
        match self {
            NetScale::Paper => 512,
            NetScale::Small => 64,
        }
    }
}

/// A plain multi-layer perceptron: `in_dim -> hidden... -> classes` with
/// ReLU between layers. Used for fast tests and for the DRL actor/critic.
pub fn mlp(in_dim: usize, hidden: &[usize], classes: usize, seed: u64) -> Model {
    let mut net = Sequential::new();
    let mut prev = in_dim;
    for (i, &h) in hidden.iter().enumerate() {
        net = net.push(Dense::new(prev, h, seed.wrapping_add(i as u64))).push(Relu::new());
        prev = h;
    }
    net = net.push(Dense::new(prev, classes, seed.wrapping_add(hidden.len() as u64)));
    Model::new(net, &[in_dim], classes, "MLP")
}

/// C10-CNN (McMahan et al., used by the paper for CIFAR-10): two 5x5
/// convolutions each followed by 2x2 max pooling, one fully-connected
/// layer, 10-way output.
pub fn c10_cnn(in_channels: usize, hw: usize, scale: NetScale, seed: u64) -> Model {
    cnn(in_channels, hw, 10, scale, 1, seed, "C10-CNN")
}

/// C100-CNN: identical trunk to [`c10_cnn`] but with two fully-connected
/// layers and a 100-way output (Sec. IV-B of the paper).
pub fn c100_cnn(in_channels: usize, hw: usize, scale: NetScale, seed: u64) -> Model {
    cnn(in_channels, hw, 100, scale, 2, seed, "C100-CNN")
}

fn cnn(
    in_channels: usize,
    hw: usize,
    classes: usize,
    scale: NetScale,
    fc_layers: usize,
    seed: u64,
    name: &str,
) -> Model {
    assert!(hw.is_multiple_of(4), "input side must be divisible by 4 (two 2x2 pools)");
    let (c1, c2) = scale.conv_widths();
    let fc = scale.fc_width();
    let spatial = hw / 4;
    let mut net = Sequential::new()
        .push(Conv2d::new(in_channels, c1, 5, 1, 2, seed))
        .push(Relu::new())
        .push(MaxPool2d::new(2, 2))
        .push(Conv2d::new(c1, c2, 5, 1, 2, seed + 1))
        .push(Relu::new())
        .push(MaxPool2d::new(2, 2))
        .push(Flatten::new());
    let mut prev = c2 * spatial * spatial;
    for i in 0..fc_layers {
        net = net.push(Dense::new(prev, fc, seed + 2 + i as u64)).push(Relu::new());
        prev = fc;
    }
    net = net.push(Dense::new(prev, classes, seed + 10));
    Model::new(net, &[in_channels, hw, hw], classes, name)
}

/// A residual network standing in for the paper's ResNet-152
/// ("Res-ImageNet"): conv stem, `blocks` residual blocks, 2x2 pooling and a
/// linear head. The skip connections — the architecture's defining feature —
/// are fully exercised; depth/width are reduced for CPU feasibility.
pub fn mini_resnet(
    in_channels: usize,
    hw: usize,
    classes: usize,
    blocks: usize,
    scale: NetScale,
    seed: u64,
) -> Model {
    assert!(hw.is_multiple_of(2), "input side must be even (one 2x2 pool)");
    let width = match scale {
        NetScale::Paper => 32,
        NetScale::Small => 8,
    };
    let mut net =
        Sequential::new().push(Conv2d::new(in_channels, width, 3, 1, 1, seed)).push(Relu::new());
    for b in 0..blocks {
        net = net.push(ResidualBlock::new(width, seed + 10 + 2 * b as u64));
    }
    let spatial = hw / 2;
    net = net.push(MaxPool2d::new(2, 2)).push(Flatten::new()).push(Dense::new(
        width * spatial * spatial,
        classes,
        seed + 100,
    ));
    Model::new(net, &[in_channels, hw, hw], classes, "Res-ImageNet")
}

/// AlexNet-lite for the Fig. 3 motivation experiment: three convolution
/// layers with interleaved max pooling and two fully-connected layers,
/// following AlexNet's conv-heavy-then-dense shape at reduced scale.
pub fn alexnet_lite(in_channels: usize, hw: usize, scale: NetScale, seed: u64) -> Model {
    assert!(hw.is_multiple_of(4), "input side must be divisible by 4");
    let (c1, c2) = scale.conv_widths();
    let c3 = c2;
    let fc = scale.fc_width();
    let spatial = hw / 4;
    let net = Sequential::new()
        .push(Conv2d::new(in_channels, c1, 3, 1, 1, seed))
        .push(Relu::new())
        .push(MaxPool2d::new(2, 2))
        .push(Conv2d::new(c1, c2, 3, 1, 1, seed + 1))
        .push(Relu::new())
        .push(MaxPool2d::new(2, 2))
        .push(Conv2d::new(c2, c3, 3, 1, 1, seed + 2))
        .push(Relu::new())
        .push(Flatten::new())
        .push(Dense::new(c3 * spatial * spatial, fc, seed + 3))
        .push(Relu::new())
        .push(Dense::new(fc, 10, seed + 4));
    Model::new(net, &[in_channels, hw, hw], 10, "AlexNet-lite")
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedmigr_tensor::Tensor;

    #[test]
    fn c10_cnn_shapes() {
        let mut m = c10_cnn(3, 8, NetScale::Small, 0);
        let x = Tensor::zeros(&[2, 3, 8, 8]);
        let y = m.forward(&x, false);
        assert_eq!(y.shape(), &[2, 10]);
    }

    #[test]
    fn c100_cnn_has_hundred_outputs_and_extra_fc() {
        let mut m100 = c100_cnn(3, 8, NetScale::Small, 0);
        let m10 = c10_cnn(3, 8, NetScale::Small, 0);
        let y = m100.forward(&Tensor::zeros(&[1, 3, 8, 8]), false);
        assert_eq!(y.shape(), &[1, 100]);
        // The extra FC layer plus wider head means more parameters.
        assert!(m100.num_params() > m10.num_params());
    }

    #[test]
    fn mini_resnet_runs_forward_and_backward() {
        let mut m = mini_resnet(3, 8, 100, 2, NetScale::Small, 0);
        let x = Tensor::zeros(&[2, 3, 8, 8]);
        let y = m.forward(&x, true);
        assert_eq!(y.shape(), &[2, 100]);
    }

    #[test]
    fn alexnet_lite_output_shape() {
        let mut m = alexnet_lite(3, 8, NetScale::Small, 0);
        let y = m.forward(&Tensor::zeros(&[1, 3, 8, 8]), false);
        assert_eq!(y.shape(), &[1, 10]);
    }

    #[test]
    fn paper_scale_is_wider_than_small() {
        let small = c10_cnn(3, 8, NetScale::Small, 0);
        let paper = c10_cnn(3, 8, NetScale::Paper, 0);
        assert!(paper.num_params() > 10 * small.num_params());
    }

    #[test]
    fn same_seed_same_params() {
        let mut a = c10_cnn(3, 8, NetScale::Small, 42);
        let mut b = c10_cnn(3, 8, NetScale::Small, 42);
        assert_eq!(a.params(), b.params());
    }
}
