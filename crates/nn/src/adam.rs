use fedmigr_tensor::kcount::{self, Kernel};
use fedmigr_tensor::Tensor;

use crate::Layer;

/// Adam optimizer (Kingma & Ba): per-parameter adaptive learning rates from
/// exponential moving averages of the gradient and its square, with bias
/// correction.
///
/// The FL clients in the paper use plain SGD (kept as the default), but the
/// DRL actor/critic and standalone users benefit from Adam's robustness to
/// gradient scale.
#[derive(Clone, Debug)]
pub struct Adam {
    /// Learning rate α.
    pub lr: f32,
    /// First-moment decay β₁.
    pub beta1: f32,
    /// Second-moment decay β₂.
    pub beta2: f32,
    /// Numerical-stability constant ε.
    pub eps: f32,
    /// L2 weight decay added to gradients before the update.
    pub weight_decay: f32,
    m: Vec<Vec<f32>>,
    v: Vec<Vec<f32>>,
    t: u64,
}

impl Adam {
    /// Adam with standard (0.9, 0.999) moment decays.
    pub fn new(lr: f32) -> Self {
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
            m: Vec::new(),
            v: Vec::new(),
            t: 0,
        }
    }

    /// Sets L2 weight decay, builder-style.
    pub fn weight_decay(mut self, wd: f32) -> Self {
        self.weight_decay = wd;
        self
    }

    /// Applies one Adam update to every parameter of `model` using its
    /// accumulated gradients.
    pub fn step(&mut self, model: &mut dyn Layer) {
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        let (lr, b1, b2, eps, wd) = (self.lr, self.beta1, self.beta2, self.eps, self.weight_decay);
        let (ms, vs) = (&mut self.m, &mut self.v);
        let mut idx = 0usize;
        model.visit_params(&mut |p: &mut Tensor, g: &mut Tensor| {
            if ms.len() <= idx {
                ms.push(vec![0.0; p.numel()]);
                vs.push(vec![0.0; p.numel()]);
            }
            let m = &mut ms[idx];
            let v = &mut vs[idx];
            assert_eq!(m.len(), p.numel(), "parameter shape changed between steps");
            let _k = kcount::scope(Kernel::Optimizer, 12 * p.numel() as u64, 28 * p.numel() as u64);
            for (((pv, gv), mi), vi) in
                p.data_mut().iter_mut().zip(g.data()).zip(m.iter_mut()).zip(v.iter_mut())
            {
                let grad = gv + wd * *pv;
                *mi = b1 * *mi + (1.0 - b1) * grad;
                *vi = b2 * *vi + (1.0 - b2) * grad * grad;
                let m_hat = *mi / bc1;
                let v_hat = *vi / bc2;
                *pv -= lr * m_hat / (v_hat.sqrt() + eps);
            }
            idx += 1;
        });
    }

    /// Drops all moment state (e.g. after parameters are replaced
    /// wholesale by a migration or aggregation).
    pub fn reset_state(&mut self) {
        self.m.clear();
        self.v.clear();
        self.t = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::param_vector;
    use crate::{softmax_cross_entropy, zoo};

    #[test]
    fn first_step_moves_by_roughly_lr() {
        // With bias correction, the first Adam step has magnitude ~lr
        // regardless of gradient scale.
        let mut model = zoo::mlp(2, &[], 2, 0);
        model.net_mut().visit_params(&mut |p, g| {
            p.fill_zero();
            g.data_mut().fill(1000.0); // Huge gradient.
        });
        let mut opt = Adam::new(0.1);
        opt.step(model.net_mut());
        let w = param_vector(model.net_mut());
        assert!(w.iter().all(|&x| (x + 0.1).abs() < 1e-3), "{w:?}");
    }

    #[test]
    fn optimizes_a_small_classifier_faster_than_tiny_sgd() {
        let x = Tensor::from_vec(
            vec![4, 4],
            vec![
                2.0, 0.0, 0.0, 0.0, //
                0.0, 2.0, 0.0, 0.0, //
                0.0, 0.0, 2.0, 0.0, //
                0.0, 0.0, 0.0, 2.0,
            ],
        );
        let labels = [0usize, 0, 1, 1];
        let mut model = zoo::mlp(4, &[8], 2, 1);
        let mut opt = Adam::new(0.05);
        for _ in 0..60 {
            let logits = model.forward(&x, true);
            let (_, grad) = softmax_cross_entropy(&logits, &labels);
            model.net_mut().zero_grad();
            model.net_mut().backward(&grad);
            opt.step(model.net_mut());
        }
        let (loss, acc) = model.evaluate(&x, &labels);
        assert!(acc == 1.0 && loss < 0.2, "loss {loss} acc {acc}");
    }

    #[test]
    fn reset_state_clears_moments() {
        let mut model = zoo::mlp(2, &[], 2, 0);
        let mut opt = Adam::new(0.1);
        model.net_mut().visit_params(&mut |_, g| g.data_mut().fill(1.0));
        opt.step(model.net_mut());
        assert!(opt.t > 0);
        opt.reset_state();
        assert_eq!(opt.t, 0);
        assert!(opt.m.is_empty() && opt.v.is_empty());
    }
}
