use fedmigr_tensor::Tensor;

use crate::Layer;

/// Rectified linear unit. Caches the sign mask from the forward pass.
#[derive(Clone, Default)]
pub struct Relu {
    mask: Vec<bool>,
}

impl Relu {
    /// Creates a ReLU activation.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Relu {
    fn forward(&mut self, input: &Tensor, _train: bool) -> Tensor {
        self.mask.clear();
        self.mask.extend(input.data().iter().map(|&x| x > 0.0));
        input.map(|x| x.max(0.0))
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        assert_eq!(grad_out.numel(), self.mask.len(), "Relu backward before forward");
        let data = grad_out
            .data()
            .iter()
            .zip(&self.mask)
            .map(|(&g, &m)| if m { g } else { 0.0 })
            .collect();
        Tensor::from_vec(grad_out.shape().to_vec(), data)
    }

    fn name(&self) -> &'static str {
        "Relu"
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

/// Flattens `[B, ...]` to `[B, prod(...)]`, remembering the original shape.
#[derive(Clone, Default)]
pub struct Flatten {
    input_shape: Vec<usize>,
}

impl Flatten {
    /// Creates a flatten layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Flatten {
    fn forward(&mut self, input: &Tensor, _train: bool) -> Tensor {
        let shape = input.shape();
        assert!(shape.len() >= 2, "Flatten expects a batch dimension");
        self.input_shape = shape.to_vec();
        let b = shape[0];
        let rest: usize = shape[1..].iter().product();
        input.reshape(&[b, rest])
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        grad_out.reshape(&self.input_shape)
    }

    fn name(&self) -> &'static str {
        "Flatten"
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

/// Inverted dropout: active only when `train` is true, scaling kept units by
/// `1 / (1 - p)` so inference needs no rescaling.
///
/// Uses an internal xorshift generator so the layer stays object-safe and
/// deterministic for a fixed construction seed.
#[derive(Clone)]
pub struct Dropout {
    p: f32,
    state: u64,
    mask: Vec<f32>,
}

impl Dropout {
    /// Creates a dropout layer dropping each unit with probability `p`.
    ///
    /// # Panics
    /// Panics unless `0 <= p < 1`.
    pub fn new(p: f32, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&p), "dropout probability must be in [0, 1)");
        Self { p, state: seed.wrapping_mul(2654435769).max(1), mask: Vec::new() }
    }

    fn next_uniform(&mut self) -> f32 {
        // xorshift64*
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        let bits = (x.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 40) as u32;
        bits as f32 / (1u32 << 24) as f32
    }
}

impl Layer for Dropout {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        if !train || self.p == 0.0 {
            self.mask.clear();
            return input.clone();
        }
        let keep = 1.0 - self.p;
        self.mask.clear();
        self.mask.reserve(input.numel());
        for _ in 0..input.numel() {
            let kept = self.next_uniform() >= self.p;
            self.mask.push(if kept { 1.0 / keep } else { 0.0 });
        }
        let data = input.data().iter().zip(&self.mask).map(|(&x, &m)| x * m).collect();
        Tensor::from_vec(input.shape().to_vec(), data)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        if self.mask.is_empty() {
            return grad_out.clone();
        }
        let data = grad_out.data().iter().zip(&self.mask).map(|(&g, &m)| g * m).collect();
        Tensor::from_vec(grad_out.shape().to_vec(), data)
    }

    fn name(&self) -> &'static str {
        "Dropout"
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_clamps_and_masks() {
        let mut relu = Relu::new();
        let x = Tensor::from_vec(vec![4], vec![-1.0, 0.0, 2.0, -3.0]);
        let y = relu.forward(&x, true);
        assert_eq!(y.data(), &[0.0, 0.0, 2.0, 0.0]);
        let g = relu.backward(&Tensor::ones(&[4]));
        assert_eq!(g.data(), &[0.0, 0.0, 1.0, 0.0]);
    }

    #[test]
    fn flatten_round_trips_shape() {
        let mut f = Flatten::new();
        let x = Tensor::zeros(&[2, 3, 4, 4]);
        let y = f.forward(&x, true);
        assert_eq!(y.shape(), &[2, 48]);
        let g = f.backward(&Tensor::ones(&[2, 48]));
        assert_eq!(g.shape(), &[2, 3, 4, 4]);
    }

    #[test]
    fn dropout_is_identity_at_inference() {
        let mut d = Dropout::new(0.5, 1);
        let x = Tensor::ones(&[100]);
        let y = d.forward(&x, false);
        assert_eq!(y, x);
    }

    #[test]
    fn dropout_preserves_expectation_roughly() {
        let mut d = Dropout::new(0.5, 1);
        let x = Tensor::ones(&[10_000]);
        let y = d.forward(&x, true);
        let mean = y.mean();
        assert!((mean - 1.0).abs() < 0.1, "mean {mean}");
        // Kept entries are scaled by 1/keep.
        assert!(y.data().iter().all(|&v| v == 0.0 || (v - 2.0).abs() < 1e-6));
    }
}
