//! Learning-rate schedules for long federated runs.

/// A learning-rate schedule: maps an epoch index to a learning rate.
#[derive(Clone, Debug)]
pub enum LrSchedule {
    /// Constant rate.
    Constant(f32),
    /// Multiply by `gamma` every `every` epochs: `base * gamma^(e / every)`.
    StepDecay {
        /// Initial rate.
        base: f32,
        /// Decay factor per step (0 < gamma <= 1).
        gamma: f32,
        /// Epochs between decays.
        every: usize,
    },
    /// Cosine annealing from `base` down to `floor` over `total` epochs.
    Cosine {
        /// Initial rate.
        base: f32,
        /// Final rate.
        floor: f32,
        /// Schedule length in epochs.
        total: usize,
    },
}

impl LrSchedule {
    /// Learning rate at (0-based) `epoch`.
    pub fn at(&self, epoch: usize) -> f32 {
        match *self {
            LrSchedule::Constant(lr) => lr,
            LrSchedule::StepDecay { base, gamma, every } => {
                assert!(every > 0, "decay interval must be positive");
                base * gamma.powi((epoch / every) as i32)
            }
            LrSchedule::Cosine { base, floor, total } => {
                assert!(total > 0, "schedule length must be positive");
                let t = (epoch.min(total)) as f32 / total as f32;
                floor + 0.5 * (base - floor) * (1.0 + (std::f32::consts::PI * t).cos())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_is_constant() {
        let s = LrSchedule::Constant(0.1);
        assert_eq!(s.at(0), 0.1);
        assert_eq!(s.at(1000), 0.1);
    }

    #[test]
    fn step_decay_halves_on_schedule() {
        let s = LrSchedule::StepDecay { base: 0.1, gamma: 0.5, every: 10 };
        assert_eq!(s.at(0), 0.1);
        assert_eq!(s.at(9), 0.1);
        assert!((s.at(10) - 0.05).abs() < 1e-9);
        assert!((s.at(25) - 0.025).abs() < 1e-9);
    }

    #[test]
    fn cosine_starts_at_base_and_ends_at_floor() {
        let s = LrSchedule::Cosine { base: 0.1, floor: 0.001, total: 100 };
        assert!((s.at(0) - 0.1).abs() < 1e-6);
        assert!((s.at(100) - 0.001).abs() < 1e-6);
        assert!((s.at(200) - 0.001).abs() < 1e-6, "clamps beyond total");
        // Monotone decreasing.
        let mut prev = s.at(0);
        for e in 1..=100 {
            let lr = s.at(e);
            assert!(lr <= prev + 1e-7);
            prev = lr;
        }
    }
}
