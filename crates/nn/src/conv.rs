use fedmigr_tensor::kcount::{self, Kernel};
use fedmigr_tensor::{he_std, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::Layer;

/// A 2-D convolution over `[B, C, H, W]` inputs, implemented with im2col.
///
/// Weights are stored as a `[C*KH*KW, OC]` matrix so both the forward pass
/// and the weight gradient reduce to a single matrix multiply.
#[derive(Clone)]
pub struct Conv2d {
    in_channels: usize,
    out_channels: usize,
    kernel: usize,
    stride: usize,
    padding: usize,
    weight: Tensor,
    bias: Tensor,
    grad_weight: Tensor,
    grad_bias: Tensor,
    cached_cols: Option<Tensor>,
    cached_input_shape: Vec<usize>,
}

impl Conv2d {
    /// Creates a convolution with He-initialized weights.
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
        seed: u64,
    ) -> Self {
        assert!(kernel > 0 && stride > 0, "kernel and stride must be positive");
        let mut rng = StdRng::seed_from_u64(seed);
        let patch = in_channels * kernel * kernel;
        Self {
            in_channels,
            out_channels,
            kernel,
            stride,
            padding,
            weight: Tensor::randn(&[patch, out_channels], he_std(patch), &mut rng),
            bias: Tensor::zeros(&[out_channels]),
            grad_weight: Tensor::zeros(&[patch, out_channels]),
            grad_bias: Tensor::zeros(&[out_channels]),
            cached_cols: None,
            cached_input_shape: Vec::new(),
        }
    }

    /// Output spatial size for an input spatial size.
    pub fn out_size(&self, in_size: usize) -> usize {
        (in_size + 2 * self.padding - self.kernel) / self.stride + 1
    }

    fn im2col(&self, input: &Tensor) -> Tensor {
        let [b, c, h, w] = four(input.shape());
        let (oh, ow) = (self.out_size(h), self.out_size(w));
        let (k, s, p) = (self.kernel, self.stride, self.padding);
        let patch = c * k * k;
        let _k = kcount::scope(
            Kernel::Im2col,
            0,
            4 * (input.numel() as u64 + (b * oh * ow * patch) as u64),
        );
        let mut cols = vec![0.0f32; b * oh * ow * patch];
        let data = input.data();
        for bi in 0..b {
            for oy in 0..oh {
                for ox in 0..ow {
                    let row = ((bi * oh + oy) * ow + ox) * patch;
                    for ci in 0..c {
                        for ky in 0..k {
                            let iy = (oy * s + ky) as isize - p as isize;
                            if iy < 0 || iy as usize >= h {
                                continue;
                            }
                            let src = ((bi * c + ci) * h + iy as usize) * w;
                            let dst = row + (ci * k + ky) * k;
                            for kx in 0..k {
                                let ix = (ox * s + kx) as isize - p as isize;
                                if ix < 0 || ix as usize >= w {
                                    continue;
                                }
                                cols[dst + kx] = data[src + ix as usize];
                            }
                        }
                    }
                }
            }
        }
        Tensor::from_vec(vec![b * oh * ow, patch], cols)
    }

    fn col2im(&self, grad_cols: &Tensor) -> Tensor {
        let [b, c, h, w] = four(&self.cached_input_shape);
        let (oh, ow) = (self.out_size(h), self.out_size(w));
        let (k, s, p) = (self.kernel, self.stride, self.padding);
        let patch = c * k * k;
        let _k = kcount::scope(
            Kernel::Col2im,
            grad_cols.numel() as u64,
            4 * (grad_cols.numel() as u64 + (b * c * h * w) as u64),
        );
        let mut out = Tensor::zeros(&[b, c, h, w]);
        let dst = out.data_mut();
        let g = grad_cols.data();
        for bi in 0..b {
            for oy in 0..oh {
                for ox in 0..ow {
                    let row = ((bi * oh + oy) * ow + ox) * patch;
                    for ci in 0..c {
                        for ky in 0..k {
                            let iy = (oy * s + ky) as isize - p as isize;
                            if iy < 0 || iy as usize >= h {
                                continue;
                            }
                            let base = ((bi * c + ci) * h + iy as usize) * w;
                            let src = row + (ci * k + ky) * k;
                            for kx in 0..k {
                                let ix = (ox * s + kx) as isize - p as isize;
                                if ix < 0 || ix as usize >= w {
                                    continue;
                                }
                                dst[base + ix as usize] += g[src + kx];
                            }
                        }
                    }
                }
            }
        }
        out
    }
}

impl Layer for Conv2d {
    fn forward(&mut self, input: &Tensor, _train: bool) -> Tensor {
        let [b, c, h, w] = four(input.shape());
        assert_eq!(c, self.in_channels, "Conv2d channel mismatch");
        let (oh, ow) = (self.out_size(h), self.out_size(w));
        let cols = self.im2col(input);
        let mut out2 = cols.matmul(&self.weight); // [B*OH*OW, OC]
        let oc = self.out_channels;
        let bias = self.bias.data();
        for r in 0..out2.rows() {
            let row = &mut out2.data_mut()[r * oc..(r + 1) * oc];
            for (v, &bv) in row.iter_mut().zip(bias) {
                *v += bv;
            }
        }
        // Rearrange [B*OH*OW, OC] -> [B, OC, OH, OW].
        let _k = kcount::scope(Kernel::Transpose, 0, 8 * (b * oc * oh * ow) as u64);
        let mut out = vec![0.0f32; b * oc * oh * ow];
        let src = out2.data();
        for bi in 0..b {
            for oy in 0..oh {
                for ox in 0..ow {
                    let r = ((bi * oh + oy) * ow + ox) * oc;
                    for co in 0..oc {
                        out[((bi * oc + co) * oh + oy) * ow + ox] = src[r + co];
                    }
                }
            }
        }
        self.cached_cols = Some(cols);
        self.cached_input_shape = input.shape().to_vec();
        Tensor::from_vec(vec![b, oc, oh, ow], out)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let cols = self.cached_cols.as_ref().expect("Conv2d::backward called before forward");
        let [b, oc, oh, ow] = four(grad_out.shape());
        assert_eq!(oc, self.out_channels);
        // Rearrange grad [B, OC, OH, OW] -> [B*OH*OW, OC].
        let rearrange = kcount::scope(Kernel::Transpose, 0, 8 * (b * oh * ow * oc) as u64);
        let mut g2 = vec![0.0f32; b * oh * ow * oc];
        let src = grad_out.data();
        for bi in 0..b {
            for co in 0..oc {
                for oy in 0..oh {
                    for ox in 0..ow {
                        g2[((bi * oh + oy) * ow + ox) * oc + co] =
                            src[((bi * oc + co) * oh + oy) * ow + ox];
                    }
                }
            }
        }
        let g2 = Tensor::from_vec(vec![b * oh * ow, oc], g2);
        drop(rearrange);
        self.grad_weight.add_assign(&cols.transpose2().matmul(&g2));
        for r in 0..g2.rows() {
            let row = g2.row(r);
            for (g, &gv) in self.grad_bias.data_mut().iter_mut().zip(row) {
                *g += gv;
            }
        }
        let grad_cols = g2.matmul(&self.weight.transpose2());
        self.col2im(&grad_cols)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Tensor, &mut Tensor)) {
        f(&mut self.weight, &mut self.grad_weight);
        f(&mut self.bias, &mut self.grad_bias);
    }

    fn name(&self) -> &'static str {
        "Conv2d"
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

fn four(shape: &[usize]) -> [usize; 4] {
    assert_eq!(shape.len(), 4, "expected a 4-D tensor, got shape {shape:?}");
    [shape[0], shape[1], shape[2], shape[3]]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_shape_follows_conv_arithmetic() {
        let mut conv = Conv2d::new(3, 8, 3, 1, 1, 0);
        let x = Tensor::zeros(&[2, 3, 8, 8]);
        let y = conv.forward(&x, true);
        assert_eq!(y.shape(), &[2, 8, 8, 8]);

        let mut conv = Conv2d::new(1, 4, 5, 1, 0, 0);
        let x = Tensor::zeros(&[1, 1, 8, 8]);
        assert_eq!(conv.forward(&x, true).shape(), &[1, 4, 4, 4]);
    }

    #[test]
    fn identity_kernel_reproduces_input() {
        // 1x1 kernel with weight 1 and bias 0 is the identity on one channel.
        let mut conv = Conv2d::new(1, 1, 1, 1, 0, 0);
        let mut first = true;
        conv.visit_params(&mut |p, _| {
            // Weight <- 1 (first visited), bias <- 0.
            let v = if first { 1.0 } else { 0.0 };
            first = false;
            p.data_mut().fill(v);
        });
        let x = Tensor::from_vec(vec![1, 1, 2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let y = conv.forward(&x, true);
        assert_eq!(y.data(), x.data());
    }

    #[test]
    fn numerical_gradient_check_small_conv() {
        let mut conv = Conv2d::new(2, 3, 3, 1, 1, 3);
        let mut rng = StdRng::seed_from_u64(9);
        let x = Tensor::randn(&[1, 2, 4, 4], 1.0, &mut rng);
        let eps = 1e-2f32;

        let y = conv.forward(&x, true);
        conv.zero_grad();
        let gx = conv.backward(&Tensor::ones(y.shape()));

        // Input gradient spot-check on a handful of positions.
        for &i in &[0usize, 5, 13, 31] {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let num = (conv.forward(&xp, true).sum() - conv.forward(&xm, true).sum()) / (2.0 * eps);
            assert!(
                (num - gx.data()[i]).abs() < 5e-2,
                "input grad mismatch at {i}: {num} vs {}",
                gx.data()[i]
            );
        }

        // Weight gradient spot-check.
        let mut analytic = Vec::new();
        conv.visit_params(&mut |_, g| analytic.extend_from_slice(g.data()));
        fn bump(conv: &mut Conv2d, i: usize, delta: f32) {
            let mut first = true;
            conv.visit_params(&mut |p, _| {
                if first {
                    p.data_mut()[i] += delta;
                    first = false;
                }
            });
        }
        for &i in &[0usize, 7, 20] {
            bump(&mut conv, i, eps);
            let fp = conv.forward(&x, true).sum();
            bump(&mut conv, i, -2.0 * eps);
            let fm = conv.forward(&x, true).sum();
            bump(&mut conv, i, eps);
            let num = (fp - fm) / (2.0 * eps);
            assert!(
                (num - analytic[i]).abs() < 5e-2,
                "weight grad mismatch at {i}: {num} vs {}",
                analytic[i]
            );
        }
    }

    #[test]
    fn padding_zero_extends_borders() {
        // A 3x3 all-ones kernel on a 1x1 input with padding 1 just copies the
        // single input value to the single output location.
        let mut conv = Conv2d::new(1, 1, 3, 1, 1, 0);
        conv.visit_params(&mut |p, _| {
            if p.numel() == 9 {
                p.data_mut().fill(1.0);
            }
        });
        let x = Tensor::from_vec(vec![1, 1, 1, 1], vec![2.5]);
        let y = conv.forward(&x, true);
        assert_eq!(y.shape(), &[1, 1, 1, 1]);
        assert_eq!(y.data()[0], 2.5);
    }
}
