use fedmigr_tensor::kcount::{self, Kernel};
use fedmigr_tensor::Tensor;

use crate::Layer;

/// Mini-batch SGD with optional momentum and weight decay.
///
/// Velocity buffers are keyed by visit order, which is stable for a given
/// model architecture (see [`Layer::visit_params`]).
#[derive(Clone, Debug)]
pub struct Sgd {
    /// Learning rate η.
    pub lr: f32,
    /// Momentum coefficient (0 disables momentum).
    pub momentum: f32,
    /// L2 weight decay added to gradients before the update.
    pub weight_decay: f32,
    velocity: Vec<Vec<f32>>,
}

impl Sgd {
    /// Plain SGD with the given learning rate.
    pub fn new(lr: f32) -> Self {
        Self { lr, momentum: 0.0, weight_decay: 0.0, velocity: Vec::new() }
    }

    /// SGD with momentum.
    pub fn with_momentum(lr: f32, momentum: f32) -> Self {
        Self { momentum, ..Self::new(lr) }
    }

    /// Sets L2 weight decay, builder-style.
    pub fn weight_decay(mut self, wd: f32) -> Self {
        self.weight_decay = wd;
        self
    }

    /// Applies one update to every parameter of `model` using its
    /// accumulated gradients, then leaves the gradients untouched (call
    /// [`Layer::zero_grad`] before the next accumulation).
    pub fn step(&mut self, model: &mut dyn Layer) {
        let lr = self.lr;
        let momentum = self.momentum;
        let wd = self.weight_decay;
        let velocity = &mut self.velocity;
        let mut idx = 0usize;
        model.visit_params(&mut |p: &mut Tensor, g: &mut Tensor| {
            if velocity.len() <= idx {
                velocity.push(vec![0.0; p.numel()]);
            }
            let v = &mut velocity[idx];
            assert_eq!(v.len(), p.numel(), "parameter shape changed between steps");
            let _k = kcount::scope(Kernel::Optimizer, 4 * p.numel() as u64, 20 * p.numel() as u64);
            for ((pv, gv), vel) in p.data_mut().iter_mut().zip(g.data()).zip(v.iter_mut()) {
                let grad = gv + wd * *pv;
                if momentum > 0.0 {
                    *vel = momentum * *vel + grad;
                    *pv -= lr * *vel;
                } else {
                    *pv -= lr * grad;
                }
            }
            idx += 1;
        });
    }

    /// Drops momentum state; use when the model parameters are replaced
    /// wholesale (e.g. after a model migration or global aggregation).
    pub fn reset_state(&mut self) {
        self.velocity.clear();
    }
}

/// Scales the model's accumulated gradients so their global L2 norm does
/// not exceed `max_norm`; returns the pre-clip norm. A standard guard
/// against exploding gradients in long federated runs.
pub fn clip_grad_norm(model: &mut dyn Layer, max_norm: f32) -> f32 {
    assert!(max_norm > 0.0, "max_norm must be positive");
    let mut sq = 0.0f32;
    model.visit_params(&mut |_, g: &mut Tensor| {
        sq += g.data().iter().map(|x| x * x).sum::<f32>();
    });
    let norm = sq.sqrt();
    if norm > max_norm {
        let scale = max_norm / norm;
        model.visit_params(&mut |_, g: &mut Tensor| g.scale_assign(scale));
    }
    norm
}

/// Adds the FedProx proximal gradient `mu * (w - w_global)` to the model's
/// accumulated gradients.
///
/// `global` must be the flattened global parameters in model visit order
/// (see [`crate::params::param_vector`]).
pub fn apply_prox_term(model: &mut dyn Layer, global: &[f32], mu: f32) {
    let mut offset = 0usize;
    model.visit_params(&mut |p: &mut Tensor, g: &mut Tensor| {
        let n = p.numel();
        let gslice = &global[offset..offset + n];
        for ((gv, pv), wv) in g.data_mut().iter_mut().zip(p.data()).zip(gslice) {
            *gv += mu * (pv - wv);
        }
        offset += n;
    });
    assert_eq!(offset, global.len(), "global parameter vector length mismatch");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::param_vector;
    use crate::Dense;

    #[test]
    fn step_descends_along_gradient() {
        let mut layer = Dense::new(1, 1, 0);
        // Set w = 2, b = 0; objective f(w) = w so grad_w = 1 after one
        // forward/backward with unit input and unit output grad.
        layer.visit_params(&mut |p, _| {
            let v = if p.numel() == 1 { 2.0 } else { 0.0 };
            p.data_mut().fill(v);
        });
        let x = Tensor::ones(&[1, 1]);
        let y = layer.forward(&x, true);
        layer.zero_grad();
        layer.backward(&Tensor::ones(y.shape()));
        let mut opt = Sgd::new(0.5);
        opt.step(&mut layer);
        let w = param_vector(&mut layer);
        assert!((w[0] - 1.5).abs() < 1e-6, "w after step: {}", w[0]);
    }

    #[test]
    fn momentum_accumulates_velocity() {
        let mut layer = Dense::new(1, 1, 0);
        layer.visit_params(&mut |p, g| {
            p.fill_zero();
            g.data_mut().fill(1.0);
        });
        let mut opt = Sgd::with_momentum(1.0, 0.5);
        opt.step(&mut layer); // v = 1, w = -1
        layer.visit_params(&mut |_, g| g.data_mut().fill(1.0));
        opt.step(&mut layer); // v = 1.5, w = -2.5
        let w = param_vector(&mut layer);
        assert!((w[0] + 2.5).abs() < 1e-6, "w = {}", w[0]);
    }

    #[test]
    fn prox_term_pulls_towards_global() {
        let mut layer = Dense::new(1, 1, 0);
        layer.visit_params(&mut |p, g| {
            p.data_mut().fill(1.0);
            g.fill_zero();
        });
        let global = vec![0.0f32; 2];
        apply_prox_term(&mut layer, &global, 0.1);
        let mut grads = Vec::new();
        layer.visit_params(&mut |_, g| grads.extend_from_slice(g.data()));
        // grad = mu * (w - w_global) = 0.1 * (1 - 0) for each parameter.
        assert!(grads.iter().all(|&g| (g - 0.1).abs() < 1e-6));
    }

    #[test]
    fn clip_grad_norm_rescales_large_gradients() {
        let mut layer = Dense::new(1, 1, 0);
        layer.visit_params(&mut |_, g| g.data_mut().fill(3.0));
        // Two grads of 3.0 -> norm sqrt(18) ≈ 4.24.
        let norm = clip_grad_norm(&mut layer, 1.0);
        assert!((norm - 18.0f32.sqrt()).abs() < 1e-5);
        let mut after = 0.0f32;
        layer.visit_params(&mut |_, g| after += g.data().iter().map(|x| x * x).sum::<f32>());
        assert!((after.sqrt() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn clip_grad_norm_leaves_small_gradients_alone() {
        let mut layer = Dense::new(1, 1, 0);
        layer.visit_params(&mut |_, g| g.data_mut().fill(0.1));
        clip_grad_norm(&mut layer, 10.0);
        let mut grads = Vec::new();
        layer.visit_params(&mut |_, g| grads.extend_from_slice(g.data()));
        assert!(grads.iter().all(|&g| (g - 0.1).abs() < 1e-7));
    }

    #[test]
    fn weight_decay_shrinks_parameters() {
        let mut layer = Dense::new(1, 1, 0);
        layer.visit_params(&mut |p, g| {
            p.data_mut().fill(1.0);
            g.fill_zero();
        });
        let mut opt = Sgd::new(0.1).weight_decay(1.0);
        opt.step(&mut layer);
        let w = param_vector(&mut layer);
        assert!(w.iter().all(|&x| (x - 0.9).abs() < 1e-6));
    }
}
