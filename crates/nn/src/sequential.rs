use fedmigr_tensor::Tensor;

use crate::Layer;

/// An ordered stack of layers, itself a [`Layer`], so it can be nested (the
/// residual block uses a `Sequential` for its convolution path).
#[derive(Clone, Default)]
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
}

impl Sequential {
    /// Creates an empty container.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a layer, builder-style.
    pub fn push(mut self, layer: impl Layer + 'static) -> Self {
        self.layers.push(Box::new(layer));
        self
    }

    /// Appends a boxed layer.
    pub fn push_boxed(mut self, layer: Box<dyn Layer>) -> Self {
        self.layers.push(layer);
        self
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the container is empty.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }
}

impl Layer for Sequential {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let mut x = input.clone();
        for layer in &mut self.layers {
            x = layer.forward(&x, train);
        }
        x
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mut g = grad_out.clone();
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(&g);
        }
        g
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Tensor, &mut Tensor)) {
        for layer in &mut self.layers {
            layer.visit_params(f);
        }
    }

    fn name(&self) -> &'static str {
        "Sequential"
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Dense, Relu};

    #[test]
    fn forward_composes_layers() {
        let mut net =
            Sequential::new().push(Dense::new(4, 8, 0)).push(Relu::new()).push(Dense::new(8, 2, 1));
        let x = Tensor::ones(&[3, 4]);
        let y = net.forward(&x, true);
        assert_eq!(y.shape(), &[3, 2]);
    }

    #[test]
    fn param_count_sums_over_layers() {
        let mut net = Sequential::new().push(Dense::new(4, 8, 0)).push(Dense::new(8, 2, 1));
        assert_eq!(net.param_count(), 4 * 8 + 8 + 8 * 2 + 2);
    }

    #[test]
    fn backward_runs_in_reverse() {
        let mut net = Sequential::new().push(Dense::new(4, 4, 0)).push(Relu::new());
        let x = Tensor::ones(&[2, 4]);
        let y = net.forward(&x, true);
        let g = net.backward(&Tensor::ones(y.shape()));
        assert_eq!(g.shape(), &[2, 4]);
    }
}
