//! Flat parameter vectors: the unit of aggregation and migration.
//!
//! FedAvg's global aggregation (Eq. 7 of the paper) averages *parameter
//! vectors*, and FedMigr's model migration ships a parameter vector from one
//! client to another. These helpers convert between a model's per-layer
//! tensors and a single `Vec<f32>` in stable visit order, plus a compact
//! little-endian wire encoding used by the network simulator to account for
//! transferred bytes.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use fedmigr_tensor::Tensor;

use crate::Layer;

/// Flattens every parameter of `model` into a single vector (visit order).
pub fn param_vector(model: &mut dyn Layer) -> Vec<f32> {
    let mut out = Vec::new();
    model.visit_params(&mut |p: &mut Tensor, _| out.extend_from_slice(p.data()));
    out
}

/// Flattens every accumulated gradient of `model` into a single vector.
pub fn grad_vector(model: &mut dyn Layer) -> Vec<f32> {
    let mut out = Vec::new();
    model.visit_params(&mut |_, g: &mut Tensor| out.extend_from_slice(g.data()));
    out
}

/// Writes `values` back into the parameters of `model` (visit order).
///
/// # Panics
/// Panics if `values.len()` differs from the model's parameter count.
pub fn set_param_vector(model: &mut dyn Layer, values: &[f32]) {
    let mut offset = 0usize;
    model.visit_params(&mut |p: &mut Tensor, _| {
        let n = p.numel();
        assert!(
            offset + n <= values.len(),
            "parameter vector length mismatch: need at least {} values, got {}",
            offset + n,
            values.len()
        );
        p.data_mut().copy_from_slice(&values[offset..offset + n]);
        offset += n;
    });
    assert_eq!(offset, values.len(), "parameter vector length mismatch");
}

/// Weighted average of parameter vectors: `sum_k weight_k * w_k / sum_k
/// weight_k` — FedAvg's global aggregation with `weight_k = n_k`.
///
/// # Panics
/// Panics on empty input, mismatched lengths, or non-positive total weight.
pub fn weighted_average(entries: &[(&[f32], f64)]) -> Vec<f32> {
    assert!(!entries.is_empty(), "cannot average zero models");
    let dim = entries[0].0.len();
    let total: f64 = entries.iter().map(|(_, w)| *w).sum();
    assert!(total > 0.0, "total aggregation weight must be positive");
    let mut out = vec![0.0f64; dim];
    for (vec, w) in entries {
        assert_eq!(vec.len(), dim, "parameter vectors must share a dimension");
        let coef = *w / total;
        for (o, &v) in out.iter_mut().zip(*vec) {
            *o += coef * v as f64;
        }
    }
    out.into_iter().map(|x| x as f32).collect()
}

/// Size in bytes of the wire encoding of a parameter vector of length `n`.
pub fn wire_size(n: usize) -> u64 {
    8 + 4 * n as u64
}

/// Encodes a parameter vector as `u64 length || f32 LE values`.
pub fn encode_params(values: &[f32]) -> Bytes {
    let mut buf = BytesMut::with_capacity(8 + 4 * values.len());
    buf.put_u64_le(values.len() as u64);
    for &v in values {
        buf.put_f32_le(v);
    }
    buf.freeze()
}

/// Decodes a parameter vector produced by [`encode_params`].
///
/// Returns `None` if the buffer is truncated or the length prefix is
/// inconsistent.
pub fn decode_params(mut bytes: Bytes) -> Option<Vec<f32>> {
    if bytes.len() < 8 {
        return None;
    }
    let n = bytes.get_u64_le() as usize;
    if bytes.len() != 4 * n {
        return None;
    }
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(bytes.get_f32_le());
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Dense, Sequential};

    fn small_model(seed: u64) -> Sequential {
        Sequential::new().push(Dense::new(3, 4, seed)).push(Dense::new(4, 2, seed + 1))
    }

    #[test]
    fn vector_round_trip() {
        let mut m = small_model(0);
        let v = param_vector(&mut m);
        assert_eq!(v.len(), m.param_count());
        let doubled: Vec<f32> = v.iter().map(|x| x * 2.0).collect();
        set_param_vector(&mut m, &doubled);
        assert_eq!(param_vector(&mut m), doubled);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn set_rejects_wrong_length() {
        let mut m = small_model(0);
        set_param_vector(&mut m, &[0.0; 3]);
    }

    #[test]
    fn weighted_average_matches_fedavg_formula() {
        let a = [1.0f32, 2.0];
        let b = [3.0f32, 6.0];
        // n_a = 1, n_b = 3 -> w = (1*1 + 3*3)/4, (1*2 + 3*6)/4
        let avg = weighted_average(&[(&a, 1.0), (&b, 3.0)]);
        assert!((avg[0] - 2.5).abs() < 1e-6);
        assert!((avg[1] - 5.0).abs() < 1e-6);
    }

    #[test]
    fn equal_weights_give_plain_mean() {
        let a = [0.0f32, 10.0];
        let b = [10.0f32, 0.0];
        let avg = weighted_average(&[(&a, 5.0), (&b, 5.0)]);
        assert_eq!(avg, vec![5.0, 5.0]);
    }

    #[test]
    fn wire_round_trip() {
        let v = vec![1.5f32, -2.25, 0.0, f32::MIN_POSITIVE];
        let encoded = encode_params(&v);
        assert_eq!(encoded.len() as u64, wire_size(v.len()));
        assert_eq!(decode_params(encoded).unwrap(), v);
    }

    #[test]
    fn decode_rejects_truncated() {
        let v = vec![1.0f32; 10];
        let encoded = encode_params(&v);
        let truncated = encoded.slice(0..encoded.len() - 1);
        assert!(decode_params(truncated).is_none());
        assert!(decode_params(Bytes::from_static(&[0, 1, 2])).is_none());
    }
}
