//! Property tests for checkpoint corruption handling: a snapshot with any
//! bit flipped or any suffix truncated must be rejected with
//! `io::ErrorKind::InvalidData` — never silently loaded into a model.

use std::io;

use bytes::Bytes;
use fedmigr_nn::checkpoint::{from_bytes, to_bytes};
use fedmigr_nn::zoo;
use proptest::prelude::*;

fn snapshot() -> Vec<u8> {
    let mut model = zoo::mlp(5, &[6], 3, 42);
    to_bytes(&mut model).to_vec()
}

proptest! {
    #[test]
    fn bit_flips_are_always_rejected(pos in 0usize..1000, bit in 0u8..8) {
        let clean = snapshot();
        let pos = pos % clean.len();
        let mut corrupt = clean.clone();
        corrupt[pos] ^= 1 << bit;
        let before = {
            let mut m = zoo::mlp(5, &[6], 3, 7);
            m.params()
        };
        let mut target = zoo::mlp(5, &[6], 3, 7);
        let err = from_bytes(&mut target, Bytes::from(corrupt))
            .expect_err("bit-flipped checkpoint must not load");
        prop_assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        // Rejection must leave the target model untouched.
        prop_assert_eq!(target.params(), before);
    }

    #[test]
    fn truncations_are_always_rejected(keep in 0usize..1000) {
        let clean = snapshot();
        let keep = keep % clean.len(); // Strictly shorter than the original.
        let mut target = zoo::mlp(5, &[6], 3, 7);
        let err = from_bytes(&mut target, Bytes::from(clean[..keep].to_vec()))
            .expect_err("truncated checkpoint must not load");
        prop_assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }
}

#[test]
fn clean_snapshot_still_loads() {
    let mut a = zoo::mlp(5, &[6], 3, 42);
    let bytes = Bytes::from(snapshot());
    let mut b = zoo::mlp(5, &[6], 3, 7);
    from_bytes(&mut b, bytes).unwrap();
    assert_eq!(a.params(), b.params());
}
