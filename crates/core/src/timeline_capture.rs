//! Round-timeline capture for the runners: turns the dense/fleet round
//! structure and the flow transport's [`PhaseTrace`]s into the JSONL
//! timeline of [`fedmigr_diag::timeline`].
//!
//! Everything here is observation-only. The capture reads the virtual
//! clock and the already-simulated phase results; it never consumes the
//! run's RNG stream, never advances the clock, and a write failure only
//! disables further recording (mirroring the flight recorder's contract),
//! so a timeline-on run stays byte-identical on CSV and flight output.
//!
//! Interval semantics per client and round:
//!
//! * `train` — from round start to the earlier of the client's training
//!   time and the straggler deadline;
//! * `wait` — from its train (or upload) end to the end of the enclosing
//!   phase: time spent waiting for stragglers or the upload deadline;
//! * `upload` — from phase start until the client's flow settled or the
//!   phase was cut (covers both directions; lockstep phases record one
//!   coarse interval spanning the serialized transfer window);
//! * `migrate` — a migration source's transfer time within the wave;
//! * `stale_buffered` — a late uploader's result parked in the staleness
//!   buffer until the round closes;
//! * `idle` — whatever remains between a client's last activity and the
//!   round end.
//!
//! Flow events and link series are clipped to the virtual time the clock
//! actually charged for the phase (a deadline-cut upload phase ends at the
//! deadline), which keeps start timestamps globally monotone — the
//! invariant `telemetry_validate --timeline` enforces.

use fedmigr_diag::timeline::{IntervalState, TimelineHeader, TimelineRecorder, TIMELINE_VERSION};
use fedmigr_net::PhaseTrace;
use fedmigr_telemetry::names;

/// Minimum interval/series span worth recording, in virtual seconds.
const MIN_SPAN_S: f64 = 1e-12;

/// Per-run timeline capture state. Inert (all methods cheap no-ops) when
/// constructed without an output path.
pub(crate) struct TimelineCapture {
    rec: Option<TimelineRecorder>,
    epoch: usize,
    round_t0: f64,
    /// Sparse mode (fleet): closing tail intervals are only emitted for
    /// clients that appeared this round, so a 10k-client fleet round costs
    /// O(cohort), not O(K), timeline lines.
    sparse: bool,
    /// Per-client end of the last recorded activity this round.
    busy_until: Vec<f64>,
    /// Clients with any recorded activity this round.
    touched: Vec<bool>,
    /// Set for late uploaders: start of their stale-buffered span.
    stale_from: Vec<Option<f64>>,
}

impl TimelineCapture {
    /// Opens the recorder and writes the header, or returns an inert
    /// capture when `path` is `None` (or on any I/O error, which is
    /// logged and swallowed — recording must never fail the run).
    pub(crate) fn new(
        path: Option<&str>,
        mode: &str,
        scheme: &str,
        transport: &str,
        clients: usize,
        seed: u64,
        sparse: bool,
    ) -> Self {
        let rec = path.and_then(|p| match TimelineRecorder::create(p) {
            Ok(mut rec) => {
                let header = TimelineHeader {
                    version: TIMELINE_VERSION,
                    mode: mode.into(),
                    scheme: scheme.into(),
                    transport: transport.into(),
                    clients,
                    seed,
                };
                match rec.header(&header) {
                    Ok(()) => Some(rec),
                    Err(e) => {
                        fedmigr_telemetry::error!(
                            "core::timeline",
                            "timeline header write failed for {p}: {e}; timeline disabled"
                        );
                        None
                    }
                }
            }
            Err(e) => {
                fedmigr_telemetry::error!(
                    "core::timeline",
                    "cannot open timeline {p}: {e}; timeline disabled"
                );
                None
            }
        });
        TimelineCapture {
            rec,
            epoch: 0,
            round_t0: 0.0,
            sparse,
            busy_until: vec![0.0; clients],
            touched: vec![false; clients],
            stale_from: vec![None; clients],
        }
    }

    /// Whether anything is being recorded (drives the `traced` flag handed
    /// to the transport simulations).
    pub(crate) fn active(&self) -> bool {
        self.rec.is_some()
    }

    /// Starts a round at virtual time `t0`.
    pub(crate) fn round_start(&mut self, epoch: usize, t0: f64) {
        if self.rec.is_none() {
            return;
        }
        self.epoch = epoch;
        self.round_t0 = t0;
        self.busy_until.iter_mut().for_each(|t| *t = t0);
        self.touched.iter_mut().for_each(|t| *t = false);
        self.stale_from.iter_mut().for_each(|s| *s = None);
    }

    /// Records one client's training span: it trained until `train_end`
    /// and the phase (straggler-limited) released everyone at `phase_end`;
    /// the difference is `wait`.
    pub(crate) fn train(&mut self, client: usize, t0: f64, train_end: f64, phase_end: f64) {
        let Some(rec) = self.rec.as_mut() else { return };
        let cut = train_end.min(phase_end);
        if cut - t0 > MIN_SPAN_S {
            rec.interval(self.epoch, client, IntervalState::Train, t0, cut);
        }
        if phase_end - cut > MIN_SPAN_S {
            rec.interval(self.epoch, client, IntervalState::Wait, cut, phase_end);
        }
        self.busy_until[client] = self.busy_until[client].max(phase_end);
        self.touched[client] = true;
    }

    /// Records one client's upload (or download) span inside a transport
    /// phase running `[t0, t0 + dur]`: its own flow settled at `t0 +
    /// finish` (clipped to the phase cut), the rest of the phase is `wait`.
    /// A `late` uploader is additionally parked in the staleness buffer
    /// from the phase cut until the round closes.
    pub(crate) fn upload(&mut self, client: usize, t0: f64, finish: f64, dur: f64, late: bool) {
        let Some(rec) = self.rec.as_mut() else { return };
        let cut = finish.min(dur);
        if cut > MIN_SPAN_S {
            rec.interval(self.epoch, client, IntervalState::Upload, t0, t0 + cut);
        }
        if dur - cut > MIN_SPAN_S {
            rec.interval(self.epoch, client, IntervalState::Wait, t0 + cut, t0 + dur);
        }
        self.busy_until[client] = self.busy_until[client].max(t0 + dur);
        self.touched[client] = true;
        if late {
            self.stale_from[client] = Some(t0 + dur);
        }
    }

    /// Records a migration source's transfer inside the wave starting at
    /// `t0`.
    pub(crate) fn migrate(&mut self, client: usize, t0: f64, dur: f64) {
        let Some(rec) = self.rec.as_mut() else { return };
        if dur > MIN_SPAN_S {
            rec.interval(self.epoch, client, IntervalState::Migrate, t0, t0 + dur);
        }
        self.busy_until[client] = self.busy_until[client].max(t0 + dur);
        self.touched[client] = true;
    }

    /// Streams a transport phase's labelled flow trace: link declarations,
    /// flow lifecycle events and link utilization/queue series, all
    /// offset to absolute virtual time (`t0` = phase start) and clipped at
    /// `t_end` — the virtual time the clock actually charged. Also feeds
    /// the `fedmigr_net_*` trace metric families.
    pub(crate) fn phase_trace(&mut self, phase: &str, t0: f64, t_end: f64, pt: &PhaseTrace) {
        let Some(rec) = self.rec.as_mut() else { return };
        let reg = fedmigr_telemetry::global().registry();
        for (idx, label) in pt.link_labels.iter().enumerate() {
            rec.link(self.epoch, phase, label, pt.link_capacity[idx], t0);
        }
        let fallback = String::new();
        for ev in &pt.flow.events {
            if t0 + ev.t > t_end + MIN_SPAN_S {
                continue;
            }
            let link = pt
                .flow_paths
                .get(ev.flow)
                .and_then(|path| path.first())
                .and_then(|&l| pt.link_labels.get(l))
                .unwrap_or(&fallback);
            let owner = pt.flow_owners.get(ev.flow).copied().unwrap_or(usize::MAX);
            let name = ev.kind.name();
            rec.flow_event(self.epoch, phase, ev.flow, owner, link, name, t0 + ev.t, ev.cwnd);
            reg.counter(names::FLOW_EVENTS_TOTAL, &[("event", name)]).add(1);
        }
        for s in &pt.flow.links {
            let n = s.t.iter().take_while(|&&t| t0 + t <= t_end + MIN_SPAN_S).count();
            if n == 0 {
                continue;
            }
            let label = pt.link_labels.get(s.link).cloned().unwrap_or_default();
            let t_abs: Vec<f64> = s.t[..n].iter().map(|&t| t0 + t).collect();
            rec.link_series(self.epoch, phase, &label, &t_abs, &s.util[..n], &s.queue[..n]);
            // Busy seconds: spans with positive utilization, the last one
            // running to the phase cut.
            let mut busy = 0.0;
            for (i, &u) in s.util[..n].iter().enumerate() {
                if u <= 0.0 {
                    continue;
                }
                let end = t_abs.get(i + 1).copied().unwrap_or(t_end);
                busy += (end - t_abs[i]).max(0.0);
            }
            if busy > 0.0 {
                reg.histogram(names::LINK_BUSY_SECONDS, &[]).observe(busy);
            }
        }
    }

    /// Closes the round at virtual time `t1`: tail `idle` /
    /// `stale_buffered` intervals per client, then the sorted flush behind
    /// the round marker. Clients that never appeared this round (inactive
    /// or sampled out) idle across the whole round.
    pub(crate) fn round_end(&mut self, t1: f64) {
        if self.rec.is_none() {
            return;
        }
        let epoch = self.epoch;
        for client in 0..self.busy_until.len() {
            if self.sparse && !self.touched[client] {
                continue;
            }
            let (from, state) = match self.stale_from[client] {
                Some(from) => (from, IntervalState::StaleBuffered),
                None => (self.busy_until[client], IntervalState::Idle),
            };
            if t1 - from > MIN_SPAN_S {
                if let Some(rec) = self.rec.as_mut() {
                    rec.interval(epoch, client, state, from, t1);
                }
            }
        }
        let t0 = self.round_t0;
        if let Some(rec) = self.rec.as_mut() {
            if let Err(e) = rec.round(epoch, t0, t1) {
                fedmigr_telemetry::error!(
                    "core::timeline",
                    "timeline round write failed: {e}; timeline stopped"
                );
                self.rec = None;
            }
        }
    }

    /// Notes a watchdog rollback to the end of `epoch`; the validator's
    /// time watermark restarts there.
    pub(crate) fn rollback(&mut self, epoch: usize) {
        if let Some(rec) = self.rec.as_mut() {
            if let Err(e) = rec.rollback(epoch) {
                fedmigr_telemetry::error!(
                    "core::timeline",
                    "timeline rollback write failed: {e}; timeline stopped"
                );
                self.rec = None;
            }
        }
    }

    /// Writes the finish line (skipped for killed runs, like the flight
    /// summary) and flushes.
    pub(crate) fn finish(&mut self, epochs: usize) {
        if let Some(rec) = self.rec.as_mut() {
            if let Err(e) = rec.finish(epochs) {
                fedmigr_telemetry::error!("core::timeline", "timeline finish write failed: {e}");
            }
            self.rec = None;
        }
    }
}
