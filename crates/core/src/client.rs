use std::sync::Arc;

use fedmigr_data::{distribution::label_distribution, Dataset};
use fedmigr_nn::{Model, Sgd};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Checkpoint capture of one [`FlClient`]'s mutable state. The dataset,
/// optimizer (SGD with zero momentum is stateless) and label map are
/// rebuilt from configuration on restore; everything a round mutates —
/// model parameters, the private batch-order RNG, the in-place shuffled
/// index order and the migration counter — is here.
#[derive(Clone, Debug, PartialEq)]
pub struct ClientState {
    /// Local model parameters.
    pub params: Vec<f32>,
    /// Raw state of the private batch-order RNG.
    pub rng: [u64; 4],
    /// Local data indices in their current (shuffled) order.
    pub indices: Vec<usize>,
    /// Foreign models hosted so far.
    pub migrations_received: usize,
}

/// One federated-learning client: a slice of the training data, a local
/// model, and an optimizer.
pub struct FlClient {
    id: usize,
    data: Arc<Dataset>,
    indices: Vec<usize>,
    model: Model,
    opt: Sgd,
    rng: StdRng,
    label_dist: Vec<f64>,
    migrations_received: usize,
    /// Training-time label remap (the label-flip poisoning attack).
    /// `None` = honest training. The dataset itself is shared through an
    /// `Arc` and stays immutable; only this client's view is poisoned.
    label_map: Option<Vec<usize>>,
}

impl FlClient {
    /// Creates a client over `indices` of `data`.
    pub fn new(
        id: usize,
        data: Arc<Dataset>,
        indices: Vec<usize>,
        model: Model,
        lr: f32,
        seed: u64,
    ) -> Self {
        assert!(!indices.is_empty(), "client {id} has no data");
        let label_dist = label_distribution(&data, &indices);
        Self {
            id,
            data,
            indices,
            model,
            opt: Sgd::new(lr),
            rng: StdRng::seed_from_u64(seed ^ (id as u64).wrapping_mul(0x9E37_79B9)),
            label_dist,
            migrations_received: 0,
            label_map: None,
        }
    }

    /// Installs a training-time label remap (`map[true_label] =
    /// poisoned_label`), the label-flip attack. The advertised
    /// [`FlClient::label_dist`] is deliberately left untouched: the
    /// attacker *lies* about its marginal, so distribution-aware planners
    /// see nothing unusual.
    pub fn set_label_map(&mut self, map: Vec<usize>) {
        assert_eq!(map.len(), self.label_dist.len(), "label map must cover every class");
        self.label_map = Some(map);
    }

    /// Client id.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Local dataset size `n_k`.
    pub fn num_samples(&self) -> usize {
        self.indices.len()
    }

    /// Local label marginal `q_k` (fixed for the run — local data never
    /// moves, only models do).
    pub fn label_dist(&self) -> &[f64] {
        &self.label_dist
    }

    /// Number of foreign models this client has hosted so far.
    pub fn migrations_received(&self) -> usize {
        self.migrations_received
    }

    /// Runs one local epoch of mini-batch SGD (Eq. 6); `max_batches` caps
    /// the number of mini-batches (None = full pass). `prox` enables the
    /// FedProx proximal term towards the given global parameter vector.
    /// Returns the mean mini-batch loss.
    pub fn train_epoch(
        &mut self,
        batch_size: usize,
        max_batches: Option<usize>,
        prox: Option<(&[f32], f32)>,
    ) -> f32 {
        assert!(batch_size > 0);
        self.indices.shuffle(&mut self.rng);
        let mut total = 0.0f32;
        let mut batches = 0usize;
        let limit = max_batches.unwrap_or(usize::MAX);
        for chunk in self.indices.chunks(batch_size) {
            if batches >= limit {
                break;
            }
            let (x, mut labels) = self.data.batch(chunk);
            if let Some(map) = &self.label_map {
                labels = fedmigr_data::apply_label_map(&labels, map);
            }
            let loss = match prox {
                Some((global, mu)) => {
                    self.model.train_step_prox(&x, &labels, &mut self.opt, global, mu)
                }
                None => self.model.train_step(&x, &labels, &mut self.opt),
            };
            // A non-finite batch loss skipped the optimizer step (see
            // `Model::train_step_inner`); keep it out of the mean too so a
            // poisoned model doesn't propagate NaN into the DRL state and
            // reward signals.
            if loss.is_finite() {
                total += loss;
                batches += 1;
            }
        }
        assert!(
            batches > 0 || self.model.non_finite_batches() > 0,
            "client {} trained zero batches",
            self.id
        );
        if batches == 0 {
            0.0
        } else {
            total / batches as f32
        }
    }

    /// Drains the model's count of training batches skipped for a NaN/Inf
    /// loss (see `fedmigr_nn::Model::take_non_finite_batches`).
    pub fn take_non_finite_batches(&mut self) -> u64 {
        self.model.take_non_finite_batches()
    }

    /// Mean loss of the current local model over the local data (no update).
    pub fn local_loss(&mut self) -> f32 {
        let (x, labels) = self.data.batch(&self.indices);
        self.model.loss(&x, &labels)
    }

    /// Current model parameters (the migrated/uploaded representation).
    pub fn params(&mut self) -> Vec<f32> {
        self.model.params()
    }

    /// Replaces the local model parameters (global distribution or an
    /// incoming migrated model).
    pub fn set_params(&mut self, params: &[f32], migrated: bool) {
        self.model.set_params(params);
        if migrated {
            self.migrations_received += 1;
        }
    }

    /// Total scalar parameter count of the local model.
    pub fn num_params(&self) -> usize {
        self.model.num_params()
    }

    /// Uncompressed model size on the wire in bytes.
    pub fn wire_bytes(&self) -> u64 {
        self.model.wire_bytes()
    }

    /// Captures this client's mutable state for a run checkpoint.
    pub fn export_state(&mut self) -> ClientState {
        ClientState {
            params: self.model.params(),
            rng: self.rng.state(),
            indices: self.indices.clone(),
            migrations_received: self.migrations_received,
        }
    }

    /// Restores state captured by [`FlClient::export_state`].
    ///
    /// # Panics
    /// Panics when the snapshot's shapes disagree with this client (wrong
    /// model architecture or a different data partition).
    pub fn import_state(&mut self, state: ClientState) {
        assert_eq!(state.params.len(), self.model.num_params(), "client model shape mismatch");
        assert_eq!(state.indices.len(), self.indices.len(), "client partition size mismatch");
        self.model.set_params(&state.params);
        self.rng = StdRng::from_state(state.rng);
        self.indices = state.indices;
        self.migrations_received = state.migrations_received;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedmigr_data::{partition_iid, SyntheticConfig, SyntheticDataset};
    use fedmigr_nn::zoo;

    fn make_client() -> FlClient {
        let ds = Arc::new(SyntheticDataset::generate(&SyntheticConfig::c10_like(10, 1)).train);
        let parts = partition_iid(&ds, 2, 1);
        let model = zoo::c10_cnn(3, 8, zoo::NetScale::Small, 0);
        FlClient::new(0, ds, parts[0].clone(), model, 0.05, 42)
    }

    #[test]
    fn training_reduces_local_loss() {
        let mut c = make_client();
        let before = c.local_loss();
        for _ in 0..5 {
            c.train_epoch(16, None, None);
        }
        let after = c.local_loss();
        assert!(after < before, "loss {before} -> {after}");
    }

    #[test]
    fn label_dist_matches_data() {
        let c = make_client();
        let sum: f64 = c.label_dist().iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        assert_eq!(c.label_dist().len(), 10);
    }

    #[test]
    fn max_batches_caps_work() {
        let mut c = make_client();
        // With a cap of 1 the epoch still runs and reports a finite loss.
        let loss = c.train_epoch(8, Some(1), None);
        assert!(loss.is_finite());
    }

    #[test]
    fn label_flip_poisons_training_but_not_the_advertised_marginal() {
        let mut honest = make_client();
        let mut flipped = make_client();
        let marginal_before = flipped.label_dist().to_vec();
        flipped.set_label_map(fedmigr_data::flip_label_map(10));
        assert_eq!(flipped.label_dist(), marginal_before.as_slice(), "attacker lies about q_k");
        for _ in 0..5 {
            honest.train_epoch(16, None, None);
            flipped.train_epoch(16, None, None);
        }
        // The honest model fits the true labels; the flipped model fits
        // anti-labels, so its loss on the *true* data is much worse.
        assert!(
            flipped.local_loss() > honest.local_loss(),
            "flipped {} vs honest {}",
            flipped.local_loss(),
            honest.local_loss()
        );
    }

    #[test]
    fn poisoned_model_reports_zero_loss_without_panicking() {
        let mut c = make_client();
        let n = c.params().len();
        c.set_params(&vec![f32::NAN; n], false);
        let loss = c.train_epoch(16, Some(2), None);
        assert_eq!(loss, 0.0, "no finite batch -> neutral mean loss");
        assert!(c.take_non_finite_batches() > 0);
        assert_eq!(c.take_non_finite_batches(), 0, "counter drains");
    }

    #[test]
    fn state_round_trip_resumes_training_bit_for_bit() {
        let mut a = make_client();
        a.train_epoch(16, Some(2), None);
        let snap = a.export_state();
        let ahead: Vec<f32> = {
            let mut probe = make_client();
            probe.import_state(snap.clone());
            probe.train_epoch(16, Some(2), None);
            probe.params()
        };
        // A fresh client restored from the snapshot must continue the exact
        // same trajectory (batch order included) as the original.
        a.train_epoch(16, Some(2), None);
        assert_eq!(a.params(), ahead);
    }

    #[test]
    #[should_panic(expected = "model shape mismatch")]
    fn import_rejects_wrong_shape() {
        let mut c = make_client();
        let mut snap = c.export_state();
        snap.params.pop();
        c.import_state(snap);
    }

    #[test]
    fn migration_counter_increments() {
        let mut c = make_client();
        let p = c.params();
        assert_eq!(c.migrations_received(), 0);
        c.set_params(&p, true);
        assert_eq!(c.migrations_received(), 1);
        c.set_params(&p, false);
        assert_eq!(c.migrations_received(), 1);
    }
}
