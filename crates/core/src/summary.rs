//! Cross-run comparison utilities: the computations the paper's tables do
//! over a set of scheme runs (accuracy deltas, resource savings), exposed
//! as a library API so downstream users don't re-implement them.

use crate::metrics::{FaultStats, PhaseBreakdown, RobustStats, RunMetrics};
use fedmigr_compress::CompressionStats;
use fedmigr_net::TransportStats;

/// A comparison of several finished runs against a named baseline.
pub struct SchemeComparison<'a> {
    baseline: &'a RunMetrics,
    others: Vec<&'a RunMetrics>,
}

impl<'a> SchemeComparison<'a> {
    /// Builds a comparison. `baseline` is typically the FedAvg run.
    pub fn new(baseline: &'a RunMetrics, others: Vec<&'a RunMetrics>) -> Self {
        Self { baseline, others }
    }

    /// Accuracy improvement of each run over the baseline, in percentage
    /// points (the paper's "+13% on average" figure is the mean of these).
    pub fn accuracy_gains(&self) -> Vec<(String, f64)> {
        let base = self.baseline.best_accuracy();
        self.others.iter().map(|m| (m.scheme.clone(), 100.0 * (m.best_accuracy() - base))).collect()
    }

    /// Mean accuracy gain over the baseline across all compared runs.
    pub fn mean_accuracy_gain(&self) -> f64 {
        let gains = self.accuracy_gains();
        if gains.is_empty() {
            return 0.0;
        }
        gains.iter().map(|(_, g)| g).sum::<f64>() / gains.len() as f64
    }

    /// Relative *global-communication* saving of each run vs the baseline
    /// (fraction of C2S + cross-LAN bytes avoided — the paper's "42%
    /// bandwidth reduction" metric). Positive = cheaper than baseline.
    pub fn global_traffic_savings(&self) -> Vec<(String, f64)> {
        let base = self.baseline.traffic().global().max(1) as f64;
        self.others
            .iter()
            .map(|m| {
                let frac = 1.0 - m.traffic().global() as f64 / base;
                (m.scheme.clone(), frac)
            })
            .collect()
    }

    /// Relative completion-time saving of each run vs the baseline.
    pub fn time_savings(&self) -> Vec<(String, f64)> {
        let base = self.baseline.sim_time().max(1e-9);
        self.others.iter().map(|m| (m.scheme.clone(), 1.0 - m.sim_time() / base)).collect()
    }

    /// Fault-robustness comparison: for every run (baseline included), the
    /// fraction of all transferred bytes wasted on failed attempts and the
    /// fraction of client-epochs lost to drops or staleness. Lower is more
    /// robust; under `FaultModel::none` every entry is zero.
    pub fn reliability_report(&self) -> Vec<(String, FaultStats, f64)> {
        std::iter::once(&self.baseline)
            .chain(self.others.iter())
            .map(|m| {
                let total = m.traffic().total() + m.fault.wasted_bytes;
                let wasted_frac =
                    if total == 0 { 0.0 } else { m.fault.wasted_bytes as f64 / total as f64 };
                (m.scheme.clone(), m.fault, wasted_frac)
            })
            .collect()
    }

    /// Byzantine-robustness comparison: for every run (baseline included),
    /// the defense counters and the fraction of planned migrations the
    /// quarantine rejected. Under `AttackConfig::none` with a non-screening
    /// aggregator every entry is zero.
    pub fn robustness_report(&self) -> Vec<(String, RobustStats, f64)> {
        std::iter::once(&self.baseline)
            .chain(self.others.iter())
            .map(|m| {
                let migrations = m.migrations_local + m.migrations_global;
                let attempted = migrations + m.robust.rejected_migrations;
                let rejected_frac = if attempted == 0 {
                    0.0
                } else {
                    m.robust.rejected_migrations as f64 / attempted as f64
                };
                (m.scheme.clone(), m.robust, rejected_frac)
            })
            .collect()
    }

    /// Wire-compression comparison: for every run (baseline included), the
    /// codec's cumulative stats and the fraction of wire bytes the codec
    /// saved relative to uncompressed transfers (`bytes_saved / (traffic +
    /// bytes_saved)`). Zero everywhere under the identity codec.
    pub fn compression_report(&self) -> Vec<(String, CompressionStats, f64)> {
        std::iter::once(&self.baseline)
            .chain(self.others.iter())
            .map(|m| {
                let saved = m.bytes_saved();
                let would_be = m.traffic().total() + saved;
                let saved_frac = if would_be == 0 { 0.0 } else { saved as f64 / would_be as f64 };
                (format!("{} [{}]", m.scheme, m.codec), m.compression, saved_frac)
            })
            .collect()
    }

    /// Transport comparison: for every run (baseline included), the flow
    /// transport's accounting and the fraction of its flows that needed a
    /// retransmission or missed their round deadline (the congestion tax).
    /// All-zero rows for lockstep runs.
    pub fn transport_report(&self) -> Vec<(String, TransportStats, f64)> {
        std::iter::once(&self.baseline)
            .chain(self.others.iter())
            .map(|m| {
                let t = m.transport_stats;
                let degraded = t.retransmits + t.late_uploads + t.failed_flows;
                let frac = if t.flows == 0 { 0.0 } else { degraded as f64 / t.flows as f64 };
                (format!("{} [{}]", m.scheme, m.transport), t, frac)
            })
            .collect()
    }

    /// Per-phase time comparison: for every run (baseline included), the
    /// virtual-time breakdown and the fraction of the run *not* spent
    /// training (communication + migration + backoff) — the overhead the
    /// migration schemes are trying to shrink. Deterministic: derived
    /// entirely from the runs' `PhaseBreakdown` records.
    pub fn phase_report(&self) -> Vec<(String, PhaseBreakdown, f64)> {
        std::iter::once(&self.baseline)
            .chain(self.others.iter())
            .map(|m| {
                let p = m.phase();
                let overhead = p.share(p.c2s_s + p.migration_s + p.backoff_s);
                (m.scheme.clone(), p, overhead)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::EpochRecord;
    use fedmigr_net::TrafficBreakdown;

    fn run(scheme: &str, acc: f64, c2s: u64, c2c_global: u64, time: f64) -> RunMetrics {
        RunMetrics {
            scheme: scheme.into(),
            records: vec![EpochRecord {
                epoch: 1,
                train_loss: 1.0,
                test_accuracy: Some(acc),
                traffic: TrafficBreakdown { c2s, c2c_local: 0, c2c_global },
                sim_time: time,
                dropped_clients: 0,
                stale_clients: 0,
                rejected_migrations: 0,
                bytes_saved: 0,
                phase: PhaseBreakdown {
                    train_s: 0.6 * time,
                    c2s_s: 0.3 * time,
                    migration_s: 0.1 * time,
                    backoff_s: 0.0,
                },
                retransmits: 0,
                late_uploads: 0,
            }],
            migrations_local: 0,
            migrations_global: 0,
            link_migrations: vec![],
            budget_exhausted: false,
            target_reached: false,
            fault: FaultStats::default(),
            robust: RobustStats::default(),
            codec: "identity".into(),
            compression: CompressionStats::default(),
            transport: "lockstep".into(),
            transport_stats: TransportStats::default(),
            recovery: crate::metrics::RecoveryStats::default(),
        }
    }

    #[test]
    fn transport_report_ranks_congestion_tax() {
        let lockstep = run("FedAvg", 0.6, 900, 100, 100.0);
        let mut flow = run("FedMigr", 0.7, 500, 100, 80.0);
        flow.transport = "flow".into();
        flow.transport_stats = TransportStats {
            flows: 100,
            failed_flows: 2,
            retransmits: 10,
            late_uploads: 8,
            ..Default::default()
        };
        let cmp = SchemeComparison::new(&lockstep, vec![&flow]);
        let report = cmp.transport_report();
        assert_eq!(report.len(), 2);
        assert_eq!(report[0].0, "FedAvg [lockstep]");
        assert_eq!(report[0].2, 0.0, "lockstep pays no congestion tax");
        assert_eq!(report[1].0, "FedMigr [flow]");
        assert!((report[1].2 - 0.2).abs() < 1e-9, "(10+8+2)/100 flows degraded");
        assert_eq!(report[1].1.flows, 100);
    }

    #[test]
    fn gains_and_savings() {
        let fedavg = run("FedAvg", 0.60, 1000, 0, 100.0);
        let fedmigr = run("FedMigr", 0.73, 200, 100, 50.0);
        let cmp = SchemeComparison::new(&fedavg, vec![&fedmigr]);
        let gains = cmp.accuracy_gains();
        assert_eq!(gains[0].0, "FedMigr");
        assert!((gains[0].1 - 13.0).abs() < 1e-9);
        assert!((cmp.mean_accuracy_gain() - 13.0).abs() < 1e-9);
        let traffic = cmp.global_traffic_savings();
        assert!((traffic[0].1 - 0.7).abs() < 1e-9, "300/1000 global bytes -> 70% saved");
        let time = cmp.time_savings();
        assert!((time[0].1 - 0.5).abs() < 1e-9);
    }

    #[test]
    fn reliability_report_ranks_waste() {
        let clean = run("FedAvg", 0.6, 900, 100, 100.0);
        let mut faulty = run("FedMigr", 0.7, 500, 100, 80.0);
        faulty.fault.wasted_bytes = 400; // 400 / (600 + 400)
        faulty.fault.cancelled_migrations = 2;
        let cmp = SchemeComparison::new(&clean, vec![&faulty]);
        let report = cmp.reliability_report();
        assert_eq!(report.len(), 2);
        assert_eq!(report[0].0, "FedAvg");
        assert_eq!(report[0].2, 0.0);
        assert_eq!(report[1].0, "FedMigr");
        assert!((report[1].2 - 0.4).abs() < 1e-9);
        assert_eq!(report[1].1.cancelled_migrations, 2);
    }

    #[test]
    fn robustness_report_tracks_rejection_rate() {
        let clean = run("FedAvg", 0.6, 900, 100, 100.0);
        let mut attacked = run("FedMigr", 0.7, 500, 100, 80.0);
        attacked.migrations_local = 6;
        attacked.migrations_global = 0;
        attacked.robust.rejected_migrations = 2; // 2 of 8 attempted
        attacked.robust.nan_uploads = 3;
        let cmp = SchemeComparison::new(&clean, vec![&attacked]);
        let report = cmp.robustness_report();
        assert_eq!(report.len(), 2);
        assert_eq!(report[0].2, 0.0, "clean run rejects nothing");
        assert!((report[1].2 - 0.25).abs() < 1e-9);
        assert_eq!(report[1].1.nan_uploads, 3);
    }

    #[test]
    fn compression_report_tracks_saved_fraction() {
        let plain = run("FedAvg", 0.6, 900, 100, 100.0);
        let mut squeezed = run("FedAvg", 0.59, 200, 50, 80.0);
        squeezed.codec = "int8+ef".into();
        squeezed.records[0].bytes_saved = 750; // 750 of 1000 would-be bytes
        squeezed.compression =
            CompressionStats { encodes: 5, ef_transmits: 5, ..Default::default() };
        let cmp = SchemeComparison::new(&plain, vec![&squeezed]);
        let report = cmp.compression_report();
        assert_eq!(report.len(), 2);
        assert_eq!(report[0].0, "FedAvg [identity]");
        assert_eq!(report[0].2, 0.0, "identity saves nothing");
        assert_eq!(report[1].0, "FedAvg [int8+ef]");
        assert!((report[1].2 - 0.75).abs() < 1e-9);
        assert_eq!(report[1].1.encodes, 5);
    }

    #[test]
    fn phase_report_computes_overhead_fraction() {
        let fedavg = run("FedAvg", 0.60, 1000, 0, 100.0);
        let fedmigr = run("FedMigr", 0.73, 200, 100, 50.0);
        let cmp = SchemeComparison::new(&fedavg, vec![&fedmigr]);
        let report = cmp.phase_report();
        assert_eq!(report.len(), 2);
        assert_eq!(report[0].0, "FedAvg");
        assert!((report[0].1.train_s - 60.0).abs() < 1e-9);
        // Non-training share: (30 + 10) / 100.
        assert!((report[0].2 - 0.4).abs() < 1e-9);
        assert!((report[1].1.total() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn empty_comparison_is_safe() {
        let base = run("FedAvg", 0.5, 10, 0, 1.0);
        let cmp = SchemeComparison::new(&base, vec![]);
        assert_eq!(cmp.mean_accuracy_gain(), 0.0);
        assert!(cmp.accuracy_gains().is_empty());
    }
}
