use fedmigr_net::TrafficBreakdown;
use serde::Serialize;

/// Per-epoch measurements of a run.
#[derive(Clone, Debug, Serialize)]
pub struct EpochRecord {
    /// 1-based training epoch.
    pub epoch: usize,
    /// Mean local training loss across clients (weighted by `n_k`).
    pub train_loss: f32,
    /// Test accuracy of the (shadow-)aggregated global model, if this was
    /// an evaluation epoch.
    pub test_accuracy: Option<f64>,
    /// Cumulative traffic at the end of the epoch.
    pub traffic: TrafficBreakdown,
    /// Cumulative virtual time (seconds) at the end of the epoch.
    pub sim_time: f64,
}

/// Everything a run produced: per-epoch curves, migration statistics and
/// the stopping condition that ended it.
#[derive(Clone, Debug, Serialize)]
pub struct RunMetrics {
    /// Scheme name (matches the paper's tables).
    pub scheme: String,
    /// Per-epoch records, in order.
    pub records: Vec<EpochRecord>,
    /// Number of intra-LAN model migrations executed.
    pub migrations_local: usize,
    /// Number of cross-LAN model migrations executed.
    pub migrations_global: usize,
    /// `K x K` matrix of migration counts per directed client pair
    /// (row-major), for the Fig. 8 link-frequency analysis.
    pub link_migrations: Vec<u32>,
    /// Whether the run ended because the resource budget ran out.
    pub budget_exhausted: bool,
    /// Whether the run ended because the target accuracy was reached.
    pub target_reached: bool,
}

impl RunMetrics {
    /// The last recorded test accuracy (0 if never evaluated).
    pub fn final_accuracy(&self) -> f64 {
        self.records
            .iter()
            .rev()
            .find_map(|r| r.test_accuracy)
            .unwrap_or(0.0)
    }

    /// The best recorded test accuracy (0 if never evaluated).
    pub fn best_accuracy(&self) -> f64 {
        self.records
            .iter()
            .filter_map(|r| r.test_accuracy)
            .fold(0.0, f64::max)
    }

    /// Total traffic at the end of the run.
    pub fn traffic(&self) -> TrafficBreakdown {
        self.records.last().map(|r| r.traffic).unwrap_or_default()
    }

    /// Total virtual time in seconds.
    pub fn sim_time(&self) -> f64 {
        self.records.last().map(|r| r.sim_time).unwrap_or(0.0)
    }

    /// Number of epochs actually run.
    pub fn epochs(&self) -> usize {
        self.records.len()
    }

    /// First epoch whose evaluation reached `target` accuracy, if any.
    pub fn epochs_to_accuracy(&self, target: f64) -> Option<usize> {
        self.records
            .iter()
            .find(|r| r.test_accuracy.is_some_and(|a| a >= target))
            .map(|r| r.epoch)
    }

    /// Cumulative traffic (bytes) when `target` accuracy was first reached.
    pub fn traffic_to_accuracy(&self, target: f64) -> Option<u64> {
        self.records
            .iter()
            .find(|r| r.test_accuracy.is_some_and(|a| a >= target))
            .map(|r| r.traffic.total())
    }

    /// Virtual time (seconds) when `target` accuracy was first reached.
    pub fn time_to_accuracy(&self, target: f64) -> Option<f64> {
        self.records
            .iter()
            .find(|r| r.test_accuracy.is_some_and(|a| a >= target))
            .map(|r| r.sim_time)
    }

    /// Best accuracy among evaluations whose cumulative traffic stayed
    /// within `budget_bytes` (the Fig. 9 bandwidth sweep).
    pub fn accuracy_within_traffic(&self, budget_bytes: u64) -> f64 {
        self.records
            .iter()
            .filter(|r| r.traffic.total() <= budget_bytes)
            .filter_map(|r| r.test_accuracy)
            .fold(0.0, f64::max)
    }

    /// Best accuracy among evaluations completed within `seconds` of
    /// virtual time (the Fig. 9 time sweep).
    pub fn accuracy_within_time(&self, seconds: f64) -> f64 {
        self.records
            .iter()
            .filter(|r| r.sim_time <= seconds)
            .filter_map(|r| r.test_accuracy)
            .fold(0.0, f64::max)
    }

    /// Renders the per-epoch records as CSV (for external plotting). The
    /// accuracy column is empty on non-evaluation epochs.
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "epoch,train_loss,test_accuracy,c2s_bytes,c2c_local_bytes,c2c_global_bytes,sim_time_s\n",
        );
        for r in &self.records {
            let acc = r.test_accuracy.map(|a| format!("{a:.6}")).unwrap_or_default();
            out.push_str(&format!(
                "{},{:.6},{},{},{},{},{:.3}\n",
                r.epoch,
                r.train_loss,
                acc,
                r.traffic.c2s,
                r.traffic.c2c_local,
                r.traffic.c2c_global,
                r.sim_time,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(epoch: usize, acc: Option<f64>, bytes: u64, time: f64) -> EpochRecord {
        EpochRecord {
            epoch,
            train_loss: 1.0,
            test_accuracy: acc,
            traffic: TrafficBreakdown { c2s: bytes, c2c_local: 0, c2c_global: 0 },
            sim_time: time,
        }
    }

    fn metrics() -> RunMetrics {
        RunMetrics {
            scheme: "Test".into(),
            records: vec![
                record(1, None, 100, 1.0),
                record(2, Some(0.5), 200, 2.0),
                record(3, None, 300, 3.0),
                record(4, Some(0.8), 400, 4.0),
            ],
            migrations_local: 0,
            migrations_global: 0,
            link_migrations: vec![],
            budget_exhausted: false,
            target_reached: false,
        }
    }

    #[test]
    fn accuracy_accessors() {
        let m = metrics();
        assert_eq!(m.final_accuracy(), 0.8);
        assert_eq!(m.best_accuracy(), 0.8);
        assert_eq!(m.epochs(), 4);
    }

    #[test]
    fn to_accuracy_queries() {
        let m = metrics();
        assert_eq!(m.epochs_to_accuracy(0.5), Some(2));
        assert_eq!(m.epochs_to_accuracy(0.7), Some(4));
        assert_eq!(m.epochs_to_accuracy(0.9), None);
        assert_eq!(m.traffic_to_accuracy(0.7), Some(400));
        assert_eq!(m.time_to_accuracy(0.5), Some(2.0));
    }

    #[test]
    fn budget_window_queries() {
        let m = metrics();
        assert_eq!(m.accuracy_within_traffic(250), 0.5);
        assert_eq!(m.accuracy_within_traffic(1000), 0.8);
        assert_eq!(m.accuracy_within_time(1.5), 0.0);
        assert_eq!(m.accuracy_within_time(4.0), 0.8);
    }

    #[test]
    fn csv_has_header_and_one_line_per_epoch() {
        let m = metrics();
        let csv = m.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 1 + m.records.len());
        assert!(lines[0].starts_with("epoch,train_loss"));
        assert!(lines[2].contains("0.500000"), "accuracy column present: {}", lines[2]);
        assert!(lines[1].split(',').nth(2).unwrap().is_empty(), "no accuracy -> empty cell");
    }

    #[test]
    fn empty_run_is_safe() {
        let m = RunMetrics {
            scheme: "Empty".into(),
            records: vec![],
            migrations_local: 0,
            migrations_global: 0,
            link_migrations: vec![],
            budget_exhausted: false,
            target_reached: false,
        };
        assert_eq!(m.final_accuracy(), 0.0);
        assert_eq!(m.traffic().total(), 0);
        assert_eq!(m.sim_time(), 0.0);
    }
}
