use fedmigr_compress::CompressionStats;
use fedmigr_net::{TrafficBreakdown, TransportStats};
use serde::Serialize;

/// Fault-injection accounting for a run (all zero when the fault layer is
/// disabled — see `fedmigr_net::FaultModel::none`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize)]
pub struct FaultStats {
    /// Client-epochs lost to crashes/dropouts (client was down).
    pub client_drops: usize,
    /// Client-epochs where a live client missed the round — cut by the
    /// straggler deadline or unable to reach the server.
    pub stale_client_epochs: usize,
    /// Individual transfer retry attempts (successful or not).
    pub transfer_retries: usize,
    /// Migrations that fell back to a relay path (same-LAN peer or C2S).
    pub rerouted_migrations: usize,
    /// Migrations abandoned after every fallback failed; the model stayed
    /// local for the epoch.
    pub cancelled_migrations: usize,
    /// Bytes burned on transfer attempts that did not complete.
    pub wasted_bytes: u64,
    /// Client training threads that panicked mid-epoch (software crash
    /// injection or a genuine bug); the client sat the round out.
    pub client_panics: usize,
}

impl FaultStats {
    /// Whether any fault was observed at all.
    pub fn any(&self) -> bool {
        *self != Self::default()
    }
}

/// Crash-safety accounting for a run: checkpoints taken, resumes performed
/// and watchdog rollbacks executed. Deliberately kept out of
/// [`RunMetrics::to_csv`] and the flight recording — a killed-and-resumed
/// run accumulates different recovery counters than its uninterrupted twin
/// while every learning-relevant output stays byte-identical.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize)]
pub struct RecoveryStats {
    /// Run-state snapshots taken (in memory and, when a checkpoint
    /// directory is configured, on disk).
    pub checkpoints_written: usize,
    /// Total encoded bytes across all snapshots taken.
    pub checkpoint_bytes: u64,
    /// Snapshots decoded back into a live run: one per `--resume`, plus one
    /// per watchdog rollback.
    pub checkpoints_loaded: usize,
    /// Divergence rollbacks executed by the watchdog.
    pub rollbacks: usize,
    /// Rounds re-executed after rollbacks (distance from the restored
    /// checkpoint to the round that tripped the watchdog).
    pub rounds_replayed: usize,
}

impl RecoveryStats {
    /// Whether any recovery machinery ran at all.
    pub fn any(&self) -> bool {
        *self != Self::default()
    }
}

/// Byzantine-defense accounting for a run (all zero when no adversary is
/// configured and the plain FedAvg aggregator is in use).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize)]
pub struct RobustStats {
    /// Migrated models rejected by the quarantine (non-finite or
    /// norm-anomalous); the receiver kept its own model instead.
    pub rejected_migrations: usize,
    /// Client updates excluded by the aggregation rule (trimmed by
    /// TrimmedMean, outside the Krum/MultiKrum selection, or screened for
    /// non-finiteness before a robust rule ran).
    pub trimmed_clients: usize,
    /// Client updates whose norm was clipped by NormClip.
    pub clipped_norms: usize,
    /// Uploads containing NaN/Inf coordinates seen at the aggregator.
    pub nan_uploads: usize,
    /// Local training batches skipped because the loss went NaN/Inf.
    pub nan_batches: u64,
}

impl RobustStats {
    /// Whether any defense fired at all.
    pub fn any(&self) -> bool {
        *self != Self::default()
    }

    /// Accumulates another epoch's counters into this run total.
    pub fn absorb(&mut self, other: &RobustStats) {
        self.rejected_migrations += other.rejected_migrations;
        self.trimmed_clients += other.trimmed_clients;
        self.clipped_norms += other.clipped_norms;
        self.nan_uploads += other.nan_uploads;
        self.nan_batches += other.nan_batches;
    }
}

/// Deterministic attribution of the *virtual* simulation clock to runner
/// phases. Every `SimClock` advance in the runner is tagged with the phase
/// that caused it, so `total()` matches the run's `sim_time` (up to float
/// summation error) and the breakdown is byte-identical across reruns of
/// the same seed — with telemetry on or off. Real wall-clock profiling is
/// the telemetry side-channel's job; this struct is part of the result.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize)]
pub struct PhaseBreakdown {
    /// Virtual seconds spent in local training (straggler-limited).
    pub train_s: f64,
    /// Virtual seconds on the client↔server path: initial distribution,
    /// uploads, downloads, FedAsync exchanges.
    pub c2s_s: f64,
    /// Virtual seconds moving models client-to-client (migration, FedSwap).
    pub migration_s: f64,
    /// Virtual seconds stalled waiting out server-link outages.
    pub backoff_s: f64,
}

impl PhaseBreakdown {
    /// Sum over all phases — tracks the run's `sim_time`.
    pub fn total(&self) -> f64 {
        self.train_s + self.c2s_s + self.migration_s + self.backoff_s
    }

    /// Fraction of total time spent in `phase_s` (0 when nothing elapsed).
    pub fn share(&self, phase_s: f64) -> f64 {
        let t = self.total();
        if t > 0.0 {
            phase_s / t
        } else {
            0.0
        }
    }
}

/// Per-epoch measurements of a run.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct EpochRecord {
    /// 1-based training epoch.
    pub epoch: usize,
    /// Mean local training loss across clients (weighted by `n_k`).
    pub train_loss: f32,
    /// Test accuracy of the (shadow-)aggregated global model, if this was
    /// an evaluation epoch.
    pub test_accuracy: Option<f64>,
    /// Cumulative traffic at the end of the epoch.
    pub traffic: TrafficBreakdown,
    /// Cumulative virtual time (seconds) at the end of the epoch.
    pub sim_time: f64,
    /// Clients down (crashed/dropped out) during this epoch.
    pub dropped_clients: usize,
    /// Live clients that missed this round (deadline-cut or unreachable).
    pub stale_clients: usize,
    /// Migrated models rejected by the quarantine during this epoch.
    pub rejected_migrations: usize,
    /// Cumulative wire bytes saved by the codec at the end of the epoch
    /// (uncompressed-equivalent traffic minus actual traffic; 0 under the
    /// identity codec).
    pub bytes_saved: u64,
    /// Cumulative per-phase attribution of `sim_time` at the end of the
    /// epoch (`phase.total() ≈ sim_time`).
    pub phase: PhaseBreakdown,
    /// Cumulative flow-transport retransmits at the end of the epoch
    /// (always 0 under the lockstep transport).
    pub retransmits: u64,
    /// Cumulative uploads that missed their round deadline at the end of
    /// the epoch (always 0 under the lockstep transport).
    pub late_uploads: u64,
}

/// Everything a run produced: per-epoch curves, migration statistics and
/// the stopping condition that ended it.
#[derive(Clone, Debug, Serialize)]
pub struct RunMetrics {
    /// Scheme name (matches the paper's tables).
    pub scheme: String,
    /// Per-epoch records, in order.
    pub records: Vec<EpochRecord>,
    /// Number of intra-LAN model migrations executed.
    pub migrations_local: usize,
    /// Number of cross-LAN model migrations executed.
    pub migrations_global: usize,
    /// `K x K` matrix of migration counts per directed client pair
    /// (row-major), for the Fig. 8 link-frequency analysis.
    pub link_migrations: Vec<u32>,
    /// Whether the run ended because the resource budget ran out.
    pub budget_exhausted: bool,
    /// Whether the run ended because the target accuracy was reached.
    pub target_reached: bool,
    /// Fault-injection accounting (all zero without a fault model).
    pub fault: FaultStats,
    /// Byzantine-defense accounting (all zero without adversary/defenses).
    pub robust: RobustStats,
    /// Wire-codec name (e.g. `"identity"`, `"int8+ef"`).
    pub codec: String,
    /// Compression accounting across every model encode of the run.
    pub compression: CompressionStats,
    /// Transport name the run was charged through (`"lockstep"`/`"flow"`).
    pub transport: String,
    /// Flow-transport accounting (all zero under lockstep).
    pub transport_stats: TransportStats,
    /// Checkpoint/resume/rollback accounting (all zero when checkpointing
    /// and the watchdog are off).
    pub recovery: RecoveryStats,
}

impl RunMetrics {
    /// The last recorded test accuracy (0 if never evaluated).
    pub fn final_accuracy(&self) -> f64 {
        self.records.iter().rev().find_map(|r| r.test_accuracy).unwrap_or(0.0)
    }

    /// The best recorded test accuracy (0 if never evaluated).
    pub fn best_accuracy(&self) -> f64 {
        self.records.iter().filter_map(|r| r.test_accuracy).fold(0.0, f64::max)
    }

    /// Total traffic at the end of the run.
    pub fn traffic(&self) -> TrafficBreakdown {
        self.records.last().map(|r| r.traffic).unwrap_or_default()
    }

    /// Total virtual time in seconds.
    pub fn sim_time(&self) -> f64 {
        self.records.last().map(|r| r.sim_time).unwrap_or(0.0)
    }

    /// Number of epochs actually run.
    pub fn epochs(&self) -> usize {
        self.records.len()
    }

    /// First epoch whose evaluation reached `target` accuracy, if any.
    pub fn epochs_to_accuracy(&self, target: f64) -> Option<usize> {
        self.records.iter().find(|r| r.test_accuracy.is_some_and(|a| a >= target)).map(|r| r.epoch)
    }

    /// Cumulative traffic (bytes) when `target` accuracy was first reached.
    pub fn traffic_to_accuracy(&self, target: f64) -> Option<u64> {
        self.records
            .iter()
            .find(|r| r.test_accuracy.is_some_and(|a| a >= target))
            .map(|r| r.traffic.total())
    }

    /// Virtual time (seconds) when `target` accuracy was first reached.
    pub fn time_to_accuracy(&self, target: f64) -> Option<f64> {
        self.records
            .iter()
            .find(|r| r.test_accuracy.is_some_and(|a| a >= target))
            .map(|r| r.sim_time)
    }

    /// Best accuracy among evaluations whose cumulative traffic stayed
    /// within `budget_bytes` (the Fig. 9 bandwidth sweep).
    pub fn accuracy_within_traffic(&self, budget_bytes: u64) -> f64 {
        self.records
            .iter()
            .filter(|r| r.traffic.total() <= budget_bytes)
            .filter_map(|r| r.test_accuracy)
            .fold(0.0, f64::max)
    }

    /// Best accuracy among evaluations completed within `seconds` of
    /// virtual time (the Fig. 9 time sweep).
    pub fn accuracy_within_time(&self, seconds: f64) -> f64 {
        self.records
            .iter()
            .filter(|r| r.sim_time <= seconds)
            .filter_map(|r| r.test_accuracy)
            .fold(0.0, f64::max)
    }

    /// Total client-epochs lost to dropouts across the run.
    pub fn total_drops(&self) -> usize {
        self.fault.client_drops
    }

    /// One-line human-readable fault summary for run logs, or `None` when
    /// no fault was observed.
    pub fn fault_summary(&self) -> Option<String> {
        if !self.fault.any() {
            return None;
        }
        let f = &self.fault;
        Some(format!(
            "faults: {} drop-epochs, {} stale, {} retries, {} rerouted, {} cancelled, {} panics, {} wasted bytes",
            f.client_drops,
            f.stale_client_epochs,
            f.transfer_retries,
            f.rerouted_migrations,
            f.cancelled_migrations,
            f.client_panics,
            f.wasted_bytes,
        ))
    }

    /// One-line human-readable recovery summary for run logs, or `None`
    /// when no checkpoint/rollback machinery ran.
    pub fn recovery_summary(&self) -> Option<String> {
        if !self.recovery.any() {
            return None;
        }
        let r = &self.recovery;
        Some(format!(
            "recovery: {} checkpoints written ({} bytes), {} loaded, {} rollbacks, {} rounds replayed",
            r.checkpoints_written,
            r.checkpoint_bytes,
            r.checkpoints_loaded,
            r.rollbacks,
            r.rounds_replayed,
        ))
    }

    /// Renders the run-level [`RecoveryStats`] as a one-row CSV. Kept
    /// separate from [`RunMetrics::to_csv`] on purpose: recovery counters
    /// legitimately differ between a killed-and-resumed run and its
    /// uninterrupted twin, while `to_csv` is part of the byte-identity
    /// contract.
    pub fn recovery_csv(&self) -> String {
        let r = &self.recovery;
        format!(
            "checkpoints_written,checkpoint_bytes,checkpoints_loaded,rollbacks,rounds_replayed\n{},{},{},{},{}\n",
            r.checkpoints_written,
            r.checkpoint_bytes,
            r.checkpoints_loaded,
            r.rollbacks,
            r.rounds_replayed,
        )
    }

    /// Final per-phase attribution of the run's virtual time.
    pub fn phase(&self) -> PhaseBreakdown {
        self.records.last().map(|r| r.phase).unwrap_or_default()
    }

    /// One-line human-readable phase breakdown for run logs, or `None`
    /// when no virtual time elapsed.
    pub fn phase_summary(&self) -> Option<String> {
        let p = self.phase();
        if p.total() <= 0.0 {
            return None;
        }
        Some(format!(
            "phases: train {:.1}s ({:.0}%), c2s {:.1}s ({:.0}%), migration {:.1}s ({:.0}%), backoff {:.1}s ({:.0}%)",
            p.train_s,
            p.share(p.train_s) * 100.0,
            p.c2s_s,
            p.share(p.c2s_s) * 100.0,
            p.migration_s,
            p.share(p.migration_s) * 100.0,
            p.backoff_s,
            p.share(p.backoff_s) * 100.0,
        ))
    }

    /// Total wire bytes the codec saved across the run (0 under identity).
    pub fn bytes_saved(&self) -> u64 {
        self.records.last().map(|r| r.bytes_saved).unwrap_or(0)
    }

    /// One-line human-readable compression summary for run logs, or `None`
    /// when nothing was encoded or the codec is the identity.
    pub fn compression_summary(&self) -> Option<String> {
        let c = &self.compression;
        if !c.any() || self.codec == "identity" {
            return None;
        }
        Some(format!(
            "compression[{}]: {:.2}x ratio, {} wire bytes saved, mean MSE {:.3e}, mean EF residual norm {:.3}",
            self.codec,
            c.ratio(),
            self.bytes_saved(),
            c.mean_mse(),
            c.mean_residual_norm(),
        ))
    }

    /// One-line human-readable defense summary for run logs, or `None`
    /// when no defense fired.
    pub fn robust_summary(&self) -> Option<String> {
        if !self.robust.any() {
            return None;
        }
        let r = &self.robust;
        Some(format!(
            "defenses: {} rejected migrations, {} trimmed clients, {} clipped norms, {} NaN uploads, {} NaN batches",
            r.rejected_migrations, r.trimmed_clients, r.clipped_norms, r.nan_uploads, r.nan_batches,
        ))
    }

    /// One-line human-readable transport summary for run logs, or `None`
    /// under the lockstep transport (no flows simulated).
    pub fn transport_summary(&self) -> Option<String> {
        let t = &self.transport_stats;
        if !t.any() {
            return None;
        }
        Some(format!(
            "transport[{}]: {} flows ({} failed), {} retransmits ({} bytes), {} timeouts, queue delay p50 {:.3}s / p99 {:.3}s, link util {:.0}%, {} late uploads ({} folded stale, {} dropped)",
            self.transport,
            t.flows,
            t.failed_flows,
            t.retransmits,
            t.retransmit_bytes,
            t.timeouts,
            t.queue_delay_p50,
            t.queue_delay_p99,
            t.mean_link_utilization * 100.0,
            t.late_uploads,
            t.stale_updates_folded,
            t.stale_updates_dropped,
        ))
    }

    /// Renders the per-epoch records as CSV (for external plotting). The
    /// accuracy column is empty on non-evaluation epochs.
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "epoch,train_loss,test_accuracy,c2s_bytes,c2c_local_bytes,c2c_global_bytes,sim_time_s,dropped_clients,stale_clients,rejected_migrations,bytes_saved,train_time_s,c2s_time_s,migration_time_s,backoff_time_s,retransmits,late_uploads\n",
        );
        for r in &self.records {
            let acc = r.test_accuracy.map(|a| format!("{a:.6}")).unwrap_or_default();
            out.push_str(&format!(
                "{},{:.6},{},{},{},{},{:.3},{},{},{},{},{:.3},{:.3},{:.3},{:.3},{},{}\n",
                r.epoch,
                r.train_loss,
                acc,
                r.traffic.c2s,
                r.traffic.c2c_local,
                r.traffic.c2c_global,
                r.sim_time,
                r.dropped_clients,
                r.stale_clients,
                r.rejected_migrations,
                r.bytes_saved,
                r.phase.train_s,
                r.phase.c2s_s,
                r.phase.migration_s,
                r.phase.backoff_s,
                r.retransmits,
                r.late_uploads,
            ));
        }
        out
    }

    /// Renders the run-level `TransportStats` as a one-row CSV (bench
    /// outputs and the flow determinism tests).
    pub fn transport_csv(&self) -> String {
        let t = &self.transport_stats;
        format!(
            "transport,flows,failed_flows,retransmits,timeouts,retransmit_bytes,queue_delay_p50,queue_delay_p99,mean_link_utilization,late_uploads,stale_folded,stale_dropped\n{},{},{},{},{},{},{:.6},{:.6},{:.6},{},{},{}\n",
            self.transport,
            t.flows,
            t.failed_flows,
            t.retransmits,
            t.timeouts,
            t.retransmit_bytes,
            t.queue_delay_p50,
            t.queue_delay_p99,
            t.mean_link_utilization,
            t.late_uploads,
            t.stale_updates_folded,
            t.stale_updates_dropped,
        )
    }

    /// Renders the run-level `RobustStats` as a one-row CSV (used by the
    /// determinism tests: same attack seed ⇒ byte-identical output).
    pub fn robust_csv(&self) -> String {
        let r = &self.robust;
        format!(
            "rejected_migrations,trimmed_clients,clipped_norms,nan_uploads,nan_batches\n{},{},{},{},{}\n",
            r.rejected_migrations, r.trimmed_clients, r.clipped_norms, r.nan_uploads, r.nan_batches,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(epoch: usize, acc: Option<f64>, bytes: u64, time: f64) -> EpochRecord {
        EpochRecord {
            epoch,
            train_loss: 1.0,
            test_accuracy: acc,
            traffic: TrafficBreakdown { c2s: bytes, c2c_local: 0, c2c_global: 0 },
            sim_time: time,
            dropped_clients: 0,
            stale_clients: 0,
            rejected_migrations: 0,
            bytes_saved: 0,
            phase: PhaseBreakdown { train_s: time * 0.5, c2s_s: time * 0.5, ..Default::default() },
            retransmits: 0,
            late_uploads: 0,
        }
    }

    fn metrics() -> RunMetrics {
        RunMetrics {
            scheme: "Test".into(),
            records: vec![
                record(1, None, 100, 1.0),
                record(2, Some(0.5), 200, 2.0),
                record(3, None, 300, 3.0),
                record(4, Some(0.8), 400, 4.0),
            ],
            migrations_local: 0,
            migrations_global: 0,
            link_migrations: vec![],
            budget_exhausted: false,
            target_reached: false,
            fault: FaultStats::default(),
            robust: RobustStats::default(),
            codec: "identity".into(),
            compression: CompressionStats::default(),
            transport: "lockstep".into(),
            transport_stats: TransportStats::default(),
            recovery: RecoveryStats::default(),
        }
    }

    #[test]
    fn accuracy_accessors() {
        let m = metrics();
        assert_eq!(m.final_accuracy(), 0.8);
        assert_eq!(m.best_accuracy(), 0.8);
        assert_eq!(m.epochs(), 4);
    }

    #[test]
    fn to_accuracy_queries() {
        let m = metrics();
        assert_eq!(m.epochs_to_accuracy(0.5), Some(2));
        assert_eq!(m.epochs_to_accuracy(0.7), Some(4));
        assert_eq!(m.epochs_to_accuracy(0.9), None);
        assert_eq!(m.traffic_to_accuracy(0.7), Some(400));
        assert_eq!(m.time_to_accuracy(0.5), Some(2.0));
    }

    #[test]
    fn budget_window_queries() {
        let m = metrics();
        assert_eq!(m.accuracy_within_traffic(250), 0.5);
        assert_eq!(m.accuracy_within_traffic(1000), 0.8);
        assert_eq!(m.accuracy_within_time(1.5), 0.0);
        assert_eq!(m.accuracy_within_time(4.0), 0.8);
    }

    #[test]
    fn csv_has_header_and_one_line_per_epoch() {
        let m = metrics();
        let csv = m.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 1 + m.records.len());
        assert!(lines[0].starts_with("epoch,train_loss"));
        assert!(lines[2].contains("0.500000"), "accuracy column present: {}", lines[2]);
        assert!(lines[1].split(',').nth(2).unwrap().is_empty(), "no accuracy -> empty cell");
    }

    #[test]
    fn empty_run_is_safe() {
        let m = RunMetrics {
            scheme: "Empty".into(),
            records: vec![],
            migrations_local: 0,
            migrations_global: 0,
            link_migrations: vec![],
            budget_exhausted: false,
            target_reached: false,
            fault: FaultStats::default(),
            robust: RobustStats::default(),
            codec: "identity".into(),
            compression: CompressionStats::default(),
            transport: "lockstep".into(),
            transport_stats: TransportStats::default(),
            recovery: RecoveryStats::default(),
        };
        assert_eq!(m.final_accuracy(), 0.0);
        assert_eq!(m.traffic().total(), 0);
        assert_eq!(m.sim_time(), 0.0);
        assert!(m.fault_summary().is_none());
    }

    #[test]
    fn fault_summary_reports_counters() {
        let mut m = metrics();
        assert!(m.fault_summary().is_none(), "clean run has no fault summary");
        m.fault = FaultStats {
            client_drops: 7,
            stale_client_epochs: 3,
            transfer_retries: 11,
            rerouted_migrations: 2,
            cancelled_migrations: 1,
            wasted_bytes: 4096,
            client_panics: 5,
        };
        assert!(m.fault.any());
        let s = m.fault_summary().unwrap();
        for needle in [
            "7 drop-epochs",
            "3 stale",
            "11 retries",
            "2 rerouted",
            "1 cancelled",
            "5 panics",
            "4096",
        ] {
            assert!(s.contains(needle), "summary {s:?} missing {needle:?}");
        }
        assert_eq!(m.total_drops(), 7);
    }

    #[test]
    fn recovery_summary_and_csv_report_counters() {
        let mut m = metrics();
        assert!(m.recovery_summary().is_none(), "clean run has no recovery summary");
        m.recovery = RecoveryStats {
            checkpoints_written: 4,
            checkpoint_bytes: 8192,
            checkpoints_loaded: 2,
            rollbacks: 1,
            rounds_replayed: 3,
        };
        assert!(m.recovery.any());
        let s = m.recovery_summary().unwrap();
        for needle in ["4 checkpoints", "8192 bytes", "2 loaded", "1 rollbacks", "3 rounds"] {
            assert!(s.contains(needle), "summary {s:?} missing {needle:?}");
        }
        assert_eq!(
            m.recovery_csv(),
            "checkpoints_written,checkpoint_bytes,checkpoints_loaded,rollbacks,rounds_replayed\n4,8192,2,1,3\n"
        );
    }

    #[test]
    fn csv_includes_fault_and_robust_columns() {
        let m = metrics();
        let csv = m.to_csv();
        assert!(csv.lines().next().unwrap().ends_with(
            "dropped_clients,stale_clients,rejected_migrations,bytes_saved,train_time_s,c2s_time_s,migration_time_s,backoff_time_s,retransmits,late_uploads"
        ));
    }

    #[test]
    fn transport_summary_and_csv_report_flow_stats() {
        let mut m = metrics();
        assert!(m.transport_summary().is_none(), "lockstep runs carry no transport summary");
        m.transport = "flow".into();
        m.transport_stats = TransportStats {
            flows: 120,
            failed_flows: 3,
            retransmits: 40,
            timeouts: 7,
            retransmit_bytes: 65536,
            queue_delay_p50: 0.25,
            queue_delay_p99: 1.5,
            mean_link_utilization: 0.82,
            late_uploads: 5,
            stale_updates_folded: 4,
            stale_updates_dropped: 1,
        };
        let s = m.transport_summary().unwrap();
        for needle in
            ["flow", "120 flows (3 failed)", "40 retransmits", "7 timeouts", "5 late uploads"]
        {
            assert!(s.contains(needle), "summary {s:?} missing {needle:?}");
        }
        let csv = m.transport_csv();
        assert!(csv.starts_with("transport,flows,"));
        assert!(csv.contains("flow,120,3,40,7,65536,"), "csv {csv:?}");
    }

    #[test]
    fn phase_breakdown_totals_and_summary() {
        let m = metrics();
        let p = m.phase();
        assert!((p.total() - m.sim_time()).abs() < 1e-9, "phase total tracks sim_time");
        let s = m.phase_summary().unwrap();
        assert!(s.contains("train 2.0s (50%)"), "summary {s:?}");
        assert!(s.contains("c2s 2.0s (50%)"), "summary {s:?}");
        let empty = PhaseBreakdown::default();
        assert_eq!(empty.total(), 0.0);
        assert_eq!(empty.share(1.0), 0.0, "empty breakdown yields zero shares");
    }

    #[test]
    fn compression_summary_reports_only_lossy_codecs() {
        let mut m = metrics();
        assert!(m.compression_summary().is_none(), "identity runs carry no summary");
        m.codec = "int8+ef".into();
        m.compression = CompressionStats {
            encodes: 10,
            uncompressed_bytes: 4000,
            compressed_bytes: 1000,
            sum_sq_error: 1.0,
            coords: 1000,
            residual_norm_sum: 5.0,
            ef_transmits: 10,
        };
        m.records.last_mut().unwrap().bytes_saved = 3000;
        assert_eq!(m.bytes_saved(), 3000);
        let s = m.compression_summary().unwrap();
        for needle in ["int8+ef", "4.00x", "3000 wire bytes saved"] {
            assert!(s.contains(needle), "summary {s:?} missing {needle:?}");
        }
    }

    #[test]
    fn robust_summary_and_csv_report_counters() {
        let mut m = metrics();
        assert!(m.robust_summary().is_none(), "clean run has no defense summary");
        m.robust = RobustStats {
            rejected_migrations: 4,
            trimmed_clients: 9,
            clipped_norms: 2,
            nan_uploads: 1,
            nan_batches: 5,
        };
        assert!(m.robust.any());
        let s = m.robust_summary().unwrap();
        for needle in ["4 rejected", "9 trimmed", "2 clipped", "1 NaN uploads", "5 NaN batches"] {
            assert!(s.contains(needle), "summary {s:?} missing {needle:?}");
        }
        let csv = m.robust_csv();
        assert_eq!(
            csv,
            "rejected_migrations,trimmed_clients,clipped_norms,nan_uploads,nan_batches\n4,9,2,1,5\n"
        );
    }

    #[test]
    fn robust_stats_absorb_accumulates() {
        let mut total = RobustStats::default();
        let epoch = RobustStats {
            rejected_migrations: 1,
            trimmed_clients: 2,
            clipped_norms: 3,
            nan_uploads: 4,
            nan_batches: 5,
        };
        total.absorb(&epoch);
        total.absorb(&epoch);
        assert_eq!(total.rejected_migrations, 2);
        assert_eq!(total.trimmed_clients, 4);
        assert_eq!(total.clipped_norms, 6);
        assert_eq!(total.nan_uploads, 8);
        assert_eq!(total.nan_batches, 10);
    }
}
