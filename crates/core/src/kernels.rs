//! Per-phase kernel attribution and the run-summary kernel table.
//!
//! The tensor/nn kernels account FLOPs, bytes and outermost wall time into
//! the process-wide table in [`fedmigr_tensor::kcount`]. Runners hold a
//! [`KernelPhases`] recorder and call [`KernelPhases::credit`] at each phase
//! boundary; the delta since the previous boundary lands in the
//! `fedmigr_kernel_*` counter families labelled `{kernel, phase}`. Because
//! the runner's phases are sequential and worker threads join inside the
//! training phase, the deltas partition the kernel totals exactly.
//!
//! [`kernel_table`] renders those counters (plus the `fedmigr_phase_seconds`
//! wall-clock histograms) into the per-phase GFLOP/s / arithmetic-intensity
//! table shown in the run summary. Everything here is observation-only: with
//! accounting disabled no counter series is ever registered and the table
//! renders as `None`.

use std::collections::BTreeMap;

use fedmigr_telemetry::names;
use fedmigr_tensor::kcount::{self, Kernel, KernelSnapshot};

/// Process CPU time (utime + stime, all threads) in nanoseconds, read from
/// `/proc/self/stat`. `None` off Linux or if the file is unparsable. Ticks
/// are converted at the kernel's universal `USER_HZ = 100` (the value is
/// ABI-frozen on Linux; `sysconf` would need libc).
fn process_cpu_nanos() -> Option<u64> {
    let stat = std::fs::read_to_string("/proc/self/stat").ok()?;
    // comm (field 2) may contain spaces; everything after the last ')' is
    // whitespace-separated. utime/stime are overall fields 14/15, i.e. the
    // 12th/13th tokens after comm.
    let rest = &stat[stat.rfind(')')? + 1..];
    let mut it = rest.split_ascii_whitespace().skip(11);
    let utime: u64 = it.next()?.parse().ok()?;
    let stime: u64 = it.next()?.parse().ok()?;
    Some((utime + stime) * 10_000_000)
}

/// Tracks the last kernel snapshot and attributes growth to named phases.
pub struct KernelPhases {
    last: KernelSnapshot,
    last_cpu: Option<u64>,
}

impl Default for KernelPhases {
    fn default() -> Self {
        Self::new()
    }
}

impl KernelPhases {
    /// Starts recording from the current kernel totals.
    pub fn new() -> Self {
        Self { last: kcount::snapshot(), last_cpu: process_cpu_nanos() }
    }

    /// Credits everything the kernels did since the previous boundary to
    /// `phase`. Cheap and silent when nothing was recorded.
    pub fn credit(&mut self, phase: &'static str) {
        let now = kcount::snapshot();
        let delta = now.delta(&self.last);
        self.last = now;
        // The CPU window must close at *every* boundary, or a kernel-free
        // phase's CPU would leak into the next phase's denominator. The
        // counter is only emitted for phases that ran kernels, so the
        // family stays absent whenever kernel accounting is off.
        let cpu = process_cpu_nanos();
        let cpu_delta = match (self.last_cpu, cpu) {
            (Some(prev), Some(now_cpu)) => Some(now_cpu.saturating_sub(prev)),
            _ => None,
        };
        self.last_cpu = cpu;
        if delta.is_empty() {
            return;
        }
        let reg = fedmigr_telemetry::global().registry();
        if let Some(d) = cpu_delta {
            reg.counter(names::PHASE_CPU_NANOS_TOTAL, &[("phase", phase)]).add(d);
        }
        for k in Kernel::ALL {
            let s = delta.get(k);
            if s.calls == 0 {
                continue;
            }
            let labels = [("kernel", k.name()), ("phase", phase)];
            reg.counter(names::KERNEL_CALLS_TOTAL, &labels).add(s.calls);
            reg.counter(names::KERNEL_FLOPS_TOTAL, &labels).add(s.flops);
            reg.counter(names::KERNEL_BYTES_TOTAL, &labels).add(s.bytes);
            reg.counter(names::KERNEL_NANOS_TOTAL, &labels).add(s.nanos);
        }
    }
}

fn label_of(labels: &[(String, String)], key: &str) -> String {
    labels.iter().find(|(k, _)| k == key).map(|(_, v)| v.clone()).unwrap_or_default()
}

#[derive(Default, Clone, Copy)]
struct Row {
    calls: u64,
    flops: u64,
    bytes: u64,
    nanos: u64,
}

/// Renders the per-phase kernel table from the metric registry, or `None`
/// when kernel accounting recorded nothing (e.g. the `kcount` feature or
/// runtime switch is off).
///
/// Columns: declared GFLOP, achieved GFLOP/s (declared FLOPs over outermost
/// kernel wall time), GB moved, arithmetic intensity (FLOP per byte), and
/// two attribution shares. `%cpu` divides accounted kernel time by the
/// *process CPU time* the phase consumed (utime + stime across all
/// threads) — the honest coverage number for parallel phases, and the one
/// the CI 90–110% band gates on. `%wall` divides by the phase's wall
/// clock; kernel time is summed across worker threads, so wall shares
/// above 100% simply mean the phase ran kernels on several threads at
/// once. The trailing `total` row per phase carries the phase-level
/// shares. `%cpu` renders as `-` when process CPU was unreadable (no
/// `/proc`, i.e. off Linux).
pub fn kernel_table() -> Option<String> {
    let reg = fedmigr_telemetry::global().registry();
    let nanos = reg.counter_family(names::KERNEL_NANOS_TOTAL);
    if nanos.is_empty() {
        return None;
    }

    let mut rows: BTreeMap<(String, String), Row> = BTreeMap::new();
    let mut fill = |family: &str, set: fn(&mut Row, u64)| {
        for (labels, v) in reg.counter_family(family) {
            let key = (label_of(&labels, "phase"), label_of(&labels, "kernel"));
            set(rows.entry(key).or_default(), v);
        }
    };
    fill(names::KERNEL_CALLS_TOTAL, |r, v| r.calls = v);
    fill(names::KERNEL_FLOPS_TOTAL, |r, v| r.flops = v);
    fill(names::KERNEL_BYTES_TOTAL, |r, v| r.bytes = v);
    fill(names::KERNEL_NANOS_TOTAL, |r, v| r.nanos = v);

    // Wall seconds per phase from the span histograms, any target.
    let mut phase_wall: BTreeMap<String, f64> = BTreeMap::new();
    for (labels, snap) in reg.histogram_family(fedmigr_telemetry::PHASE_SECONDS) {
        let phase = label_of(&labels, "phase");
        *phase_wall.entry(phase).or_insert(0.0) += snap.sum;
    }
    // Process CPU seconds per phase, recorded at the credit boundaries.
    let mut phase_cpu: BTreeMap<String, f64> = BTreeMap::new();
    for (labels, v) in reg.counter_family(names::PHASE_CPU_NANOS_TOTAL) {
        *phase_cpu.entry(label_of(&labels, "phase")).or_insert(0.0) += v as f64 / 1e9;
    }

    let mut out = String::new();
    out.push_str(
        "kernel accounting by phase (%cpu = kernel time over process CPU; %wall = over phase \
         wall, >100% ⇒ parallel workers):\n",
    );
    out.push_str(&format!(
        "  {:<14} {:<12} {:>9} {:>10} {:>8} {:>9} {:>7} {:>7} {:>7}\n",
        "phase", "kernel", "calls", "GFLOP", "GFLOP/s", "GB", "FLOP/B", "%wall", "%cpu"
    ));

    let mut phases: Vec<&String> = rows.keys().map(|(p, _)| p).collect();
    phases.dedup();
    let phases: Vec<String> = phases.into_iter().cloned().collect();
    for phase in &phases {
        let wall = phase_wall.get(phase).copied().unwrap_or(0.0);
        let cpu = phase_cpu.get(phase).copied();
        let mut total = Row::default();
        let mut kernels: Vec<(&str, Row)> = rows
            .iter()
            .filter(|((p, _), _)| p == phase)
            .map(|((_, k), r)| (k.as_str(), *r))
            .collect();
        // Heaviest kernels first inside each phase.
        kernels.sort_by(|a, b| b.1.nanos.cmp(&a.1.nanos).then(a.0.cmp(b.0)));
        for (kernel, r) in &kernels {
            total.calls = total.calls.saturating_add(r.calls);
            total.flops = total.flops.saturating_add(r.flops);
            total.bytes = total.bytes.saturating_add(r.bytes);
            total.nanos = total.nanos.saturating_add(r.nanos);
            out.push_str(&row_line(phase, kernel, *r, wall, cpu));
        }
        if kernels.len() > 1 {
            out.push_str(&row_line(phase, "total", total, wall, cpu));
        }
    }
    Some(out)
}

fn row_line(phase: &str, kernel: &str, r: Row, phase_wall: f64, phase_cpu: Option<f64>) -> String {
    let secs = r.nanos as f64 / 1e9;
    let gflop = r.flops as f64 / 1e9;
    let gflops = if secs > 0.0 { gflop / secs } else { 0.0 };
    let gb = r.bytes as f64 / 1e9;
    let intensity = if r.bytes > 0 { r.flops as f64 / r.bytes as f64 } else { 0.0 };
    let wall_share = if phase_wall > 0.0 { 100.0 * secs / phase_wall } else { 0.0 };
    let cpu_share = match phase_cpu {
        Some(c) if c > 0.0 => format!("{:>6.1}%", 100.0 * secs / c),
        _ => format!("{:>7}", "-"),
    };
    format!(
        "  {:<14} {:<12} {:>9} {:>10.3} {:>8.2} {:>9.3} {:>7.2} {:>6.1}% {}\n",
        phase, kernel, r.calls, gflop, gflops, gb, intensity, wall_share, cpu_share
    )
}

/// Coverage of `phase`'s wall clock by accounted kernel time, in `[0, 1]`,
/// or `None` when either side recorded nothing. Drives the CI attribution
/// check without reparsing the rendered table.
pub fn phase_coverage(phase: &str) -> Option<f64> {
    let reg = fedmigr_telemetry::global().registry();
    let mut kernel_secs = 0.0;
    for (labels, v) in reg.counter_family(names::KERNEL_NANOS_TOTAL) {
        if label_of(&labels, "phase") == phase {
            kernel_secs += v as f64 / 1e9;
        }
    }
    let mut wall = 0.0;
    for (labels, snap) in reg.histogram_family(fedmigr_telemetry::PHASE_SECONDS) {
        if label_of(&labels, "phase") == phase {
            wall += snap.sum;
        }
    }
    if wall > 0.0 && kernel_secs > 0.0 {
        Some((kernel_secs / wall).min(1.0))
    } else {
        None
    }
}

/// Accounted kernel time over *process CPU time* for `phase`, uncapped, or
/// `None` when either side recorded nothing (e.g. no `/proc` off Linux).
/// Unlike [`phase_coverage`] this is an honest ratio on parallel phases —
/// both numerator and denominator sum across threads — so values should
/// sit near 1.0 and the CI gate bands it at 90–110%. Values persistently
/// above ~1.1 would mean kernel scopes over-report (e.g. nested scopes
/// double-counted); below ~0.9, unaccounted compute.
pub fn phase_cpu_coverage(phase: &str) -> Option<f64> {
    let reg = fedmigr_telemetry::global().registry();
    let mut kernel_secs = 0.0;
    for (labels, v) in reg.counter_family(names::KERNEL_NANOS_TOTAL) {
        if label_of(&labels, "phase") == phase {
            kernel_secs += v as f64 / 1e9;
        }
    }
    let mut cpu = 0.0;
    for (labels, v) in reg.counter_family(names::PHASE_CPU_NANOS_TOTAL) {
        if label_of(&labels, "phase") == phase {
            cpu += v as f64 / 1e9;
        }
    }
    if cpu > 0.0 && kernel_secs > 0.0 {
        Some(kernel_secs / cpu)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_rows_and_coverage_reads_back() {
        // Uses the process-global registry and kernel table, so this is the
        // single test that touches them (mirrors the kcount test policy).
        kcount::reset();
        kcount::set_enabled(true);
        {
            let _s = kcount::scope(Kernel::Matmul, 2_000_000, 1_000_000);
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let mut phases = KernelPhases { last: KernelSnapshot::default(), last_cpu: None };
        phases.credit("unit_test_phase");
        kcount::set_enabled(false);

        let table = kernel_table().expect("kernel rows were credited");
        assert!(table.contains("unit_test_phase"));
        assert!(table.contains("matmul"));

        // Phase wall histogram present -> coverage is computable and sane.
        fedmigr_telemetry::global()
            .registry()
            .histogram(
                fedmigr_telemetry::PHASE_SECONDS,
                &[("target", "unit"), ("phase", "unit_test_phase")],
            )
            .observe(10.0);
        let cov = phase_coverage("unit_test_phase").expect("both sides recorded");
        assert!(cov > 0.0 && cov <= 1.0, "coverage {cov} out of range");
        kcount::reset();
    }
}
