//! FedMigr: federated learning with intelligent model migration.
//!
//! This crate is the paper's primary contribution — the orchestration layer
//! that turns the substrates (neural nets, synthetic data, the MEC network
//! simulator, the DDPG agent) into runnable federated-learning experiments.
//!
//! # The five schemes
//!
//! * **FedAvg** — clients train one local epoch, the server aggregates the
//!   weighted average every epoch (Eq. 7).
//! * **FedProx** — FedAvg plus a proximal term `μ/2 ||w - w_g||²` pulling
//!   local updates towards the last global model.
//! * **FedSwap** — every epoch all models travel to the server; between
//!   aggregations the server *swaps* them among random client pairs. Same
//!   C2S traffic as FedAvg — the baseline's weakness the paper highlights.
//! * **RandMigr** — FedMigr's migration machinery with a *random*
//!   permutation instead of the learned policy (the paper's ablation).
//! * **FedMigr** — after each local epoch, every client forwards its model
//!   to a destination chosen by the EMPG agent ([`fedmigr_drl::DdpgAgent`])
//!   from the state `(t, F_t, D_t, R_t, G_t)`; the server aggregates only
//!   once per global iteration (every `M + 1` epochs).
//!
//! Fixed migration strategies (cross-LAN / within-LAN / random) reproduce
//! the Fig. 3 motivation experiment.
//!
//! # Example
//!
//! ```no_run
//! use fedmigr_core::{Experiment, RunConfig, Scheme};
//! use fedmigr_data::{partition_shards, SyntheticConfig, SyntheticDataset};
//! use fedmigr_net::{ClientCompute, DeviceTier, Topology, TopologyConfig};
//! use fedmigr_nn::zoo::{c10_cnn, NetScale};
//!
//! let data = SyntheticDataset::generate(&SyntheticConfig::c10_like(40, 7));
//! let parts = partition_shards(&data.train, 10, 1, 7);
//! let topo = Topology::new(&TopologyConfig::c10_sim(7));
//! let exp = Experiment::new(
//!     data.train,
//!     data.test,
//!     parts,
//!     topo,
//!     ClientCompute::homogeneous(10, DeviceTier::Nx),
//!     c10_cnn(3, 8, NetScale::Small, 7),
//! );
//! let metrics = exp.run(&RunConfig::new(Scheme::fedmigr(7), 200));
//! fedmigr_telemetry::info!(
//!     "example",
//!     "final accuracy {:.1}%",
//!     100.0 * metrics.final_accuracy()
//! );
//! if let Some(phases) = metrics.phase_summary() {
//!     fedmigr_telemetry::info!("example", "{phases}");
//! }
//! ```
//!
//! # Observability
//!
//! Runs are instrumented two ways (see `DESIGN.md` §8):
//!
//! * A deterministic **virtual** per-phase breakdown of the simulation
//!   clock ([`PhaseBreakdown`]) lands in every [`EpochRecord`], the CSV
//!   export and [`SchemeComparison::phase_report`] — byte-identical whether
//!   telemetry is on or off.
//! * Real wall-clock spans, counters and histograms flow through the
//!   `fedmigr-telemetry` side-channel (`--trace-out` / `--metrics-out` on
//!   the CLI) and never touch `RunMetrics`.

mod aggregate;
mod checkpoint;
mod client;
mod fleet;
pub mod kernels;
mod metrics;
mod migration;
mod privacy;
mod reward;
mod runner;
mod scheme;
mod summary;
mod timeline_capture;

pub use aggregate::{Aggregator, StalenessPolicy};
pub use checkpoint::{
    AgentSnapshot, FleetRunState, LateUploadState, RunStamp, RunState, RUN_STATE_MAGIC,
    RUN_STATE_VERSION,
};
pub use client::{ClientState, FlClient};
pub use fedmigr_compress::{CodecConfig, CompressionStats};
pub use fedmigr_diag::DiagConfig;
pub use fleet::{FleetExperiment, FleetOptions};
pub use metrics::{
    EpochRecord, FaultStats, PhaseBreakdown, RecoveryStats, RobustStats, RunMetrics,
};
pub use migration::{MigrationPlan, Quarantine, QuarantineConfig, QuarantineState};
pub use privacy::DpConfig;
pub use reward::{step_reward, terminal_reward, RewardConfig};
pub use runner::{Experiment, RunConfig, WatchdogConfig};
pub use scheme::{FedMigrConfig, MigrationStrategy, Scheme};
pub use summary::SchemeComparison;
