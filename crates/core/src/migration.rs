use std::collections::VecDeque;

use fedmigr_net::Topology;
use fedmigr_tensor::{all_finite, l2_distance_slice};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;

/// A one-round migration assignment: `dest[i] = j` means client `i`'s model
/// moves to client `j` this round. The assignment is always a permutation —
/// every client ends the round hosting exactly one model (possibly its own,
/// when `dest[i] == i`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MigrationPlan {
    dest: Vec<usize>,
}

impl MigrationPlan {
    /// Wraps a destination vector.
    ///
    /// # Panics
    /// Panics if `dest` is not a permutation of `0..dest.len()`.
    pub fn new(dest: Vec<usize>) -> Self {
        let mut seen = vec![false; dest.len()];
        for &j in &dest {
            assert!(j < dest.len() && !seen[j], "destinations must form a permutation");
            seen[j] = true;
        }
        Self { dest }
    }

    /// The identity plan (no model moves).
    pub fn identity(k: usize) -> Self {
        Self { dest: (0..k).collect() }
    }

    /// A uniformly random permutation (the RandMigr policy).
    pub fn random(k: usize, rng: &mut StdRng) -> Self {
        let mut dest: Vec<usize> = (0..k).collect();
        dest.shuffle(rng);
        Self { dest }
    }

    /// A random cyclic shift *within* each LAN: models never cross a LAN
    /// boundary (the Fig. 3 "within-LAN" strategy). Single-client LANs keep
    /// their model.
    pub fn within_lan(topo: &Topology, rng: &mut StdRng) -> Self {
        Self::within_lan_masked(topo, &vec![true; topo.num_clients()], rng)
    }

    /// Like [`MigrationPlan::within_lan`], but only the clients marked
    /// `true` in `active` take part in the rotation; dead or absent clients
    /// are fixed points and are never chosen as destinations.
    pub fn within_lan_masked(topo: &Topology, active: &[bool], rng: &mut StdRng) -> Self {
        let k = topo.num_clients();
        assert_eq!(active.len(), k);
        let mut groups: Vec<Vec<usize>> = Vec::new();
        for i in (0..k).filter(|&i| active[i]) {
            let lan = topo.lan_of(i);
            if groups.len() <= lan {
                groups.resize(lan + 1, Vec::new());
            }
            groups[lan].push(i);
        }
        let mut dest: Vec<usize> = (0..k).collect();
        for group in groups.iter().filter(|g| g.len() > 1) {
            // Random rotation of the group: a derangement within the LAN.
            let shift = rng.random_range(1..group.len());
            for (pos, &i) in group.iter().enumerate() {
                dest[i] = group[(pos + shift) % group.len()];
            }
        }
        Self { dest }
    }

    /// A permutation preferring *cross-LAN* destinations (the Fig. 3
    /// "cross-LAN" strategy): clients are matched greedily, in random
    /// order, to free clients of a different LAN whenever one exists.
    pub fn cross_lan(topo: &Topology, rng: &mut StdRng) -> Self {
        Self::cross_lan_masked(topo, &vec![true; topo.num_clients()], rng)
    }

    /// Like [`MigrationPlan::cross_lan`], but matching happens only among
    /// the clients marked `true` in `active`; the rest are fixed points.
    pub fn cross_lan_masked(topo: &Topology, active: &[bool], rng: &mut StdRng) -> Self {
        let k = topo.num_clients();
        assert_eq!(active.len(), k);
        let mut order: Vec<usize> = (0..k).filter(|&i| active[i]).collect();
        order.shuffle(rng);
        let mut free = active.to_vec();
        let mut dest: Vec<usize> = (0..k).collect();
        for &i in &order {
            let mut candidates: Vec<usize> =
                (0..k).filter(|&j| free[j] && !topo.same_lan(i, j)).collect();
            if candidates.is_empty() {
                candidates = (0..k).filter(|&j| free[j]).collect();
            }
            let j = candidates[rng.random_range(0..candidates.len())];
            dest[i] = j;
            free[j] = false;
        }
        Self::new(dest)
    }

    /// Resolves possibly-conflicting desired destinations (several models
    /// wanting the same host) into a permutation: clients are visited in
    /// random order; a client whose desired host is taken falls back to the
    /// free host maximizing `benefit[i][j]`.
    pub fn from_desired(desired: &[usize], benefit: &[Vec<f64>], rng: &mut StdRng) -> Self {
        let k = desired.len();
        let mut order: Vec<usize> = (0..k).collect();
        order.shuffle(rng);
        let mut free = vec![true; k];
        let mut dest = vec![usize::MAX; k];
        for &i in &order {
            let want = desired[i];
            let j = if want < k && free[want] {
                want
            } else {
                (0..k)
                    .filter(|&j| free[j])
                    .max_by(|&a, &b| benefit[i][a].total_cmp(&benefit[i][b]))
                    .expect("at least one host must be free")
            };
            dest[i] = j;
            free[j] = false;
        }
        Self::new(dest)
    }

    /// A uniformly random permutation over the clients marked `true` in
    /// `active`; everyone else keeps their model (partial participation).
    pub fn random_subset(k: usize, active: &[bool], rng: &mut StdRng) -> Self {
        assert_eq!(active.len(), k);
        let members: Vec<usize> = (0..k).filter(|&i| active[i]).collect();
        let mut shuffled = members.clone();
        shuffled.shuffle(rng);
        let mut dest: Vec<usize> = (0..k).collect();
        for (&from, &to) in members.iter().zip(&shuffled) {
            dest[from] = to;
        }
        Self::new(dest)
    }

    /// Like [`MigrationPlan::greedy_assignment`], but only the clients
    /// marked `true` in `active` exchange models; the rest are fixed points.
    pub fn greedy_assignment_masked(scores: &[Vec<f64>], active: &[bool]) -> Self {
        let k = scores.len();
        assert_eq!(active.len(), k);
        let mut pairs: Vec<(usize, usize)> = (0..k)
            .filter(|&i| active[i])
            .flat_map(|i| (0..k).filter(|&j| active[j]).map(move |j| (i, j)))
            .collect();
        pairs.sort_by(|&(ai, aj), &(bi, bj)| scores[bi][bj].total_cmp(&scores[ai][aj]));
        let mut dest: Vec<usize> = (0..k).collect();
        let mut assigned = vec![false; k];
        let mut taken = vec![false; k];
        for (i, j) in pairs {
            if !assigned[i] && !taken[j] {
                dest[i] = j;
                assigned[i] = true;
                taken[j] = true;
            }
        }
        // Any active client left unassigned (possible only when its
        // candidates were all taken) keeps its model if free, else takes
        // the first free active host.
        for i in (0..k).filter(|&i| active[i] && !assigned[i]) {
            let j = if !taken[i] {
                i
            } else {
                (0..k)
                    .find(|&j| active[j] && !taken[j])
                    .expect("active sources and hosts are in bijection")
            };
            dest[i] = j;
            taken[j] = true;
        }
        Self::new(dest)
    }

    /// Builds a permutation by globally greedy matching on a score matrix:
    /// repeatedly commits the highest-scoring `(source, destination)` pair
    /// among unassigned sources and free destinations. This is the integer
    /// recovery step applied to the relaxed-FLMM solution — it preserves
    /// far more of the relaxation's value than independent per-row argmax
    /// followed by conflict fallback.
    pub fn greedy_assignment(scores: &[Vec<f64>]) -> Self {
        let k = scores.len();
        let mut pairs: Vec<(usize, usize)> =
            (0..k).flat_map(|i| (0..k).map(move |j| (i, j))).collect();
        pairs.sort_by(|&(ai, aj), &(bi, bj)| scores[bi][bj].total_cmp(&scores[ai][aj]));
        let mut dest = vec![usize::MAX; k];
        let mut taken = vec![false; k];
        let mut assigned = 0usize;
        for (i, j) in pairs {
            if dest[i] == usize::MAX && !taken[j] {
                dest[i] = j;
                taken[j] = true;
                assigned += 1;
                if assigned == k {
                    break;
                }
            }
        }
        Self::new(dest)
    }

    /// Destination of client `i`'s model.
    pub fn dest(&self, i: usize) -> usize {
        self.dest[i]
    }

    /// Number of clients.
    pub fn len(&self) -> usize {
        self.dest.len()
    }

    /// Whether the plan is empty.
    pub fn is_empty(&self) -> bool {
        self.dest.is_empty()
    }

    /// Iterates over the actual moves `(source, destination)`, skipping
    /// fixed points.
    pub fn moves(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.dest.iter().enumerate().filter(|&(i, &j)| i != j).map(|(i, &j)| (i, j))
    }

    /// Number of models that actually move.
    pub fn num_moves(&self) -> usize {
        self.moves().count()
    }

    /// Applies the plan to a vector of per-client model parameters:
    /// `out[j] = params[i]` for `dest[i] = j`.
    pub fn apply<T: Clone>(&self, params: &[T]) -> Vec<T> {
        assert_eq!(params.len(), self.dest.len());
        let mut out: Vec<Option<T>> = vec![None; params.len()];
        for (i, &j) in self.dest.iter().enumerate() {
            out[j] = Some(params[i].clone());
        }
        out.into_iter().map(|x| x.expect("permutation covers all hosts")).collect()
    }
}

/// Tunables of the migration [`Quarantine`].
#[derive(Clone, Copy, Debug)]
pub struct QuarantineConfig {
    /// Accepted-migration distances kept in the rolling window.
    pub window: usize,
    /// The norm-anomaly rule arms only after this many accepted
    /// migrations; before that only the finite-ness screen applies (early
    /// training produces wildly varying distances).
    pub min_history: usize,
    /// A migration is rejected when its distance to the resident model
    /// exceeds `median + mad_multiplier * MAD` of the window.
    pub mad_multiplier: f64,
    /// EMA weight of a rejection on the source's suspicion score:
    /// `s <- (1 - gain) * s + gain`.
    pub suspicion_gain: f64,
    /// Per-epoch multiplicative decay of suspicion scores, so a peer that
    /// stops misbehaving (or was wrongly accused once) is rehabilitated.
    pub suspicion_decay: f64,
}

impl Default for QuarantineConfig {
    fn default() -> Self {
        Self {
            window: 64,
            min_history: 8,
            mad_multiplier: 6.0,
            suspicion_gain: 0.5,
            suspicion_decay: 0.98,
        }
    }
}

/// Receiver-side screening of migrated models.
///
/// Before a client adopts a model that arrived over C2C migration, the
/// model is screened: (1) every coordinate must be finite — a NaN model is
/// rejected outright; (2) once enough history exists, the L2 distance
/// between the incoming model and the receiver's resident model must not be
/// anomalously large relative to the running median/MAD of recently
/// *accepted* migration distances. A rejected model is simply not adopted
/// (the receiver keeps its own), the event is counted, and the source's
/// *suspicion* score rises — a `[0, 1]` EMA that the FedMigr oracle and the
/// DDPG state consume to steer migrations away from poisoned sources,
/// exactly as `liveness_penalty` steers them away from dead ones.
#[derive(Clone, Debug)]
pub struct Quarantine {
    config: QuarantineConfig,
    norms: VecDeque<f64>,
    suspicion: Vec<f64>,
    rejected: usize,
}

impl Quarantine {
    /// Creates a quarantine for `num_clients` clients.
    ///
    /// # Panics
    /// Panics on degenerate configuration (empty window, out-of-range gain
    /// or decay).
    pub fn new(config: QuarantineConfig, num_clients: usize) -> Self {
        assert!(config.window > 0, "window must be positive");
        assert!(config.mad_multiplier > 0.0, "mad_multiplier must be positive");
        assert!((0.0..=1.0).contains(&config.suspicion_gain), "suspicion_gain must be in [0,1]");
        assert!((0.0..=1.0).contains(&config.suspicion_decay), "suspicion_decay must be in [0,1]");
        Self { config, norms: VecDeque::new(), suspicion: vec![0.0; num_clients], rejected: 0 }
    }

    /// Screens a model migrated from `src` against the receiver's
    /// `resident` parameters. Returns `true` when the model may be adopted;
    /// `false` means reject (count it, keep the resident model, raise
    /// suspicion on `src`).
    pub fn screen(&mut self, src: usize, incoming: &[f32], resident: &[f32]) -> bool {
        if !all_finite(incoming) {
            self.reject(src);
            return false;
        }
        let dist = l2_distance_slice(incoming, resident);
        if self.norms.len() >= self.config.min_history {
            let (median, mad) = median_mad(self.norms.make_contiguous());
            // Floor the MAD so a freakishly tight window (e.g. IID clients
            // in lockstep) doesn't reject ordinary variation.
            let spread = mad.max(0.1 * median).max(1e-8);
            if dist > median + self.config.mad_multiplier * spread {
                self.reject(src);
                return false;
            }
        }
        if self.norms.len() == self.config.window {
            self.norms.pop_front();
        }
        self.norms.push_back(dist);
        true
    }

    fn reject(&mut self, src: usize) {
        self.rejected += 1;
        let g = self.config.suspicion_gain;
        if let Some(s) = self.suspicion.get_mut(src) {
            *s = (1.0 - g) * *s + g;
        }
    }

    /// Decays every suspicion score; call once per epoch.
    pub fn end_epoch(&mut self) {
        for s in &mut self.suspicion {
            *s *= self.config.suspicion_decay;
        }
    }

    /// Per-client suspicion scores in `[0, 1]`.
    pub fn suspicion(&self) -> &[f64] {
        &self.suspicion
    }

    /// Total migrations rejected so far.
    pub fn rejected(&self) -> usize {
        self.rejected
    }

    /// Raises suspicion on `src` without counting a screening rejection —
    /// the rollback watchdog's escalation path when a client is implicated
    /// in a divergence (its uploads went non-finite since the last good
    /// checkpoint).
    pub fn escalate(&mut self, src: usize) {
        let g = self.config.suspicion_gain;
        if let Some(s) = self.suspicion.get_mut(src) {
            *s = (1.0 - g) * *s + g;
        }
    }

    /// Captures the quarantine's mutable state for a run checkpoint (the
    /// config is rebuilt from the run configuration).
    pub fn export_state(&self) -> QuarantineState {
        QuarantineState {
            norms: self.norms.iter().copied().collect(),
            suspicion: self.suspicion.clone(),
            rejected: self.rejected,
        }
    }

    /// Restores state captured by [`Quarantine::export_state`].
    ///
    /// # Panics
    /// Panics when the snapshot's client count disagrees with this
    /// quarantine.
    pub fn import_state(&mut self, state: QuarantineState) {
        assert_eq!(state.suspicion.len(), self.suspicion.len(), "quarantine client mismatch");
        self.norms = state.norms.into();
        self.suspicion = state.suspicion;
        self.rejected = state.rejected;
    }
}

/// Checkpoint capture of a [`Quarantine`]'s mutable state.
#[derive(Clone, Debug, PartialEq)]
pub struct QuarantineState {
    /// Recently accepted migration distances, oldest first.
    pub norms: Vec<f64>,
    /// Per-client suspicion EMAs.
    pub suspicion: Vec<f64>,
    /// Total migrations rejected so far.
    pub rejected: usize,
}

/// Median and median-absolute-deviation of a slice (which it sorts a copy
/// of). Returns `(0, 0)` for an empty slice.
fn median_mad(xs: &[f64]) -> (f64, f64) {
    if xs.is_empty() {
        return (0.0, 0.0);
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(f64::total_cmp);
    let median = sorted[sorted.len() / 2];
    let mut devs: Vec<f64> = sorted.iter().map(|x| (x - median).abs()).collect();
    devs.sort_by(f64::total_cmp);
    (median, devs[devs.len() / 2])
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedmigr_net::TopologyConfig;
    use rand::SeedableRng;

    fn topo() -> Topology {
        Topology::new(&TopologyConfig::c10_sim(1))
    }

    #[test]
    fn identity_moves_nothing() {
        let p = MigrationPlan::identity(5);
        assert_eq!(p.num_moves(), 0);
        let data = vec![1, 2, 3, 4, 5];
        assert_eq!(p.apply(&data), data);
    }

    #[test]
    #[should_panic(expected = "permutation")]
    fn rejects_non_permutation() {
        let _ = MigrationPlan::new(vec![0, 0, 1]);
    }

    #[test]
    fn random_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10 {
            let p = MigrationPlan::random(7, &mut rng);
            let mut seen = [false; 7];
            for i in 0..7 {
                seen[p.dest(i)] = true;
            }
            assert!(seen.iter().all(|&s| s));
        }
    }

    #[test]
    fn within_lan_never_crosses() {
        let t = topo();
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..10 {
            let p = MigrationPlan::within_lan(&t, &mut rng);
            for (i, j) in p.moves() {
                assert!(t.same_lan(i, j), "move {i}->{j} crossed a LAN");
            }
            // LANs have >= 3 clients, so every model moves.
            assert_eq!(p.num_moves(), 10);
        }
    }

    #[test]
    fn cross_lan_mostly_crosses() {
        let t = topo();
        let mut rng = StdRng::seed_from_u64(5);
        let mut crossing = 0usize;
        let mut total = 0usize;
        for _ in 0..20 {
            let p = MigrationPlan::cross_lan(&t, &mut rng);
            for (i, j) in p.moves() {
                total += 1;
                if !t.same_lan(i, j) {
                    crossing += 1;
                }
            }
        }
        assert!(crossing as f64 / total as f64 > 0.8, "only {crossing}/{total} moves crossed LANs");
    }

    #[test]
    fn from_desired_respects_free_wishes_and_resolves_conflicts() {
        let mut rng = StdRng::seed_from_u64(9);
        // Both 0 and 1 want host 2; benefit breaks the tie for the loser.
        let desired = vec![2, 2, 0];
        let benefit = vec![vec![0.0, 1.0, 2.0], vec![0.5, 0.0, 2.0], vec![2.0, 1.0, 0.0]];
        for _ in 0..10 {
            let p = MigrationPlan::from_desired(&desired, &benefit, &mut rng);
            // Exactly one of clients 0/1 got host 2.
            assert!(p.dest(0) == 2 || p.dest(1) == 2);
            // It is a permutation regardless.
            let mut seen = [false; 3];
            for i in 0..3 {
                seen[p.dest(i)] = true;
            }
            assert!(seen.iter().all(|&s| s));
        }
    }

    #[test]
    fn random_subset_fixes_inactive_clients() {
        let mut rng = StdRng::seed_from_u64(5);
        let active = [true, false, true, false, true];
        for _ in 0..10 {
            let p = MigrationPlan::random_subset(5, &active, &mut rng);
            assert_eq!(p.dest(1), 1);
            assert_eq!(p.dest(3), 3);
            // Active destinations stay within the active set.
            for (i, j) in p.moves() {
                assert!(active[i] && active[j]);
            }
        }
    }

    #[test]
    fn within_lan_masked_skips_dead_clients() {
        let t = topo();
        let mut rng = StdRng::seed_from_u64(11);
        let mut active = vec![true; 10];
        active[1] = false;
        active[5] = false;
        for _ in 0..10 {
            let p = MigrationPlan::within_lan_masked(&t, &active, &mut rng);
            assert_eq!(p.dest(1), 1);
            assert_eq!(p.dest(5), 5);
            for (i, j) in p.moves() {
                assert!(active[i] && active[j], "move {i}->{j} touches a dead client");
                assert!(t.same_lan(i, j));
            }
        }
    }

    #[test]
    fn cross_lan_masked_skips_dead_clients() {
        let t = topo();
        let mut rng = StdRng::seed_from_u64(13);
        let mut active = vec![true; 10];
        active[0] = false;
        active[8] = false;
        for _ in 0..10 {
            let p = MigrationPlan::cross_lan_masked(&t, &active, &mut rng);
            assert_eq!(p.dest(0), 0);
            assert_eq!(p.dest(8), 8);
            for (i, j) in p.moves() {
                assert!(active[i] && active[j], "move {i}->{j} touches a dead client");
            }
        }
    }

    #[test]
    fn masked_variants_with_full_mask_match_unmasked() {
        let t = topo();
        let all = vec![true; 10];
        let mut a = StdRng::seed_from_u64(21);
        let mut b = StdRng::seed_from_u64(21);
        for _ in 0..5 {
            assert_eq!(
                MigrationPlan::within_lan(&t, &mut a),
                MigrationPlan::within_lan_masked(&t, &all, &mut b)
            );
            assert_eq!(
                MigrationPlan::cross_lan(&t, &mut a),
                MigrationPlan::cross_lan_masked(&t, &all, &mut b)
            );
        }
    }

    #[test]
    fn greedy_assignment_maximizes_scores() {
        // 0 prefers 1, 1 prefers 0, 2 prefers 2: a clean assignment exists.
        let scores = vec![vec![0.0, 5.0, 1.0], vec![5.0, 0.0, 1.0], vec![1.0, 1.0, 3.0]];
        let p = MigrationPlan::greedy_assignment(&scores);
        assert_eq!(p.dest(0), 1);
        assert_eq!(p.dest(1), 0);
        assert_eq!(p.dest(2), 2);
    }

    #[test]
    fn greedy_assignment_masked_respects_mask() {
        let scores = vec![vec![0.0, 9.0, 9.0], vec![9.0, 0.0, 9.0], vec![9.0, 9.0, 0.0]];
        let active = [true, false, true];
        let p = MigrationPlan::greedy_assignment_masked(&scores, &active);
        assert_eq!(p.dest(1), 1, "inactive client must keep its model");
        // Actives swap (their mutual score 9 beats staying at 0).
        assert_eq!(p.dest(0), 2);
        assert_eq!(p.dest(2), 0);
    }

    #[test]
    fn apply_routes_models() {
        let p = MigrationPlan::new(vec![1, 2, 0]);
        let models = vec!["a", "b", "c"];
        // dest: a->1, b->2, c->0.
        assert_eq!(p.apply(&models), vec!["c", "a", "b"]);
    }

    #[test]
    fn quarantine_rejects_non_finite_models_immediately() {
        let mut q = Quarantine::new(QuarantineConfig::default(), 4);
        let resident = vec![0.0f32; 8];
        let mut poisoned = vec![0.1f32; 8];
        poisoned[3] = f32::NAN;
        assert!(!q.screen(2, &poisoned, &resident));
        assert_eq!(q.rejected(), 1);
        assert!(q.suspicion()[2] > 0.0, "rejection must raise suspicion");
        assert_eq!(q.suspicion()[0], 0.0);
    }

    #[test]
    fn quarantine_accepts_benign_stream_and_rejects_outlier() {
        let mut q = Quarantine::new(QuarantineConfig::default(), 4);
        let resident = vec![0.0f32; 16];
        // Benign migrations land at distance ~1 from the resident model.
        for i in 0..20 {
            let mut m = vec![0.0f32; 16];
            m[i % 16] = 1.0 + 0.01 * (i % 5) as f32;
            assert!(q.screen(i % 3, &m, &resident), "benign migration {i} rejected");
        }
        assert_eq!(q.rejected(), 0);
        // A sign-flip-scale outlier (distance ~400) must be rejected.
        let outlier = vec![100.0f32; 16];
        assert!(!q.screen(3, &outlier, &resident));
        assert_eq!(q.rejected(), 1);
        assert!(q.suspicion()[3] > 0.4);
    }

    #[test]
    fn quarantine_is_permissive_before_history_builds() {
        let mut q = Quarantine::new(QuarantineConfig::default(), 2);
        let resident = vec![0.0f32; 4];
        // First (finite) migration is huge, but there's no history yet:
        // only the finite-ness screen applies.
        let big = vec![1000.0f32; 4];
        assert!(q.screen(0, &big, &resident));
        assert_eq!(q.rejected(), 0);
    }

    #[test]
    fn suspicion_decays_over_epochs() {
        let mut q = Quarantine::new(QuarantineConfig::default(), 2);
        let resident = vec![0.0f32; 4];
        let nan = vec![f32::NAN; 4];
        assert!(!q.screen(1, &nan, &resident));
        let before = q.suspicion()[1];
        for _ in 0..50 {
            q.end_epoch();
        }
        let after = q.suspicion()[1];
        assert!(after < before * 0.5, "suspicion {before} should decay, got {after}");
    }

    #[test]
    fn quarantine_state_round_trips_and_escalates() {
        let mut q = Quarantine::new(QuarantineConfig::default(), 3);
        let resident = vec![0.0f32; 4];
        let nan = vec![f32::NAN; 4];
        assert!(q.screen(0, &[0.1, 0.0, 0.0, 0.0], &resident));
        assert!(!q.screen(2, &nan, &resident));
        let snap = q.export_state();

        let mut restored = Quarantine::new(QuarantineConfig::default(), 3);
        restored.import_state(snap);
        assert_eq!(restored.rejected(), q.rejected());
        assert_eq!(restored.suspicion(), q.suspicion());
        // Both copies must screen identically from here on.
        assert!(!restored.screen(2, &nan, &resident));
        assert!(!q.screen(2, &nan, &resident));
        assert_eq!(restored.suspicion(), q.suspicion());

        // Escalation raises suspicion without counting a rejection.
        let before = restored.suspicion()[1];
        let rejected = restored.rejected();
        restored.escalate(1);
        assert!(restored.suspicion()[1] > before);
        assert_eq!(restored.rejected(), rejected);
    }

    #[test]
    #[should_panic(expected = "client mismatch")]
    fn quarantine_import_rejects_wrong_client_count() {
        let mut q = Quarantine::new(QuarantineConfig::default(), 3);
        let snap = Quarantine::new(QuarantineConfig::default(), 2).export_state();
        q.import_state(snap);
    }

    #[test]
    fn median_mad_of_known_values() {
        let (m, d) = median_mad(&[1.0, 2.0, 3.0, 4.0, 100.0]);
        assert_eq!(m, 3.0);
        assert_eq!(d, 1.0);
        assert_eq!(median_mad(&[]), (0.0, 0.0));
    }
}
