//! Pluggable server-side aggregation rules, including Byzantine-robust
//! ones.
//!
//! `aggregate_active` was a plain sample-weighted mean ([FedAvg's Eq. 7]);
//! one sign-flipped or NaN upload destroys the global model. This module
//! makes the rule pluggable: [`Aggregator::FedAvg`] reproduces the original
//! mean **bit-identically** (it routes through the exact
//! `fedmigr_nn::params::weighted_average` call the runner used before), and
//! the robust rules trade a little statistical efficiency for bounded
//! influence of a minority of Byzantine uploads:
//!
//! | rule | tolerates | idea |
//! |------|-----------|------|
//! | [`Aggregator::TrimmedMean`] | `< trim` fraction | drop the extremes of every coordinate |
//! | [`Aggregator::CoordinateMedian`] | `< 1/2` | per-coordinate median |
//! | [`Aggregator::Krum`] | `f` of `n` (`n > 2f+2`) | pick the update closest to its neighbors |
//! | [`Aggregator::MultiKrum`] | `f` of `n` | average the `m` best Krum scores |
//! | [`Aggregator::NormClip`] | norm-boosting | clip update norms to a median multiple |
//!
//! Every robust rule first screens out non-finite uploads (a NaN coordinate
//! poisons any arithmetic rule); plain FedAvg deliberately does not, since
//! it must stay byte-identical to the legacy path — that fragility is the
//! point of comparison in `figB_byzantine`. All rules fall back to the
//! previous global model when no usable update remains.

use fedmigr_nn::params::weighted_average;
use fedmigr_tensor::{all_finite, l2_norm_slice, pairwise_sq_distances};
use serde::{Deserialize, Serialize};

use crate::metrics::RobustStats;

/// Staleness discounting for the degraded aggregation path.
///
/// Under the flow transport an upload can finish after its round's
/// deadline. Rather than stalling the round (or discarding the work), the
/// runner buffers the late update and folds it into a *later* aggregation
/// with its sample weight scaled by `discount^age`, where `age >= 1` is
/// how many aggregation rounds late it arrives — the standard staleness
/// weighting of asynchronous FL, applied here as graceful degradation.
/// Updates older than `max_age` rounds are dropped instead.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct StalenessPolicy {
    /// Per-round-of-age weight multiplier, in `(0, 1]`.
    pub discount: f64,
    /// Oldest age (in aggregation rounds) still folded in; older updates
    /// are dropped.
    pub max_age: usize,
}

impl StalenessPolicy {
    /// The standard policy: weight x0.6 per round of age, dropped after 3.
    pub fn standard() -> Self {
        Self { discount: 0.6, max_age: 3 }
    }

    /// Weight multiplier for an update `age` aggregation rounds old.
    ///
    /// # Panics
    /// Panics on an out-of-range discount.
    pub fn weight(&self, age: usize) -> f64 {
        assert!(
            self.discount > 0.0 && self.discount <= 1.0,
            "staleness discount must be in (0, 1], got {}",
            self.discount
        );
        self.discount.powi(age as i32)
    }
}

impl Default for StalenessPolicy {
    fn default() -> Self {
        Self::standard()
    }
}

/// The aggregation rule applied to the uploads of a synchronization round.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub enum Aggregator {
    /// Sample-weighted mean — the paper's Eq. 7, bit-identical to the
    /// pre-defense code path. No screening, no robustness.
    #[default]
    FedAvg,
    /// Coordinate-wise trimmed mean: drop the `trim` fraction of values
    /// from each end of every coordinate, average the rest.
    TrimmedMean {
        /// Fraction trimmed from *each* end, in `[0, 0.5)`.
        trim: f64,
    },
    /// Coordinate-wise median (the `trim -> 0.5` limit of the trimmed
    /// mean); tolerates just under half the uploads being arbitrary.
    CoordinateMedian,
    /// Krum: return the single upload minimizing the sum of squared
    /// distances to its `n - f - 2` nearest neighbors.
    Krum {
        /// Number of Byzantine uploads the score assumes (`f`).
        assumed_byzantine: usize,
    },
    /// Multi-Krum: weighted mean of the `select` uploads with the best
    /// Krum scores.
    MultiKrum {
        /// Number of Byzantine uploads the score assumes (`f`).
        assumed_byzantine: usize,
        /// How many of the best-scored uploads are averaged.
        select: usize,
    },
    /// Norm clipping: scale any update (delta from the previous global
    /// model) whose norm exceeds `multiplier x median_norm` down to that
    /// threshold, then average. Defuses scaled-replacement boosting.
    NormClip {
        /// Allowed multiple of the median update norm, `> 0`.
        multiplier: f64,
    },
}

impl Aggregator {
    /// Display name for tables and logs.
    pub fn name(&self) -> &'static str {
        match self {
            Aggregator::FedAvg => "FedAvg",
            Aggregator::TrimmedMean { .. } => "TrimmedMean",
            Aggregator::CoordinateMedian => "CoordMedian",
            Aggregator::Krum { .. } => "Krum",
            Aggregator::MultiKrum { .. } => "MultiKrum",
            Aggregator::NormClip { .. } => "NormClip",
        }
    }

    /// The default parameterization of each rule for a population where up
    /// to `assumed_byzantine` of `n` uploads may be hostile.
    pub fn trimmed_mean() -> Self {
        Aggregator::TrimmedMean { trim: 0.25 }
    }

    /// Krum assuming `f` Byzantine uploads.
    pub fn krum(f: usize) -> Self {
        Aggregator::Krum { assumed_byzantine: f }
    }

    /// Multi-Krum assuming `f` Byzantine uploads, averaging `select` winners.
    pub fn multi_krum(f: usize, select: usize) -> Self {
        Aggregator::MultiKrum { assumed_byzantine: f, select }
    }

    /// Norm clipping at 2x the median update norm.
    pub fn norm_clip() -> Self {
        Aggregator::NormClip { multiplier: 2.0 }
    }

    /// Aggregates one round of uploads.
    ///
    /// `entries` are `(params, weight)` pairs (weight = sample count);
    /// `prev_global` is the fallback when nothing usable was uploaded —
    /// callers get it back unchanged (satisfying the all-inactive-round
    /// guard) and may log the event. Defense counters accumulate into
    /// `stats`.
    ///
    /// # Panics
    /// Panics if parameter vectors disagree in length with `prev_global`,
    /// or on invalid rule parameters (`trim >= 0.5`, zero `select`,
    /// non-positive `multiplier`).
    pub fn aggregate(
        &self,
        entries: &[(&[f32], f64)],
        prev_global: &[f32],
        stats: &mut RobustStats,
    ) -> Vec<f32> {
        for (p, _) in entries {
            assert_eq!(p.len(), prev_global.len(), "upload length mismatch");
        }
        if entries.is_empty() {
            return prev_global.to_vec();
        }
        if let Aggregator::FedAvg = self {
            // The legacy path, untouched: bit-identical to the pre-defense
            // runner, including its vulnerability to non-finite uploads.
            return weighted_average(entries);
        }
        // Every robust rule screens non-finite uploads first; a NaN
        // coordinate would otherwise poison sorts, means and distances.
        let finite: Vec<(&[f32], f64)> = entries
            .iter()
            .filter(|(p, _)| {
                let ok = all_finite(p);
                if !ok {
                    stats.nan_uploads += 1;
                    stats.trimmed_clients += 1;
                }
                ok
            })
            .copied()
            .collect();
        if finite.is_empty() {
            return prev_global.to_vec();
        }
        match *self {
            Aggregator::FedAvg => unreachable!("handled above"),
            Aggregator::TrimmedMean { trim } => trimmed_mean(&finite, trim, stats),
            Aggregator::CoordinateMedian => coordinate_median(&finite),
            Aggregator::Krum { assumed_byzantine } => {
                krum_select(&finite, assumed_byzantine, 1, stats)
            }
            Aggregator::MultiKrum { assumed_byzantine, select } => {
                assert!(select > 0, "MultiKrum must select at least one upload");
                krum_select(&finite, assumed_byzantine, select, stats)
            }
            Aggregator::NormClip { multiplier } => {
                norm_clip(&finite, prev_global, multiplier, stats)
            }
        }
    }

    /// [`Self::aggregate`] with a staleness-tolerant degraded path: `stale`
    /// entries are `(params, weight, age)` for uploads that missed their
    /// round's deadline, folded in with weight `w * discount^age`. Callers
    /// drop entries past `policy.max_age` before calling (and account them
    /// as dropped). With no stale entries this is exactly
    /// [`Self::aggregate`] — fresh-only rounds stay bit-identical.
    pub fn aggregate_with_stale(
        &self,
        fresh: &[(&[f32], f64)],
        stale: &[(&[f32], f64, usize)],
        policy: &StalenessPolicy,
        prev_global: &[f32],
        stats: &mut RobustStats,
    ) -> Vec<f32> {
        if stale.is_empty() {
            return self.aggregate(fresh, prev_global, stats);
        }
        let mut entries: Vec<(&[f32], f64)> = fresh.to_vec();
        for &(p, w, age) in stale {
            debug_assert!(age >= 1, "a stale update is at least one round old");
            debug_assert!(age <= policy.max_age, "caller must drop over-age updates");
            entries.push((p, w * policy.weight(age)));
        }
        self.aggregate(&entries, prev_global, stats)
    }
}

/// Coordinate-wise trimmed mean. `trim` is the fraction dropped from each
/// end of every coordinate's sorted values (unweighted, as in the
/// Yin et al. analysis — sample weights would let an attacker with a large
/// claimed dataset dominate the kept mass).
fn trimmed_mean(entries: &[(&[f32], f64)], trim: f64, stats: &mut RobustStats) -> Vec<f32> {
    assert!((0.0..0.5).contains(&trim), "trim fraction must be in [0, 0.5), got {trim}");
    let n = entries.len();
    let t = ((trim * n as f64).floor() as usize).min((n - 1) / 2);
    stats.trimmed_clients += 2 * t;
    let dim = entries[0].0.len();
    let mut out = vec![0.0f32; dim];
    let mut column = vec![0.0f32; n];
    let kept = n - 2 * t;
    for (d, o) in out.iter_mut().enumerate() {
        for (c, (p, _)) in column.iter_mut().zip(entries) {
            *c = p[d];
        }
        column.sort_by(f32::total_cmp);
        let sum: f64 = column[t..n - t].iter().map(|&x| x as f64).sum();
        *o = (sum / kept as f64) as f32;
    }
    out
}

/// Coordinate-wise median (lower median on even counts, which keeps the
/// result an actually-uploaded value per coordinate).
fn coordinate_median(entries: &[(&[f32], f64)]) -> Vec<f32> {
    let n = entries.len();
    let dim = entries[0].0.len();
    let mut out = vec![0.0f32; dim];
    let mut column = vec![0.0f32; n];
    for (d, o) in out.iter_mut().enumerate() {
        for (c, (p, _)) in column.iter_mut().zip(entries) {
            *c = p[d];
        }
        column.sort_by(f32::total_cmp);
        *o = if n % 2 == 1 {
            column[n / 2]
        } else {
            ((column[n / 2 - 1] as f64 + column[n / 2] as f64) / 2.0) as f32
        };
    }
    out
}

/// (Multi-)Krum: score every upload by the sum of its `n - f - 2` smallest
/// squared distances to the other uploads, then average the `select` best
/// (weighted). `select == 1` is classic Krum.
fn krum_select(
    entries: &[(&[f32], f64)],
    assumed_byzantine: usize,
    select: usize,
    stats: &mut RobustStats,
) -> Vec<f32> {
    let n = entries.len();
    let select = select.min(n);
    if n <= select {
        // Not enough uploads to discard anything; plain weighted mean.
        return weighted_average(entries);
    }
    let vectors: Vec<&[f32]> = entries.iter().map(|(p, _)| *p).collect();
    let sq = pairwise_sq_distances(&vectors);
    // Krum's theory wants n >= 2f + 3; with fewer uploads clamp the
    // neighbor count so the score stays defined.
    let neighbors = n.saturating_sub(assumed_byzantine + 2).max(1);
    let mut scores: Vec<(f64, usize)> = (0..n)
        .map(|i| {
            let mut dists: Vec<f64> = (0..n).filter(|&j| j != i).map(|j| sq[i * n + j]).collect();
            dists.sort_by(f64::total_cmp);
            (dists[..neighbors.min(dists.len())].iter().sum::<f64>(), i)
        })
        .collect();
    scores.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    stats.trimmed_clients += n - select;
    let chosen: Vec<(&[f32], f64)> = scores[..select].iter().map(|&(_, i)| entries[i]).collect();
    weighted_average(&chosen)
}

/// Norm clipping: deltas from `prev_global` whose norm exceeds
/// `multiplier x median_norm` are scaled down to the threshold before the
/// weighted mean. A tiny floor keeps the threshold positive in the first
/// rounds when benign updates are still near-zero.
fn norm_clip(
    entries: &[(&[f32], f64)],
    prev_global: &[f32],
    multiplier: f64,
    stats: &mut RobustStats,
) -> Vec<f32> {
    assert!(multiplier > 0.0, "NormClip multiplier must be positive, got {multiplier}");
    let deltas: Vec<Vec<f32>> = entries
        .iter()
        .map(|(p, _)| p.iter().zip(prev_global).map(|(x, g)| x - g).collect())
        .collect();
    let mut norms: Vec<f64> = deltas.iter().map(|d| l2_norm_slice(d)).collect();
    let mut sorted = norms.clone();
    sorted.sort_by(f64::total_cmp);
    let median = sorted[sorted.len() / 2].max(1e-8);
    let threshold = multiplier * median;
    let mut clipped: Vec<(Vec<f32>, f64)> = Vec::with_capacity(entries.len());
    for ((delta, norm), (_, w)) in deltas.into_iter().zip(norms.iter_mut()).zip(entries) {
        if *norm > threshold {
            stats.clipped_norms += 1;
            let scale = (threshold / *norm) as f32;
            clipped.push((delta.iter().map(|x| x * scale).collect(), *w));
        } else {
            clipped.push((delta, *w));
        }
    }
    let refs: Vec<(&[f32], f64)> = clipped.iter().map(|(d, w)| (d.as_slice(), *w)).collect();
    let mean_delta = weighted_average(&refs);
    prev_global.iter().zip(&mean_delta).map(|(g, d)| g + d).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats() -> RobustStats {
        RobustStats::default()
    }

    #[test]
    fn fedavg_matches_weighted_average_bit_for_bit() {
        let a = vec![1.0f32, 2.0, 3.0];
        let b = vec![3.0f32, 0.0, -1.0];
        let entries: Vec<(&[f32], f64)> = vec![(&a, 2.0), (&b, 1.0)];
        let mut s = stats();
        let got = Aggregator::FedAvg.aggregate(&entries, &[0.0; 3], &mut s);
        assert_eq!(got, weighted_average(&entries));
        assert!(!s.any(), "FedAvg must not touch defense counters");
    }

    #[test]
    fn every_rule_falls_back_to_prev_global_on_empty_round() {
        let prev = vec![0.5f32, -0.5];
        for agg in [
            Aggregator::FedAvg,
            Aggregator::trimmed_mean(),
            Aggregator::CoordinateMedian,
            Aggregator::krum(1),
            Aggregator::multi_krum(1, 2),
            Aggregator::norm_clip(),
        ] {
            let mut s = stats();
            let got = agg.aggregate(&[], &prev, &mut s);
            assert_eq!(got, prev, "{} must return prev_global on empty input", agg.name());
        }
    }

    #[test]
    fn robust_rules_screen_nan_uploads_fedavg_does_not() {
        let good = vec![1.0f32, 1.0];
        let bad = vec![f32::NAN, 1.0];
        let entries: Vec<(&[f32], f64)> = vec![(&good, 1.0), (&bad, 1.0)];
        let mut s = stats();
        let med = Aggregator::CoordinateMedian.aggregate(&entries, &[0.0; 2], &mut s);
        assert_eq!(med, good, "median over the surviving upload");
        assert_eq!(s.nan_uploads, 1);
        let mut s2 = stats();
        let avg = Aggregator::FedAvg.aggregate(&entries, &[0.0; 2], &mut s2);
        assert!(avg[0].is_nan(), "plain FedAvg stays vulnerable by design");
        assert_eq!(s2.nan_uploads, 0);
    }

    #[test]
    fn all_nan_round_falls_back_to_prev_global() {
        let bad = vec![f32::INFINITY, 0.0];
        let entries: Vec<(&[f32], f64)> = vec![(&bad, 1.0)];
        let prev = vec![7.0f32, 8.0];
        let mut s = stats();
        let got = Aggregator::trimmed_mean().aggregate(&entries, &prev, &mut s);
        assert_eq!(got, prev);
        assert_eq!(s.nan_uploads, 1);
    }

    #[test]
    fn trimmed_mean_drops_extremes() {
        let vs: Vec<Vec<f32>> = vec![vec![1.0], vec![2.0], vec![3.0], vec![4.0], vec![1000.0]];
        let entries: Vec<(&[f32], f64)> = vs.iter().map(|v| (v.as_slice(), 1.0)).collect();
        let mut s = stats();
        let got = Aggregator::TrimmedMean { trim: 0.2 }.aggregate(&entries, &[0.0], &mut s);
        // Drops 1.0 and 1000.0, mean of {2, 3, 4} = 3.
        assert_eq!(got, vec![3.0]);
        assert_eq!(s.trimmed_clients, 2);
    }

    #[test]
    fn coordinate_median_resists_a_minority() {
        let vs: Vec<Vec<f32>> = vec![vec![1.0, -1.0], vec![1.2, -0.8], vec![-999.0, 999.0]];
        let entries: Vec<(&[f32], f64)> = vs.iter().map(|v| (v.as_slice(), 1.0)).collect();
        let mut s = stats();
        let got = Aggregator::CoordinateMedian.aggregate(&entries, &[0.0; 2], &mut s);
        assert_eq!(got, vec![1.0, -0.8]);
    }

    #[test]
    fn krum_picks_the_consensus_update() {
        // Three near-identical benign updates + one far-away attacker.
        let vs: Vec<Vec<f32>> =
            vec![vec![1.0, 1.0], vec![1.1, 0.9], vec![0.9, 1.1], vec![-50.0, 50.0]];
        let entries: Vec<(&[f32], f64)> = vs.iter().map(|v| (v.as_slice(), 1.0)).collect();
        let mut s = stats();
        let got = Aggregator::krum(1).aggregate(&entries, &[0.0; 2], &mut s);
        assert_eq!(got, vs[0], "the center of the benign cluster wins");
        assert_eq!(s.trimmed_clients, 3, "everything but the winner is set aside");
    }

    #[test]
    fn multi_krum_averages_the_benign_cluster() {
        let vs: Vec<Vec<f32>> = vec![vec![1.0], vec![2.0], vec![3.0], vec![500.0], vec![-500.0]];
        let entries: Vec<(&[f32], f64)> = vs.iter().map(|v| (v.as_slice(), 1.0)).collect();
        let mut s = stats();
        let got = Aggregator::multi_krum(2, 3).aggregate(&entries, &[0.0], &mut s);
        assert_eq!(got, vec![2.0], "mean of the three central updates");
        assert_eq!(s.trimmed_clients, 2);
    }

    #[test]
    fn norm_clip_defuses_a_boosted_update() {
        let prev = vec![0.0f32, 0.0];
        let vs: Vec<Vec<f32>> = vec![vec![1.0, 0.0], vec![0.0, 1.0], vec![100.0, 0.0]];
        let entries: Vec<(&[f32], f64)> = vs.iter().map(|v| (v.as_slice(), 1.0)).collect();
        let mut s = stats();
        let got = Aggregator::norm_clip().aggregate(&entries, &prev, &mut s);
        assert_eq!(s.clipped_norms, 1, "only the boosted update is clipped");
        // Median norm 1, threshold 2: the 100-norm update shrinks to norm 2,
        // so the mean's first coordinate is (1 + 0 + 2) / 3 = 1.
        assert!((got[0] - 1.0).abs() < 1e-5, "got {got:?}");
        assert!((got[1] - 1.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn single_upload_passes_through_robust_rules() {
        let v = vec![2.0f32, -2.0];
        let entries: Vec<(&[f32], f64)> = vec![(&v, 3.0)];
        for agg in [
            Aggregator::trimmed_mean(),
            Aggregator::CoordinateMedian,
            Aggregator::krum(1),
            Aggregator::norm_clip(),
        ] {
            let mut s = stats();
            let got = agg.aggregate(&entries, &[0.0; 2], &mut s);
            for (g, e) in got.iter().zip(&v) {
                assert!((g - e).abs() < 1e-5, "{}: {got:?} != {v:?}", agg.name());
            }
        }
    }

    #[test]
    fn staleness_weight_decays_geometrically() {
        let p = StalenessPolicy::standard();
        assert_eq!(p.weight(0), 1.0);
        assert!((p.weight(1) - 0.6).abs() < 1e-12);
        assert!((p.weight(3) - 0.216).abs() < 1e-12);
        assert_eq!(StalenessPolicy { discount: 1.0, max_age: 2 }.weight(5), 1.0);
    }

    #[test]
    fn stale_updates_are_discounted_not_ignored() {
        let fresh = vec![0.0f32];
        let late = vec![10.0f32];
        let fresh_entries: Vec<(&[f32], f64)> = vec![(&fresh, 1.0)];
        let stale_entries: Vec<(&[f32], f64, usize)> = vec![(&late, 1.0, 1)];
        let policy = StalenessPolicy { discount: 0.5, max_age: 3 };
        let mut s = stats();
        let got = Aggregator::FedAvg.aggregate_with_stale(
            &fresh_entries,
            &stale_entries,
            &policy,
            &[0.0],
            &mut s,
        );
        // Weighted mean of 0 (w=1) and 10 (w=0.5): 10/3.
        assert!((got[0] - 10.0 / 3.0).abs() < 1e-5, "got {got:?}");
        // An age-2 update counts half as much again.
        let stale2: Vec<(&[f32], f64, usize)> = vec![(&late, 1.0, 2)];
        let got2 = Aggregator::FedAvg.aggregate_with_stale(
            &fresh_entries,
            &stale2,
            &policy,
            &[0.0],
            &mut s,
        );
        assert!(got2[0] < got[0], "older updates must weigh less: {got2:?} vs {got:?}");
    }

    #[test]
    fn no_stale_entries_is_bit_identical_to_plain_aggregate() {
        let a = vec![1.0f32, 2.0];
        let b = vec![-1.0f32, 0.5];
        let entries: Vec<(&[f32], f64)> = vec![(&a, 2.0), (&b, 3.0)];
        for agg in [Aggregator::FedAvg, Aggregator::CoordinateMedian, Aggregator::norm_clip()] {
            let mut s1 = stats();
            let mut s2 = stats();
            let plain = agg.aggregate(&entries, &[0.0; 2], &mut s1);
            let with = agg.aggregate_with_stale(
                &entries,
                &[],
                &StalenessPolicy::standard(),
                &[0.0; 2],
                &mut s2,
            );
            assert_eq!(plain, with, "{}", agg.name());
        }
    }

    #[test]
    #[should_panic(expected = "trim fraction")]
    fn trimmed_mean_rejects_half_or_more() {
        let v = vec![1.0f32];
        let entries: Vec<(&[f32], f64)> = vec![(&v, 1.0), (&v, 1.0)];
        let _ = Aggregator::TrimmedMean { trim: 0.5 }.aggregate(&entries, &[0.0], &mut stats());
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn rejects_mismatched_upload_lengths() {
        let v = vec![1.0f32, 2.0];
        let entries: Vec<(&[f32], f64)> = vec![(&v, 1.0)];
        let _ = Aggregator::FedAvg.aggregate(&entries, &[0.0; 3], &mut stats());
    }
}
