use std::sync::Arc;

use fedmigr_compress::{CodecConfig, Compressor};
use fedmigr_data::distribution::{l1_distance, normalized_emd};
use fedmigr_data::Dataset;
use fedmigr_diag::{
    DiagConfig, DriftSnapshot, DrlSnapshot, EdgeOutcome, EmdSnapshot, FlightHeader, FlightRecorder,
    FlightSummary, GraphSnapshot, MigrationEdge, RoundRecord, FLIGHT_VERSION,
};
use fedmigr_drl::qp::FlmmRelaxation;
use fedmigr_drl::{AgentConfig, DdpgAgent, MigrationState, Transition};
use fedmigr_net::{
    simulate_c2s_traced, simulate_migrations_traced, transfer_time, transfer_time_with_latency,
    try_transfer_time_with_latency, upload_deadline, AttackConfig, AttackModel, ClientCompute,
    FaultConfig, FaultModel, FlowConfig, ResourceBudget, ResourceMeter, SimClock, Topology,
    TransportAccum, TransportConfig,
};
use fedmigr_nn::Model;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use fedmigr_telemetry::{span, warn};

use crate::aggregate::{Aggregator, StalenessPolicy};
use crate::checkpoint::{AgentSnapshot, LateUploadState, RunStamp, RunState};
use crate::client::FlClient;
use crate::metrics::{
    EpochRecord, FaultStats, PhaseBreakdown, RecoveryStats, RobustStats, RunMetrics,
};
use crate::migration::{MigrationPlan, Quarantine, QuarantineConfig};
use crate::privacy::DpConfig;
use crate::reward::{step_reward, terminal_reward, RewardConfig};
use crate::scheme::{MigrationStrategy, Scheme};
use crate::timeline_capture::TimelineCapture;

/// Configuration of one federated-learning run.
#[derive(Clone, Debug)]
pub struct RunConfig {
    /// The scheme to execute.
    pub scheme: Scheme,
    /// Maximum number of training epochs (one local epoch on every client
    /// per training epoch; the paper's τ = 1).
    pub epochs: usize,
    /// Global-aggregation interval in epochs for the migration-based
    /// schemes and FedSwap (the paper's `M + 1 = 50`). FedAvg/FedProx
    /// aggregate every epoch regardless.
    pub agg_interval: usize,
    /// Mini-batch size `b`.
    pub batch_size: usize,
    /// Optional cap on mini-batches per local epoch (speeds up large
    /// parameter sweeps; `None` = full local pass).
    pub max_batches_per_epoch: Option<usize>,
    /// SGD learning rate η.
    pub lr: f32,
    /// Evaluate the (shadow-)aggregated global model every this many epochs.
    pub eval_interval: usize,
    /// Computation/bandwidth budgets `B_c`, `B_b` (Eq. 16).
    pub budget: ResourceBudget,
    /// Stop as soon as an evaluation reaches this accuracy.
    pub target_accuracy: Option<f64>,
    /// Local differential privacy applied to every transmitted model.
    pub dp: Option<DpConfig>,
    /// Fraction α of clients participating each epoch (the FedAvg client
    /// sampling parameter; the paper's experiments use α = 1). Sampled
    /// uniformly without replacement every epoch; non-participants neither
    /// train nor communicate.
    pub participation: f64,
    /// Fault injection: client crashes/rejoins, stragglers, link outages
    /// and degradation. The default ([`FaultConfig::none`]) disables every
    /// fault process and is provably zero-cost (no extra randomness is
    /// consumed and no behaviour changes).
    pub fault: FaultConfig,
    /// Byzantine adversary: a seeded fraction of clients corrupts every
    /// model they transmit (uploads *and* migrations). The default
    /// ([`AttackConfig::none`]) marks nobody Byzantine and is provably
    /// zero-cost — corruption is hash-based and never consumes the run's
    /// RNG stream.
    pub attack: AttackConfig,
    /// Server-side aggregation rule. [`Aggregator::FedAvg`] (the default)
    /// is bit-identical to the pre-defense sample-weighted mean; the robust
    /// rules bound the influence of Byzantine uploads.
    pub aggregator: Aggregator,
    /// Wire codec applied to every model transfer (uploads, downloads, C2C
    /// migrations and their fallback paths). The default
    /// ([`CodecConfig::Identity`]) is byte-identical to uncompressed
    /// transfers; lossy codecs shrink every byte charge and genuinely
    /// distort the delivered models (receivers decode what the wire
    /// carried).
    pub codec: CodecConfig,
    /// How communication rounds are priced. [`TransportConfig::Lockstep`]
    /// (the default) keeps the nominal `bytes / bandwidth` accounting and
    /// stays byte-identical to the seeded baselines;
    /// [`TransportConfig::Flow`] simulates every phase's transfers as
    /// concurrent flows contending for link capacity, with
    /// timeout/retransmission state machines, per-round upload deadlines
    /// and staleness-tolerant degraded aggregation.
    pub transport: TransportConfig,
    /// How late uploads are folded into later aggregations under the flow
    /// transport. Irrelevant under lockstep (no upload is ever late).
    pub stale: StalenessPolicy,
    /// Seed for client batch order, migration randomness and DP noise.
    pub seed: u64,
    /// Learning-dynamics diagnostics (EMD/drift/DRL introspection gauges
    /// and the flight recorder). Strictly observation-only: the default
    /// ([`DiagConfig::default`]) does no work, and enabling it never
    /// consumes the run's RNG stream or touches the virtual clock, so
    /// `RunMetrics` stays byte-identical either way.
    pub diag: DiagConfig,
    /// Capture a whole-run checkpoint every this many completed epochs
    /// (`None` disables the cadence). Capturing consumes no randomness and
    /// never touches the virtual clock, so a checkpointed run stays
    /// byte-identical to an unchekpointed one.
    pub checkpoint_every: Option<usize>,
    /// Directory to persist checkpoints into (`ckpt_round_<N>.fmrs` plus a
    /// `latest.fmrs` alias). `None` keeps snapshots in memory only — still
    /// enough for the divergence watchdog to roll back within the process.
    pub checkpoint_dir: Option<String>,
    /// Resume from a checkpoint file written by a previous (killed) run of
    /// the *same* configuration. The checkpoint's stamp (scheme, seed,
    /// epochs, clients, architecture, codec, transport, aggregation
    /// interval) is validated before any state is restored; training
    /// continues at the checkpoint's epoch + 1, byte-identical to a run
    /// that was never interrupted.
    pub resume: Option<String>,
    /// Simulate a crash: stop abruptly after this epoch's bookkeeping (no
    /// terminal DRL flush, no flight-recording summary). The chaos harness
    /// uses this to exercise kill-and-resume; `None` for real runs.
    pub kill_at: Option<usize>,
    /// Divergence watchdog: roll back to the last good checkpoint when the
    /// global model goes non-finite or the round loss spikes beyond a
    /// factor of its trailing window, excluding and quarantining the
    /// implicated upload sources on retry.
    pub watchdog: WatchdogConfig,
    /// Fleet mode: lazy sharded client state for populations far beyond
    /// what the dense runner can hold ([`crate::FleetExperiment`]). `None`
    /// (the default) keeps the dense path byte-identical to the seeded
    /// baselines; `Some` is only meaningful to [`crate::FleetExperiment`] —
    /// the dense [`Experiment::run`] rejects it.
    pub fleet: Option<crate::fleet::FleetOptions>,
}

/// Configuration of the divergence watchdog (see `DESIGN.md` §11). The
/// default is disabled and provably zero-cost: no snapshots are taken, no
/// upload is screened, and the run stays byte-identical to the seed.
#[derive(Clone, Copy, Debug)]
pub struct WatchdogConfig {
    /// Master switch.
    pub enabled: bool,
    /// Declare divergence when the round's mean training loss exceeds
    /// `spike_factor` times the mean over the trailing window.
    pub spike_factor: f64,
    /// Trailing-window length (completed rounds) for the loss baseline.
    pub window: usize,
    /// Retry budget: after this many rollbacks the watchdog gives up and
    /// lets the run continue (never an infinite replay loop).
    pub max_rollbacks: usize,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        Self { enabled: false, spike_factor: 4.0, window: 5, max_rollbacks: 3 }
    }
}

impl RunConfig {
    /// A configuration with evaluation-scale defaults.
    pub fn new(scheme: Scheme, epochs: usize) -> Self {
        Self {
            scheme,
            epochs,
            agg_interval: 10,
            batch_size: 32,
            max_batches_per_epoch: None,
            lr: 0.05,
            eval_interval: 10,
            budget: ResourceBudget::unlimited(),
            target_accuracy: None,
            dp: None,
            participation: 1.0,
            fault: FaultConfig::none(),
            attack: AttackConfig::none(),
            aggregator: Aggregator::FedAvg,
            codec: CodecConfig::Identity,
            transport: TransportConfig::Lockstep,
            stale: StalenessPolicy::standard(),
            seed: 7,
            diag: DiagConfig::default(),
            checkpoint_every: None,
            checkpoint_dir: None,
            resume: None,
            kill_at: None,
            watchdog: WatchdogConfig::default(),
            fleet: None,
        }
    }
}

/// A reusable experiment: datasets, partition, topology, devices and the
/// model architecture. `run` executes one scheme over this environment.
pub struct Experiment {
    train: Arc<Dataset>,
    test: Arc<Dataset>,
    partitions: Vec<Vec<usize>>,
    topology: Topology,
    compute: ClientCompute,
    template: Model,
}

impl Experiment {
    /// Builds an experiment.
    ///
    /// # Panics
    /// Panics if the partition count disagrees with the topology or device
    /// list, or any client has no data.
    pub fn new(
        train: Dataset,
        test: Dataset,
        partitions: Vec<Vec<usize>>,
        topology: Topology,
        compute: ClientCompute,
        template: Model,
    ) -> Self {
        assert_eq!(partitions.len(), topology.num_clients(), "partition/topology mismatch");
        assert_eq!(partitions.len(), compute.len(), "partition/device mismatch");
        assert!(partitions.iter().all(|p| !p.is_empty()), "every client needs data");
        Self {
            train: Arc::new(train),
            test: Arc::new(test),
            partitions,
            topology,
            compute,
            template,
        }
    }

    /// Number of clients `K`.
    pub fn num_clients(&self) -> usize {
        self.partitions.len()
    }

    /// The network topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Executes `cfg` and returns the collected metrics.
    pub fn run(&self, cfg: &RunConfig) -> RunMetrics {
        assert!(cfg.epochs > 0 && cfg.agg_interval > 0 && cfg.eval_interval > 0);
        assert!(
            cfg.fleet.is_none(),
            "fleet mode needs the sharded runner: build a FleetExperiment instead of a dense \
             Experiment"
        );
        assert!(
            cfg.participation > 0.0 && cfg.participation <= 1.0,
            "participation must be in (0, 1]"
        );
        assert!(
            cfg.participation >= 1.0 || !matches!(cfg.scheme, Scheme::Fixed(_)),
            "fixed migration strategies require full participation"
        );
        let k = self.num_clients();
        fedmigr_telemetry::debug!(
            "core::runner",
            "run start: scheme={} clients={k} epochs={} agg={} seed={}",
            cfg.scheme.name(),
            cfg.epochs,
            cfg.agg_interval,
            cfg.seed
        );
        let mut template = self.template.clone();
        let num_params = template.num_params();
        // One compressor per run: a residual lane per client for egress
        // transfers, seeded from the run seed (stochastic rounding never
        // consumes the shared RNG stream). Every transfer carries one full
        // model, so its wire cost is this single constant — the codec's
        // exact encoded size; under the identity codec it equals the
        // uncompressed `8 + 4n` seed format, byte for byte.
        let mut compressor = Compressor::new(&cfg.codec, k, cfg.seed);
        let model_bytes = compressor.encoded_size(num_params);
        let uncompressed_bytes = template.wire_bytes();
        let saved_per_transfer = uncompressed_bytes.saturating_sub(model_bytes);
        let mut global = template.params();

        let mut clients: Vec<FlClient> = self
            .partitions
            .iter()
            .enumerate()
            .map(|(i, part)| {
                FlClient::new(
                    i,
                    Arc::clone(&self.train),
                    part.clone(),
                    self.template.clone(),
                    cfg.lr,
                    cfg.seed.wrapping_add(1),
                )
            })
            .collect();
        // Initial distribution is one server-side encode fanned out to all
        // K clients; each installs what the wire actually carried.
        let initial = compressor.broadcast(&global);
        for c in &mut clients {
            c.set_params(&initial, false);
        }
        let total_n: f64 = clients.iter().map(|c| c.num_samples() as f64).sum();

        let mut rng = StdRng::seed_from_u64(cfg.seed.wrapping_mul(0x5851_F42D).wrapping_add(3));
        let mut meter = ResourceMeter::new(cfg.budget);
        let mut clock = PhasedClock::new();
        let fault = FaultModel::new(cfg.fault.clone(), k);
        let mut fault_stats = FaultStats::default();
        // Exponential moving average of each client's observed downtime;
        // the FedMigr oracle penalizes flaky destinations with it. Stays
        // identically zero without fault injection.
        let mut flaky = vec![0.0f64; k];
        // Flow-transport state. `flow_cfg == None` keeps every code path
        // below on the lockstep accounting, byte-identical to the seeded
        // baselines. `late_buf` holds uploads that completed after their
        // round's deadline until an aggregation folds (or ages) them;
        // `agg_seq` counts completed aggregations so a buffered upload's
        // staleness is measured in aggregation rounds.
        let flow_cfg = cfg.transport.flow_config();
        let mut taccum = TransportAccum::new();
        let mut late_buf: Vec<LateUpload> = Vec::new();
        let mut agg_seq: usize = 0;

        let attack = AttackModel::new(cfg.attack.clone(), k);
        // The migration quarantine exists only under an active adversary:
        // a benign run must stay byte-identical to the pre-defense path,
        // and screening benign migrations risks false positives for
        // nothing.
        let mut quarantine =
            attack.enabled().then(|| Quarantine::new(QuarantineConfig::default(), k));
        let mut robust_total = RobustStats::default();
        if attack.flips_labels() {
            let num_classes = clients[0].label_dist().len();
            let map = fedmigr_data::flip_label_map(num_classes);
            for (i, c) in clients.iter_mut().enumerate() {
                if attack.is_byzantine(i) {
                    c.set_label_map(map.clone());
                }
            }
        }

        let dists: Vec<Vec<f64>> = clients.iter().map(|c| c.label_dist().to_vec()).collect();
        let population: Vec<f64> = {
            let mut p = vec![0.0f64; dists[0].len()];
            for (q, c) in dists.iter().zip(&clients) {
                let w = c.num_samples() as f64 / total_n;
                for (pi, qi) in p.iter_mut().zip(q) {
                    *pi += w * qi;
                }
            }
            p
        };
        // The *model mixture*: an exponentially decayed estimate of the
        // label distribution each model has recently trained on. Migration
        // permutes it; aggregation resets it to the population (the global
        // model reflects everyone's data). The distance matrix D_t the DRL
        // state and oracle use is `d_t[i][j] = ||mix_i - q_j||_1` — "the
        // differences of data distributions among the clients after t
        // epochs" (Sec. III-C): migrating a model towards data it has not
        // seen recently is what shrinks its divergence (Eq. 13).
        const MIX_ALPHA: f64 = 0.3;
        let mut mix: Vec<Vec<f64>> = dists.clone();
        let distance_matrix = |mix: &[Vec<f64>]| -> Vec<Vec<f64>> {
            mix.iter().map(|m| dists.iter().map(|q| l1_distance(m, q)).collect()).collect()
        };

        // Round-timeline capture (`--timeline-out`): observation-only and
        // inert without a path. A resumed run restarts the timeline file
        // from scratch; unlike the flight recording there is nothing to
        // splice — the file stands alone and the validator only needs the
        // header plus monotone rounds from wherever it begins.
        let mut tcap = TimelineCapture::new(
            cfg.diag.timeline_out.as_deref(),
            "dense",
            &cfg.scheme.name(),
            cfg.transport.name(),
            k,
            cfg.seed,
            false,
        );

        // Initial model distribution: server -> K clients over the WAN.
        // On the timeline this is "round 0": the seed broadcast.
        tcap.round_start(0, clock.now());
        if let Some(fc) = flow_cfg {
            // K concurrent downloads contend for the WAN. Every client was
            // already seeded with the initial parameters above; a failed
            // download only changes the round's cost accounting.
            let everyone = vec![true; k];
            self.flow_download_phase(
                fc,
                &fault,
                0,
                &everyone,
                model_bytes,
                &mut meter,
                &mut clock,
                &mut taccum,
                &mut tcap,
            );
        } else {
            meter.record_c2s(k as u64 * model_bytes);
            let t0 = clock.now();
            let adv = k as f64
                * transfer_time_with_latency(
                    model_bytes,
                    self.topology.c2s_bandwidth(0),
                    self.topology.c2s_latency(),
                );
            clock.advance(VPhase::C2s, adv);
            if tcap.active() {
                for i in 0..k {
                    tcap.upload(i, t0, adv, adv, false);
                }
            }
        }
        tcap.round_end(clock.now());

        let featurizer = MigrationState::new(k);
        let mut agent_ctx = match &cfg.scheme {
            Scheme::FedMigr(fc) => {
                let mut ac = AgentConfig::new(featurizer.dim(), k, fc.agent_seed);
                ac.rho = fc.rho;
                ac.noise_std = 0.15;
                ac.xi = fc.replay_xi;
                Some(AgentCtx {
                    agent: DdpgAgent::new(ac),
                    reward: RewardConfig { upsilon: fc.upsilon, terminal_bonus: fc.terminal_bonus },
                    lambda: fc.lambda,
                    rho: fc.rho,
                    resource_reward: fc.resource_reward,
                    liveness_penalty: fc.liveness_penalty,
                    suspicion_penalty: fc.suspicion_penalty,
                    warmup_epochs: (fc.oracle_warmup_frac * cfg.epochs as f64) as usize,
                    updates_per_epoch: fc.updates_per_epoch,
                    pending: Vec::new(),
                })
            }
            _ => None,
        };

        let mut records: Vec<EpochRecord> = Vec::with_capacity(cfg.epochs);
        let mut link_migrations = vec![0u32; k * k];
        let mut migrations_local = 0usize;
        let mut migrations_global = 0usize;
        let mut prev_loss: Option<f32> = None;
        let mut last_epoch_usage = (0.0f64, 0.0f64);
        let mut last_step_reward = -1.0f64;
        let mut budget_exhausted = false;
        let mut target_reached = false;

        // Learning-dynamics diagnostics (observation-only: nothing below
        // may consume `rng` or advance `clock`). The wall-time histogram
        // family is cumulative per process, so the hotspot log at run end
        // diffs against this run-start snapshot.
        let diag_on = cfg.diag.active();
        let phase_wall_baseline = phase_seconds_snapshot();
        // Diagnostic twin of `mix` that aggregation never resets: the label
        // distribution of the data that actually generated each model
        // replica's gradients, routed through migrations and swaps only.
        // FedAvg keeps each replica pinned to its host's shard; migration
        // is what drives this EMD down.
        let mut train_mix: Vec<Vec<f64>> = dists.clone();

        // --- Crash-safety machinery (DESIGN.md §11) -----------------------
        // All of it is provably zero-cost when disabled: capturing a
        // snapshot consumes no randomness and never touches the clock, the
        // exclusion mask starts all-false, and NaN-source tracking only
        // runs under the watchdog.
        let watchdog_on = cfg.watchdog.enabled;
        let mut excluded = vec![false; k];
        // Which clients transmitted a non-finite payload since the last
        // good snapshot — the sources a rollback implicates.
        let mut nan_sources = vec![false; k];
        let mut recovery = RecoveryStats::default();
        let mut last_good: Option<(usize, Vec<u8>)> = None;
        let mut killed = false;
        let stamp = RunStamp {
            scheme: cfg.scheme.name(),
            seed: cfg.seed,
            epochs: cfg.epochs as u64,
            clients: k as u64,
            num_params: num_params as u64,
            codec: cfg.codec.name(),
            transport: cfg.transport.name().into(),
            agg_interval: cfg.agg_interval as u64,
            mode: "dense".into(),
        };
        // Restores every piece of run state from a decoded snapshot. A
        // macro (not a closure) because it re-binds two dozen locals the
        // surrounding code keeps borrowing.
        macro_rules! restore_state {
            ($state:expr) => {{
                let state: RunState = $state;
                assert_eq!(state.clients.len(), clients.len(), "checkpoint client count");
                for (c, cs) in clients.iter_mut().zip(state.clients) {
                    c.import_state(cs);
                }
                global = state.global;
                rng = StdRng::from_state(state.rng);
                meter.import_state(state.meter);
                clock = PhasedClock { clock: SimClock::at(state.clock_now), phase: state.phase };
                fault_stats = state.fault_stats;
                flaky = state.flaky;
                taccum.import_state(state.taccum);
                late_buf = state
                    .late_buf
                    .into_iter()
                    .map(|l| LateUpload { client: l.client, params: l.params, seq: l.seq })
                    .collect();
                agg_seq = state.agg_seq;
                assert_eq!(
                    quarantine.is_some(),
                    state.quarantine.is_some(),
                    "attack configuration mismatch between checkpoint and run"
                );
                if let (Some(q), Some(qs)) = (quarantine.as_mut(), state.quarantine) {
                    q.import_state(qs);
                }
                robust_total = state.robust_total;
                mix = state.mix;
                train_mix = state.train_mix;
                compressor.import_state(state.compressor);
                assert_eq!(
                    agent_ctx.is_some(),
                    state.agent.is_some(),
                    "scheme mismatch between checkpoint and run"
                );
                if let (Some(ctx), Some(snap)) = (agent_ctx.as_mut(), state.agent) {
                    ctx.agent.import_state(snap.agent);
                    ctx.pending = snap.pending;
                }
                records = state.records;
                link_migrations = state.link_migrations;
                migrations_local = state.migrations_local;
                migrations_global = state.migrations_global;
                prev_loss = state.prev_loss;
                last_epoch_usage = state.last_epoch_usage;
                last_step_reward = state.last_step_reward;
                excluded = state.excluded;
                recovery = state.recovery;
            }};
        }
        // Captures the complete run state after epoch `$epoch` completed.
        macro_rules! capture_state {
            ($epoch:expr) => {
                RunState {
                    epoch: $epoch,
                    global: global.clone(),
                    clients: clients.iter_mut().map(|c| c.export_state()).collect(),
                    rng: rng.state(),
                    meter: meter.export_state(),
                    clock_now: clock.now(),
                    phase: clock.phase(),
                    fault_stats,
                    flaky: flaky.clone(),
                    taccum: taccum.export_state(),
                    late_buf: late_buf
                        .iter()
                        .map(|l| LateUploadState {
                            client: l.client,
                            params: l.params.clone(),
                            seq: l.seq,
                        })
                        .collect(),
                    agg_seq,
                    quarantine: quarantine.as_ref().map(|q| q.export_state()),
                    robust_total,
                    mix: mix.clone(),
                    train_mix: train_mix.clone(),
                    compressor: compressor.export_state(),
                    agent: agent_ctx.as_mut().map(|ctx| AgentSnapshot {
                        agent: ctx.agent.export_state(),
                        pending: ctx.pending.clone(),
                    }),
                    records: records.clone(),
                    link_migrations: link_migrations.clone(),
                    migrations_local,
                    migrations_global,
                    prev_loss,
                    last_epoch_usage,
                    last_step_reward,
                    excluded: excluded.clone(),
                    recovery,
                }
            };
        }
        let mut start_epoch = 1usize;
        if let Some(path) = cfg.resume.as_deref() {
            let bytes = std::fs::read(path)
                .unwrap_or_else(|e| panic!("cannot read checkpoint {path}: {e}"));
            let state = RunState::from_bytes(&bytes, &stamp)
                .unwrap_or_else(|e| panic!("cannot resume from {path}: {e}"));
            let ck_epoch = state.epoch;
            restore_state!(state);
            recovery.checkpoints_loaded += 1;
            last_good = Some((ck_epoch, bytes));
            start_epoch = ck_epoch + 1;
            fedmigr_telemetry::info!(
                "core::runner",
                "resumed from {path}: epoch {ck_epoch} restored, continuing at {start_epoch}"
            );
        } else if watchdog_on {
            // The watchdog always has somewhere to roll back to: a pristine
            // epoch-0 snapshot covers divergence in the very first round.
            last_good = Some((0, capture_state!(0).to_bytes(&stamp)));
        }

        let mut flight = match cfg.diag.flight_out.as_deref() {
            Some(path) if start_epoch > 1 => {
                // Resuming: keep the recording's header and the rounds the
                // checkpoint covers, byte for byte, and append from there.
                match FlightRecorder::resume(path, start_epoch - 1) {
                    Ok(rec) => Some(rec),
                    Err(e) => {
                        fedmigr_telemetry::error!(
                            "core::diag",
                            "cannot resume flight recording {path}: {e}; recording disabled"
                        );
                        None
                    }
                }
            }
            Some(path) => match FlightRecorder::create(path) {
                Ok(mut rec) => {
                    let header = FlightHeader {
                        version: FLIGHT_VERSION,
                        scheme: cfg.scheme.name(),
                        clients: k,
                        epochs: cfg.epochs,
                        seed: cfg.seed,
                        agg_interval: cfg.agg_interval,
                        codec: cfg.codec.name(),
                    };
                    match rec.header(&header) {
                        Ok(()) => Some(rec),
                        Err(e) => {
                            fedmigr_telemetry::error!(
                                "core::diag",
                                "flight header write failed for {path}: {e}; recording disabled"
                            );
                            None
                        }
                    }
                }
                Err(e) => {
                    fedmigr_telemetry::error!(
                        "core::diag",
                        "cannot open flight recording {path}: {e}; recording disabled"
                    );
                    None
                }
            },
            None => None,
        };

        let mut epoch = start_epoch;
        // Attributes kernel FLOP/byte/time deltas to the phase that just
        // closed; cheap no-op when accounting is off.
        let mut kphases = crate::kernels::KernelPhases::new();
        'run: while epoch <= cfg.epochs {
            // The labeled block is the round body; the shared epilogue
            // below it (snapshot capture, kill switch, epoch increment)
            // runs on every path that completes the round.
            'round: {
                let _round = fedmigr_telemetry::global().span_labeled(
                    "core::runner",
                    "round",
                    vec![
                        ("epoch".to_string(), epoch.to_string()),
                        ("scheme".to_string(), cfg.scheme.name()),
                    ],
                );
                tcap.round_start(epoch, clock.now());
                let traffic_before = meter.traffic().total();
                let compute_before = meter.compute_cost();
                let mut robust_epoch = RobustStats::default();
                // Diagnostics accumulators: the round's migration edge list and
                // executed source map (identity on non-migration rounds).
                let mut round_edges: Vec<MigrationEdge> = Vec::new();
                let mut round_src_of: Vec<usize> = (0..k).collect();

                // Sample the participating clients for this epoch (α K of K),
                // then intersect with the fault schedule: crashed clients
                // neither train nor communicate until they rejoin.
                let mut active: Vec<bool> = if cfg.participation >= 1.0 {
                    vec![true; k]
                } else {
                    let n_active = ((cfg.participation * k as f64).ceil() as usize).clamp(1, k);
                    let mut order: Vec<usize> = (0..k).collect();
                    order.shuffle(&mut rng);
                    let mut mask = vec![false; k];
                    for &i in order.iter().take(n_active) {
                        mask[i] = true;
                    }
                    mask
                };
                let alive: Vec<bool> = (0..k).map(|i| fault.is_alive(i, epoch)).collect();
                for (a, &up) in active.iter_mut().zip(&alive) {
                    *a = *a && up;
                }
                // Clients the watchdog implicated in a divergence sit rounds
                // out. All-false in normal runs: a no-op, bit for bit.
                for (a, &ex) in active.iter_mut().zip(&excluded) {
                    *a = *a && !ex;
                }
                let dropped = alive.iter().filter(|&&up| !up).count();
                fault_stats.client_drops += dropped;
                for (f, &up) in flaky.iter_mut().zip(&alive) {
                    *f = 0.9 * *f + if up { 0.0 } else { 0.1 };
                }
                if active.iter().all(|&a| !a) {
                    // The entire population is down (or sampled out): the round
                    // is a no-op, but the run survives it.
                    records.push(EpochRecord {
                        epoch,
                        train_loss: prev_loss.unwrap_or(0.0),
                        test_accuracy: None,
                        traffic: meter.traffic(),
                        sim_time: clock.now(),
                        dropped_clients: dropped,
                        stale_clients: 0,
                        rejected_migrations: 0,
                        bytes_saved: (meter.traffic().total() / model_bytes) * saved_per_transfer,
                        phase: clock.phase(),
                        retransmits: taccum.retransmits(),
                        late_uploads: taccum.late_uploads(),
                    });
                    tcap.round_end(clock.now());
                    break 'round;
                }

                // (1) Local updating (Eq. 6), clients in parallel.
                let train_span = span!("core::runner", "local_train");
                let prox = match cfg.scheme {
                    Scheme::FedProx { mu } => Some((global.clone(), mu)),
                    _ => None,
                };
                let (losses, panicked) =
                    train_all(&mut clients, cfg, prox.as_ref(), &active, &fault, epoch);
                for (i, &p) in panicked.iter().enumerate() {
                    if p {
                        // A panicking client is a crashed client for this
                        // round: no loss, no upload, no mix update. The run
                        // survives it.
                        active[i] = false;
                        fault_stats.client_panics += 1;
                    }
                }
                robust_epoch.nan_batches +=
                    clients.iter_mut().map(|c| c.take_non_finite_batches()).sum::<u64>();
                for (i, (m, q)) in mix.iter_mut().zip(&dists).enumerate() {
                    if !active[i] {
                        continue;
                    }
                    for (mi, qi) in m.iter_mut().zip(q) {
                        *mi = (1.0 - MIX_ALPHA) * *mi + MIX_ALPHA * qi;
                    }
                }
                if diag_on {
                    for (i, (m, q)) in train_mix.iter_mut().zip(&dists).enumerate() {
                        if !active[i] {
                            continue;
                        }
                        for (mi, qi) in m.iter_mut().zip(q) {
                            *mi = (1.0 - MIX_ALPHA) * *mi + MIX_ALPHA * qi;
                        }
                    }
                }
                let dmat = distance_matrix(&mix);
                let mut times = Vec::with_capacity(k);
                let mut per_client_time = vec![0.0f64; k];
                for (i, c) in clients.iter().enumerate() {
                    if !active[i] {
                        continue;
                    }
                    let samples = effective_samples(c.num_samples(), cfg);
                    meter.record_compute(self.compute.epoch_cost(i, samples));
                    let t = self.compute.epoch_time_slowed(i, samples, fault.slowdown(i, epoch));
                    per_client_time[i] = t;
                    times.push(t);
                }
                // Straggler deadline: the server waits at most a configured
                // multiple of the *median* round time; later arrivals trained
                // (and burned compute) but miss this round's communication.
                let mut arrived = active.clone();
                let mut stale = 0usize;
                let round_time = times.iter().fold(0.0f64, |a, &b| a.max(b));
                let train_t0 = clock.now();
                let train_adv = match fault.deadline(median(&times)) {
                    Some(deadline) => {
                        for i in 0..k {
                            if active[i] && per_client_time[i] > deadline {
                                arrived[i] = false;
                                stale += 1;
                            }
                        }
                        round_time.min(deadline)
                    }
                    None => round_time,
                };
                clock.advance(VPhase::Train, train_adv);
                if tcap.active() {
                    for i in (0..k).filter(|&i| active[i]) {
                        tcap.train(
                            i,
                            train_t0,
                            train_t0 + per_client_time[i],
                            train_t0 + train_adv,
                        );
                    }
                }
                let active_n: f32 = clients
                    .iter()
                    .enumerate()
                    .filter(|&(i, _)| active[i])
                    .map(|(_, c)| c.num_samples() as f32)
                    .sum();
                let mean_loss = clients
                    .iter()
                    .zip(&losses)
                    .filter_map(|(c, l)| l.map(|l| l * (c.num_samples() as f32 / active_n)))
                    .sum::<f32>();
                let _ = total_n;
                drop(train_span);
                kphases.credit("local_train");

                // (2) Build decision states and settle last epoch's transitions.
                let decision_span = span!("core::runner", "decision");
                let suspicion: Vec<f64> = match &quarantine {
                    Some(q) => q.suspicion().to_vec(),
                    None => vec![0.0; k],
                };
                let states: Option<Vec<Vec<f32>>> = agent_ctx.as_ref().map(|_| {
                    (0..k)
                        .map(|i| {
                            featurizer.build_with_health(
                                epoch as f64 / cfg.epochs as f64,
                                mean_loss as f64,
                                prev_loss
                                    .map(|p| ((mean_loss - p) / p.max(1e-6)) as f64)
                                    .unwrap_or(0.0),
                                meter.bandwidth_remaining_frac(),
                                meter.compute_remaining_frac(),
                                &dmat[i],
                                &alive,
                                &suspicion,
                            )
                        })
                        .collect()
                });
                if let (Some(ctx), Some(states)) = (agent_ctx.as_mut(), states.as_ref()) {
                    let (cu, bu) = if ctx.resource_reward { last_epoch_usage } else { (0.0, 0.0) };
                    let reward = step_reward(
                        &ctx.reward,
                        prev_loss.map(|p| (mean_loss - p) as f64).unwrap_or(0.0),
                        prev_loss.unwrap_or(mean_loss) as f64,
                        cu,
                        bu,
                    );
                    last_step_reward = reward;
                    for (state, action, client) in ctx.pending.drain(..) {
                        ctx.agent.observe(Transition {
                            state,
                            action,
                            reward: reward as f32,
                            next_state: states[client].clone(),
                            done: false,
                        });
                    }
                }

                drop(decision_span);
                kphases.credit("decision");

                // (3) Communication: aggregation, server-side swap, or C2C
                //     migration, depending on the scheme and epoch.
                let comm_span = span!("core::runner", "communicate");
                let is_agg = match cfg.scheme {
                    Scheme::FedAvg | Scheme::FedProx { .. } => true,
                    Scheme::FedAsync { .. } => false,
                    _ => epoch.is_multiple_of(cfg.agg_interval),
                };
                if let Scheme::FedAsync { beta } = cfg.scheme {
                    // One participating client uploads; the server mixes its
                    // model into the global model and sends the result back.
                    let candidates: Vec<usize> = (0..k).filter(|&i| arrived[i]).collect();
                    let uploader = candidates.first().map(|_| candidates[epoch % candidates.len()]);
                    let synced = match uploader {
                        Some(u) => {
                            let mut only = vec![false; k];
                            only[u] = true;
                            let reach = c2s_reachable(
                                &fault,
                                &only,
                                epoch,
                                model_bytes,
                                &mut clock,
                                &mut fault_stats,
                            );
                            match (flow_cfg, reach[u]) {
                                (Some(fc), true) => {
                                    // A lone flow can still strike out on a
                                    // flapped or collapsed access link; it can
                                    // never be late (the deadline is a multiple
                                    // of its own finish time).
                                    let up = self.flow_upload_phase(
                                        fc,
                                        &fault,
                                        epoch,
                                        &reach,
                                        model_bytes,
                                        &mut meter,
                                        &mut clock,
                                        &mut taccum,
                                        &mut fault_stats,
                                        &mut tcap,
                                    );
                                    up.on_time[u]
                                }
                                (_, reached) => reached,
                            }
                        }
                        None => false,
                    };
                    if let (Some(uploader), true) = (uploader, synced) {
                        if flow_cfg.is_none() {
                            meter.record_c2s(2 * model_bytes);
                            let t0 = clock.now();
                            let adv = 2.0
                                * transfer_time_with_latency(
                                    model_bytes,
                                    self.topology.c2s_bandwidth(epoch),
                                    self.topology.c2s_latency(),
                                );
                            clock.advance(VPhase::C2s, adv);
                            tcap.upload(uploader, t0, adv, adv, false);
                        }
                        let mut upload = clients[uploader].params();
                        if let Some(dp) = &cfg.dp {
                            dp.apply(&mut upload, &mut rng);
                        }
                        attack.corrupt_upload(uploader, epoch, &mut upload);
                        if watchdog_on && !fedmigr_tensor::all_finite(&upload) {
                            nan_sources[uploader] = true;
                        }
                        // The server sees what the wire carried: codec distortion
                        // (and preserved NaN corruption) lands on the decoded
                        // payload, with the uploader's error-feedback residual
                        // applied on egress.
                        let upload = compressor.transmit(uploader, &upload);
                        // FedAsync has no multi-upload round to robustify, but
                        // a non-finite upload is still screened out whenever a
                        // robust aggregator is configured.
                        let usable = cfg.aggregator == Aggregator::FedAvg
                            || fedmigr_tensor::all_finite(&upload);
                        if !usable {
                            robust_epoch.nan_uploads += 1;
                            robust_epoch.trimmed_clients += 1;
                        }
                        if usable {
                            for (g, u) in global.iter_mut().zip(&upload) {
                                *g = (1.0 - beta) * *g + beta * u;
                            }
                        }
                        let down = compressor.transmit_down(uploader, &global);
                        let delivered = match flow_cfg {
                            Some(fc) => {
                                let mut rx = vec![false; k];
                                rx[uploader] = true;
                                self.flow_download_phase(
                                    fc,
                                    &fault,
                                    epoch,
                                    &rx,
                                    model_bytes,
                                    &mut meter,
                                    &mut clock,
                                    &mut taccum,
                                    &mut tcap,
                                )[uploader]
                            }
                            None => true,
                        };
                        if delivered {
                            clients[uploader].set_params(&down, false);
                            mix[uploader].clone_from(&population);
                        }
                    } else if uploader.is_some() {
                        // The uploader never reached the server this epoch.
                        stale += 1;
                    }
                } else if cfg.scheme.uploads_every_epoch() {
                    // Participating models go to the server (uploads +
                    // downloads) — those that can reach it; WAN outages retry
                    // with backoff and drop out of the round if they never get
                    // through.
                    let synced = c2s_reachable(
                        &fault,
                        &arrived,
                        epoch,
                        model_bytes,
                        &mut clock,
                        &mut fault_stats,
                    );
                    stale += arrived.iter().zip(&synced).filter(|&(&a, &s)| a && !s).count();
                    let n_synced = synced.iter().filter(|&&s| s).count() as u64;
                    // Which uploads made the round, and at what cost, depends
                    // on the transport: lockstep prices every synced transfer
                    // serially at nominal bandwidth; the flow transport races
                    // concurrent uploads against a per-round deadline.
                    let mut on_time = synced.clone();
                    let mut late = vec![false; k];
                    if let Some(fc) = flow_cfg {
                        let up = self.flow_upload_phase(
                            fc,
                            &fault,
                            epoch,
                            &synced,
                            model_bytes,
                            &mut meter,
                            &mut clock,
                            &mut taccum,
                            &mut fault_stats,
                            &mut tcap,
                        );
                        stale += up.failed;
                        on_time = up.on_time;
                        late = up.late;
                    } else {
                        meter.record_c2s(2 * n_synced * model_bytes);
                        let t0 = clock.now();
                        let adv = 2.0
                            * n_synced as f64
                            * transfer_time_with_latency(
                                model_bytes,
                                self.topology.c2s_bandwidth(epoch),
                                self.topology.c2s_latency(),
                            );
                        clock.advance(VPhase::C2s, adv);
                        if tcap.active() {
                            // Lockstep serializes the transfers: one coarse
                            // upload interval per synced client spanning the
                            // whole window.
                            for i in (0..k).filter(|&i| synced[i]) {
                                tcap.upload(i, t0, adv, adv, false);
                            }
                        }
                    }
                    let mut uploads = collect_params(&mut clients, cfg, &attack, epoch, &mut rng);
                    if watchdog_on {
                        for (n, up) in nan_sources.iter_mut().zip(&uploads) {
                            *n |= !fedmigr_tensor::all_finite(up);
                        }
                    }
                    // Only the clients whose bytes actually crossed the wire see
                    // the codec (error-feedback on client egress). A late upload
                    // bound for a future aggregation was genuinely transmitted.
                    // Lanes are per-client and therefore distinct, so the batch
                    // encode parallelizes while staying byte-identical to the
                    // serial per-client loop.
                    let sel: Vec<usize> =
                        (0..k).filter(|&i| on_time[i] || (late[i] && is_agg)).collect();
                    let items: Vec<(usize, Vec<f32>)> =
                        sel.iter().map(|&i| (i, std::mem::take(&mut uploads[i]))).collect();
                    for (&i, dec) in sel.iter().zip(compressor.transmit_batch(items)) {
                        uploads[i] = dec;
                    }
                    for i in (0..k).filter(|&i| late[i] && is_agg) {
                        late_buf.push(LateUpload {
                            client: i,
                            params: uploads[i].clone(),
                            seq: agg_seq,
                        });
                    }
                    if is_agg {
                        if let Some(fc) = flow_cfg {
                            // Degraded aggregation: fold what arrived on time
                            // plus discounted stale uploads from earlier rounds.
                            // A round with zero on-time uploads can still make
                            // progress from the stale buffer alone.
                            let n_eff = on_time.iter().filter(|&&s| s).count();
                            if n_eff > 0 || !late_buf.is_empty() {
                                let _agg = span!("core::runner", "aggregate");
                                if let Some(g) = aggregate_with_late(
                                    &clients,
                                    &uploads,
                                    &on_time,
                                    &cfg.aggregator,
                                    &global,
                                    &mut robust_epoch,
                                    &mut late_buf,
                                    agg_seq,
                                    &cfg.stale,
                                    &mut taccum,
                                ) {
                                    global = g;
                                    agg_seq += 1;
                                    let delivered = self.flow_download_phase(
                                        fc,
                                        &fault,
                                        epoch,
                                        &on_time,
                                        model_bytes,
                                        &mut meter,
                                        &mut clock,
                                        &mut taccum,
                                        &mut tcap,
                                    );
                                    if delivered.iter().any(|&d| d) {
                                        let down = compressor.broadcast(&global);
                                        for (i, c) in clients.iter_mut().enumerate() {
                                            if delivered[i] {
                                                c.set_params(&down, false);
                                                mix[i].clone_from(&population);
                                            }
                                        }
                                    }
                                }
                            }
                        } else if n_synced > 0 {
                            let _agg = span!("core::runner", "aggregate");
                            global = aggregate_active(
                                &clients,
                                &uploads,
                                &synced,
                                &cfg.aggregator,
                                &global,
                                &mut robust_epoch,
                            );
                            // One aggregated payload fans out to every synced
                            // client: a single server-side encode.
                            let down = compressor.broadcast(&global);
                            for (i, c) in clients.iter_mut().enumerate() {
                                if synced[i] {
                                    c.set_params(&down, false);
                                    mix[i].clone_from(&population);
                                }
                            }
                        }
                    } else {
                        // FedSwap: the server swaps models "between any two of
                        // all clients" — a few random disjoint pairs per round,
                        // so mixing is slower than a full migration permutation.
                        // Unsynced clients never uploaded: the plan leaves them
                        // fixed and they re-install their local copy wire-free,
                        // while each synced client's (possibly swapped) model
                        // comes back down through the codec as a distinct
                        // server-egress payload. Under the flow transport a
                        // late upload simply sits the swap out.
                        let plan = swap_pairs_plan(&on_time, k.div_ceil(4), &mut rng);
                        uploads = plan.apply(&uploads);
                        mix = plan.apply(&mix);
                        if diag_on {
                            train_mix = plan.apply(&train_mix);
                        }
                        if let Some(fc) = flow_cfg {
                            // Price the return leg at flow cost (contention,
                            // retransmits). Delivery itself stays unconditional
                            // for this baseline: partial swap delivery is not
                            // modelled.
                            self.flow_download_phase(
                                fc,
                                &fault,
                                epoch,
                                &on_time,
                                model_bytes,
                                &mut meter,
                                &mut clock,
                                &mut taccum,
                                &mut tcap,
                            );
                        }
                        for (i, c) in clients.iter_mut().enumerate() {
                            let p = if on_time[i] {
                                compressor.transmit_down(i, &uploads[i])
                            } else {
                                uploads[i].clone()
                            };
                            c.set_params(&p, plan.dest(i) != i);
                        }
                    }
                } else if is_agg {
                    let synced = c2s_reachable(
                        &fault,
                        &arrived,
                        epoch,
                        model_bytes,
                        &mut clock,
                        &mut fault_stats,
                    );
                    stale += arrived.iter().zip(&synced).filter(|&(&a, &s)| a && !s).count();
                    let n_synced = synced.iter().filter(|&&s| s).count() as u64;
                    let mut on_time = synced.clone();
                    let mut late = vec![false; k];
                    if let Some(fc) = flow_cfg {
                        let up = self.flow_upload_phase(
                            fc,
                            &fault,
                            epoch,
                            &synced,
                            model_bytes,
                            &mut meter,
                            &mut clock,
                            &mut taccum,
                            &mut fault_stats,
                            &mut tcap,
                        );
                        stale += up.failed;
                        on_time = up.on_time;
                        late = up.late;
                    } else {
                        meter.record_c2s(2 * n_synced * model_bytes);
                        let t0 = clock.now();
                        let adv = 2.0
                            * n_synced as f64
                            * transfer_time_with_latency(
                                model_bytes,
                                self.topology.c2s_bandwidth(epoch),
                                self.topology.c2s_latency(),
                            );
                        clock.advance(VPhase::C2s, adv);
                        if tcap.active() {
                            // Lockstep serializes the transfers: one coarse
                            // upload interval per synced client spanning the
                            // whole window.
                            for i in (0..k).filter(|&i| synced[i]) {
                                tcap.upload(i, t0, adv, adv, false);
                            }
                        }
                    }
                    let mut uploads = collect_params(&mut clients, cfg, &attack, epoch, &mut rng);
                    if watchdog_on {
                        for (n, up) in nan_sources.iter_mut().zip(&uploads) {
                            *n |= !fedmigr_tensor::all_finite(up);
                        }
                    }
                    let sel: Vec<usize> = (0..k).filter(|&i| on_time[i] || late[i]).collect();
                    let items: Vec<(usize, Vec<f32>)> =
                        sel.iter().map(|&i| (i, std::mem::take(&mut uploads[i]))).collect();
                    for (&i, dec) in sel.iter().zip(compressor.transmit_batch(items)) {
                        uploads[i] = dec;
                    }
                    for i in (0..k).filter(|&i| late[i]) {
                        late_buf.push(LateUpload {
                            client: i,
                            params: uploads[i].clone(),
                            seq: agg_seq,
                        });
                    }
                    if let Some(fc) = flow_cfg {
                        let n_eff = on_time.iter().filter(|&&s| s).count();
                        if n_eff > 0 || !late_buf.is_empty() {
                            let _agg = span!("core::runner", "aggregate");
                            if let Some(g) = aggregate_with_late(
                                &clients,
                                &uploads,
                                &on_time,
                                &cfg.aggregator,
                                &global,
                                &mut robust_epoch,
                                &mut late_buf,
                                agg_seq,
                                &cfg.stale,
                                &mut taccum,
                            ) {
                                global = g;
                                agg_seq += 1;
                                let delivered = self.flow_download_phase(
                                    fc,
                                    &fault,
                                    epoch,
                                    &on_time,
                                    model_bytes,
                                    &mut meter,
                                    &mut clock,
                                    &mut taccum,
                                    &mut tcap,
                                );
                                if delivered.iter().any(|&d| d) {
                                    let down = compressor.broadcast(&global);
                                    for (i, c) in clients.iter_mut().enumerate() {
                                        if delivered[i] {
                                            c.set_params(&down, false);
                                            mix[i].clone_from(&population);
                                        }
                                    }
                                }
                            }
                        }
                    } else if n_synced > 0 {
                        let _agg = span!("core::runner", "aggregate");
                        global = aggregate_active(
                            &clients,
                            &uploads,
                            &synced,
                            &cfg.aggregator,
                            &global,
                            &mut robust_epoch,
                        );
                        let down = compressor.broadcast(&global);
                        for (i, c) in clients.iter_mut().enumerate() {
                            if synced[i] {
                                c.set_params(&down, false);
                                mix[i].clone_from(&population);
                            }
                        }
                    }
                } else {
                    // C2C migration epoch. Every planner is masked to the
                    // clients that are live *and* made this round's deadline,
                    // so plans never target a dead destination.
                    let plan_span = span!("core::runner", "migration_plan");
                    let plan = match (&cfg.scheme, states.as_ref()) {
                        (Scheme::RandMigr, _) | (Scheme::Fixed(MigrationStrategy::Random), _) => {
                            MigrationPlan::random_subset(k, &arrived, &mut rng)
                        }
                        (Scheme::Fixed(MigrationStrategy::WithinLan), _) => {
                            MigrationPlan::within_lan_masked(&self.topology, &arrived, &mut rng)
                        }
                        (Scheme::Fixed(MigrationStrategy::CrossLan), _) => {
                            MigrationPlan::cross_lan_masked(&self.topology, &arrived, &mut rng)
                        }
                        (Scheme::FedMigr(_), Some(states)) => {
                            let ctx = agent_ctx.as_mut().expect("FedMigr context");
                            let rho = if epoch <= ctx.warmup_epochs { 1.0 } else { ctx.rho };
                            ctx.agent.set_rho(rho);
                            let (oracle, objective) = self.solve_oracle(
                                &dmat,
                                model_bytes,
                                epoch,
                                ctx.lambda,
                                &flaky,
                                ctx.liveness_penalty,
                                &suspicion,
                                ctx.suspicion_penalty,
                            );
                            let desired: Vec<usize> = (0..k)
                                .map(|i| ctx.agent.select_action(&states[i], Some(&oracle[i])))
                                .collect();
                            // Blend the relaxed-FLMM objective with the agent's
                            // per-client desires, then recover a permutation by
                            // globally greedy matching over the active clients.
                            let mut scores = objective;
                            for (i, &j) in desired.iter().enumerate() {
                                scores[i][j] += 0.25;
                            }
                            let plan = MigrationPlan::greedy_assignment_masked(&scores, &arrived);
                            for (i, state) in states.iter().enumerate() {
                                if epoch <= ctx.warmup_epochs {
                                    // Pre-training: clone the oracle-driven
                                    // behaviour into the actor.
                                    ctx.agent.imitate(state, plan.dest(i));
                                }
                                ctx.pending.push((state.clone(), plan.dest(i), i));
                            }
                            plan
                        }
                        _ => unreachable!("scheme/state combination"),
                    };
                    drop(plan_span);
                    let transfer_span = span!("core::runner", "migration_transfer");
                    let params = collect_params(&mut clients, cfg, &attack, epoch, &mut rng);
                    if watchdog_on {
                        for (n, p) in nan_sources.iter_mut().zip(&params) {
                            *n |= !fedmigr_tensor::all_finite(p);
                        }
                    }
                    // `src_of[j]` is the client whose model client `j` hosts
                    // after this round. A failed delivery leaves `j` on its own
                    // retained copy instead of breaking the permutation.
                    // `delivered_payload[j]` is what the wire actually handed
                    // `j` — the decoded (possibly lossy) model.
                    let mut src_of: Vec<usize> = (0..k).collect();
                    let mut delivered_payload: Vec<Option<Vec<f32>>> = vec![None; k];
                    let mut move_times = Vec::new();
                    // Under the flow transport the whole migration wave runs as
                    // one simulation: moves contend for their pair links and the
                    // inter-LAN backbone, and a flow that strikes out falls back
                    // onto the retry/relay/C2S-bounce chain below.
                    let mig_t0 = clock.now();
                    let wave = flow_cfg.map(|fc| {
                        let mv: Vec<(usize, usize)> = plan.moves().collect();
                        let sim = simulate_migrations_traced(
                            &self.topology,
                            &fault,
                            epoch,
                            fc,
                            &mv,
                            model_bytes,
                            tcap.active(),
                        );
                        taccum.absorb(&sim);
                        meter.record_transfer_seconds(sim.makespan);
                        sim
                    });
                    for (m, (i, j)) in plan.moves().enumerate() {
                        let (outcome, time) = match wave.as_ref().map(|w| &w.outcomes[m]) {
                            Some(o) if o.completed => {
                                meter.record_c2c(model_bytes, self.topology.same_lan(i, j));
                                meter.record_overhead(o.retransmit_bytes);
                                observe_link_time("direct", o.finish);
                                (EdgeOutcome::Direct, o.finish)
                            }
                            Some(o) => {
                                // The flow burned its wire bytes and struck out;
                                // resolve through the fallback chain with the
                                // elapsed flow time charged on top.
                                meter.record_overhead(o.wire_bytes);
                                fault_stats.wasted_bytes += model_bytes;
                                let (out, t) = self.deliver_fallback(
                                    &fault,
                                    &alive,
                                    i,
                                    j,
                                    epoch,
                                    model_bytes,
                                    &mut meter,
                                    &mut fault_stats,
                                );
                                (out, o.finish + t)
                            }
                            None => self.deliver(
                                &fault,
                                &alive,
                                i,
                                j,
                                epoch,
                                model_bytes,
                                &mut meter,
                                &mut fault_stats,
                            ),
                        };
                        move_times.push(time);
                        tcap.migrate(i, mig_t0, time);
                        round_edges.push(MigrationEdge {
                            src: i,
                            dst: j,
                            bytes: model_bytes,
                            time_s: time,
                            outcome,
                        });
                        if outcome.delivered() {
                            // Encode only transfers that completed: a cancelled
                            // migration must not consume the sender's
                            // error-feedback residual. The receiver screens the
                            // *decoded* payload before adoption. A rejected
                            // model was still transmitted (the bytes are
                            // burned) but `j` keeps its own copy and the
                            // source's suspicion rises.
                            let payload = compressor.transmit(i, &params[i]);
                            if let Some(q) = quarantine.as_mut() {
                                let _screen = span!("core::runner", "quarantine_screen");
                                if !q.screen(i, &payload, &params[j]) {
                                    robust_epoch.rejected_migrations += 1;
                                    continue;
                                }
                            }
                            src_of[j] = i;
                            delivered_payload[j] = Some(payload);
                            link_migrations[i * k + j] += 1;
                            if self.topology.same_lan(i, j) {
                                migrations_local += 1;
                            } else {
                                migrations_global += 1;
                            }
                        }
                    }
                    if diag_on {
                        // Attribute virtual-dataset EMD deltas to individual
                        // migrations: slot `j` is about to adopt slot
                        // `src_of[j]`'s mixture.
                        for (j, &s) in src_of.iter().enumerate() {
                            if s == j {
                                continue;
                            }
                            let before = normalized_emd(&mix[j], &population);
                            let after = normalized_emd(&mix[s], &population);
                            fedmigr_telemetry::debug!(
                            "core::diag",
                            "migration {s}->{j}: virtual-dataset EMD {before:.4} -> {after:.4} ({:+.4})",
                            after - before
                        );
                        }
                    }
                    clock.advance_parallel(VPhase::Migration, move_times);
                    if let Some(pt) = wave.as_ref().and_then(|w| w.trace.as_ref()) {
                        // The wave's flow events all sit inside the charged
                        // parallel window (every move's charged time is at
                        // least its own flow's finish).
                        tcap.phase_trace("migration", mig_t0, clock.now(), pt);
                    }
                    mix = src_of.iter().map(|&s| mix[s].clone()).collect();
                    if diag_on {
                        train_mix = src_of.iter().map(|&s| train_mix[s].clone()).collect();
                    }
                    round_src_of.clone_from(&src_of);
                    for (j, c) in clients.iter_mut().enumerate() {
                        match delivered_payload[j].take() {
                            Some(p) => {
                                let migrated = p != params[j];
                                c.set_params(&p, migrated);
                            }
                            // No accepted migration: re-install the retained
                            // local copy (the pre-codec behaviour, wire-free).
                            None => c.set_params(&params[j], false),
                        }
                    }
                    drop(transfer_span);
                }
                drop(comm_span);
                kphases.credit("communicate");

                // (4) Evaluation of the (shadow-)aggregated global model.
                let eval_span = span!("core::runner", "evaluate");
                let eval_due = epoch.is_multiple_of(cfg.eval_interval) || epoch == cfg.epochs;
                let accuracy = if eval_due {
                    let shadow = if cfg.scheme.is_async() {
                        // FedAsync's global model lives on the server.
                        global.clone()
                    } else {
                        // What clients would *transmit* if the server aggregated
                        // now — Byzantine clients corrupt these shadow uploads
                        // exactly like real ones, and the codec previews its
                        // distortion (without touching residuals, counters or
                        // stats: these transfers are hypothetical), so the
                        // measured accuracy reflects both the aggregation
                        // rule's defense and the wire's lossiness.
                        let uploads: Vec<Vec<f32>> = clients
                            .iter_mut()
                            .enumerate()
                            .map(|(i, c)| {
                                let mut p = c.params();
                                attack.corrupt_upload(i, epoch, &mut p);
                                compressor.preview(i, &p)
                            })
                            .collect();
                        // Hypothetical full participation — except sources the
                        // watchdog has permanently excluded, which are out of
                        // the run for good and must not poison the measurement.
                        let include: Vec<bool> = excluded.iter().map(|&e| !e).collect();
                        aggregate_active(
                            &clients,
                            &uploads,
                            &include,
                            &cfg.aggregator,
                            &global,
                            &mut robust_epoch,
                        )
                    };
                    Some(self.evaluate(&mut template, &shadow))
                } else {
                    None
                };
                drop(eval_span);
                kphases.credit("evaluate");

                // (5) Agent learning.
                if let Some(ctx) = agent_ctx.as_mut() {
                    let _learn = span!("core::runner", "agent_update");
                    for _ in 0..ctx.updates_per_epoch {
                        ctx.agent.update();
                    }
                }

                // (6) Bookkeeping and stopping conditions.
                kphases.credit("agent_update");
                let book_span = span!("core::runner", "bookkeeping");
                let epoch_bw = (meter.traffic().total() - traffic_before) as f64;
                let epoch_compute = meter.compute_cost() - compute_before;
                last_epoch_usage = (
                    if cfg.budget.compute.is_finite() {
                        epoch_compute / cfg.budget.compute
                    } else {
                        0.0
                    },
                    if cfg.budget.bandwidth.is_finite() {
                        epoch_bw / cfg.budget.bandwidth
                    } else {
                        0.0
                    },
                );
                fault_stats.stale_client_epochs += stale;
                if let Some(q) = quarantine.as_mut() {
                    q.end_epoch();
                }
                // Divergence watchdog: a non-finite global model or loss, or a
                // loss spike beyond `spike_factor` times the trailing-window
                // baseline, rolls the run back to the last good checkpoint and
                // retries with the implicated sources excluded and quarantined.
                if watchdog_on {
                    let window = cfg.watchdog.window.max(1);
                    let recent: Vec<f32> = records
                        .iter()
                        .rev()
                        .take(window)
                        .map(|r| r.train_loss)
                        .filter(|l| l.is_finite())
                        .collect();
                    let baseline = (!recent.is_empty())
                        .then(|| recent.iter().sum::<f32>() / recent.len() as f32);
                    let spiked = matches!(baseline, Some(b) if b > 0.0
                    && (mean_loss as f64) > cfg.watchdog.spike_factor * b as f64);
                    let diverged =
                        !mean_loss.is_finite() || spiked || !fedmigr_tensor::all_finite(&global);
                    if diverged {
                        match last_good.take() {
                            Some((ck_epoch, bytes))
                                if recovery.rollbacks < cfg.watchdog.max_rollbacks =>
                            {
                                let implicated: Vec<usize> =
                                    (0..k).filter(|&i| nan_sources[i]).collect();
                                fedmigr_telemetry::error!(
                                    "core::runner",
                                    "watchdog: divergence at epoch {epoch} (loss {mean_loss}, \
                                 global finite: {}); rolling back to epoch {ck_epoch}, \
                                 implicated sources {implicated:?}",
                                    fedmigr_tensor::all_finite(&global)
                                );
                                let mut state = RunState::from_bytes(&bytes, &stamp)
                                    .expect("in-memory checkpoint decodes");
                                // Recovery accounting and exclusions survive
                                // the rollback; everything else rewinds.
                                state.recovery = recovery;
                                state.excluded = excluded.clone();
                                restore_state!(state);
                                for &i in &implicated {
                                    excluded[i] = true;
                                    if let Some(q) = quarantine.as_mut() {
                                        q.escalate(i);
                                    }
                                }
                                recovery.rollbacks += 1;
                                recovery.checkpoints_loaded += 1;
                                recovery.rounds_replayed += epoch - ck_epoch;
                                nan_sources.iter_mut().for_each(|n| *n = false);
                                // Replayed rounds rewrite history: truncate the
                                // flight recording back to the checkpoint.
                                if flight.is_some() {
                                    if let Some(path) = cfg.diag.flight_out.as_deref() {
                                        drop(flight.take()); // flush + close first
                                        flight = FlightRecorder::resume(path, ck_epoch).ok();
                                    }
                                }
                                // The timeline is append-only: a rollback
                                // marker notes the rewind (and resets the
                                // validator's time watermark) instead of
                                // truncating.
                                tcap.rollback(ck_epoch);
                                last_good = Some((ck_epoch, bytes));
                                epoch = ck_epoch + 1;
                                continue 'run;
                            }
                            other => {
                                last_good = other;
                                fedmigr_telemetry::error!(
                                    "core::runner",
                                    "watchdog: divergence at epoch {epoch} but no rollback \
                                 available (budget {}/{} used); continuing",
                                    recovery.rollbacks,
                                    cfg.watchdog.max_rollbacks
                                );
                            }
                        }
                    }
                }
                records.push(EpochRecord {
                    epoch,
                    train_loss: mean_loss,
                    test_accuracy: accuracy,
                    traffic: meter.traffic(),
                    sim_time: clock.now(),
                    dropped_clients: dropped,
                    stale_clients: stale,
                    rejected_migrations: robust_epoch.rejected_migrations,
                    // Every meter charge is a whole number of model transfers,
                    // so the cumulative wire-level saving is exact.
                    bytes_saved: (meter.traffic().total() / model_bytes) * saved_per_transfer,
                    phase: clock.phase(),
                    retransmits: taccum.retransmits(),
                    late_uploads: taccum.late_uploads(),
                });
                tcap.round_end(clock.now());
                robust_total.absorb(&robust_epoch);
                prev_loss = Some(mean_loss);

                if diag_on {
                    let _diag = span!("core::runner", "diagnostics");
                    let emd = EmdSnapshot::measure(&mix, &population);
                    let train_emd = EmdSnapshot::measure(&train_mix, &population);
                    // Read parameters directly: `collect_params` applies DP
                    // noise and consumes the shared RNG stream, which would
                    // break the diagnostics-off/on byte-identity contract.
                    let params_now: Vec<Vec<f32>> =
                        clients.iter_mut().map(|c| c.params()).collect();
                    let weights: Vec<f64> =
                        clients.iter().map(|c| c.num_samples() as f64).collect();
                    let drift = DriftSnapshot::measure(&params_now, &global, &weights);
                    let drl = match (agent_ctx.as_mut(), states.as_ref()) {
                        (Some(ctx), Some(states)) => {
                            // Forward-only policy probes: RNG-free by design.
                            let probs: Vec<Vec<f32>> =
                                states.iter().map(|s| ctx.agent.action_probs(s)).collect();
                            Some(DrlSnapshot::collect(
                                &probs,
                                ctx.agent.last_update_stats(),
                                ctx.agent.replay_health(),
                            ))
                        }
                        _ => None,
                    };
                    let graph = GraphSnapshot::measure(&round_edges, &round_src_of);
                    let reg = fedmigr_telemetry::global().registry();
                    reg.gauge("fedmigr_diag_emd_mean", &[]).set(emd.mean);
                    reg.gauge("fedmigr_diag_emd_max", &[]).set(emd.max);
                    reg.gauge("fedmigr_diag_train_emd_mean", &[]).set(train_emd.mean);
                    reg.gauge("fedmigr_diag_train_emd_max", &[]).set(train_emd.max);
                    reg.gauge("fedmigr_diag_drift_mean_dist", &[]).set(drift.mean_dist);
                    reg.gauge("fedmigr_diag_drift_mean_cosine", &[]).set(drift.mean_cosine);
                    reg.gauge("fedmigr_diag_drift_mean_divergence", &[]).set(drift.mean_divergence);
                    if let Some(d) = &drl {
                        reg.gauge("fedmigr_diag_policy_entropy", &[]).set(d.mean_entropy);
                        reg.gauge("fedmigr_diag_policy_saturation", &[]).set(d.mean_saturation);
                        reg.gauge("fedmigr_diag_critic_mean_q", &[]).set(d.mean_q);
                        reg.gauge("fedmigr_diag_td_error_mean_abs", &[]).set(d.mean_abs_td);
                    }
                    let mut flight_failed = false;
                    if let Some(rec) = flight.as_mut() {
                        let traffic = meter.traffic();
                        let phase = clock.phase();
                        let row = RoundRecord {
                            epoch,
                            train_loss: mean_loss as f64,
                            test_accuracy: accuracy,
                            sim_time: clock.now(),
                            c2s_bytes: traffic.c2s,
                            c2c_local_bytes: traffic.c2c_local,
                            c2c_global_bytes: traffic.c2c_global,
                            phase_train_s: phase.train_s,
                            phase_c2s_s: phase.c2s_s,
                            phase_migration_s: phase.migration_s,
                            phase_backoff_s: phase.backoff_s,
                            emd,
                            train_emd,
                            drift: Some(drift),
                            drl,
                            graph,
                            migrations: std::mem::take(&mut round_edges),
                        };
                        if let Err(e) = rec.round(&row) {
                            fedmigr_telemetry::error!(
                                "core::diag",
                                "flight round write failed: {e}; recording stopped"
                            );
                            flight_failed = true;
                        }
                    }
                    if flight_failed {
                        flight = None;
                    }
                }
                drop(book_span);
                kphases.credit("bookkeeping");
                if let (Some(target), Some(acc)) = (cfg.target_accuracy, accuracy) {
                    if acc >= target {
                        target_reached = true;
                        break 'run;
                    }
                }
                if meter.exhausted() {
                    budget_exhausted = true;
                    break 'run;
                }
            } // end of 'round

            // --- Round epilogue: snapshot cadence and the kill switch ----
            let snap_every = cfg.checkpoint_every.unwrap_or(1);
            if (cfg.checkpoint_every.is_some() || watchdog_on) && epoch.is_multiple_of(snap_every) {
                let bytes = capture_state!(epoch).to_bytes(&stamp);
                recovery.checkpoints_written += 1;
                recovery.checkpoint_bytes += bytes.len() as u64;
                if let Some(dir) = cfg.checkpoint_dir.as_deref() {
                    let dir = std::path::Path::new(dir);
                    // Atomic writes (temp + rename): a crash mid-write
                    // never leaves a torn checkpoint where a good one
                    // stood.
                    let write = |path: &std::path::Path| -> std::io::Result<()> {
                        let tmp = path.with_extension("tmp");
                        std::fs::write(&tmp, &bytes)?;
                        std::fs::rename(&tmp, path)
                    };
                    let persist = std::fs::create_dir_all(dir)
                        .and_then(|()| write(&dir.join(format!("ckpt_round_{epoch}.fmrs"))))
                        .and_then(|()| write(&dir.join("latest.fmrs")));
                    if let Err(e) = persist {
                        fedmigr_telemetry::error!(
                            "core::runner",
                            "checkpoint write failed at epoch {epoch} in {}: {e}",
                            dir.display()
                        );
                    }
                }
                last_good = Some((epoch, bytes));
                nan_sources.iter_mut().for_each(|n| *n = false);
            }
            if cfg.kill_at == Some(epoch) {
                killed = true;
                warn!(
                    "core::runner",
                    "kill switch: aborting after epoch {epoch} (simulated crash)"
                );
                break;
            }
            epoch += 1;
        }

        // Terminal transition flush (Eq. 18). A killed run crashed: no
        // terminal credit, no flight summary — exactly the state a real
        // crash would leave behind for `--resume` to pick up.
        if let Some(ctx) = agent_ctx.as_mut().filter(|_| !killed) {
            let terminal = terminal_reward(&ctx.reward, last_step_reward, !budget_exhausted);
            for (state, action, client) in ctx.pending.drain(..) {
                let next = state.clone();
                let _ = client;
                ctx.agent.observe(Transition {
                    state,
                    action,
                    reward: terminal as f32,
                    next_state: next,
                    done: true,
                });
            }
        }

        if let Some(rec) = flight.as_mut().filter(|_| !killed) {
            let summary = FlightSummary {
                epochs_run: records.len(),
                final_accuracy: records.iter().rev().find_map(|r| r.test_accuracy).unwrap_or(0.0),
                best_accuracy: records.iter().filter_map(|r| r.test_accuracy).fold(0.0, f64::max),
                total_bytes: records.last().map(|r| r.traffic.total()).unwrap_or(0),
                sim_time: records.last().map(|r| r.sim_time).unwrap_or(0.0),
                migrations_local,
                migrations_global,
                final_emd_mean: EmdSnapshot::measure(&mix, &population).mean,
                target_reached,
                budget_exhausted,
            };
            if let Err(e) = rec.finish(&summary) {
                fedmigr_telemetry::error!("core::diag", "flight summary write failed: {e}");
            }
        }
        if !killed {
            // A killed run leaves the timeline finish-less, like the flight
            // recording: exactly what a real crash would leave behind.
            tcap.finish(records.len());
        }
        log_phase_hotspot(
            &phase_wall_baseline,
            records.last().map(|r| r.phase).unwrap_or_default(),
        );
        if recovery.any() {
            let reg = fedmigr_telemetry::global().registry();
            reg.gauge("fedmigr_recovery_checkpoints_written", &[])
                .set(recovery.checkpoints_written as f64);
            reg.gauge("fedmigr_recovery_checkpoint_bytes", &[])
                .set(recovery.checkpoint_bytes as f64);
            reg.gauge("fedmigr_recovery_checkpoints_loaded", &[])
                .set(recovery.checkpoints_loaded as f64);
            reg.gauge("fedmigr_recovery_rollbacks", &[]).set(recovery.rollbacks as f64);
            reg.gauge("fedmigr_recovery_rounds_replayed", &[]).set(recovery.rounds_replayed as f64);
        }

        RunMetrics {
            scheme: cfg.scheme.name(),
            records,
            migrations_local,
            migrations_global,
            link_migrations,
            budget_exhausted,
            target_reached,
            fault: fault_stats,
            robust: robust_total,
            codec: cfg.codec.name(),
            compression: compressor.stats(),
            transport: cfg.transport.name().into(),
            transport_stats: taccum.finish(),
            recovery,
        }
    }

    /// Solves the relaxed FLMM oracle for the current epoch: benefit is the
    /// pairwise distribution difference minus a flakiness penalty on the
    /// destination and a suspicion penalty on migrating *sources*, cost the
    /// normalized link price. With no observed downtime (`flaky` all zero)
    /// and no quarantine rejections (`susp` all zero) both penalties vanish
    /// entirely, leaving the seed objective bit-identical.
    /// Returns `(relaxed solution rows, raw objective matrix)`.
    #[allow(clippy::too_many_arguments)]
    fn solve_oracle(
        &self,
        dmat: &[Vec<f64>],
        model_bytes: u64,
        epoch: usize,
        lambda: f64,
        flaky: &[f64],
        liveness_penalty: f64,
        susp: &[f64],
        suspicion_penalty: f64,
    ) -> (Vec<Vec<f64>>, Vec<Vec<f64>>) {
        let k = dmat.len();
        let mut cost = vec![vec![0.0f64; k]; k];
        let mut max_cost = 0.0f64;
        for (i, row) in cost.iter_mut().enumerate() {
            for (j, c) in row.iter_mut().enumerate() {
                if i != j {
                    *c = transfer_time(model_bytes, self.topology.c2c_bandwidth(i, j, epoch));
                    max_cost = max_cost.max(*c);
                }
            }
        }
        if max_cost > 0.0 {
            for row in cost.iter_mut() {
                for c in row.iter_mut() {
                    *c /= max_cost;
                }
            }
        }
        let benefit: Vec<Vec<f64>> = dmat
            .iter()
            .enumerate()
            .map(|(i, row)| {
                row.iter()
                    .zip(flaky)
                    .enumerate()
                    .map(|(j, (&d, &f))| {
                        let keep_home = if i != j { suspicion_penalty * susp[i] } else { 0.0 };
                        d - liveness_penalty * f - keep_home
                    })
                    .collect()
            })
            .collect();
        let mut objective = vec![vec![0.0f64; k]; k];
        for i in 0..k {
            for j in 0..k {
                objective[i][j] = benefit[i][j] - lambda * cost[i][j];
            }
        }
        let relax = FlmmRelaxation { benefit, cost, lambda, entropy: 0.05 };
        (relax.solve(40, 0.4), objective)
    }

    /// Delivers one planned migration `i -> j` under the fault model,
    /// charging bytes to `meter` and returning `(outcome, seconds)` — the
    /// outcome names the path the transfer ended on and implies whether it
    /// delivered ([`EdgeOutcome::delivered`]). The policy is: direct C2C
    /// with bounded exponential-backoff retries, then relay through the
    /// best live peer in the destination's LAN, then a C2S round-trip
    /// through the server, and finally cancellation (the model stays where
    /// it is for one epoch).
    #[allow(clippy::too_many_arguments)]
    fn deliver(
        &self,
        fault: &FaultModel,
        alive: &[bool],
        i: usize,
        j: usize,
        epoch: usize,
        model_bytes: u64,
        meter: &mut ResourceMeter,
        stats: &mut FaultStats,
    ) -> (EdgeOutcome, f64) {
        // A downed link presents as zero effective bandwidth, which the
        // `try_` transfer API maps to `None` instead of a panic.
        let eff = |a: usize, b: usize| -> f64 {
            if fault.link_up(a, b, epoch) {
                self.topology.c2c_bandwidth(a, b, epoch) * fault.link_quality(a, b, epoch)
            } else {
                0.0
            }
        };
        let latency = self.topology.c2c_latency(i, j);
        // (a) Direct transfer over the planned link.
        if let Some(t) = try_transfer_time_with_latency(model_bytes, eff(i, j), latency) {
            meter.record_c2c(model_bytes, self.topology.same_lan(i, j));
            observe_link_time("direct", t);
            return (EdgeOutcome::Direct, t);
        }
        stats.wasted_bytes += model_bytes;
        self.deliver_fallback(fault, alive, i, j, epoch, model_bytes, meter, stats)
    }

    /// The fallback chain after a failed direct migration attempt (steps
    /// (b)–(e) of [`Experiment::deliver`]): bounded retries, relay, C2S
    /// bounce, cancellation. Shared by the lockstep path and the flow
    /// transport (where a struck-out flow lands here directly).
    #[allow(clippy::too_many_arguments)]
    fn deliver_fallback(
        &self,
        fault: &FaultModel,
        alive: &[bool],
        i: usize,
        j: usize,
        epoch: usize,
        model_bytes: u64,
        meter: &mut ResourceMeter,
        stats: &mut FaultStats,
    ) -> (EdgeOutcome, f64) {
        let eff = |a: usize, b: usize| -> f64 {
            if fault.link_up(a, b, epoch) {
                self.topology.c2c_bandwidth(a, b, epoch) * fault.link_quality(a, b, epoch)
            } else {
                0.0
            }
        };
        let latency = self.topology.c2c_latency(i, j);
        // (b) Bounded retries with exponential backoff on the same link.
        let policy = fault.retry();
        let mut elapsed = 0.0;
        for attempt in 1..=policy.max_retries {
            stats.transfer_retries += 1;
            count_net("fedmigr_net_transfer_retries_total", &[]);
            elapsed += policy.backoff(attempt);
            if fault.retry_succeeds(i, j, epoch, attempt) {
                meter.record_c2c(model_bytes, self.topology.same_lan(i, j));
                let bw = self.topology.c2c_bandwidth(i, j, epoch) * fault.link_quality(i, j, epoch);
                let t = elapsed + transfer_time_with_latency(model_bytes, bw, latency);
                observe_link_time("direct_retry", t);
                return (EdgeOutcome::DirectRetry, t);
            }
            stats.wasted_bytes += model_bytes;
        }
        // (c) Relay through the live same-LAN peer of `j` with the best
        // bottleneck bandwidth on the two-hop path.
        let relay = (0..self.num_clients())
            .filter(|&r| r != i && r != j && alive[r] && self.topology.same_lan(r, j))
            .filter(|&r| eff(i, r) > 0.0 && eff(r, j) > 0.0)
            .max_by(|&a, &b| eff(i, a).min(eff(a, j)).total_cmp(&eff(i, b).min(eff(b, j))));
        if let Some(r) = relay {
            meter.record_c2c(model_bytes, self.topology.same_lan(i, r));
            meter.record_c2c(model_bytes, true);
            stats.rerouted_migrations += 1;
            count_net("fedmigr_net_fallback_total", &[("kind", "relay")]);
            let t =
                transfer_time_with_latency(model_bytes, eff(i, r), self.topology.c2c_latency(i, r))
                    + transfer_time_with_latency(
                        model_bytes,
                        eff(r, j),
                        self.topology.c2c_latency(r, j),
                    );
            observe_link_time("relay", elapsed + t);
            return (EdgeOutcome::Relay, elapsed + t);
        }
        // (d) Last resort: bounce the model off the server over the WAN.
        if fault.c2s_up(i, epoch) && fault.c2s_up(j, epoch) {
            meter.record_c2s(2 * model_bytes);
            stats.rerouted_migrations += 1;
            count_net("fedmigr_net_fallback_total", &[("kind", "c2s_bounce")]);
            let t = 2.0
                * transfer_time_with_latency(
                    model_bytes,
                    self.topology.c2s_bandwidth(epoch),
                    self.topology.c2s_latency(),
                );
            observe_link_time("c2s_bounce", elapsed + t);
            return (EdgeOutcome::C2sBounce, elapsed + t);
        }
        // (e) Give up; the destination keeps its local copy this epoch.
        stats.cancelled_migrations += 1;
        count_net("fedmigr_net_fallback_total", &[("kind", "cancel")]);
        (EdgeOutcome::Cancelled, elapsed)
    }

    /// Runs one upload phase under the flow transport: the `synced` clients
    /// race concurrent flows against a per-round deadline (a multiple of
    /// the median completed finish time). Completed flows pay their payload
    /// plus retransmission overhead; a flow past the deadline is late (its
    /// upload may still be folded into a later aggregation); a struck-out
    /// flow wastes its wire bytes. The round advances by the earlier of the
    /// deadline and the last settled flow.
    #[allow(clippy::too_many_arguments)]
    fn flow_upload_phase(
        &self,
        fc: &FlowConfig,
        fault: &FaultModel,
        epoch: usize,
        synced: &[bool],
        model_bytes: u64,
        meter: &mut ResourceMeter,
        clock: &mut PhasedClock,
        taccum: &mut TransportAccum,
        stats: &mut FaultStats,
        tcap: &mut TimelineCapture,
    ) -> FlowUploadOutcome {
        let k = synced.len();
        let mut out =
            FlowUploadOutcome { on_time: vec![false; k], late: vec![false; k], failed: 0 };
        let uploaders: Vec<usize> = (0..k).filter(|&i| synced[i]).collect();
        if uploaders.is_empty() {
            return out;
        }
        let t0 = clock.now();
        let sim = simulate_c2s_traced(
            &self.topology,
            fault,
            epoch,
            fc,
            &uploaders,
            model_bytes,
            tcap.active(),
        );
        taccum.absorb(&sim);
        let deadline = upload_deadline(&sim.outcomes, fc.deadline_factor);
        let dur = sim.makespan.min(deadline);
        for (o, &c) in sim.outcomes.iter().zip(&uploaders) {
            if o.completed {
                meter.record_c2s(model_bytes);
                meter.record_overhead(o.retransmit_bytes);
                if o.finish <= deadline {
                    out.on_time[c] = true;
                } else {
                    out.late[c] = true;
                    taccum.note_late_upload();
                }
            } else {
                meter.record_overhead(o.wire_bytes);
                stats.wasted_bytes += model_bytes;
                out.failed += 1;
            }
            tcap.upload(c, t0, o.finish, dur, o.completed && o.finish > deadline);
        }
        meter.record_transfer_seconds(dur);
        clock.advance(VPhase::C2s, dur);
        if let Some(pt) = &sim.trace {
            tcap.phase_trace("upload", t0, t0 + dur, pt);
        }
        out
    }

    /// Runs one download phase under the flow transport (broadcast fan-out
    /// or a single FedAsync return leg) and returns which receivers the
    /// payload actually reached. Failed downloads waste their wire bytes;
    /// the receiver keeps its current model.
    #[allow(clippy::too_many_arguments)]
    fn flow_download_phase(
        &self,
        fc: &FlowConfig,
        fault: &FaultModel,
        epoch: usize,
        receivers: &[bool],
        model_bytes: u64,
        meter: &mut ResourceMeter,
        clock: &mut PhasedClock,
        taccum: &mut TransportAccum,
        tcap: &mut TimelineCapture,
    ) -> Vec<bool> {
        let k = receivers.len();
        let mut delivered = vec![false; k];
        let rx: Vec<usize> = (0..k).filter(|&i| receivers[i]).collect();
        if rx.is_empty() {
            return delivered;
        }
        let t0 = clock.now();
        let sim =
            simulate_c2s_traced(&self.topology, fault, epoch, fc, &rx, model_bytes, tcap.active());
        taccum.absorb(&sim);
        for (o, &c) in sim.outcomes.iter().zip(&rx) {
            if o.completed {
                meter.record_c2s(model_bytes);
                meter.record_overhead(o.retransmit_bytes);
                delivered[c] = true;
            } else {
                meter.record_overhead(o.wire_bytes);
            }
            tcap.upload(c, t0, o.finish, sim.makespan, false);
        }
        meter.record_transfer_seconds(sim.makespan);
        clock.advance(VPhase::C2s, sim.makespan);
        if let Some(pt) = &sim.trace {
            tcap.phase_trace("download", t0, t0 + sim.makespan, pt);
        }
        delivered
    }

    /// Test accuracy of `params` loaded into `template`, evaluated in
    /// batches over the server-held test split.
    fn evaluate(&self, template: &mut Model, params: &[f32]) -> f64 {
        template.set_params(params);
        let n = self.test.len();
        let mut correct_weighted = 0.0f64;
        let mut seen = 0usize;
        let indices: Vec<usize> = (0..n).collect();
        for chunk in indices.chunks(64) {
            let (x, labels) = self.test.batch(chunk);
            let (_, acc) = template.evaluate(&x, &labels);
            correct_weighted += acc * chunk.len() as f64;
            seen += chunk.len();
        }
        correct_weighted / seen as f64
    }
}

/// Which runner phase a virtual-clock advance belongs to.
#[derive(Clone, Copy, Debug)]
pub(crate) enum VPhase {
    /// Straggler-limited local training.
    Train,
    /// Client↔server transfers (distribution, uploads, downloads).
    C2s,
    /// Client-to-client model movement.
    Migration,
    /// Waiting out server-link outages.
    Backoff,
}

/// The simulation clock plus a deterministic per-phase attribution of every
/// advance. The attribution is part of the run result (`EpochRecord::phase`),
/// so it must not depend on telemetry being enabled — it never is: this is
/// plain arithmetic on the virtual clock.
pub(crate) struct PhasedClock {
    clock: SimClock,
    phase: PhaseBreakdown,
}

impl PhasedClock {
    pub(crate) fn new() -> Self {
        Self { clock: SimClock::new(), phase: PhaseBreakdown::default() }
    }

    /// A clock resumed from checkpointed time and phase attribution.
    pub(crate) fn at(now: f64, phase: PhaseBreakdown) -> Self {
        Self { clock: SimClock::at(now), phase }
    }

    pub(crate) fn now(&self) -> f64 {
        self.clock.now()
    }

    pub(crate) fn phase(&self) -> PhaseBreakdown {
        self.phase
    }

    fn bucket(&mut self, phase: VPhase) -> &mut f64 {
        match phase {
            VPhase::Train => &mut self.phase.train_s,
            VPhase::C2s => &mut self.phase.c2s_s,
            VPhase::Migration => &mut self.phase.migration_s,
            VPhase::Backoff => &mut self.phase.backoff_s,
        }
    }

    pub(crate) fn advance(&mut self, phase: VPhase, seconds: f64) {
        self.clock.advance(seconds);
        *self.bucket(phase) += seconds;
    }

    /// Advances by the *maximum* of `times` (parallel transfers), charging
    /// the elapsed delta to `phase`.
    pub(crate) fn advance_parallel(&mut self, phase: VPhase, times: Vec<f64>) {
        let before = self.clock.now();
        self.clock.advance_parallel(times);
        *self.bucket(phase) += self.clock.now() - before;
    }
}

/// Wall-clock seconds accumulated per runner span phase, read from the
/// cumulative `fedmigr_phase_seconds` histogram family (the family is
/// per-process, so callers diff two snapshots to isolate one run).
fn phase_seconds_snapshot() -> std::collections::BTreeMap<String, f64> {
    fedmigr_telemetry::global()
        .registry()
        .histogram_family(fedmigr_telemetry::PHASE_SECONDS)
        .into_iter()
        .filter_map(|(labels, snap)| {
            let target = labels.iter().find(|(key, _)| key == "target")?;
            if target.1 != "core::runner" {
                return None;
            }
            let phase = labels.iter().find(|(key, _)| key == "phase")?;
            Some((phase.1.clone(), snap.sum))
        })
        .collect()
}

/// One-line hotspot log at run end: names the runner span that dominated
/// this run's instrumented wall time (delta against the run-start snapshot
/// of `fedmigr_phase_seconds`) and the phase that dominated virtual time.
/// The enclosing `round` span is excluded — it envelops every other phase.
fn log_phase_hotspot(baseline: &std::collections::BTreeMap<String, f64>, sim: PhaseBreakdown) {
    let deltas: Vec<(String, f64)> = phase_seconds_snapshot()
        .into_iter()
        .filter(|(phase, _)| phase != "round")
        .map(|(phase, sum)| {
            let before = baseline.get(&phase).copied().unwrap_or(0.0);
            (phase, (sum - before).max(0.0))
        })
        .filter(|&(_, d)| d > 0.0)
        .collect();
    let wall_total: f64 = deltas.iter().map(|(_, d)| d).sum();
    let Some((hot, hot_s)) = deltas.into_iter().max_by(|a, b| a.1.total_cmp(&b.1)) else {
        return;
    };
    let sim_total = sim.total();
    let sim_part = [
        ("train", sim.train_s),
        ("c2s", sim.c2s_s),
        ("migration", sim.migration_s),
        ("backoff", sim.backoff_s),
    ]
    .into_iter()
    .max_by(|a, b| a.1.total_cmp(&b.1))
    .filter(|_| sim_total > 0.0)
    .map(|(name, s)| format!("; sim time dominated by {name} ({:.0}%)", 100.0 * s / sim_total))
    .unwrap_or_default();
    fedmigr_telemetry::info!(
        "core::runner",
        "phase_hotspot: {hot} took {:.0}% of instrumented wall time ({hot_s:.3}s){sim_part}",
        100.0 * hot_s / wall_total
    );
}

/// Bumps a telemetry counter in the net metric families (side-channel only:
/// never feeds back into the run).
fn count_net(name: &str, labels: &[(&str, &str)]) {
    fedmigr_telemetry::global().registry().counter(name, labels).inc();
}

/// Records one migration delivery's virtual duration per resolution path.
fn observe_link_time(path: &'static str, seconds: f64) {
    fedmigr_telemetry::global()
        .registry()
        .histogram("fedmigr_link_transfer_seconds", &[("path", path)])
        .observe(seconds);
}

struct AgentCtx {
    agent: DdpgAgent,
    reward: RewardConfig,
    lambda: f64,
    rho: f64,
    resource_reward: bool,
    liveness_penalty: f64,
    suspicion_penalty: f64,
    warmup_epochs: usize,
    updates_per_epoch: usize,
    /// Decisions awaiting their reward: `(state, executed destination,
    /// deciding client)`.
    pending: Vec<(Vec<f32>, usize, usize)>,
}

/// FedSwap's per-round action: swap the models of `pairs` random disjoint
/// pairs among the participating clients.
fn swap_pairs_plan(active: &[bool], pairs: usize, rng: &mut StdRng) -> MigrationPlan {
    let k = active.len();
    let mut order: Vec<usize> = (0..k).filter(|&i| active[i]).collect();
    if order.len() < 2 {
        return MigrationPlan::identity(k);
    }
    order.shuffle(rng);
    let mut dest: Vec<usize> = (0..k).collect();
    for pair in order.chunks(2).take(pairs.max(1)) {
        if let [a, b] = *pair {
            dest.swap(a, b);
        }
    }
    MigrationPlan::new(dest)
}

/// Determines which of the `arrived` clients can reach the server this
/// epoch: WAN outages retry with exponential backoff (charged serially to
/// the clock — the WAN is the shared bottleneck) and give up after the
/// policy's retry budget. Transparent when fault injection is off.
fn c2s_reachable(
    fault: &FaultModel,
    arrived: &[bool],
    epoch: usize,
    model_bytes: u64,
    clock: &mut PhasedClock,
    stats: &mut FaultStats,
) -> Vec<bool> {
    if !fault.enabled() {
        return arrived.to_vec();
    }
    let policy = fault.retry();
    let mut synced = vec![false; arrived.len()];
    let mut backoff_total = 0.0f64;
    for i in (0..arrived.len()).filter(|&i| arrived[i]) {
        if fault.c2s_up(i, epoch) {
            synced[i] = true;
            continue;
        }
        stats.wasted_bytes += model_bytes;
        for attempt in 1..=policy.max_retries {
            stats.transfer_retries += 1;
            count_net("fedmigr_net_transfer_retries_total", &[]);
            backoff_total += policy.backoff(attempt);
            if fault.retry_succeeds(i, usize::MAX, epoch, attempt) {
                synced[i] = true;
                break;
            }
            stats.wasted_bytes += model_bytes;
        }
    }
    clock.advance(VPhase::Backoff, backoff_total);
    synced
}

/// Median of `xs` (upper median for even lengths); 0 when empty.
fn median(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut v = xs.to_vec();
    v.sort_by(f64::total_cmp);
    v[v.len() / 2]
}

fn effective_samples(n: usize, cfg: &RunConfig) -> usize {
    match cfg.max_batches_per_epoch {
        Some(b) => n.min(b * cfg.batch_size),
        None => n,
    }
}

/// Trains the participating clients for one local epoch, in parallel.
/// Returns the per-client losses (`None` for clients that sat the epoch
/// out) plus a mask of clients whose training *panicked*. A panic —
/// whether injected by [`FaultConfig::panics`] or a genuine bug in one
/// client's training path — is contained per client (`catch_unwind`
/// inside the worker): the client is treated as crashed for the round,
/// its chunk-mates keep training, and the run survives.
///
/// Work is chunked across `available_parallelism` workers (mirroring the
/// fleet runner's `train_cohort`) rather than one thread per client:
/// oversubscribing cores makes each kernel's *wall* time include
/// descheduled gaps, which used to inflate the summed `local_train`
/// kernel time to several multiples of the phase's process CPU time and
/// wreck the attribution numbers.
fn train_all(
    clients: &mut [FlClient],
    cfg: &RunConfig,
    prox: Option<&(Vec<f32>, f32)>,
    active: &[bool],
    fault: &FaultModel,
    epoch: usize,
) -> (Vec<Option<f32>>, Vec<bool>) {
    let k = clients.len();
    let workers = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);
    let chunk = k.div_ceil(workers.max(1)).max(1);
    let mut losses: Vec<Option<f32>> = Vec::with_capacity(k);
    let mut panicked = vec![false; k];
    std::thread::scope(|s| {
        let handles: Vec<_> = clients
            .chunks_mut(chunk)
            .zip(active.chunks(chunk))
            .enumerate()
            .map(|(ci, (part, act))| {
                let base = ci * chunk;
                let prox_ref = prox.map(|(g, mu)| (g.as_slice(), *mu));
                s.spawn(move || {
                    part.iter_mut()
                        .zip(act)
                        .enumerate()
                        .map(|(j, (c, &is_active))| {
                            let i = base + j;
                            is_active.then(|| {
                                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                    if fault.client_panics(i, epoch) {
                                        panic!("injected client panic (client {i}, epoch {epoch})");
                                    }
                                    c.train_epoch(
                                        cfg.batch_size,
                                        cfg.max_batches_per_epoch,
                                        prox_ref,
                                    )
                                }))
                            })
                        })
                        .collect::<Vec<Option<Result<f32, _>>>>()
                })
            })
            .collect();
        for h in handles {
            for r in h.join().expect("chunk worker survives client panics") {
                let i = losses.len();
                match r {
                    None => losses.push(None),
                    Some(Ok(loss)) => losses.push(Some(loss)),
                    Some(Err(_)) => {
                        fedmigr_telemetry::error!(
                            "core::runner",
                            "client {i} training panicked at epoch {epoch}; \
                             treating the client as crashed for this round"
                        );
                        panicked[i] = true;
                        losses.push(None);
                    }
                }
            }
        }
    });
    (losses, panicked)
}

/// Reads every client's parameters, applying DP noise at the egress point
/// if configured, then any Byzantine corruption: a malicious client
/// poisons *everything* it transmits — server uploads and C2C migrations
/// alike — after the honest pipeline has finished with the payload.
fn collect_params(
    clients: &mut [FlClient],
    cfg: &RunConfig,
    attack: &AttackModel,
    epoch: usize,
    rng: &mut StdRng,
) -> Vec<Vec<f32>> {
    clients
        .iter_mut()
        .enumerate()
        .map(|(i, c)| {
            let mut p = c.params();
            if let Some(dp) = &cfg.dp {
                dp.apply(&mut p, rng);
            }
            attack.corrupt_upload(i, epoch, &mut p);
            p
        })
        .collect()
}

/// Server-side aggregation (Eq. 7 and its robust variants) over the
/// participating clients: weights are the local sample counts `n_k`. A
/// round where *no* upload survives the `active` mask keeps the previous
/// global model instead of panicking on an empty average.
fn aggregate_active(
    clients: &[FlClient],
    uploads: &[Vec<f32>],
    active: &[bool],
    aggregator: &Aggregator,
    prev_global: &[f32],
    stats: &mut RobustStats,
) -> Vec<f32> {
    let entries: Vec<(&[f32], f64)> = uploads
        .iter()
        .zip(clients)
        .zip(active)
        .filter(|&(_, &a)| a)
        .map(|((p, c), _)| (p.as_slice(), c.num_samples() as f64))
        .collect();
    if entries.is_empty() {
        warn!(
            "core::runner",
            "fedmigr: aggregation round with zero active uploads; keeping previous global"
        );
        return prev_global.to_vec();
    }
    aggregator.aggregate(&entries, prev_global, stats)
}

/// An upload that completed after its round's deadline, buffered until an
/// aggregation folds it with a staleness discount (or ages it out).
struct LateUpload {
    /// The uploading client.
    client: usize,
    /// The decoded payload the wire delivered (codec applied).
    params: Vec<f32>,
    /// Value of the aggregation counter when the upload was buffered;
    /// staleness age is measured against it in aggregation rounds.
    seq: usize,
}

/// Per-client result of one flow-transport upload phase.
struct FlowUploadOutcome {
    /// Uploads that completed within the round deadline.
    on_time: Vec<bool>,
    /// Uploads that completed, but after the deadline.
    late: Vec<bool>,
    /// Uploads whose flow exhausted its timeout budget.
    failed: usize,
}

/// Staleness-tolerant degraded aggregation for the flow transport: folds
/// the `active` on-time uploads as fresh entries and the buffered late
/// uploads as staleness-discounted entries. A buffered upload is dropped
/// (not folded) when its client also delivered fresh this round — fresh
/// supersedes stale — or when it aged past the policy window. Returns
/// `None` (keep the previous global) only when there is nothing at all to
/// fold. Always drains the buffer.
#[allow(clippy::too_many_arguments)]
fn aggregate_with_late(
    clients: &[FlClient],
    uploads: &[Vec<f32>],
    active: &[bool],
    aggregator: &Aggregator,
    prev_global: &[f32],
    stats: &mut RobustStats,
    late_buf: &mut Vec<LateUpload>,
    agg_seq: usize,
    policy: &StalenessPolicy,
    taccum: &mut TransportAccum,
) -> Option<Vec<f32>> {
    let fresh: Vec<(&[f32], f64)> = uploads
        .iter()
        .zip(clients)
        .zip(active)
        .filter(|&(_, &a)| a)
        .map(|((p, c), _)| (p.as_slice(), c.num_samples() as f64))
        .collect();
    let mut stale_entries: Vec<(&[f32], f64, usize)> = Vec::new();
    let (mut folded, mut dropped) = (0u64, 0u64);
    for lu in late_buf.iter() {
        // An upload buffered since `seq` aggregations had completed is at
        // least one aggregation round old by the time the next one runs.
        let age = (agg_seq - lu.seq).max(1);
        if active[lu.client] || age > policy.max_age {
            dropped += 1;
            continue;
        }
        stale_entries.push((lu.params.as_slice(), clients[lu.client].num_samples() as f64, age));
        folded += 1;
    }
    taccum.note_stale_folded(folded);
    taccum.note_stale_dropped(dropped);
    let out = if fresh.is_empty() && stale_entries.is_empty() {
        warn!(
            "core::runner",
            "fedmigr: degraded aggregation with zero fresh or stale uploads; keeping previous global"
        );
        None
    } else {
        Some(aggregator.aggregate_with_stale(&fresh, &stale_entries, policy, prev_global, stats))
    };
    late_buf.clear();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedmigr_data::{partition_iid, partition_shards, SyntheticConfig, SyntheticDataset};
    use fedmigr_net::{DeviceTier, TopologyConfig};
    use fedmigr_nn::zoo::{self, NetScale};

    fn small_experiment(non_iid: bool) -> Experiment {
        let data = SyntheticDataset::generate(&SyntheticConfig {
            num_classes: 4,
            train_per_class: 24,
            test_per_class: 8,
            channels: 1,
            hw: 8,
            noise_std: 0.6,
            class_sep: 1.0,
            atom_bank: 0,
            atoms_per_class: 0,
            private_frac: 0.0,
            seed: 11,
        });
        let k = 4;
        let parts = if non_iid {
            partition_shards(&data.train, k, 1, 5)
        } else {
            partition_iid(&data.train, k, 5)
        };
        let topo = Topology::new(&TopologyConfig::default_edge(vec![2, 2], 5));
        let model = zoo::mini_resnet(1, 8, 4, 1, NetScale::Small, 5);
        Experiment::new(
            data.train,
            data.test,
            parts,
            topo,
            ClientCompute::homogeneous(k, DeviceTier::Nx),
            model,
        )
    }

    fn quick_cfg(scheme: Scheme, epochs: usize) -> RunConfig {
        let mut cfg = RunConfig::new(scheme, epochs);
        cfg.agg_interval = 5;
        cfg.eval_interval = 5;
        cfg.batch_size = 16;
        cfg.lr = 0.05;
        cfg
    }

    #[test]
    fn fedavg_learns_on_iid_data() {
        let exp = small_experiment(false);
        let m = exp.run(&quick_cfg(Scheme::FedAvg, 20));
        assert_eq!(m.epochs(), 20);
        assert!(m.final_accuracy() > 0.5, "accuracy {}", m.final_accuracy());
        // FedAvg aggregates every epoch: 2K models + initial distribution.
        assert_eq!(m.migrations_local + m.migrations_global, 0);
        assert!(m.traffic().c2c_local == 0 && m.traffic().c2c_global == 0);
    }

    #[test]
    fn randmigr_moves_models_over_c2c() {
        let exp = small_experiment(true);
        let m = exp.run(&quick_cfg(Scheme::RandMigr, 10));
        assert!(m.migrations_local + m.migrations_global > 0);
        assert!(m.traffic().c2c_local + m.traffic().c2c_global > 0);
        // C2S only on aggregation epochs (plus initial distribution).
        assert!(m.traffic().c2s < exp.run(&quick_cfg(Scheme::FedAvg, 10)).traffic().c2s);
    }

    #[test]
    fn fedmigr_runs_and_trains_agent() {
        let exp = small_experiment(true);
        let m = exp.run(&quick_cfg(Scheme::fedmigr(3), 12));
        assert_eq!(m.scheme, "FedMigr");
        assert!(m.migrations_local + m.migrations_global > 0);
        assert!(m.final_accuracy() > 0.2);
    }

    #[test]
    fn budget_exhaustion_stops_early() {
        let exp = small_experiment(false);
        let mut cfg = quick_cfg(Scheme::FedAvg, 50);
        // Enough for the initial distribution and a couple of epochs only.
        let bytes = 12.0 * 4.0 * 4.0 * 1000.0;
        cfg.budget = ResourceBudget::bandwidth_only(bytes);
        let m = exp.run(&cfg);
        assert!(m.budget_exhausted);
        assert!(m.epochs() < 50);
    }

    #[test]
    fn target_accuracy_stops_early() {
        let exp = small_experiment(false);
        let mut cfg = quick_cfg(Scheme::FedAvg, 60);
        cfg.target_accuracy = Some(0.4);
        cfg.eval_interval = 2;
        let m = exp.run(&cfg);
        assert!(m.target_reached);
        assert!(m.epochs() < 60);
    }

    #[test]
    fn dp_noise_degrades_but_runs() {
        let exp = small_experiment(false);
        let mut cfg = quick_cfg(Scheme::FedAvg, 10);
        cfg.dp = Some(DpConfig::with_epsilon(1.0)); // Very strong noise.
        let noisy = exp.run(&cfg);
        let clean = exp.run(&quick_cfg(Scheme::FedAvg, 10));
        assert!(noisy.final_accuracy() <= clean.final_accuracy() + 0.1);
    }

    #[test]
    fn fedasync_trades_traffic_for_accuracy() {
        let exp = small_experiment(true);
        let a_async = exp.run(&quick_cfg(Scheme::fedasync(), 16));
        let a_avg = exp.run(&quick_cfg(Scheme::FedAvg, 16));
        // One upload per epoch instead of K: much cheaper.
        assert!(a_async.traffic().c2s < a_avg.traffic().c2s / 2);
        // It still learns something, but non-IID hurts it (the paper's
        // critique of asynchronous optimization).
        assert!(a_async.final_accuracy() > 0.2);
        assert!(a_async.final_accuracy() <= a_avg.final_accuracy() + 0.1);
    }

    #[test]
    fn partial_participation_trains_a_subset_and_costs_less() {
        let exp = small_experiment(false);
        let mut cfg = quick_cfg(Scheme::FedAvg, 10);
        cfg.participation = 0.5;
        let m_half = exp.run(&cfg);
        let m_full = exp.run(&quick_cfg(Scheme::FedAvg, 10));
        // Half the clients -> roughly half the per-epoch C2S traffic.
        assert!(m_half.traffic().c2s < m_full.traffic().c2s * 3 / 4);
        assert!(m_half.final_accuracy() > 0.3, "partial run failed to learn");
    }

    #[test]
    fn partial_participation_works_for_migration_schemes() {
        let exp = small_experiment(true);
        let mut cfg = quick_cfg(Scheme::fedmigr(3), 10);
        cfg.participation = 0.75;
        let m = exp.run(&cfg);
        assert!(m.epochs() == 10);
        assert!(m.migrations_local + m.migrations_global > 0);
    }

    #[test]
    fn aggregate_active_with_no_survivors_keeps_previous_global() {
        let ds = Arc::new(
            SyntheticDataset::generate(&SyntheticConfig {
                num_classes: 4,
                train_per_class: 8,
                test_per_class: 2,
                channels: 1,
                hw: 8,
                noise_std: 0.6,
                class_sep: 1.0,
                atom_bank: 0,
                atoms_per_class: 0,
                private_frac: 0.0,
                seed: 11,
            })
            .train,
        );
        let parts = partition_iid(&ds, 2, 1);
        let mk = |i: usize| {
            FlClient::new(
                i,
                ds.clone(),
                parts[i].clone(),
                zoo::mini_resnet(1, 8, 4, 1, NetScale::Small, 5),
                0.05,
                42,
            )
        };
        let mut clients = vec![mk(0), mk(1)];
        let uploads: Vec<Vec<f32>> = clients.iter_mut().map(|c| c.params()).collect();
        let prev_global = vec![0.25f32; uploads[0].len()];
        let mut stats = RobustStats::default();
        // An all-inactive round must fall back to the previous global model
        // instead of averaging an empty set.
        let out = aggregate_active(
            &clients,
            &uploads,
            &[false, false],
            &Aggregator::FedAvg,
            &prev_global,
            &mut stats,
        );
        assert_eq!(out, prev_global);
        assert!(!stats.any());
        // Sanity: with survivors the same call actually aggregates.
        let agg = aggregate_active(
            &clients,
            &uploads,
            &[true, true],
            &Aggregator::FedAvg,
            &prev_global,
            &mut stats,
        );
        assert_ne!(agg, prev_global);
    }

    #[test]
    #[should_panic(expected = "full participation")]
    fn fixed_strategies_require_full_participation() {
        let exp = small_experiment(true);
        let mut cfg = quick_cfg(Scheme::Fixed(crate::MigrationStrategy::Random), 4);
        cfg.participation = 0.5;
        let _ = exp.run(&cfg);
    }

    #[test]
    fn phase_breakdown_accounts_for_all_sim_time() {
        let exp = small_experiment(true);
        let m = exp.run(&quick_cfg(Scheme::fedmigr(3), 10));
        let p = m.phase();
        assert!(p.train_s > 0.0, "training advances the clock");
        assert!(p.c2s_s > 0.0, "initial distribution + aggregation advance the clock");
        assert!(p.migration_s > 0.0, "migration epochs advance the clock");
        assert_eq!(p.backoff_s, 0.0, "no fault model, no backoff");
        let tol = 1e-9 * m.sim_time().max(1.0);
        assert!(
            (p.total() - m.sim_time()).abs() <= tol,
            "phase total {} vs sim_time {}",
            p.total(),
            m.sim_time()
        );
        // Per-epoch breakdowns are cumulative and monotone.
        for w in m.records.windows(2) {
            assert!(w[1].phase.total() >= w[0].phase.total());
        }
    }

    #[test]
    fn faulty_run_attributes_backoff_time() {
        let exp = small_experiment(false);
        let mut cfg = quick_cfg(Scheme::FedAvg, 12);
        cfg.fault = fedmigr_net::FaultConfig::none();
        cfg.fault.c2s_outage_prob = 0.6;
        cfg.fault.seed = 2;
        let m = exp.run(&cfg);
        let p = m.phase();
        assert!(p.backoff_s > 0.0, "60% WAN outage must show up as backoff: {p:?}");
        let tol = 1e-9 * m.sim_time().max(1.0);
        assert!((p.total() - m.sim_time()).abs() <= tol);
    }

    #[test]
    fn runs_are_deterministic_in_seed() {
        let exp = small_experiment(true);
        let a = exp.run(&quick_cfg(Scheme::RandMigr, 8));
        let b = exp.run(&quick_cfg(Scheme::RandMigr, 8));
        assert_eq!(a.final_accuracy(), b.final_accuracy());
        assert_eq!(a.traffic(), b.traffic());
    }

    #[test]
    fn explicit_no_fault_config_matches_default() {
        let exp = small_experiment(true);
        let base = exp.run(&quick_cfg(Scheme::RandMigr, 8));
        let mut cfg = quick_cfg(Scheme::RandMigr, 8);
        cfg.fault = fedmigr_net::FaultConfig::none();
        cfg.fault.seed = 99; // irrelevant: no fault process is enabled
        let m = exp.run(&cfg);
        assert_eq!(m.final_accuracy(), base.final_accuracy());
        assert_eq!(m.traffic(), base.traffic());
        assert_eq!(m.sim_time(), base.sim_time());
        assert!(!m.fault.any(), "no-fault run must observe zero faults");
        assert!(m.records.iter().all(|r| r.dropped_clients == 0 && r.stale_clients == 0));
    }

    #[test]
    fn faulty_migration_run_completes_and_accounts() {
        let exp = small_experiment(true);
        let mut cfg = quick_cfg(Scheme::RandMigr, 12);
        cfg.fault = fedmigr_net::FaultConfig::edge_churn(0.4, 17);
        let m = exp.run(&cfg);
        assert_eq!(m.epochs(), 12, "faults must not end the run early");
        assert!(m.fault.any(), "40% churn over 12 epochs should register");
        let recorded_drops: usize = m.records.iter().map(|r| r.dropped_clients).sum();
        assert_eq!(recorded_drops, m.fault.client_drops);
    }

    #[test]
    fn faulty_runs_are_deterministic() {
        let exp = small_experiment(true);
        let mut cfg = quick_cfg(Scheme::fedmigr(3), 10);
        cfg.fault = fedmigr_net::FaultConfig::edge_churn(0.3, 5);
        let a = exp.run(&cfg);
        let b = exp.run(&cfg);
        assert_eq!(a.final_accuracy(), b.final_accuracy());
        assert_eq!(a.traffic(), b.traffic());
        assert_eq!(a.fault, b.fault);
    }

    #[test]
    fn flow_transport_runs_and_reports_stats() {
        let exp = small_experiment(false);
        let mut cfg = quick_cfg(Scheme::FedAvg, 10);
        cfg.transport = TransportConfig::flow(cfg.seed);
        let m = exp.run(&cfg);
        assert_eq!(m.epochs(), 10, "flow transport must complete every round");
        assert_eq!(m.transport, "flow");
        assert!(m.transport_stats.any(), "flows must be recorded");
        assert!(m.transport_stats.failed_flows == 0, "clean links must not fail flows");
        assert!(m.transport_summary().is_some());
        assert!(m.final_accuracy() > 0.4, "flow accounting must not break learning");
        // Contention makes concurrent uploads slower than the serialized
        // lockstep pricing never is; time moved and traffic was charged.
        assert!(m.sim_time() > 0.0);
        assert!(m.traffic().c2s > 0);
    }

    #[test]
    fn flow_runs_are_deterministic() {
        let exp = small_experiment(true);
        let mut cfg = quick_cfg(Scheme::RandMigr, 8);
        cfg.transport = TransportConfig::flow(cfg.seed);
        cfg.fault = fedmigr_net::FaultConfig::none().with_network_stress(0.3);
        cfg.fault.seed = 5;
        let a = exp.run(&cfg);
        let b = exp.run(&cfg);
        assert_eq!(a.final_accuracy(), b.final_accuracy());
        assert_eq!(a.traffic(), b.traffic());
        assert_eq!(a.transport_stats, b.transport_stats);
        assert_eq!(a.sim_time(), b.sim_time());
    }

    #[test]
    fn lockstep_run_ignores_transport_state() {
        // A default (lockstep) run must be bit-identical whether or not the
        // flow tuning or staleness policy fields are explicitly set: no flow
        // code path may consume RNG, clock, or meter state.
        let exp = small_experiment(true);
        let base = exp.run(&quick_cfg(Scheme::RandMigr, 8));
        let mut cfg = quick_cfg(Scheme::RandMigr, 8);
        cfg.transport = TransportConfig::Lockstep;
        cfg.stale = StalenessPolicy { discount: 0.2, max_age: 9 }; // irrelevant under lockstep
        let m = exp.run(&cfg);
        assert_eq!(m.final_accuracy(), base.final_accuracy());
        assert_eq!(m.traffic(), base.traffic());
        assert_eq!(m.sim_time(), base.sim_time());
        assert_eq!(m.transport, "lockstep");
        assert!(!m.transport_stats.any());
        assert!(m.records.iter().all(|r| r.retransmits == 0 && r.late_uploads == 0));
    }

    #[test]
    fn flow_under_network_stress_degrades_but_completes() {
        let exp = small_experiment(false);
        let mut cfg = quick_cfg(Scheme::FedAvg, 12);
        cfg.transport = TransportConfig::flow(cfg.seed);
        cfg.fault = fedmigr_net::FaultConfig::none().with_network_stress(0.5);
        cfg.fault.seed = 3;
        let stressed = exp.run(&cfg);
        assert_eq!(stressed.epochs(), 12, "burst loss must not stall the run");
        assert!(
            stressed.transport_stats.retransmits > 0,
            "50% burst-loss stress must force retransmits: {:?}",
            stressed.transport_stats
        );
        let mut clean_cfg = quick_cfg(Scheme::FedAvg, 12);
        clean_cfg.transport = TransportConfig::flow(clean_cfg.seed);
        let clean = exp.run(&clean_cfg);
        assert!(
            stressed.final_accuracy() >= clean.final_accuracy() - 0.15,
            "staleness-tolerant aggregation should keep stressed accuracy close: {} vs {}",
            stressed.final_accuracy(),
            clean.final_accuracy()
        );
    }

    #[test]
    fn flow_migration_schemes_complete_under_stress() {
        let exp = small_experiment(true);
        let mut cfg = quick_cfg(Scheme::fedmigr(3), 10);
        cfg.transport = TransportConfig::flow(cfg.seed);
        cfg.fault = fedmigr_net::FaultConfig::edge_churn(0.3, 5).with_network_stress(0.3);
        let m = exp.run(&cfg);
        assert_eq!(m.epochs(), 10);
        assert!(m.transport_stats.flows > 0);
        // Migration flows under churn + stress must exercise the fallback
        // accounting without losing the permutation invariant (the run
        // completing is the invariant check — a broken permutation panics
        // in set_params bookkeeping or diverges).
        assert!(m.final_accuracy() > 0.15);
    }

    #[test]
    fn fedavg_survives_wan_outages() {
        let exp = small_experiment(false);
        let mut cfg = quick_cfg(Scheme::FedAvg, 12);
        cfg.fault = fedmigr_net::FaultConfig::none();
        cfg.fault.c2s_outage_prob = 0.6;
        cfg.fault.seed = 2;
        let m = exp.run(&cfg);
        assert_eq!(m.epochs(), 12);
        assert!(m.fault.transfer_retries > 0, "60% WAN outage should force retries: {:?}", m.fault);
        assert!(m.fault.wasted_bytes > 0);
    }
}
