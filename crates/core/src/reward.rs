//! The DRL reward of Sec. III-C.
//!
//! Per-epoch reward (Eq. 17):
//! `r_t = -Υ^(ΔF_t / F_{t-1}) - c^t/B_c - b^t/B_b`
//! — exponentially better when the loss drops, linearly worse with resource
//! use. Terminal reward (Eq. 18) adds `+C` when training converged within
//! budget and `-C` when the budget ran out first.

/// Reward shaping constants.
#[derive(Clone, Copy, Debug)]
pub struct RewardConfig {
    /// Base Υ > 1 of the exponential loss-trend term.
    pub upsilon: f64,
    /// Terminal bonus/penalty magnitude C.
    pub terminal_bonus: f64,
}

impl Default for RewardConfig {
    fn default() -> Self {
        Self { upsilon: 4.0, terminal_bonus: 5.0 }
    }
}

/// Per-epoch reward `r_t` (Eq. 17).
///
/// * `delta_loss` — `F_t - F_{t-1}` (negative when training improves),
/// * `prev_loss` — `F_{t-1}` (guarded against zero),
/// * `compute_frac` — `c^t / B_c`, this epoch's compute over the budget
///   (pass 0 for unlimited budgets),
/// * `bandwidth_frac` — `b^t / B_b` likewise.
pub fn step_reward(
    cfg: &RewardConfig,
    delta_loss: f64,
    prev_loss: f64,
    compute_frac: f64,
    bandwidth_frac: f64,
) -> f64 {
    assert!(cfg.upsilon > 1.0, "upsilon must exceed 1");
    let trend = (delta_loss / prev_loss.max(1e-6)).clamp(-5.0, 5.0);
    -cfg.upsilon.powf(trend) - compute_frac - bandwidth_frac
}

/// Terminal reward `r_T` (Eq. 18): the last step reward plus `+C` on
/// success (budget respected) or `-C` on budget exhaustion.
pub fn terminal_reward(cfg: &RewardConfig, last_step_reward: f64, within_budget: bool) -> f64 {
    if within_budget {
        last_step_reward + cfg.terminal_bonus
    } else {
        last_step_reward - cfg.terminal_bonus
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn improving_loss_earns_more_than_worsening() {
        let cfg = RewardConfig::default();
        let better = step_reward(&cfg, -0.5, 1.0, 0.0, 0.0);
        let flat = step_reward(&cfg, 0.0, 1.0, 0.0, 0.0);
        let worse = step_reward(&cfg, 0.5, 1.0, 0.0, 0.0);
        assert!(better > flat && flat > worse);
        // Flat loss costs exactly -Υ^0 = -1.
        assert!((flat + 1.0).abs() < 1e-12);
    }

    #[test]
    fn resource_usage_reduces_reward() {
        let cfg = RewardConfig::default();
        let cheap = step_reward(&cfg, -0.1, 1.0, 0.0, 0.0);
        let pricey = step_reward(&cfg, -0.1, 1.0, 0.02, 0.05);
        assert!((cheap - pricey - 0.07).abs() < 1e-12);
    }

    #[test]
    fn terminal_bonus_and_penalty() {
        let cfg = RewardConfig::default();
        assert_eq!(terminal_reward(&cfg, -1.0, true), 4.0);
        assert_eq!(terminal_reward(&cfg, -1.0, false), -6.0);
    }

    #[test]
    fn trend_is_clamped_against_blowup() {
        let cfg = RewardConfig::default();
        let r = step_reward(&cfg, 1e9, 1e-9, 0.0, 0.0);
        assert!(r.is_finite());
        assert!((r + cfg.upsilon.powf(5.0)).abs() < 1e-6);
    }
}
