//! The fleet runner: federated learning over populations far beyond what
//! the dense [`crate::Experiment`] can hold in memory.
//!
//! The dense runner materializes every client up front — dataset, model,
//! optimizer — plus `K × K` topology and migration matrices, so memory and
//! planning cost scale with the fleet even when only a handful of clients
//! participate per round. [`FleetExperiment`] inverts that: the population
//! lives in a [`ClientPool`] of ~100-byte dormant stubs, each round samples
//! a cohort (`sample_frac · K` participants), activates only those into
//! full [`FlClient`]s (regenerating their datasets deterministically from
//! the stub seed), trains, migrates, aggregates, and retires them back to
//! stubs. Peak RSS scales with the cohort, not `K`.
//!
//! Migration planning is factored the same way: instead of the dense
//! `K × K` objective, the DDPG agent sees a pooled fixed-dimension state
//! (per-LAN aggregates, `6 + 3·L` features) and picks a destination *LAN*;
//! [`plan_migrations`] then shortlists same-LAN plus `top_m` hash-sampled
//! cross-LAN candidates per participant and commits greedily — decision
//! cost is `O(n · (lan_size + top_m))` per round rather than `O(K²)`.
//!
//! Fleet mode is a new opt-in world (`RunConfig::fleet`), not a replay of
//! the dense one: its topology, assignment and sampling streams are seeded
//! independently, and the dense path stays byte-identical whether or not
//! this module exists. Checkpoints share the dense container format under
//! `mode = "fleet"` ([`crate::checkpoint::FleetRunState`]) and are written
//! only at aggregation boundaries, where every client is dormant — a
//! killed-and-resumed fleet run replays bit for bit.

use std::collections::HashMap;
use std::sync::Arc;

use fedmigr_data::{Dataset, SyntheticConfig, SyntheticWorld};
use fedmigr_drl::qp::FlmmRelaxation;
use fedmigr_drl::{AgentConfig, DdpgAgent, PooledMigrationState, Transition};
use fedmigr_fleet::LanProfile;
use fedmigr_fleet::{
    plan_migrations, ClientPool, FleetAssignment, FleetPlannerConfig, FleetTopology,
    FleetTopologyConfig,
};
use fedmigr_net::{transfer_time, ResourceMeter, TransportStats};
use fedmigr_nn::Model;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::aggregate::Aggregator;
use crate::checkpoint::{AgentSnapshot, FleetRunState, RunStamp};
use crate::client::{ClientState, FlClient};
use crate::metrics::{EpochRecord, FaultStats, RecoveryStats, RobustStats, RunMetrics};
use crate::reward::{step_reward, terminal_reward, RewardConfig};
use crate::runner::{PhasedClock, RunConfig, VPhase};
use crate::scheme::Scheme;
use fedmigr_compress::{CodecConfig, CompressionStats};
use fedmigr_telemetry::span;

/// Fleet-mode knobs, carried in [`RunConfig::fleet`].
#[derive(Clone, Copy, Debug)]
pub struct FleetOptions {
    /// Fraction of the fleet sampled into each aggregation block's cohort
    /// (at least one client). Replaces `RunConfig::participation`, which
    /// fleet mode requires to stay at 1.0.
    pub sample_frac: f64,
    /// Shortlist width of the factored migration planner: cross-LAN
    /// candidates sampled per participant, and the per-source cap on
    /// retained candidates.
    pub top_m: usize,
}

impl Default for FleetOptions {
    fn default() -> Self {
        Self { sample_frac: 0.05, top_m: 8 }
    }
}

/// The FedMigr DRL coupling, pooled to LAN granularity: the agent decides
/// destination *LANs* from `6 + 3·L`-dimensional states, so its cost is
/// independent of the fleet size.
struct FleetAgentCtx {
    agent: DdpgAgent,
    reward: RewardConfig,
    lambda: f64,
    rho: f64,
    resource_reward: bool,
    warmup_epochs: usize,
    updates_per_epoch: usize,
    /// Decisions awaiting their reward: `(state, destination LAN, active
    /// position)`. Always drained within the aggregation block that pushed
    /// them (rewards arrive one epoch later, blocks end on agg epochs with
    /// nothing pushed), so block-boundary checkpoints never carry any.
    pending: Vec<(Vec<f32>, usize, usize)>,
}

/// A fleet-scale experiment: the client population as a lazy pool, a
/// compact O(LANs) topology, a held-out test set and the model template.
pub struct FleetExperiment {
    pool: ClientPool,
    topo: FleetTopology,
    test: Dataset,
    template: Model,
}

impl FleetExperiment {
    /// Builds a fleet experiment from pre-built parts.
    ///
    /// # Panics
    /// Panics when the pool and topology disagree on fleet size.
    pub fn new(pool: ClientPool, topo: FleetTopology, test: Dataset, template: Model) -> Self {
        assert_eq!(pool.len(), topo.num_clients(), "pool/topology fleet size mismatch");
        Self { pool, topo, test, template }
    }

    /// Builds the standard synthetic fleet: `k` clients over `num_lans`
    /// LANs (sizes as even as possible), a blocked-shard label world whose
    /// run length equals `base_samples` (so each client holds one or two
    /// classes — the paper's non-IID shard partitioning, in closed form),
    /// and an interval assignment jittering each client's holding around
    /// `base_samples`.
    ///
    /// # Panics
    /// Panics when `k < num_lans` or any size is zero.
    pub fn synthetic(
        k: usize,
        num_lans: usize,
        base_samples: usize,
        test_per_class: usize,
        seed: u64,
        template: Model,
    ) -> Self {
        assert!(num_lans > 0 && k >= num_lans, "need at least one client per LAN");
        assert!(base_samples > 0 && test_per_class > 0);
        let cfg = SyntheticConfig::c10_like(base_samples, seed);
        let world = SyntheticWorld::new(&cfg, base_samples as u64);
        let test = world.test_split(test_per_class);
        let assignment = FleetAssignment::build(k, base_samples, seed);
        let mut tcfg = FleetTopologyConfig::uniform(num_lans, 1, seed);
        tcfg.lan_sizes =
            (0..num_lans).map(|l| k / num_lans + usize::from(l < k % num_lans)).collect();
        let topo = FleetTopology::new(tcfg);
        let pool = ClientPool::new(world, assignment, &topo, seed);
        Self::new(pool, topo, test, template)
    }

    /// Fleet size `K`.
    pub fn num_clients(&self) -> usize {
        self.pool.len()
    }

    /// The fleet topology.
    pub fn topology(&self) -> &FleetTopology {
        &self.topo
    }

    /// Executes `cfg` over the fleet and returns the collected metrics.
    /// `&mut self` because retiring participants banks their dormant state
    /// back into the pool.
    ///
    /// # Panics
    /// Panics on configurations fleet mode does not support (see the
    /// asserts at the top: lockstep transport, identity codec, no
    /// fault/attack/DP injection, FedAvg or FedMigr scheme).
    pub fn run(&mut self, cfg: &RunConfig) -> RunMetrics {
        assert!(cfg.epochs > 0 && cfg.agg_interval > 0 && cfg.eval_interval > 0);
        let opts = cfg.fleet.unwrap_or_default();
        assert!(
            opts.sample_frac > 0.0 && opts.sample_frac <= 1.0,
            "fleet sample_frac must be in (0, 1]"
        );
        assert!(opts.top_m > 0, "fleet top_m must be positive");
        assert!(
            matches!(cfg.scheme, Scheme::FedAvg | Scheme::FedMigr(_)),
            "fleet mode supports FedAvg and FedMigr, not {}",
            cfg.scheme.name()
        );
        assert!(
            matches!(cfg.codec, CodecConfig::Identity),
            "fleet mode requires the identity codec (per-client error-feedback residuals would \
             scale memory with K)"
        );
        assert!(cfg.transport.name() == "lockstep", "fleet mode requires the lockstep transport");
        assert!(cfg.fault.is_none(), "fleet mode does not support fault injection");
        assert!(cfg.attack.is_none(), "fleet mode does not support Byzantine attacks");
        assert!(cfg.dp.is_none(), "fleet mode does not support differential privacy");
        assert!(
            matches!(cfg.aggregator, Aggregator::FedAvg),
            "fleet mode requires the FedAvg aggregator"
        );
        assert!(!cfg.watchdog.enabled, "fleet mode does not support the divergence watchdog");
        assert!(
            cfg.participation >= 1.0,
            "fleet mode samples via fleet.sample_frac; leave participation at 1.0"
        );
        if let Some(every) = cfg.checkpoint_every {
            assert!(
                matches!(cfg.scheme, Scheme::FedAvg) || every.is_multiple_of(cfg.agg_interval),
                "fleet checkpoints land on aggregation boundaries: checkpoint_every must be a \
                 multiple of agg_interval"
            );
        }

        let k = self.pool.len();
        let cohort_n = ((opts.sample_frac * k as f64).ceil() as usize).clamp(1, k);
        let num_lans = self.topo.num_lans();
        let num_classes = self.pool.world().num_classes();
        let mut scratch = self.template.clone();
        let num_params = scratch.num_params();
        let model_bytes = scratch.wire_bytes();
        let mut global = scratch.params();
        fedmigr_telemetry::debug!(
            "core::fleet",
            "fleet run start: scheme={} K={k} cohort={cohort_n} lans={num_lans} epochs={} seed={}",
            cfg.scheme.name(),
            cfg.epochs,
            cfg.seed
        );

        // Static share of fleet data per LAN (a pooled-state feature).
        let lan_load: Vec<f64> = {
            let mut load = vec![0.0f64; num_lans];
            let mut total = 0.0f64;
            for id in 0..k {
                let stub = self.pool.stub(id);
                load[stub.lan as usize] += stub.len as f64;
                total += stub.len as f64;
            }
            load.iter().map(|&v| v / total).collect()
        };

        let mut rng = StdRng::seed_from_u64(cfg.seed.wrapping_mul(0x5851_F42D).wrapping_add(3));
        let mut meter = ResourceMeter::new(cfg.budget);
        let mut clock = PhasedClock::new();
        let pooled = PooledMigrationState::new(num_lans);
        let mut agent_ctx = match &cfg.scheme {
            Scheme::FedMigr(fc) => {
                let mut ac = AgentConfig::new(pooled.dim(), num_lans, fc.agent_seed);
                ac.rho = fc.rho;
                ac.noise_std = 0.15;
                ac.xi = fc.replay_xi;
                Some(FleetAgentCtx {
                    agent: DdpgAgent::new(ac),
                    reward: RewardConfig { upsilon: fc.upsilon, terminal_bonus: fc.terminal_bonus },
                    lambda: fc.lambda,
                    rho: fc.rho,
                    resource_reward: fc.resource_reward,
                    warmup_epochs: (fc.oracle_warmup_frac * cfg.epochs as f64) as usize,
                    updates_per_epoch: fc.updates_per_epoch,
                    pending: Vec::new(),
                })
            }
            _ => None,
        };

        let mut records: Vec<EpochRecord> = Vec::with_capacity(cfg.epochs);
        let mut migrations_local = 0usize;
        let mut migrations_global = 0usize;
        let mut prev_loss: Option<f32> = None;
        let mut last_epoch_usage = (0.0f64, 0.0f64);
        let mut last_step_reward = -1.0f64;
        let mut budget_exhausted = false;
        let mut target_reached = false;
        let mut recovery = RecoveryStats::default();

        let stamp = RunStamp {
            scheme: cfg.scheme.name(),
            seed: cfg.seed,
            epochs: cfg.epochs as u64,
            clients: k as u64,
            num_params: num_params as u64,
            codec: cfg.codec.name(),
            transport: cfg.transport.name().into(),
            agg_interval: cfg.agg_interval as u64,
            mode: "fleet".into(),
        };

        let mut start_epoch = 1usize;
        if let Some(path) = &cfg.resume {
            let state = FleetRunState::load(std::path::Path::new(path), &stamp)
                .unwrap_or_else(|e| panic!("cannot resume fleet run from {path}: {e}"));
            start_epoch = state.epoch + 1;
            global = state.global;
            rng = StdRng::from_state(state.rng);
            self.pool.import_dormant(state.dormant);
            if let (Some(ctx), Some(snap)) = (agent_ctx.as_mut(), state.agent) {
                ctx.agent.import_state(snap.agent);
                ctx.pending = snap.pending;
            }
            meter.import_state(state.meter);
            clock = PhasedClock::at(state.clock_now, state.phase);
            records = state.records;
            migrations_local = state.migrations_local;
            migrations_global = state.migrations_global;
            prev_loss = state.prev_loss;
            last_epoch_usage = state.last_epoch_usage;
            last_step_reward = state.last_step_reward;
            recovery.checkpoints_loaded += 1;
            fedmigr_telemetry::info!(
                "core::fleet",
                "resumed fleet run from {path} at epoch {start_epoch}"
            );
        }

        // Round-timeline capture (`--timeline-out`), sparse: tail intervals
        // only for clients that actually appeared, so a 10k-client fleet
        // round costs O(cohort) timeline lines. Intervals are keyed by
        // global client id; the fleet's lockstep transfers land as coarse
        // upload/migrate windows.
        let mut tcap = crate::timeline_capture::TimelineCapture::new(
            cfg.diag.timeline_out.as_deref(),
            "fleet",
            &cfg.scheme.name(),
            cfg.transport.name(),
            k,
            cfg.seed,
            true,
        );

        // Active cohort, in sampled-id order; empty between blocks. The
        // per-cohort model distribution and upload charges below are
        // participant-scoped: dormant clients hold no model, so nothing is
        // ever broadcast fleet-wide.
        let mut cohort: Vec<FlClient> = Vec::new();
        let mut killed = false;
        // Attributes kernel FLOP/byte/time deltas to the phase that just
        // closed; cheap no-op when accounting is off.
        let mut kphases = crate::kernels::KernelPhases::new();

        'round: for epoch in start_epoch..=cfg.epochs {
            let _round = fedmigr_telemetry::global().span_labeled(
                "core::fleet",
                "round",
                vec![
                    ("epoch".to_string(), epoch.to_string()),
                    ("scheme".to_string(), cfg.scheme.name()),
                ],
            );
            tcap.round_start(epoch, clock.now());
            // (0) Budget gate, matching the dense runner's round preamble.
            if meter.exhausted() {
                budget_exhausted = true;
                records.push(blank_record(epoch, prev_loss, &meter, &clock));
                tcap.round_end(clock.now());
                break 'round;
            }
            let traffic_before = meter.traffic().total();
            let compute_before = meter.compute_cost();

            // (1) Cohort activation at each aggregation block's start:
            // sample, charge the participant-scoped downlink, materialize.
            if cohort.is_empty() {
                let _activate = span!("core::fleet", "cohort_activate");
                let ids = sample_cohort(&mut rng, k, cohort_n);
                meter.record_c2s(ids.len() as u64 * model_bytes);
                let t0 = clock.now();
                let adv =
                    ids.len() as f64 * transfer_time(model_bytes, self.topo.c2s_bandwidth(epoch));
                clock.advance(VPhase::C2s, adv);
                if tcap.active() {
                    for &id in &ids {
                        tcap.upload(id, t0, adv, adv, false);
                    }
                }
                cohort = self.activate(&ids, &global, cfg.lr);
            }
            kphases.credit("cohort_activate");
            let n = cohort.len();

            // (2) Local training, straggler-limited by device tier.
            let train_span = span!("core::fleet", "local_train");
            let times: Vec<f64> = cohort
                .iter()
                .map(|c| {
                    let tier = self.pool.stub(c.id()).tier;
                    c.num_samples() as f64 / tier.samples_per_second()
                })
                .collect();
            let compute: f64 = cohort.iter().map(|c| c.num_samples() as f64).sum();
            let losses = train_cohort(&mut cohort, cfg.batch_size, cfg.max_batches_per_epoch);
            meter.record_compute(compute);
            let train_t0 = clock.now();
            if tcap.active() {
                let phase_end = train_t0 + times.iter().fold(0.0f64, |a, &b| a.max(b));
                for (c, &t) in cohort.iter().zip(&times) {
                    tcap.train(c.id(), train_t0, train_t0 + t, phase_end);
                }
            }
            clock.advance_parallel(VPhase::Train, times);
            let mean_loss: f32 = {
                let w: f64 = cohort.iter().map(|c| c.num_samples() as f64).sum();
                (losses
                    .iter()
                    .zip(&cohort)
                    .map(|(&l, c)| l as f64 * c.num_samples() as f64)
                    .sum::<f64>()
                    / w) as f32
            };
            drop(train_span);
            kphases.credit("local_train");

            // (3) Pooled DRL states for this round, and the reward for the
            // previous round's pending decisions (Eq. 17).
            let decision_span = span!("core::fleet", "decision");
            let lans: Vec<u32> = cohort.iter().map(|c| self.pool.stub(c.id()).lan).collect();
            let marginals: Vec<&[f32]> =
                cohort.iter().map(|c| self.pool.stub(c.id()).marginal.as_slice()).collect();
            let states: Option<Vec<Vec<f32>>> = agent_ctx.as_ref().map(|_| {
                let profile = LanProfile::build(&lans, &marginals, num_lans, num_classes);
                let active_frac: Vec<f64> = {
                    let mut f = vec![0.0f64; num_lans];
                    for &l in &lans {
                        f[l as usize] += 1.0 / n as f64;
                    }
                    f
                };
                let dloss =
                    prev_loss.map(|p| ((mean_loss - p) / p.max(1e-6)) as f64).unwrap_or(0.0);
                (0..n)
                    .map(|i| {
                        pooled.build(
                            epoch as f64 / cfg.epochs as f64,
                            mean_loss as f64,
                            dloss,
                            meter.bandwidth_remaining_frac(),
                            meter.compute_remaining_frac(),
                            1.0,
                            &profile.distance_row(marginals[i]),
                            &active_frac,
                            &lan_load,
                        )
                    })
                    .collect()
            });
            if let (Some(ctx), Some(states)) = (agent_ctx.as_mut(), states.as_ref()) {
                let (cu, bu) = if ctx.resource_reward { last_epoch_usage } else { (0.0, 0.0) };
                let reward = step_reward(
                    &ctx.reward,
                    prev_loss.map(|p| (mean_loss - p) as f64).unwrap_or(0.0),
                    prev_loss.unwrap_or(mean_loss) as f64,
                    cu,
                    bu,
                );
                last_step_reward = reward;
                for (state, action, pos) in ctx.pending.drain(..) {
                    ctx.agent.observe(Transition {
                        state,
                        action,
                        reward: reward as f32,
                        next_state: states[pos].clone(),
                        done: false,
                    });
                }
            }
            drop(decision_span);
            kphases.credit("decision");

            // (4) Communication: C2C migration between aggregations
            // (FedMigr), or upload + aggregate + retire on block ends.
            let is_agg = match cfg.scheme {
                Scheme::FedAvg => true,
                _ => epoch.is_multiple_of(cfg.agg_interval),
            };
            let is_eval = epoch.is_multiple_of(cfg.eval_interval) || epoch == cfg.epochs;
            let mut accuracy = None;
            if is_agg {
                let agg_span = span!("core::fleet", "aggregate");
                meter.record_c2s(n as u64 * model_bytes);
                let t0 = clock.now();
                let adv = n as f64 * transfer_time(model_bytes, self.topo.c2s_bandwidth(epoch));
                clock.advance(VPhase::C2s, adv);
                if tcap.active() {
                    for c in &cohort {
                        tcap.upload(c.id(), t0, adv, adv, false);
                    }
                }
                global = aggregate_cohort(&mut cohort, &global);
                drop(agg_span);
                kphases.credit("aggregate");
                if is_eval {
                    let _eval = span!("core::fleet", "evaluate");
                    accuracy = Some(self.evaluate(&mut scratch, &global));
                    kphases.credit("evaluate");
                }
                let retire_span = span!("core::fleet", "retire");
                for c in cohort.iter_mut() {
                    let st = c.export_state();
                    self.pool.retire(c.id(), st.rng, st.migrations_received as u64);
                }
                cohort.clear();
                fedmigr_telemetry::rss::record_peak_rss();
                drop(retire_span);
                kphases.credit("retire");
            } else {
                let migrate_span = span!("core::fleet", "migrate");
                if let (Some(ctx), Some(states)) = (agent_ctx.as_mut(), states.as_ref()) {
                    let rho = if epoch <= ctx.warmup_epochs { 1.0 } else { ctx.rho };
                    ctx.agent.set_rho(rho);
                    // LAN-level FLMM oracle: L × L instead of K × K.
                    let profile = LanProfile::build(&lans, &marginals, num_lans, num_classes);
                    let relax = FlmmRelaxation {
                        benefit: profile.benefit_matrix(),
                        cost: self.lan_cost_matrix(model_bytes),
                        lambda: ctx.lambda,
                        entropy: 0.05,
                    };
                    let oracle = relax.solve(40, 0.4);
                    let desired: Vec<u32> = (0..n)
                        .map(|i| {
                            ctx.agent.select_action(&states[i], Some(&oracle[lans[i] as usize]))
                                as u32
                        })
                        .collect();
                    let gids: Vec<usize> = cohort.iter().map(|c| c.id()).collect();
                    let cross_slow = self.topo.config().cross_slow_bandwidth;
                    let pcfg = FleetPlannerConfig {
                        top_m: opts.top_m,
                        lambda: ctx.lambda,
                        seed: cfg.seed ^ 0x00F1_EE75,
                    };
                    let dest = plan_migrations(
                        &pcfg,
                        epoch as u64,
                        &lans,
                        &marginals,
                        &desired,
                        |i, j| {
                            // Normalized transfer price: slowest link = 1.
                            cross_slow / self.topo.c2c_bandwidth(gids[i], gids[j], epoch)
                        },
                    );
                    for (i, state) in states.iter().enumerate() {
                        let dest_lan = lans[dest[i]] as usize;
                        if epoch <= ctx.warmup_epochs {
                            // Pre-training: clone the committed plan's
                            // behaviour into the actor (dense runner's
                            // oracle warmup, at LAN granularity).
                            ctx.agent.imitate(state, dest_lan);
                        }
                        ctx.pending.push((state.clone(), dest_lan, i));
                    }

                    // Execute the permutation: model of position i lands on
                    // position dest[i]'s host.
                    let moves: Vec<(usize, usize)> = dest
                        .iter()
                        .enumerate()
                        .filter(|&(i, &d)| d != i)
                        .map(|(i, &d)| (i, d))
                        .collect();
                    if !moves.is_empty() {
                        let payloads: HashMap<usize, Vec<f32>> =
                            moves.iter().map(|&(i, _)| (i, cohort[i].params())).collect();
                        let mut move_times = Vec::with_capacity(moves.len());
                        let mig_t0 = clock.now();
                        for &(i, d) in &moves {
                            let local = self.topo.same_lan(gids[i], gids[d]);
                            meter.record_c2c(model_bytes, local);
                            let time = transfer_time(
                                model_bytes,
                                self.topo.c2c_bandwidth(gids[i], gids[d], epoch),
                            );
                            tcap.migrate(gids[i], mig_t0, time);
                            move_times.push(time);
                            if local {
                                migrations_local += 1;
                            } else {
                                migrations_global += 1;
                            }
                        }
                        clock.advance_parallel(VPhase::Migration, move_times);
                        for &(i, d) in &moves {
                            cohort[d].set_params(&payloads[&i], true);
                        }
                    }
                }
                drop(migrate_span);
                kphases.credit("migrate");
                if is_eval {
                    // Shadow aggregation — observation only, the cohort's
                    // models are untouched.
                    let _eval = span!("core::fleet", "evaluate");
                    let shadow = aggregate_cohort(&mut cohort, &global);
                    accuracy = Some(self.evaluate(&mut scratch, &shadow));
                    kphases.credit("evaluate");
                }
            }

            // (5) Bookkeeping, cadenced checkpoints, stop conditions.
            let book_span = span!("core::fleet", "bookkeeping");
            records.push(EpochRecord {
                epoch,
                train_loss: mean_loss,
                test_accuracy: accuracy,
                traffic: meter.traffic(),
                sim_time: clock.now(),
                dropped_clients: 0,
                stale_clients: 0,
                rejected_migrations: 0,
                bytes_saved: 0,
                phase: clock.phase(),
                retransmits: 0,
                late_uploads: 0,
            });
            tcap.round_end(clock.now());
            prev_loss = Some(mean_loss);
            let epoch_bw = (meter.traffic().total() - traffic_before) as f64;
            let epoch_compute = meter.compute_cost() - compute_before;
            last_epoch_usage = (
                if cfg.budget.compute.is_finite() {
                    epoch_compute / cfg.budget.compute
                } else {
                    0.0
                },
                if cfg.budget.bandwidth.is_finite() {
                    epoch_bw / cfg.budget.bandwidth
                } else {
                    0.0
                },
            );
            if let Some(ctx) = agent_ctx.as_mut() {
                for _ in 0..ctx.updates_per_epoch {
                    ctx.agent.update();
                }
            }

            if let Some(every) = cfg.checkpoint_every {
                // Only at block boundaries: the cohort was just retired, so
                // the dormant stubs are the complete per-client state.
                if is_agg && epoch.is_multiple_of(every) {
                    debug_assert!(cohort.is_empty());
                    let state = FleetRunState {
                        epoch,
                        global: global.clone(),
                        rng: rng.state(),
                        dormant: self.pool.export_dormant(),
                        agent: agent_ctx.as_mut().map(|ctx| AgentSnapshot {
                            agent: ctx.agent.export_state(),
                            pending: ctx.pending.clone(),
                        }),
                        meter: meter.export_state(),
                        clock_now: clock.now(),
                        phase: clock.phase(),
                        records: records.clone(),
                        migrations_local,
                        migrations_global,
                        prev_loss,
                        last_epoch_usage,
                        last_step_reward,
                    };
                    let bytes = state.to_bytes(&stamp);
                    recovery.checkpoints_written += 1;
                    recovery.checkpoint_bytes += bytes.len() as u64;
                    if let Some(dir) = cfg.checkpoint_dir.as_deref() {
                        let dir = std::path::Path::new(dir);
                        let write = |path: &std::path::Path| -> std::io::Result<()> {
                            let tmp = path.with_extension("tmp");
                            std::fs::write(&tmp, &bytes)?;
                            std::fs::rename(&tmp, path)
                        };
                        let persist = std::fs::create_dir_all(dir)
                            .and_then(|()| write(&dir.join(format!("ckpt_round_{epoch}.fmrs"))))
                            .and_then(|()| write(&dir.join("latest.fmrs")));
                        if let Err(e) = persist {
                            fedmigr_telemetry::error!(
                                "core::fleet",
                                "fleet checkpoint write failed at epoch {epoch} in {}: {e}",
                                dir.display()
                            );
                        }
                    }
                }
            }

            if let (Some(target), Some(acc)) = (cfg.target_accuracy, accuracy) {
                if acc >= target {
                    target_reached = true;
                    break 'round;
                }
            }
            if meter.exhausted() {
                budget_exhausted = true;
                break 'round;
            }
            if cfg.kill_at == Some(epoch) {
                killed = true;
                fedmigr_telemetry::warn!(
                    "core::fleet",
                    "kill switch: aborting fleet run after epoch {epoch} (simulated crash)"
                );
                break 'round;
            }
            drop(book_span);
            kphases.credit("bookkeeping");
        }

        // Terminal transition flush (Eq. 18); a killed run crashed and gets
        // no terminal credit — exactly what `--resume` should pick up.
        if let Some(ctx) = agent_ctx.as_mut().filter(|_| !killed) {
            let terminal = terminal_reward(&ctx.reward, last_step_reward, !budget_exhausted);
            for (state, action, _) in ctx.pending.drain(..) {
                let next_state = state.clone();
                ctx.agent.observe(Transition {
                    state,
                    action,
                    reward: terminal as f32,
                    next_state,
                    done: true,
                });
            }
        }
        fedmigr_telemetry::rss::record_peak_rss();
        if !killed {
            tcap.finish(records.len());
        }

        RunMetrics {
            scheme: cfg.scheme.name(),
            records,
            migrations_local,
            migrations_global,
            link_migrations: Vec::new(),
            budget_exhausted,
            target_reached,
            fault: FaultStats::default(),
            robust: RobustStats::default(),
            codec: cfg.codec.name(),
            compression: CompressionStats::default(),
            transport: cfg.transport.name().into(),
            transport_stats: TransportStats::default(),
            recovery,
        }
    }

    /// Activates `ids` into full clients: datasets are rematerialized (in
    /// parallel — materialization dominates), the current global model is
    /// installed, and previously-activated clients resume their banked RNG
    /// stream and migration counter.
    fn activate(&self, ids: &[usize], global: &[f32], lr: f32) -> Vec<FlClient> {
        let workers = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);
        let chunk = ids.len().div_ceil(workers.max(1)).max(1);
        let mut out = Vec::with_capacity(ids.len());
        // `Model` is Send but not Sync (boxed layers), so clone the models
        // here and move them into the workers; only the pool is shared.
        let pool = &self.pool;
        std::thread::scope(|s| {
            let handles: Vec<_> = ids
                .chunks(chunk)
                .map(|part| {
                    let models: Vec<Model> = part.iter().map(|_| self.template.clone()).collect();
                    s.spawn(move || {
                        part.iter()
                            .zip(models)
                            .map(|(&id, model)| activate_one(pool, id, model, global, lr))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            for h in handles {
                out.extend(h.join().expect("fleet activation panicked"));
            }
        });
        out
    }

    /// LAN-level migration cost matrix for the pooled FLMM oracle,
    /// normalized so the most expensive class costs 1. Cross-LAN entries
    /// use the expected bandwidth over the moderate/slow link-class mix.
    fn lan_cost_matrix(&self, model_bytes: u64) -> Vec<Vec<f64>> {
        let c = self.topo.config();
        let l = self.topo.num_lans();
        let cross_bw = (1.0 - c.slow_fraction) * c.cross_moderate_bandwidth
            + c.slow_fraction * c.cross_slow_bandwidth;
        let intra = model_bytes as f64 / c.lan_bandwidth;
        let cross = model_bytes as f64 / cross_bw;
        let max = intra.max(cross).max(1e-12);
        (0..l)
            .map(|a| (0..l).map(|b| if a == b { intra / max } else { cross / max }).collect())
            .collect()
    }

    /// Accuracy of `params` over the held-out test set (the dense runner's
    /// chunked evaluation, verbatim).
    fn evaluate(&self, template: &mut Model, params: &[f32]) -> f64 {
        template.set_params(params);
        let n = self.test.len();
        let mut correct_weighted = 0.0f64;
        let mut seen = 0usize;
        let indices: Vec<usize> = (0..n).collect();
        for chunk in indices.chunks(64) {
            let (x, labels) = self.test.batch(chunk);
            let (_, acc) = template.evaluate(&x, &labels);
            correct_weighted += acc * chunk.len() as f64;
            seen += chunk.len();
        }
        correct_weighted / seen as f64
    }
}

/// Activates one client: rematerializes its dataset from the stub range,
/// installs the current global model, and — if it has participated before —
/// resumes its banked batch-order RNG stream and migration counter
/// (dormant clients keep no model).
fn activate_one(pool: &ClientPool, id: usize, model: Model, global: &[f32], lr: f32) -> FlClient {
    let stub = pool.stub(id);
    let data = Arc::new(pool.materialize(id));
    let indices: Vec<usize> = (0..stub.len as usize).collect();
    let mut client = FlClient::new(id, data, indices.clone(), model, lr, stub.seed);
    match stub.dormant.rng {
        Some(saved) => client.import_state(ClientState {
            params: global.to_vec(),
            rng: saved,
            indices,
            migrations_received: stub.dormant.migrations_received as usize,
        }),
        None => client.set_params(global, false),
    }
    client
}

/// Samples `n` distinct client ids from `0..k` — a partial Fisher–Yates
/// over a sparse swap map, `O(n)` time and memory regardless of `k`, so a
/// million-client fleet never allocates a fleet-sized scratch vector.
/// Returns ids in ascending order (the cohort's canonical order).
fn sample_cohort(rng: &mut StdRng, k: usize, n: usize) -> Vec<usize> {
    debug_assert!(n >= 1 && n <= k);
    let mut swapped: HashMap<usize, usize> = HashMap::with_capacity(2 * n);
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let j = rng.random_range(i..k);
        let vi = *swapped.get(&i).unwrap_or(&i);
        let vj = *swapped.get(&j).unwrap_or(&j);
        out.push(vj);
        swapped.insert(j, vi);
    }
    out.sort_unstable();
    out
}

/// One parallel local epoch over the cohort; returns per-position losses.
fn train_cohort(
    cohort: &mut [FlClient],
    batch_size: usize,
    max_batches: Option<usize>,
) -> Vec<f32> {
    let n = cohort.len();
    let workers = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);
    let chunk = n.div_ceil(workers.max(1)).max(1);
    let mut losses = Vec::with_capacity(n);
    std::thread::scope(|s| {
        let handles: Vec<_> = cohort
            .chunks_mut(chunk)
            .map(|part| {
                s.spawn(move || {
                    part.iter_mut()
                        .map(|c| c.train_epoch(batch_size, max_batches, None))
                        .collect::<Vec<f32>>()
                })
            })
            .collect();
        for h in handles {
            losses.extend(h.join().expect("fleet training panicked"));
        }
    });
    losses
}

/// Sample-weighted FedAvg over the cohort's models (Eq. 7), bit-identical
/// to the dense aggregator's FedAvg rule.
fn aggregate_cohort(cohort: &mut [FlClient], prev_global: &[f32]) -> Vec<f32> {
    let params: Vec<Vec<f32>> = cohort.iter_mut().map(|c| c.params()).collect();
    let entries: Vec<(&[f32], f64)> = params
        .iter()
        .zip(cohort.iter())
        .map(|(p, c)| (p.as_slice(), c.num_samples() as f64))
        .collect();
    let mut stats = RobustStats::default();
    Aggregator::FedAvg.aggregate(&entries, prev_global, &mut stats)
}

/// The record a budget-exhausted round leaves behind (no training ran).
fn blank_record(
    epoch: usize,
    prev_loss: Option<f32>,
    meter: &ResourceMeter,
    clock: &PhasedClock,
) -> EpochRecord {
    EpochRecord {
        epoch,
        train_loss: prev_loss.unwrap_or(0.0),
        test_accuracy: None,
        traffic: meter.traffic(),
        sim_time: clock.now(),
        dropped_clients: 0,
        stale_clients: 0,
        rejected_migrations: 0,
        bytes_saved: 0,
        phase: clock.phase(),
        retransmits: 0,
        late_uploads: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedmigr_nn::zoo::{c10_cnn, NetScale};

    fn small_fleet(k: usize, lans: usize, seed: u64) -> FleetExperiment {
        FleetExperiment::synthetic(k, lans, 24, 4, seed, c10_cnn(3, 8, NetScale::Small, seed))
    }

    fn fleet_cfg(scheme: Scheme, epochs: usize) -> RunConfig {
        let mut cfg = RunConfig::new(scheme, epochs);
        cfg.agg_interval = 2;
        cfg.eval_interval = 2;
        cfg.batch_size = 8;
        cfg.max_batches_per_epoch = Some(2);
        cfg.fleet = Some(FleetOptions { sample_frac: 0.25, top_m: 4 });
        cfg
    }

    #[test]
    fn fedavg_fleet_run_completes() {
        let mut exp = small_fleet(40, 2, 11);
        let m = exp.run(&fleet_cfg(Scheme::FedAvg, 4));
        assert_eq!(m.records.len(), 4);
        assert!(m.records.last().unwrap().test_accuracy.is_some());
        assert_eq!(m.migrations_local + m.migrations_global, 0);
        assert!(m.traffic().total() > 0);
        assert!(m.sim_time() > 0.0);
    }

    #[test]
    fn fedmigr_fleet_migrates_and_is_deterministic() {
        let run = || {
            let mut exp = small_fleet(40, 4, 5);
            exp.run(&fleet_cfg(Scheme::fedmigr(5), 6))
        };
        let a = run();
        let b = run();
        assert_eq!(a.to_csv(), b.to_csv(), "fleet runs must be deterministic in the seed");
        assert_eq!(a.migrations_local, b.migrations_local);
        assert_eq!(a.migrations_global, b.migrations_global);
        assert!(
            a.migrations_local + a.migrations_global > 0,
            "shard-non-IID cohorts should trigger migrations"
        );
    }

    #[test]
    fn reactivated_clients_resume_their_rng_stream() {
        // With a 100% cohort and agg every epoch, every client re-activates
        // each round; determinism across two identical runs exercises the
        // retire/import path.
        let mut cfg = fleet_cfg(Scheme::FedAvg, 3);
        cfg.agg_interval = 1;
        cfg.fleet = Some(FleetOptions { sample_frac: 1.0, top_m: 2 });
        let a = small_fleet(10, 2, 3).run(&cfg);
        let b = small_fleet(10, 2, 3).run(&cfg);
        assert_eq!(a.to_csv(), b.to_csv());
    }

    #[test]
    fn fleet_checkpoint_resume_is_byte_identical() {
        let dir = std::env::temp_dir().join(format!("fedmigr_fleet_ckpt_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut cfg = fleet_cfg(Scheme::fedmigr(9), 8);
        cfg.checkpoint_every = Some(2);
        cfg.checkpoint_dir = Some(dir.to_string_lossy().into_owned());

        let full = small_fleet(24, 3, 9).run(&cfg);

        let mut killed_cfg = cfg.clone();
        killed_cfg.kill_at = Some(5);
        let _ = small_fleet(24, 3, 9).run(&killed_cfg);
        let mut resume_cfg = cfg.clone();
        resume_cfg.resume = Some(dir.join("latest.fmrs").to_string_lossy().into_owned());
        let resumed = small_fleet(24, 3, 9).run(&resume_cfg);

        assert_eq!(full.to_csv(), resumed.to_csv(), "kill + resume must replay bit for bit");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    #[should_panic(expected = "fleet mode")]
    fn fleet_rejects_lossy_codecs() {
        let mut cfg = fleet_cfg(Scheme::FedAvg, 2);
        cfg.codec = CodecConfig::Uniform { bits: 8, error_feedback: false };
        small_fleet(10, 2, 1).run(&cfg);
    }

    #[test]
    fn sample_cohort_is_distinct_and_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..50 {
            let ids = sample_cohort(&mut rng, 100, 13);
            assert_eq!(ids.len(), 13);
            assert!(ids.windows(2).all(|w| w[0] < w[1]), "sorted and distinct");
            assert!(ids.iter().all(|&i| i < 100));
        }
    }
}
