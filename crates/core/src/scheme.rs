use serde::{Deserialize, Serialize};

/// Fixed (non-learned) migration strategies for the Fig. 3 motivation
/// experiment.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum MigrationStrategy {
    /// Every model migrates to a client in a *different* LAN (the clients
    /// within a LAN share a data distribution, so this maximizes exposure
    /// to new data).
    CrossLan,
    /// Models only move between clients of the *same* LAN.
    WithinLan,
    /// Uniformly random permutation of models over clients.
    Random,
}

impl MigrationStrategy {
    /// Display name matching the paper's legend.
    pub fn name(&self) -> &'static str {
        match self {
            MigrationStrategy::CrossLan => "cross-LAN",
            MigrationStrategy::WithinLan => "within-LAN",
            MigrationStrategy::Random => "random",
        }
    }
}

/// Hyper-parameters of the FedMigr scheme (the EMPG agent's environment
/// coupling; the agent's own hyper-parameters live in
/// [`fedmigr_drl::AgentConfig`]).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FedMigrConfig {
    /// Cost weight λ in the exploration oracle's objective
    /// (distribution-difference benefit minus λ × link cost).
    pub lambda: f64,
    /// Base Υ of the exponential loss-trend term in the reward (Eq. 17).
    pub upsilon: f64,
    /// Terminal bonus/penalty C (Eq. 18).
    pub terminal_bonus: f64,
    /// ρ-greedy exploration probability (overrides the agent default).
    pub rho: f64,
    /// Fraction of the run during which decisions come purely from the
    /// exploration oracle while the agent trains in the background — the
    /// paper's offline pre-training phase, folded into the run.
    pub oracle_warmup_frac: f64,
    /// Learning updates per epoch (0 freezes a pre-trained agent).
    pub updates_per_epoch: usize,
    /// Prioritization exponent ξ of the replay buffer (0 = uniform replay;
    /// the replay ablation flips this).
    pub replay_xi: f64,
    /// Whether the reward includes the resource terms of Eq. 17 (the
    /// reward-shaping ablation disables them).
    pub resource_reward: bool,
    /// Penalty weight on targeting *flaky* destinations: the exploration
    /// oracle subtracts `liveness_penalty x flakiness(j)` from every
    /// `(i, j)` score, where `flakiness` is an exponential moving average
    /// of observed per-client downtime. Zero-cost without fault injection
    /// (the EMA stays identically zero).
    pub liveness_penalty: f64,
    /// Penalty weight on migrating *suspect* models: the exploration
    /// oracle subtracts `suspicion_penalty x suspicion(i)` from every
    /// off-diagonal `(i, j)` score, where `suspicion` is the migration
    /// quarantine's per-source rejection EMA — a poisoned model is nudged
    /// to stay home instead of contaminating a fresh client. Zero-cost
    /// without an adversary (the quarantine is off and suspicion stays
    /// identically zero).
    pub suspicion_penalty: f64,
    /// Seed for the agent.
    pub agent_seed: u64,
}

impl FedMigrConfig {
    /// Defaults used throughout the evaluation.
    pub fn new(agent_seed: u64) -> Self {
        Self {
            lambda: 0.08,
            upsilon: 4.0,
            terminal_bonus: 5.0,
            rho: 0.7,
            oracle_warmup_frac: 0.5,
            updates_per_epoch: 1,
            replay_xi: 0.6,
            resource_reward: true,
            liveness_penalty: 0.5,
            suspicion_penalty: 0.5,
            agent_seed,
        }
    }
}

/// The federated-learning scheme to run.
#[derive(Clone, Debug)]
pub enum Scheme {
    /// FederatedAveraging (McMahan et al.): aggregate every epoch.
    FedAvg,
    /// FedAvg with a proximal term of weight `mu` (Li et al.).
    FedProx {
        /// Proximal coefficient μ.
        mu: f32,
    },
    /// Server-side model swapping between aggregations (Chiu et al.).
    FedSwap,
    /// Random C2C model migration between aggregations (ablation).
    RandMigr,
    /// DRL-guided C2C model migration (this paper).
    FedMigr(FedMigrConfig),
    /// A fixed migration strategy (Fig. 3 motivation experiment).
    Fixed(MigrationStrategy),
    /// Asynchronous federated optimization (Xie et al., the paper's
    /// related-work baseline and its stated future direction): each epoch a
    /// single client uploads and the server mixes it into the global model,
    /// `w_g <- (1 - beta) w_g + beta w_k`.
    FedAsync {
        /// Server mixing rate β ∈ (0, 1].
        beta: f32,
    },
}

impl Scheme {
    /// Convenience constructor for FedMigr with default hyper-parameters.
    pub fn fedmigr(agent_seed: u64) -> Self {
        Scheme::FedMigr(FedMigrConfig::new(agent_seed))
    }

    /// FedProx with the paper-typical μ = 0.01.
    pub fn fedprox() -> Self {
        Scheme::FedProx { mu: 0.01 }
    }

    /// FedAsync with the common β = 0.6.
    pub fn fedasync() -> Self {
        Scheme::FedAsync { beta: 0.6 }
    }

    /// Display name matching the paper's tables.
    pub fn name(&self) -> String {
        match self {
            Scheme::FedAvg => "FedAvg".into(),
            Scheme::FedProx { .. } => "FedProx".into(),
            Scheme::FedSwap => "FedSwap".into(),
            Scheme::RandMigr => "RandMigr".into(),
            Scheme::FedMigr(_) => "FedMigr".into(),
            Scheme::Fixed(s) => format!("Fixed({})", s.name()),
            Scheme::FedAsync { .. } => "FedAsync".into(),
        }
    }

    /// Whether local models travel client-to-client (vs through the server).
    pub fn uses_c2c_migration(&self) -> bool {
        matches!(self, Scheme::RandMigr | Scheme::FedMigr(_) | Scheme::Fixed(_))
    }

    /// Whether every epoch routes all models through the server.
    pub fn uploads_every_epoch(&self) -> bool {
        matches!(self, Scheme::FedAvg | Scheme::FedProx { .. } | Scheme::FedSwap)
    }

    /// Whether the server applies asynchronous single-client updates.
    pub fn is_async(&self) -> bool {
        matches!(self, Scheme::FedAsync { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_match_paper_tables() {
        assert_eq!(Scheme::FedAvg.name(), "FedAvg");
        assert_eq!(Scheme::fedprox().name(), "FedProx");
        assert_eq!(Scheme::fedmigr(0).name(), "FedMigr");
        assert_eq!(Scheme::Fixed(MigrationStrategy::CrossLan).name(), "Fixed(cross-LAN)");
    }

    #[test]
    fn fedasync_metadata() {
        assert_eq!(Scheme::fedasync().name(), "FedAsync");
        assert!(Scheme::fedasync().is_async());
        assert!(!Scheme::fedasync().uploads_every_epoch());
        assert!(!Scheme::fedasync().uses_c2c_migration());
    }

    #[test]
    fn traffic_shape_flags() {
        assert!(Scheme::FedAvg.uploads_every_epoch());
        assert!(Scheme::FedSwap.uploads_every_epoch());
        assert!(!Scheme::RandMigr.uploads_every_epoch());
        assert!(Scheme::fedmigr(0).uses_c2c_migration());
        assert!(!Scheme::FedAvg.uses_c2c_migration());
    }
}
